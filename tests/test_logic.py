"""Unit tests for the 4-valued logic and the D-calculus."""

import pytest

from repro.logic import DValue, Logic, dvalue_and, dvalue_not, dvalue_or, dvalue_xor


class TestLogic:
    def test_from_char_roundtrip(self):
        for ch, value in [("0", Logic.ZERO), ("1", Logic.ONE), ("x", Logic.X), ("Z", Logic.Z)]:
            assert Logic.from_char(ch) is value

    def test_from_char_rejects_garbage(self):
        with pytest.raises(ValueError):
            Logic.from_char("2")

    def test_from_int(self):
        assert Logic.from_int(0) is Logic.ZERO
        assert Logic.from_int(1) is Logic.ONE
        with pytest.raises(ValueError):
            Logic.from_int(2)

    def test_invert(self):
        assert Logic.ZERO.invert() is Logic.ONE
        assert Logic.ONE.invert() is Logic.ZERO
        assert Logic.X.invert() is Logic.X
        assert Logic.Z.invert() is Logic.X

    def test_is_known(self):
        assert Logic.ZERO.is_known and Logic.ONE.is_known
        assert not Logic.X.is_known and not Logic.Z.is_known

    def test_to_int(self):
        assert Logic.ONE.to_int() == 1
        assert Logic.ZERO.to_int() == 0
        with pytest.raises(ValueError):
            Logic.X.to_int()

    def test_and_truth_table(self):
        assert (Logic.ONE & Logic.ONE) is Logic.ONE
        assert (Logic.ZERO & Logic.X) is Logic.ZERO
        assert (Logic.X & Logic.ONE) is Logic.X
        assert (Logic.Z & Logic.ZERO) is Logic.ZERO

    def test_or_truth_table(self):
        assert (Logic.ZERO | Logic.ZERO) is Logic.ZERO
        assert (Logic.ONE | Logic.X) is Logic.ONE
        assert (Logic.X | Logic.ZERO) is Logic.X

    def test_xor_truth_table(self):
        assert (Logic.ONE ^ Logic.ZERO) is Logic.ONE
        assert (Logic.ONE ^ Logic.ONE) is Logic.ZERO
        assert (Logic.X ^ Logic.ONE) is Logic.X

    def test_str(self):
        assert str(Logic.ZERO) == "0"
        assert str(Logic.X) == "X"


class TestDValue:
    def test_from_pair(self):
        assert DValue.from_pair(Logic.ONE, Logic.ZERO) is DValue.D
        assert DValue.from_pair(Logic.ZERO, Logic.ONE) is DValue.DBAR
        assert DValue.from_pair(Logic.ONE, Logic.ONE) is DValue.ONE
        assert DValue.from_pair(Logic.X, Logic.ONE) is DValue.X

    def test_good_faulty_components(self):
        assert DValue.D.good is Logic.ONE
        assert DValue.D.faulty is Logic.ZERO
        assert DValue.DBAR.good is Logic.ZERO
        assert DValue.DBAR.faulty is Logic.ONE

    def test_is_fault_effect(self):
        assert DValue.D.is_fault_effect and DValue.DBAR.is_fault_effect
        assert not DValue.ONE.is_fault_effect and not DValue.X.is_fault_effect

    def test_invert(self):
        assert DValue.D.invert() is DValue.DBAR
        assert DValue.ZERO.invert() is DValue.ONE
        assert DValue.X.invert() is DValue.X

    def test_d_algebra_and(self):
        assert dvalue_and(DValue.D, DValue.ONE) is DValue.D
        assert dvalue_and(DValue.D, DValue.ZERO) is DValue.ZERO
        assert dvalue_and(DValue.D, DValue.DBAR) is DValue.ZERO

    def test_d_algebra_or(self):
        assert dvalue_or(DValue.D, DValue.ZERO) is DValue.D
        assert dvalue_or(DValue.D, DValue.ONE) is DValue.ONE
        assert dvalue_or(DValue.D, DValue.DBAR) is DValue.ONE

    def test_d_algebra_xor(self):
        assert dvalue_xor(DValue.D, DValue.ZERO) is DValue.D
        assert dvalue_xor(DValue.D, DValue.D) is DValue.ZERO

    def test_d_algebra_not(self):
        assert dvalue_not(DValue.D) is DValue.DBAR

    def test_from_logic(self):
        assert DValue.from_logic(Logic.ONE) is DValue.ONE
        assert DValue.from_logic(Logic.Z) is DValue.X
