"""Unit tests for fault models and fault site enumeration."""

import pytest

from repro.faults import (
    FaultSite,
    StuckAtFault,
    TransitionFault,
    TransitionKind,
    all_stuck_at_faults,
    all_transition_faults,
    enumerate_fault_sites,
    site_value,
)
from repro.logic import Logic
from repro.simulation import build_model, simulate
from repro.simulation.model import NodeKind


def test_fault_universe_sizes_match(c17_model):
    stuck = all_stuck_at_faults(c17_model)
    transition = all_transition_faults(c17_model)
    # Two faults per terminal, identical counts for both models (paper, §5).
    assert len(stuck) == len(transition)
    sites = enumerate_fault_sites(c17_model)
    assert len(stuck) == 2 * len(sites)


def test_c17_site_count(c17_model):
    sites = enumerate_fault_sites(c17_model)
    # 5 PIs + 6 gate outputs + 12 gate input pins = 23 terminals.
    assert len(sites) == 23


def test_checkpoint_sites_are_subset(c17_model):
    checkpoints = enumerate_fault_sites(c17_model, include_checkpoints_only=True)
    full = enumerate_fault_sites(c17_model)
    assert set(checkpoints) <= set(full)
    assert len(checkpoints) < len(full)


def test_stuck_at_validation():
    with pytest.raises(ValueError):
        StuckAtFault(site=FaultSite(node=0), value=2)


def test_transition_kind_semantics():
    str_fault = TransitionKind.SLOW_TO_RISE
    assert str_fault.initial_value is Logic.ZERO
    assert str_fault.final_value is Logic.ONE
    assert str_fault.equivalent_stuck_value == 0
    stf = TransitionKind.SLOW_TO_FALL
    assert stf.initial_value is Logic.ONE
    assert stf.equivalent_stuck_value == 1


def test_transition_to_stuck_mapping():
    fault = TransitionFault(site=FaultSite(node=3), kind=TransitionKind.SLOW_TO_RISE)
    stuck = fault.capture_frame_stuck_at
    assert stuck.site == fault.site
    assert stuck.value == 0


def test_describe_names_nets(c17_model):
    node = c17_model.node_of_net["N10"]
    fault = StuckAtFault(site=FaultSite(node=node), value=1)
    assert "N10" in fault.describe(c17_model)
    pin_fault = StuckAtFault(site=FaultSite(node=node, pin=0), value=1)
    assert "in0" in pin_fault.describe(c17_model)


def test_site_value_output_vs_pin(c17_model):
    values = simulate(
        c17_model,
        {c17_model.node_of_net[n]: Logic.ONE for n in ("N1", "N2", "N3", "N6", "N7")},
    )
    gate = c17_model.node_of_net["N10"]
    out_site = FaultSite(node=gate)
    pin_site = FaultSite(node=gate, pin=0)
    assert site_value(c17_model, out_site, values) is values[gate]
    driver = c17_model.nodes[gate].fanin[0]
    assert site_value(c17_model, pin_site, values) is values[driver]


def test_fault_ordering_is_stable(c17_model):
    faults = all_stuck_at_faults(c17_model)
    assert faults == sorted(faults)


def test_no_faults_on_tie_cells():
    from repro.netlist import NetlistBuilder

    builder = NetlistBuilder("ties")
    a = builder.input("a")
    one = builder.tie1()
    builder.output_from(builder.and_([a, one]), "y")
    model = build_model(builder.build())
    const_nodes = {n.index for n in model.nodes if n.kind in (NodeKind.CONST0, NodeKind.CONST1)}
    for site in enumerate_fault_sites(model):
        if site.pin is None:
            assert site.node not in const_nodes
