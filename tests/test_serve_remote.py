"""The remote worker backend: identity with local backends, resilience,
and the ServeClient/Campaign acceptance path over two live workers.
"""

from __future__ import annotations

import time

import pytest

from repro.api import Campaign
from repro.runtime import Executor, Job, Plan, register_job_kind
from repro.serve import RemoteBackend, ServeClient, ServeServer, ServeWorker


@register_job_kind("remote-mul")
def _remote_mul(resources, params, deps):
    return params["x"] * resources.get("factor", 1)


@register_job_kind("remote-nap")
def _remote_nap(resources, params, deps):
    time.sleep(params.get("seconds", 0.2))
    return params["x"]


@register_job_kind("remote-boom")
def _remote_boom(resources, params, deps):
    raise ValueError("remote boom")


def _sleep_then_return(seconds: float) -> float:
    """Module-level task fn — payloads must pickle across the worker wire."""
    time.sleep(seconds)
    return seconds


def mul_plan(count: int = 6, *, name: str = "muls") -> Plan:
    return Plan(
        name=name,
        jobs=tuple(
            Job(id=f"m:{i}", kind="remote-mul", params={"x": i})
            for i in range(count)
        ),
        resources={"factor": 7},
    )


@pytest.fixture()
def workers():
    pair = [ServeWorker().start() for _ in range(2)]
    yield pair
    for worker in pair:
        worker.stop()


def addresses(workers) -> list[str]:
    return [f"{w.address[0]}:{w.address[1]}" for w in workers]


class TestRemoteBackend:
    def test_results_identical_to_serial(self, workers):
        plan = mul_plan()
        serial = Executor(backend="serial").execute(plan)
        remote = Executor(
            backend="remote",
            backend_options={"workers": addresses(workers)},
        ).execute(plan)
        assert remote.backend == "remote"
        assert not remote.fallbacks
        for job in plan.jobs:
            assert remote.value_of(job.id) == serial.value_of(job.id)

    def test_resources_ship_once_and_bind_remotely(self, workers):
        result = Executor(
            backend="remote",
            backend_options={"workers": addresses(workers)},
        ).execute(mul_plan(4, name="bound"))
        assert [result.value_of(f"m:{i}") for i in range(4)] == [0, 7, 14, 21]

    def test_genuine_job_exception_propagates(self, workers):
        plan = Plan(name="boom", jobs=(
            Job(id="ok", kind="remote-mul", params={"x": 1}),
            Job(id="bad", kind="remote-boom", params={}),
        ))
        with pytest.raises(ValueError, match="remote boom"):
            Executor(
                backend="remote",
                backend_options={"workers": addresses(workers),
                                 "fallback": False},
            ).execute(plan)

    def test_dead_address_among_live_workers_is_harmless(self, workers):
        mixed = ["127.0.0.1:1", *addresses(workers)]  # port 1 never answers
        result = Executor(
            backend="remote",
            backend_options={"workers": mixed, "connect_timeout": 0.2},
        ).execute(mul_plan(5, name="mixed"))
        assert [result.value_of(f"m:{i}") for i in range(5)] == [0, 7, 14, 21, 28]

    def test_no_workers_falls_back_to_local_execution(self):
        result = Executor(
            backend="remote", backend_options={"workers": []},
        ).execute(mul_plan(3, name="localfb"))
        assert [result.value_of(f"m:{i}") for i in range(3)] == [0, 7, 14]

    def test_no_workers_without_fallback_raises(self):
        with pytest.raises(ConnectionError, match="no remote worker reachable"):
            Executor(
                backend="remote",
                backend_options={"workers": [], "fallback": False},
            ).execute(mul_plan(3, name="nofb"))

    def test_worker_heartbeats_outlive_a_short_lease(self):
        """A busy worker must never be declared dead: in-task heartbeat
        lines reset the caller's lease window."""
        worker = ServeWorker(heartbeat_seconds=0.1).start()
        try:
            backend = RemoteBackend(options={
                "workers": [f"{worker.address[0]}:{worker.address[1]}"],
                "lease_seconds": 0.5,
                "fallback": False,
            })
            done = backend.run_tasks(_sleep_then_return, [1.5])
            assert done == {0: 1.5}
        finally:
            worker.stop()

    def test_lost_worker_mid_task_requeues_to_survivors(self):
        """Killing a worker mid-task must requeue its shard, not fail the
        run — the surviving worker (or local fallback) finishes it."""
        doomed = ServeWorker().start()
        survivor = ServeWorker().start()
        try:
            backend = RemoteBackend(options={
                "workers": [
                    f"{doomed.address[0]}:{doomed.address[1]}",
                    f"{survivor.address[0]}:{survivor.address[1]}",
                ],
                "lease_seconds": 5.0,
            })
            killer = threading_timer(0.3, doomed.stop)
            try:
                done = backend.run_tasks(
                    _sleep_then_return, [0.8, 0.8, 0.1, 0.1]
                )
            finally:
                killer.cancel()
            assert done == {0: 0.8, 1: 0.8, 2: 0.1, 3: 0.1}
        finally:
            survivor.stop()


def threading_timer(delay: float, fn):
    import threading

    timer = threading.Timer(delay, fn)
    timer.start()
    return timer


class TestWorkerAuth:
    def test_worker_refuses_missing_or_wrong_token(self):
        worker = ServeWorker(auth_token="s3cret").start()
        address = f"{worker.address[0]}:{worker.address[1]}"
        try:
            for token in (None, "guess"):
                with pytest.raises(ConnectionError, match="no remote worker"):
                    Executor(
                        backend="remote",
                        backend_options={"workers": [address],
                                         "token": token, "fallback": False},
                    ).execute(mul_plan(2, name=f"denied-{token}"))
            result = Executor(
                backend="remote",
                backend_options={"workers": [address],
                                 "token": "s3cret", "fallback": False},
            ).execute(mul_plan(3, name="trusted"))
            assert [result.value_of(f"m:{i}") for i in range(3)] == [0, 7, 14]
        finally:
            worker.stop()

    def test_non_loopback_bind_refused_without_token(self):
        with pytest.raises(ValueError, match="auth_token"):
            ServeWorker(host="0.0.0.0")

    def test_tokened_topology_end_to_end(self, tmp_path):
        """One shared secret across server, workers and client: the server
        forwards it to the remote backend so dispatch keeps working."""
        server = ServeServer(tmp_path / "root", poll_seconds=0.02,
                             auth_token="s3cret")
        server.start()
        worker = ServeWorker(server_address=server.address,
                             register_seconds=0.2, auth_token="s3cret")
        worker.start()
        try:
            client = ServeClient(server.address, token="s3cret")
            deadline = time.time() + 10
            while time.time() < deadline and not client.workers():
                time.sleep(0.05)
            assert client.workers()
            final = client.wait(client.submit(mul_plan(4, name="sealed")),
                                timeout=60)
            assert final["state"] == "done"
            assert final["summary"]["backend"] == "remote"
            assert not final["summary"]["fallbacks"]
        finally:
            worker.stop()
            server.stop()


class TestServedRemoteExecution:
    def test_server_dispatches_to_registered_workers(self, tmp_path):
        server = ServeServer(tmp_path / "root", poll_seconds=0.02)
        server.start()
        workers = [
            ServeWorker(server_address=server.address, register_seconds=0.2).start()
            for _ in range(2)
        ]
        try:
            deadline = time.time() + 10
            client = ServeClient(server.address)
            while time.time() < deadline and len(client.workers()) < 2:
                time.sleep(0.05)
            assert len(client.workers()) == 2
            job_id = client.submit(mul_plan(6, name="served"))
            final = client.wait(job_id, timeout=60)
            assert final["state"] == "done"
            assert final["summary"]["backend"] == "remote"
            assert final["summary"]["executed"] == 6
            results = client.results(job_id)
            assert {k: e.value for k, e in results.items()} == {
                f"m:{i}": i * 7 for i in range(6)
            }
        finally:
            for worker in workers:
                worker.stop()
            server.stop()


class TestCampaignAcceptance:
    def test_submitted_campaign_report_matches_serial_run(self, tmp_path):
        """The PR's acceptance bar: a campaign submitted through ServeClient
        to a server with two registered remote workers must come back as a
        CampaignReport identical to the serial backend's."""
        reference = Campaign(designs=["tiny"], scenarios=["a", "b"]).run()

        server = ServeServer(tmp_path / "root", poll_seconds=0.02)
        server.start()
        workers = [
            ServeWorker(server_address=server.address, register_seconds=0.2).start()
            for _ in range(2)
        ]
        try:
            client = ServeClient(server.address)
            deadline = time.time() + 10
            while time.time() < deadline and len(client.workers()) < 2:
                time.sleep(0.05)
            assert len(client.workers()) == 2

            campaign = Campaign(designs=["tiny"], scenarios=["a", "b"])
            handle = campaign.submit(client, tenant="acceptance")
            cells = []
            report = handle.report(timeout=600, on_cell=cells.append)

            assert handle.status()["summary"]["backend"] == "remote"
            assert report.same_results(reference)
            assert report.table("tiny") == reference.table("tiny")
            assert len(cells) == 2  # streamed while the server executed
            assert report.campaign["backend"] == "serve"
            assert campaign.report is report
        finally:
            for worker in workers:
                worker.stop()
            server.stop()
