"""Unit tests for the broadside transition-fault simulator."""

import pytest

from repro.atpg import TestSetup
from repro.clocking import (
    CapturePulse,
    ClockDomain,
    ClockDomainMap,
    NamedCaptureProcedure,
    external_clock_procedures,
    simple_cpf_procedures,
)
from repro.dft import insert_scan
from repro.fault_sim import TransitionFaultSimulator
from repro.faults import FaultSite, TransitionFault, TransitionKind
from repro.logic import Logic
from repro.netlist import NetlistBuilder
from repro.patterns import TestPattern
from repro.simulation import build_model


@pytest.fixture()
def shift_register_design():
    """Two scan flip-flops in series with a buffer between them."""
    builder = NetlistBuilder("sr2")
    clk = builder.clock("clk")
    d = builder.input("d")
    q0 = builder.flop(d, clk, q="q0", name="ff0")
    mid = builder.buf(q0, output="mid")
    builder.flop(mid, clk, q="q1", name="ff1")
    builder.output_from("q1", "out")
    netlist, scan = insert_scan(builder.build(), num_chains=1)
    model = build_model(netlist)
    domain_map = ClockDomainMap.from_netlist(netlist, [ClockDomain("clk", "clk", 100.0)])
    setup = TestSetup(
        name="t",
        procedures=external_clock_procedures(["clk"], max_pulses=2),
        observe_pos=True,
        scan_enable_net="scan_en",
    )
    return netlist, scan, model, domain_map, setup


def make_pattern(procedure, scan_load, pis):
    return TestPattern(
        procedure=procedure,
        scan_load=scan_load,
        pi_frames=[dict(pis) for _ in range(procedure.num_frames)],
    )


class TestLaunchCaptureSemantics:
    def test_rising_transition_detected(self, shift_register_design):
        netlist, scan, model, domain_map, setup = shift_register_design
        simulator = TransitionFaultSimulator(model, domain_map, setup)
        procedure = setup.procedures[0]
        # Load ff0=0; D input d=1 held -> launch 0->1 at q0, captured by ff1.
        pattern = make_pattern(procedure, {"ff0": Logic.ZERO, "ff1": Logic.ZERO},
                               {"d": Logic.ONE, "scan_en": Logic.ZERO})
        site = FaultSite(node=model.node_of_net["q0"])
        str_fault = TransitionFault(site=site, kind=TransitionKind.SLOW_TO_RISE)
        stf_fault = TransitionFault(site=site, kind=TransitionKind.SLOW_TO_FALL)
        assert simulator.detects(pattern, str_fault)
        assert not simulator.detects(pattern, stf_fault)

    def test_falling_transition_detected(self, shift_register_design):
        netlist, scan, model, domain_map, setup = shift_register_design
        simulator = TransitionFaultSimulator(model, domain_map, setup)
        procedure = setup.procedures[0]
        pattern = make_pattern(procedure, {"ff0": Logic.ONE, "ff1": Logic.ZERO},
                               {"d": Logic.ZERO, "scan_en": Logic.ZERO})
        site = FaultSite(node=model.node_of_net["q0"])
        stf_fault = TransitionFault(site=site, kind=TransitionKind.SLOW_TO_FALL)
        assert simulator.detects(pattern, stf_fault)

    def test_no_launch_no_detection(self, shift_register_design):
        netlist, scan, model, domain_map, setup = shift_register_design
        simulator = TransitionFaultSimulator(model, domain_map, setup)
        procedure = setup.procedures[0]
        # ff0 loaded 1 and d=1: no transition at q0 -> nothing to detect.
        pattern = make_pattern(procedure, {"ff0": Logic.ONE, "ff1": Logic.ZERO},
                               {"d": Logic.ONE, "scan_en": Logic.ZERO})
        site = FaultSite(node=model.node_of_net["q0"])
        fault = TransitionFault(site=site, kind=TransitionKind.SLOW_TO_RISE)
        assert not simulator.detects(pattern, fault)

    def test_good_capture_matches_expectation(self, shift_register_design):
        netlist, scan, model, domain_map, setup = shift_register_design
        simulator = TransitionFaultSimulator(model, domain_map, setup)
        procedure = setup.procedures[0]
        pattern = make_pattern(procedure, {"ff0": Logic.ZERO, "ff1": Logic.ZERO},
                               {"d": Logic.ONE, "scan_en": Logic.ZERO})
        unload, outputs = simulator.good_capture(pattern)
        # After two pulses: ff0 captured d=1 twice; ff1 captured q0 after launch = 1.
        assert unload["ff0"] is Logic.ONE
        assert unload["ff1"] is Logic.ONE


class TestDomainAwareness:
    @pytest.fixture()
    def two_domain(self, scanned_two_domain):
        netlist, scan, model, domain_map = scanned_two_domain
        return netlist, scan, model, domain_map

    def test_unpulsed_domain_cannot_capture(self, two_domain):
        netlist, scan, model, domain_map = two_domain
        setup = TestSetup(
            name="cpf",
            procedures=simple_cpf_procedures(["a", "b"]),
            observe_pos=False,
            scan_enable_net="scan_en",
        )
        simulator = TransitionFaultSimulator(model, domain_map, setup)
        proc_a = setup.procedure_by_name("cpf_a_2pulse")
        obs_a = simulator.observation_nodes(proc_a)
        # Observation points of the domain-a procedure are D inputs of a-domain
        # scan cells only.
        for element in model.state_elements:
            if element.d_node in obs_a:
                assert domain_map.domain_of(element.name) == "a"

    def test_inter_domain_procedure_observes_capture_domain(self, two_domain):
        netlist, scan, model, domain_map = two_domain
        inter = NamedCaptureProcedure(
            name="a_to_b",
            pulses=(CapturePulse.of("a"), CapturePulse.of("b")),
        )
        setup = TestSetup(name="x", procedures=[inter], observe_pos=False,
                          scan_enable_net="scan_en")
        simulator = TransitionFaultSimulator(model, domain_map, setup)
        observed = set(simulator.observed_scan_flops(inter))
        assert observed
        for name in observed:
            assert domain_map.domain_of(name) == "b"
