"""Unit tests for the EDT-style compression architecture."""

import random

import pytest

from repro.circuits import two_domain_crossing
from repro.clocking import CapturePulse, NamedCaptureProcedure
from repro.dft import EdtArchitecture, EdtDecompressor, XorCompactor, insert_scan
from repro.logic import Logic
from repro.patterns import PatternSet, TestPattern


PROC = NamedCaptureProcedure(name="p", pulses=(CapturePulse.of("a"), CapturePulse.of("a")))


class TestDecompressor:
    def test_solve_then_expand_reproduces_care_bits(self):
        rng = random.Random(3)
        decompressor = EdtDecompressor(num_channels=2, num_chains=8, lfsr_length=24)
        chain_length = 10
        for trial in range(20):
            care_bits = {}
            for _ in range(rng.randint(1, 12)):
                care_bits[(rng.randrange(8), rng.randrange(chain_length))] = rng.randint(0, 1)
            solution = decompressor.solve(care_bits, chain_length, rng=rng)
            if solution is None:
                continue  # occasionally unsolvable; correctness checked when solvable
            expanded = decompressor.expand(solution.channel_bits)
            for (chain, position), value in care_bits.items():
                cycle = chain_length - 1 - position
                assert expanded[cycle][chain] == value

    def test_overconstrained_cube_reports_conflict(self):
        decompressor = EdtDecompressor(num_channels=1, num_chains=64, lfsr_length=8)
        chain_length = 2
        # Far more care bits than injected variables must eventually conflict.
        care_bits = {(chain, position): (chain ^ position) & 1
                     for chain in range(64) for position in range(2)}
        assert decompressor.solve(care_bits, chain_length) is None

    def test_invalid_care_bit_position(self):
        decompressor = EdtDecompressor(num_channels=2, num_chains=4)
        with pytest.raises(ValueError):
            decompressor.solve({(10, 0): 1}, chain_length=4)

    def test_empty_cube_is_trivially_solvable(self):
        decompressor = EdtDecompressor(num_channels=2, num_chains=4)
        solution = decompressor.solve({}, chain_length=4)
        assert solution is not None
        assert solution.num_cycles == 4


class TestCompactor:
    def test_xor_compaction(self):
        compactor = XorCompactor(num_chains=4, num_channels=2)
        chains = [
            [Logic.ONE, Logic.ZERO],
            [Logic.ZERO, Logic.ZERO],
            [Logic.ONE, Logic.ONE],
            [Logic.ONE, Logic.ZERO],
        ]
        out = compactor.compact(chains)
        # Channel 0 receives chains 0 and 2, channel 1 receives chains 1 and 3.
        assert out[0][0] is Logic.ZERO  # 1 xor 1
        assert out[1][0] is Logic.ONE   # 0 xor 1
        assert out[0][1] is Logic.ONE   # 0 xor 1

    def test_x_propagates_unless_masked(self):
        compactor = XorCompactor(num_chains=2, num_channels=1)
        chains = [[Logic.X], [Logic.ONE]]
        assert compactor.compact(chains)[0][0] is Logic.X
        masked = compactor.compact(chains, mask=[True, False])
        assert masked[0][0] is Logic.ONE

    def test_channel_count_validation(self):
        with pytest.raises(ValueError):
            XorCompactor(num_chains=4, num_channels=0)


class TestArchitecture:
    @pytest.fixture()
    def scan_design(self):
        netlist, arch = insert_scan(two_domain_crossing(4), num_chains=4)
        return netlist, arch

    def test_pattern_encoding_and_stats(self, scan_design):
        netlist, arch = scan_design
        edt = EdtArchitecture(arch, num_input_channels=2)
        cells = [cell for chain in arch.chains for cell in chain.cells]
        patterns = PatternSet()
        rng = random.Random(5)
        for _ in range(6):
            load = {cell: (Logic.ONE if rng.random() < 0.5 else Logic.ZERO)
                    for cell in rng.sample(cells, 5)}
            patterns.add(TestPattern(procedure=PROC, scan_load=load, pi_frames=[{}, {}]))
        stats = edt.statistics(patterns)
        assert stats.num_patterns == 6
        assert stats.encoded_patterns + stats.encoding_conflicts == 6
        assert stats.compression_ratio == pytest.approx(arch.num_chains / 2)
        assert stats.vector_memory_bits > 0

    def test_sparse_cubes_encode(self, scan_design):
        netlist, arch = scan_design
        edt = EdtArchitecture(arch, num_input_channels=2)
        chain = arch.chains[0]
        pattern = TestPattern(
            procedure=PROC,
            scan_load={chain.cells[0]: Logic.ONE, chain.cells[-1]: Logic.ZERO},
            pi_frames=[{}, {}],
        )
        assert edt.encode_pattern(pattern) is not None
