"""Volume mode end to end: fail-log stores, the compiled volume plan,
kill/resume from the result cache, serve submission, adaptive ATPG, and
the session/campaign front doors.
"""

from __future__ import annotations

import itertools
import time

import pytest

from repro.api import Campaign, TestSession
from repro.api.scenarios import table1_scenario
from repro.atpg import AtpgOptions
from repro.diagnose import DefectSpec, DiagnosisSpec, FailBit, FailLog, capture_fail_log
from repro.engine.cache import ResultCache
from repro.faults.fault_list import FaultStatus
from repro.obs import Telemetry
from repro.runtime import Executor, PlanCancelled
from repro.serve import ServeClient, ServeServer, ServeWorker
from repro.volume import (
    BpDiagnosisReport,
    BpDiagnosisResult,
    FailLogRecord,
    FailLogStore,
    VolumeSpec,
    adaptive_diagnose,
    execute_volume_plan,
)

ULTRA = AtpgOptions(
    random_pattern_batches=1, patterns_per_batch=16, backtrack_limit=8,
    max_patterns=24,
)

_ENV: list = []


def tiny_env():
    """One executed tiny/table1-a cell, cached for the module."""
    if not _ENV:
        session = TestSession.for_design("tiny", options=ULTRA)
        spec = table1_scenario("a")
        session.run_scenario(spec)
        run = session.artifacts[spec.name]
        setup = spec.build_setup(session.prepared, ULTRA)
        _ENV.append((session, spec, run, setup))
    return _ENV[0]


_DEFECTS: list[DefectSpec] = []


def visible_defects(count: int) -> list[DefectSpec]:
    """``count`` stuck-at defects on *distinct nets* tiny/a provably exposes.

    Distinct nets keep the seeded multi-defect scenarios meaningful: two
    pins of one gate can union into a syndrome a single gate-output
    candidate explains whole, which is a masking study, not a recovery one.
    """
    session, spec, run, setup = tiny_env()
    while len(_DEFECTS) < count:
        prepared = session.prepared
        detected = session.result_of(spec.name).fault_list.with_status(
            FaultStatus.DETECTED
        )
        start = len(detected) // 2
        for fault in detected[start:] + detected[:start]:
            defect = DefectSpec.from_fault(prepared.model, fault)
            if any(defect.net == seen.net for seen in _DEFECTS):
                continue
            log = capture_fail_log(
                prepared.model, prepared.domain_map, prepared.scan, setup,
                run.patterns, defect,
            )
            if log.num_fails:
                _DEFECTS.append(defect)
            if len(_DEFECTS) >= count:
                break
        else:
            raise AssertionError(f"fewer than {count} visible defects on tiny/a")
    return _DEFECTS[:count]


def make_log(defects: list[DefectSpec]) -> FailLog:
    """One multi-defect capture, stamped with the registry design name."""
    session, spec, run, setup = tiny_env()
    prepared = session.prepared
    return capture_fail_log(
        prepared.model, prepared.domain_map, prepared.scan, setup,
        run.patterns, defects, design_name="tiny",
    )


def small_store(tmp_path, suffix="logs.sqlite") -> FailLogStore:
    """Three distinct two-defect logs under the campaign scenario label."""
    _, spec, _, _ = tiny_env()
    defects = visible_defects(3)
    store = FailLogStore(tmp_path / suffix)
    for index, pair in enumerate(itertools.combinations(defects, 2)):
        store.add(f"die-{index}", make_log(list(pair)), scenario=spec.name)
    return store


# --------------------------------------------------------------------------
# FailLogStore
# --------------------------------------------------------------------------
def synthetic_log(name_suffix: str, design: str = "tiny") -> FailLog:
    return FailLog(
        design=design,
        pattern_count=4,
        fails=[FailBit(0, "chain0", 1, f"u{name_suffix}.q", "0", "1")],
    )


@pytest.mark.parametrize("suffix", ["store.sqlite", "store.jsonl"])
class TestFailLogStore:
    def test_round_trip_and_order(self, tmp_path, suffix):
        store = FailLogStore(tmp_path / suffix)
        assert store.kind == ("jsonl" if suffix.endswith(".jsonl") else "sqlite")
        for i in range(5):
            store.add(f"die-{i}", synthetic_log(str(i)), scenario="table1-a")
        assert len(store) == 5
        assert store.names() == [f"die-{i}" for i in range(5)]
        record = store.get("die-3")
        assert record.design == "tiny"
        assert record.scenario == "table1-a"
        assert record.log == synthetic_log("3")
        assert [r.name for r in store] == store.names()
        # A reopened store sees the same records.
        again = FailLogStore(tmp_path / suffix)
        assert again.names() == store.names()

    def test_duplicate_and_empty_names_raise(self, tmp_path, suffix):
        store = FailLogStore(tmp_path / suffix)
        store.add("die-0", synthetic_log("0"))
        with pytest.raises(ValueError, match="already stored"):
            store.add("die-0", synthetic_log("1"))
        with pytest.raises(ValueError, match="non-empty name"):
            store.add("", synthetic_log("2"))
        with pytest.raises(KeyError):
            store.get("missing")

    def test_filters(self, tmp_path, suffix):
        store = FailLogStore(tmp_path / suffix)
        store.add("t-0", synthetic_log("0", design="tiny"), scenario="a")
        store.add("w-0", synthetic_log("1", design="wide-edt"), scenario="a")
        store.add("t-1", synthetic_log("2", design="tiny"), scenario="b")
        assert [r.name for r in store.records(design="tiny")] == ["t-0", "t-1"]
        assert [r.name for r in store.records(scenario="a")] == ["t-0", "w-0"]
        assert [r.name for r in store.records(design="tiny", scenario="b")] == ["t-1"]

    def test_export_import_crosses_backends(self, tmp_path, suffix):
        store = FailLogStore(tmp_path / suffix)
        for i in range(3):
            store.add(f"die-{i}", synthetic_log(str(i)), scenario="s")
        dump = tmp_path / "dump.jsonl"
        assert store.export_jsonl(dump) == 3
        other_suffix = "other.jsonl" if store.kind == "sqlite" else "other.db"
        other = FailLogStore(tmp_path / other_suffix)
        assert other.import_jsonl(dump) == 3
        assert [r.to_dict() for r in other] == [r.to_dict() for r in store]


# --------------------------------------------------------------------------
# VolumeSpec
# --------------------------------------------------------------------------
class TestVolumeSpec:
    def test_json_round_trip(self):
        spec = VolumeSpec(
            scenario="table1-a", candidate_kinds=("stuck-at",),
            max_sites=64, backend="compiled",
        )
        assert VolumeSpec.from_json(spec.to_json()) == spec

    def test_validation(self):
        with pytest.raises(ValueError):
            VolumeSpec(scenario="")
        with pytest.raises(ValueError):
            VolumeSpec(scenario="a", candidate_kinds=("bogus",))
        with pytest.raises(ValueError):
            VolumeSpec(scenario="a", batch_size=0)
        with pytest.raises(ValueError):
            VolumeSpec(scenario="a", backend="gpu")

    def test_lowering_and_overrides(self):
        spec = VolumeSpec(scenario="table1-a", max_sites=9)
        lowered = spec.diagnosis_spec()
        assert lowered.scenario == "table1-a"
        assert lowered.defect is None
        assert lowered.max_sites == 9
        assert spec.diagnosis_spec("table1-c").scenario == "table1-c"
        assert spec.with_overrides(batch_size=32).batch_size == 32
        # Mapping-shaped BP knobs (e.g. straight from JSON) are coerced.
        coerced = VolumeSpec(scenario="a", bp={"iterations": 5})
        assert coerced.bp.iterations == 5


# --------------------------------------------------------------------------
# Campaign front door
# --------------------------------------------------------------------------
class TestCampaignVolume:
    def test_diagnose_volume_streams_and_is_backend_invariant(self, tmp_path):
        store = small_store(tmp_path)
        campaign = Campaign(designs=["tiny"], scenarios=["a"], options=ULTRA)
        streamed = []
        report = campaign.diagnose_volume(store, on_cell=streamed.append)
        assert campaign.volume_report is report
        assert len(report) == len(streamed) == 3
        assert [cell.log for cell in report] == ["die-0", "die-1", "die-2"]
        for cell in report:
            assert cell.recovered_all, cell.log
            assert cell.converged
            assert len(cell.defects) == 2
        assert "recovered all defects: 3/3" in report.summary()
        pooled = Campaign(
            designs=["tiny"], scenarios=["a"], options=ULTRA
        ).diagnose_volume(store, backend="processes", max_workers=2)
        assert pooled.same_results(report)

    def test_report_json_round_trip(self, tmp_path):
        store = small_store(tmp_path)
        campaign = Campaign(designs=["tiny"], scenarios=["a"], options=ULTRA)
        report = campaign.diagnose_volume(store)
        restored = BpDiagnosisReport.from_json(report.to_json())
        assert restored.same_results(report)
        assert restored.cell("die-1").defects == report.cell("die-1").defects

    def test_resume_from_cache_with_fresh_campaign(self, tmp_path):
        store = small_store(tmp_path)
        cold = (
            Campaign(designs=["tiny"], scenarios=["a"], options=ULTRA)
            .with_cache(tmp_path / "cache")
            .diagnose_volume(store)
        )
        assert cold.cache_hits() == 0
        warm = (
            Campaign(designs=["tiny"], scenarios=["a"], options=ULTRA)
            .with_cache(tmp_path / "cache")
            .diagnose_volume(store)
        )
        assert warm.cache_hits() == 3
        assert warm.same_results(cold)

    def test_telemetry_counters(self, tmp_path):
        store = small_store(tmp_path)
        telemetry = Telemetry.on()
        campaign = Campaign(
            designs=["tiny"], scenarios=["a"], options=ULTRA
        ).with_telemetry(telemetry)
        report = campaign.diagnose_volume(store)
        counters = report.campaign["telemetry"]["metrics"]["counters"]
        assert counters["volume.bp_iterations"] >= 1
        assert counters["volume.converged"] >= 1
        assert "volume.ambiguous_pairs" in counters

    def test_store_without_campaign_designs_raises(self, tmp_path):
        store = FailLogStore(tmp_path / "foreign.sqlite")
        store.add("x-0", synthetic_log("0", design="not-in-campaign"))
        campaign = Campaign(designs=["tiny"], scenarios=["a"], options=ULTRA)
        with pytest.raises(ValueError, match="no records"):
            campaign.volume_plan(store)


# --------------------------------------------------------------------------
# Kill / resume on a >=100-log store (the acceptance bar)
# --------------------------------------------------------------------------
class TestVolumeKillResume:
    def big_store(self, tmp_path, count: int = 100) -> FailLogStore:
        """``count`` distinct logs: variants of one two-defect capture with
        differing fail-bit subsets removed (distinct content fingerprints)."""
        _, spec, _, _ = tiny_env()
        base = make_log(visible_defects(2))
        assert base.num_fails >= 3
        store = FailLogStore(tmp_path / "volume.sqlite")
        store.add("die-base", base, scenario=spec.name)
        added = 1
        for drop in itertools.chain(
            itertools.combinations(range(base.num_fails), 1),
            itertools.combinations(range(base.num_fails), 2),
            itertools.combinations(range(base.num_fails), 3),
        ):
            if added >= count:
                break
            fails = [
                bit for index, bit in enumerate(base.fails) if index not in drop
            ]
            variant = FailLog(
                design=base.design, pattern_count=base.pattern_count,
                fails=fails, defects=base.defects,
            )
            store.add(f"die-{added}", variant, scenario=spec.name)
            added += 1
        assert len(store) >= count
        return store

    def test_kill_then_resume_reruns_nothing(self, tmp_path):
        store = self.big_store(tmp_path)
        campaign = Campaign(designs=["tiny"], scenarios=["a"], options=ULTRA)
        plan = campaign.volume_plan(store)
        bp_ids = {job.id for job in plan.jobs if job.kind == "bp-diagnosis"}
        assert len(bp_ids) >= 100

        cache = ResultCache(tmp_path / "cache")
        executor = Executor(cache=cache)
        finished: list[str] = []

        def killer(event) -> None:
            if event.kind == "job_finished" and event.job in bp_ids:
                finished.append(event.job)
                if len(finished) == 10:
                    executor.cancel()

        with pytest.raises(PlanCancelled, match="volume diagnosis cancelled"):
            execute_volume_plan(plan, executor=executor, on_event=killer)
        assert executor.cancelled
        assert len(finished) >= 10

        # Fresh executor, same cache: every previously landed log must be
        # served from the cache — zero re-runs of completed work.
        resumed_exec = Executor(cache=cache)
        report = execute_volume_plan(plan, executor=resumed_exec)
        assert len(report) == len(bp_ids)
        result = resumed_exec.execute(plan, cache=cache)
        del result  # third pass below is the assertion surface

        # And a third pass over the now fully cached store executes nothing.
        third_exec = Executor(cache=cache)
        events: list = []
        third = execute_volume_plan(
            plan, executor=third_exec, cache=cache,
            on_event=events.append,
        )
        executed = [e.job for e in events if e.kind == "job_finished"]
        assert executed == []
        assert all(cell.cache_hit for cell in third)
        assert third.same_results(report)


# --------------------------------------------------------------------------
# Serve submission (byte-identity with the local backends)
# --------------------------------------------------------------------------
class TestVolumeServe:
    def test_submitted_volume_report_matches_local_run(self, tmp_path):
        store = small_store(tmp_path)
        campaign = Campaign(designs=["tiny"], scenarios=["a"], options=ULTRA)
        reference = campaign.diagnose_volume(store)

        server = ServeServer(tmp_path / "root", poll_seconds=0.02)
        server.start()
        workers = [
            ServeWorker(server_address=server.address, register_seconds=0.2).start()
            for _ in range(2)
        ]
        try:
            client = ServeClient(server.address)
            deadline = time.time() + 10
            while time.time() < deadline and len(client.workers()) < 2:
                time.sleep(0.05)
            assert len(client.workers()) == 2

            handle = campaign.submit_volume(client, store, tenant="volume")
            cells = []
            report = handle.report(timeout=600, on_cell=cells.append)

            assert report.same_results(reference)
            assert len(cells) == 3  # streamed while the server executed
            assert report.campaign["backend"] == "serve"
            # The per-cell verdicts line up row for row with the local run.
            for cell, ref in zip(report, reference):
                assert cell.deterministic_dict() == ref.deterministic_dict()
        finally:
            for worker in workers:
                worker.stop()
            server.stop()


# --------------------------------------------------------------------------
# Adaptive diagnostic ATPG
# --------------------------------------------------------------------------
class TestAdaptive:
    def _pool(self, count: int) -> list[DefectSpec]:
        """Visible defects *including same-net specs* — resolvable ambiguity
        typically sits between related-but-distinguishable hypotheses (two
        input pins of one gate), which the distinct-net pool excludes."""
        session, spec, run, setup = tiny_env()
        prepared = session.prepared
        detected = session.result_of(spec.name).fault_list.with_status(
            FaultStatus.DETECTED
        )
        start = len(detected) // 2
        pool: list[DefectSpec] = []
        for fault in detected[start:] + detected[:start]:
            defect = DefectSpec.from_fault(prepared.model, fault)
            if any(defect == seen for seen in pool):
                continue
            log = capture_fail_log(
                prepared.model, prepared.domain_map, prepared.scan, setup,
                run.patterns, defect,
            )
            if log.num_fails:
                pool.append(defect)
            if len(pool) >= count:
                return pool
        raise AssertionError(f"fewer than {count} visible defects on tiny/a")

    def test_adaptive_reduces_ambiguous_pairs(self):
        """The seeded scenario the acceptance bar names: at least one
        two-defect injection leaves BP with ambiguous pairs that one round
        of distinguishing patterns then separates.

        Not every pair qualifies — ambiguity between *structural
        equivalents* (identical syndromes under every possible pattern)
        is unresolvable by construction and the generator correctly
        returns no pattern for it — so the seed searches defect pairs
        until one with resolvable ambiguity appears.
        """
        session, spec, run, setup = tiny_env()
        improved = None
        for d1, d2 in itertools.combinations(self._pool(6), 2):
            outcome = adaptive_diagnose(
                session.prepared, setup, run.patterns,
                DiagnosisSpec(scenario=spec.name, backend="compiled"),
                defects=[d1, d2], options=ULTRA,
                max_rounds=4, pairs_per_round=3,
            )
            assert outcome.history[0] == outcome.initial_ambiguous
            assert outcome.history[-1] == outcome.final_ambiguous
            if outcome.improved:
                improved = outcome
                break
        assert improved is not None, "no defect pair with resolvable ambiguity"
        assert improved.initial_ambiguous > 0
        assert improved.final_ambiguous < improved.initial_ambiguous
        assert improved.patterns_added >= 1
        assert improved.rounds >= 1
        assert improved.result.recovered_all_defects()
        assert "adaptive ATPG:" in improved.summary()

    def test_validation(self):
        session, spec, run, setup = tiny_env()
        with pytest.raises(ValueError):
            adaptive_diagnose(
                session.prepared, setup, run.patterns,
                DiagnosisSpec(scenario=spec.name), max_rounds=-1,
            )
        with pytest.raises(ValueError):
            adaptive_diagnose(
                session.prepared, setup, run.patterns,
                DiagnosisSpec(scenario=spec.name), pairs_per_round=0,
            )

    def test_open_loop_log_runs_zero_rounds(self):
        """Without injected defects there is no device to re-capture: the
        loop must degrade to a single plain BP pass."""
        session, spec, run, setup = tiny_env()
        log = make_log(visible_defects(2))
        open_log = FailLog(
            design=log.design, pattern_count=log.pattern_count, fails=log.fails
        )
        outcome = adaptive_diagnose(
            session.prepared, setup, run.patterns,
            DiagnosisSpec(scenario=spec.name, backend="compiled"),
            fail_log=open_log, options=ULTRA,
        )
        assert outcome.rounds == 0
        assert outcome.patterns_added == 0
        assert outcome.final_ambiguous == outcome.initial_ambiguous


# --------------------------------------------------------------------------
# Session front door
# --------------------------------------------------------------------------
class TestSessionBpDiagnose:
    def test_bp_flag_returns_bp_result(self):
        session, spec, run, setup = tiny_env()
        (defect,) = visible_defects(1)
        result = session.diagnose(defect, scenario="a", bp=True)
        assert isinstance(result, BpDiagnosisResult)
        assert result.rank_of_defect == 1
        assert result.converged

    def test_defect_list_implies_bp(self):
        session, spec, run, setup = tiny_env()
        d1, d2 = visible_defects(2)
        result = session.diagnose([d1, d2], scenario="a")
        assert isinstance(result, BpDiagnosisResult)
        assert result.defects == [d1, d2]
        assert result.recovered_all_defects()

    def test_defect_list_conflicts_rejected(self):
        session, spec, run, setup = tiny_env()
        d1, d2 = visible_defects(2)
        with pytest.raises(ValueError, match="not both"):
            session.diagnose([d1], scenario="a", defects=[d2])
        with pytest.raises(ValueError, match="empty"):
            session.diagnose([], scenario="a")

    def test_bp_results_cache_across_sessions(self, tmp_path):
        (defect,) = visible_defects(1)
        cold = (
            TestSession.for_design("tiny", options=ULTRA)
            .with_cache(tmp_path / "cache")
            .diagnose(defect, scenario="a", bp=True)
        )
        assert not cold.cache_hit
        warm = (
            TestSession.for_design("tiny", options=ULTRA)
            .with_cache(tmp_path / "cache")
            .diagnose(defect, scenario="a", bp=True)
        )
        assert warm.cache_hit
        assert warm.same_ranking(cold)


def test_volume_records_compile_without_a_store(tmp_path):
    """volume_plan accepts any record iterable, not just FailLogStore."""
    _, spec, _, _ = tiny_env()
    records = [
        FailLogRecord(
            name="inline-0", design="tiny", scenario=spec.name,
            log=make_log(visible_defects(2)),
        )
    ]
    campaign = Campaign(designs=["tiny"], scenarios=["a"], options=ULTRA)
    report = campaign.diagnose_volume(records)
    assert len(report) == 1
    assert report.cell("inline-0").recovered_all
