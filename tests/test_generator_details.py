"""Tests for ATPG generator bookkeeping details (statistics, commits, EDT cubes)."""

import pytest

from repro.atpg import AtpgOptions, StuckAtAtpg, TestSetup
from repro.clocking import stuck_at_procedures
from repro.dft import EdtArchitecture
from repro.faults import FaultStatus


@pytest.fixture(scope="module")
def s27_result(scanned_s27):
    netlist, scan, model, domain_map = scanned_s27
    setup = TestSetup(
        name="gen-details",
        procedures=stuck_at_procedures(["clk"], max_pulses=2),
        observe_pos=True,
        hold_pis=False,
        scan_enable_net="scan_en",
        constrain_scan_enable=False,
        options=AtpgOptions(random_pattern_batches=2, patterns_per_batch=16, backtrack_limit=20),
    )
    generator = StuckAtAtpg(model, domain_map, setup)
    return scan, generator, generator.run()


def test_statistics_are_consistent(s27_result):
    _, generator, result = s27_result
    stats = result.stats
    assert stats.random_patterns_kept <= stats.random_patterns_simulated
    assert stats.podem_tests_found <= stats.podem_runs
    assert stats.deterministic_patterns + stats.random_patterns_kept == result.pattern_count
    assert stats.runtime_seconds > 0.0
    assert isinstance(stats.as_dict(), dict)


def test_detected_faults_reference_valid_patterns(s27_result):
    _, _, result = s27_result
    for fault in result.fault_list.with_status(FaultStatus.DETECTED):
        record = result.fault_list.record(fault)
        assert record.detected_by is not None
        assert 0 <= record.detected_by < result.pattern_count


def test_every_committed_pattern_is_fully_specified(s27_result):
    _, _, result = s27_result
    for pattern in result.patterns:
        assert all(v.is_known for v in pattern.scan_load.values())
        for frame in pattern.pi_frames:
            assert all(v.is_known for v in frame.values())


def test_deterministic_patterns_record_their_cube(s27_result):
    scan, _, result = s27_result
    deterministic = [p for p in result.patterns if "random" not in p.target_faults]
    for pattern in deterministic:
        assert pattern.cube_scan_load is not None
        # The cube is a subset of the filled load and agrees with it.
        for cell, value in pattern.cube_scan_load.items():
            assert pattern.scan_load[cell] is value

    # The cube (not the filled load) is what the EDT architecture encodes.
    edt = EdtArchitecture(scan, num_input_channels=2)
    stats = edt.statistics(result.patterns)
    assert stats.encoded_patterns >= stats.num_patterns * 0.5


def test_random_patterns_have_empty_cube(s27_result):
    _, _, result = s27_result
    random_patterns = [p for p in result.patterns if "random" in p.target_faults]
    for pattern in random_patterns:
        assert pattern.cube_scan_load == {}


def test_compaction_statistics_reported(s27_result):
    _, _, result = s27_result
    assert result.compaction.patterns_in >= result.compaction.successful_merges
    assert result.compaction.attempted_merges >= result.compaction.successful_merges
