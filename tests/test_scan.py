"""Unit tests for scan insertion and the scan architecture."""

import pytest

from repro.circuits import build_soc, s27, two_domain_crossing
from repro.dft import balance_metric, chain_length_histogram, insert_scan, partition_into_chains
from repro.logic import Logic
from repro.netlist import GateType, validate_netlist


def test_all_scannable_flops_become_scan_cells():
    netlist, arch = insert_scan(s27(), num_chains=1)
    assert all(f.is_scan for f in netlist.flops.values())
    assert arch.total_cells == 3
    assert validate_netlist(netlist).ok


def test_scan_mux_inserted_per_cell():
    netlist, arch = insert_scan(s27(), num_chains=1)
    muxes = [g for g in netlist.gates.values() if g.gtype is GateType.MUX2]
    assert len(muxes) == 3
    for flop in netlist.flops.values():
        kind, gate = netlist.driver_of(flop.d)
        assert kind == "gate" and gate.gtype is GateType.MUX2
        assert gate.inputs[0] == arch.scan_enable


def test_chain_connectivity():
    netlist, arch = insert_scan(s27(), num_chains=1)
    chain = arch.chains[0]
    # First cell's scan input is the chain's scan-in port.
    first = netlist.flops[chain.cells[0]]
    assert first.scan_in == chain.scan_in
    # Every later cell's scan input is the previous cell's Q.
    for prev_name, cell_name in zip(chain.cells, chain.cells[1:]):
        assert netlist.flops[cell_name].scan_in == netlist.flops[prev_name].q
    # Scan-out is a primary output.
    assert chain.scan_out in netlist.outputs


def test_exclude_and_nonscan_respected():
    soc = build_soc(size=1, seed=3)
    nonscan_before = set(soc.nonscan_flops)
    netlist, arch = insert_scan(soc.netlist, num_chains=4)
    stitched = {cell for chain in arch.chains for cell in chain.cells}
    assert nonscan_before.isdisjoint(stitched)
    for name in nonscan_before:
        assert not netlist.flops[name].is_scan


def test_chains_do_not_mix_clock_domains():
    netlist, arch = insert_scan(two_domain_crossing(4), num_chains=4)
    for chain in arch.chains:
        clocks = {netlist.flops[cell].clock for cell in chain.cells}
        assert len(clocks) == 1


def test_chains_are_balanced():
    netlist, arch = insert_scan(two_domain_crossing(8), num_chains=4)
    lengths = [chain.length for chain in arch.chains]
    assert max(lengths) - min(lengths) <= max(2, max(lengths) // 2)
    assert balance_metric([chain.cells for chain in arch.chains]) < 2.0


def test_load_and_unload_sequences_are_inverses():
    netlist, arch = insert_scan(s27(), num_chains=1)
    chain = arch.chains[0]
    load = {cell: (Logic.ONE if i % 2 else Logic.ZERO) for i, cell in enumerate(chain.cells)}
    sequence = chain.load_sequence(load)
    # Shifting the sequence in ends up with exactly `load` in the cells, so
    # unloading the same values must reproduce the per-cell mapping.
    observed = chain.unload_values(list(reversed([load[c] for c in chain.cells])))
    assert observed == load
    assert len(sequence) == chain.length


def test_architecture_queries():
    netlist, arch = insert_scan(two_domain_crossing(4), num_chains=2)
    cell = arch.chains[0].cells[0]
    assert arch.chain_of(cell).name == arch.chains[0].name
    with pytest.raises(KeyError):
        arch.chain_of("not_a_cell")
    assert len(arch.scan_in_ports()) == arch.num_chains
    assert arch.max_chain_length == max(c.length for c in arch.chains)


def test_partition_into_chains_validation():
    with pytest.raises(ValueError):
        partition_into_chains([1, 2, 3], 0)
    chains = partition_into_chains(list(range(10)), 3)
    assert sum(len(c) for c in chains) == 10
    histogram = chain_length_histogram(chains)
    assert sum(histogram.values()) == 3


def test_insert_scan_not_in_place():
    original = s27()
    flops_before = {name: f.is_scan for name, f in original.flops.items()}
    copy, arch = insert_scan(original, num_chains=1, in_place=False)
    assert {name: f.is_scan for name, f in original.flops.items()} == flops_before
    assert all(f.is_scan for f in copy.flops.values())
