"""Unit tests for test pattern data structures and statistics."""

import random

import pytest

from repro.clocking import CapturePulse, NamedCaptureProcedure
from repro.logic import Logic
from repro.patterns import PatternSet, TestPattern


PROC_A = NamedCaptureProcedure(name="a2", pulses=(CapturePulse.of("a"), CapturePulse.of("a")))
PROC_AB = NamedCaptureProcedure(name="a_to_b", pulses=(CapturePulse.of("a"), CapturePulse.of("b")))


def test_frame_count_enforced():
    with pytest.raises(ValueError):
        TestPattern(procedure=PROC_A, pi_frames=[{}])
    pattern = TestPattern(procedure=PROC_A)
    assert pattern.num_frames == 2
    assert pattern.pi_frames == [{}, {}]


def test_care_bit_accounting():
    pattern = TestPattern(
        procedure=PROC_A,
        scan_load={"ff0": Logic.ONE, "ff1": Logic.X},
        pi_frames=[{"a": Logic.ZERO}, {"a": Logic.X}],
    )
    assert pattern.specified_bits() == 2
    assert pattern.total_bits() == 4
    assert pattern.care_bit_density() == pytest.approx(0.5)


def test_filled_replaces_only_x():
    pattern = TestPattern(
        procedure=PROC_A,
        scan_load={"ff0": Logic.ONE, "ff1": Logic.X},
        pi_frames=[{"a": Logic.X}, {"a": Logic.X}],
    )
    filled = pattern.filled(rng=random.Random(0))
    assert filled.scan_load["ff0"] is Logic.ONE
    assert filled.scan_load["ff1"].is_known
    assert all(v.is_known for frame in filled.pi_frames for v in frame.values())
    zero_filled = pattern.filled(value=Logic.ZERO)
    assert zero_filled.scan_load["ff1"] is Logic.ZERO


def test_pattern_set_stats():
    patterns = PatternSet()
    patterns.add(TestPattern(procedure=PROC_A, scan_load={"ff0": Logic.ONE}))
    patterns.add(TestPattern(procedure=PROC_AB, scan_load={"ff0": Logic.ZERO}))
    patterns.add(TestPattern(procedure=PROC_AB))
    stats = patterns.stats()
    assert stats.num_patterns == 3
    assert stats.per_procedure == {"a2": 1, "a_to_b": 2}
    assert stats.inter_domain_patterns == 2
    assert stats.per_capture_domain["b"] == 2
    assert 0.0 <= stats.average_care_bit_density <= 1.0


def test_pattern_set_iteration_and_indexing():
    pset = PatternSet([TestPattern(procedure=PROC_A)])
    pset.extend([TestPattern(procedure=PROC_A)])
    assert len(pset) == 2
    assert pset[0].procedure.name == "a2"
    assert all(isinstance(p, TestPattern) for p in pset)
    assert len(pset.patterns()) == 2
