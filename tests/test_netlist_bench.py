"""Tests for the ISCAS/ITC ``.bench`` importer (PR-10 tentpole)."""

from __future__ import annotations

import random

import pytest

from repro.netlist.bench import read_bench, read_bench_file, write_bench
from repro.netlist.builder import NetlistBuilder
from repro.netlist.gates import GateType
from repro.netlist.netlist import NetlistError

C17 = """
# c17 (ISCAS'85 style)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


def test_reads_iscas_combinational():
    netlist = read_bench(C17, name="c17")
    assert netlist.name == "c17"
    assert list(netlist.inputs) == ["G1", "G2", "G3", "G6", "G7"]
    assert list(netlist.outputs) == ["G22", "G23"]
    assert len(netlist.gates) == 6
    assert netlist.gates["g_G22"].gtype is GateType.NAND
    assert netlist.gates["g_G22"].inputs == ("G10", "G16")
    assert not netlist.flops


def test_dff_gets_implicit_clock():
    netlist = read_bench(
        "INPUT(a)\nOUTPUT(q)\nq = DFF(n1)\nn1 = NOT(a)\n", clock="ck"
    )
    assert "ck" in netlist.inputs
    assert "ck" in netlist.clock_nets
    flop = netlist.flops["ff_q"]
    assert flop.d == "n1" and flop.q == "q" and flop.clock == "ck"


def test_function_aliases_accepted():
    netlist = read_bench(
        "INPUT(a)\nOUTPUT(y)\nn1 = BUFF(a)\nn2 = BUF(n1)\nn3 = INV(n2)\ny = NOT(n3)\n"
    )
    assert netlist.gates["g_n1"].gtype is GateType.BUF
    assert netlist.gates["g_n2"].gtype is GateType.BUF
    assert netlist.gates["g_n3"].gtype is GateType.NOT
    assert netlist.gates["g_y"].gtype is GateType.NOT


def test_read_is_deterministic():
    assert write_bench(read_bench(C17)) == write_bench(read_bench(C17))


def _bench_circuit(seed, num_flops=0, num_gates=40, name="bench_rt"):
    """A random netlist restricted to the gate set ``.bench`` can express."""
    rng = random.Random(seed)
    builder = NetlistBuilder(name)
    nets = [builder.input(f"in_{i}") for i in range(4)]
    flop_qs = []
    if num_flops:
        builder.clock("clk")
        flop_qs = [f"state_{i}" for i in range(num_flops)]
        nets = nets + flop_qs
    kinds = (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
             GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF)
    for index in range(num_gates):
        gtype = rng.choice(kinds)
        arity = 1 if gtype in (GateType.NOT, GateType.BUF) else rng.randint(2, 3)
        fanin = [rng.choice(nets) for _ in range(arity)]
        nets.append(builder.gate(gtype, fanin, name=f"g_{index}"))
    for index in range(num_flops):
        builder.flop(nets[-(index + 1)], "clk", q=flop_qs[index], name=f"ff_{index}")
    for index in range(3):
        builder.output_from(rng.choice(nets[4:]), f"out_{index}")
    return builder.build()


@pytest.mark.parametrize("seed", range(4))
def test_write_read_round_trip_byte_stable(seed):
    # Reading renames instances to the reader's canonical g_<net>/ff_<net>
    # scheme, so byte-stability is reached after one read: from then on
    # write -> read -> write is the identity.
    name = f"bench_rt_{seed}"
    netlist = _bench_circuit(seed, num_flops=seed % 3, name=name)
    canonical = write_bench(read_bench(write_bench(netlist), name=name))
    assert write_bench(read_bench(canonical, name=name)) == canonical


def test_round_trip_preserves_structure():
    netlist = _bench_circuit(9, num_gates=30, name="bench_comb")
    again = read_bench(write_bench(netlist), name="bench_comb")
    assert set(again.inputs) == set(netlist.inputs)
    assert list(again.outputs) == list(netlist.outputs)
    by_output = {g.output: g for g in netlist.gates.values()}
    for gate in again.gates.values():
        original = by_output[gate.output]
        assert gate.gtype is original.gtype
        assert gate.inputs == original.inputs


def test_read_bench_file_named_after_stem(tmp_path):
    path = tmp_path / "c17.bench"
    path.write_text(C17, encoding="utf-8")
    netlist = read_bench_file(path)
    assert netlist.name == "c17"
    assert len(netlist.gates) == 6


@pytest.mark.parametrize(
    "text,message",
    [
        ("INPUT(a)\nthis is not bench\n", "unparseable"),
        ("INPUT(a)\ny = FROB(a)\n", "unknown .bench function"),
        ("INPUT(a)\nq = DFF(a, a)\n", "exactly one operand"),
        ("INPUT(a)\ny = NOT(a, a)\n", "exactly one operand"),
    ],
)
def test_reader_rejects_bad_input(text, message):
    with pytest.raises(NetlistError, match=message):
        read_bench(text)


def test_writer_rejects_latches_rams_and_multiclock():
    builder = NetlistBuilder("latched")
    a = builder.input("a")
    en = builder.input("en")
    builder.latch(a, en)
    with pytest.raises(NetlistError, match="latches or RAM"):
        write_bench(builder.build())

    builder = NetlistBuilder("two_clocks")
    a = builder.input("a")
    c1 = builder.clock("c1")
    c2 = builder.clock("c2")
    builder.flop(a, c1, name="f1")
    builder.flop(a, c2, name="f2")
    with pytest.raises(NetlistError, match="multiple clock domains"):
        write_bench(builder.build())


def test_writer_rejects_unrepresentable_gates():
    builder = NetlistBuilder("muxed")
    a = builder.input("a")
    b = builder.input("b")
    s = builder.input("s")
    out = builder.mux(s, a, b)
    builder.output_from(out, "y")
    with pytest.raises(NetlistError, match="cannot represent gate type"):
        write_bench(builder.build())
