"""Unit tests for the netlist data model."""

import pytest

from repro.netlist import (
    FlipFlop,
    Gate,
    GateType,
    Latch,
    Netlist,
    NetlistError,
    RamMacro,
)


def small_netlist() -> Netlist:
    netlist = Netlist("small")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_input("clk")
    netlist.declare_clock("clk")
    netlist.add_gate(Gate("g1", GateType.AND, ("a", "b"), "n1"))
    netlist.add_gate(Gate("g2", GateType.NOT, ("n1",), "n2"))
    netlist.add_flop(FlipFlop(name="ff1", d="n2", q="q1", clock="clk"))
    netlist.add_output("q1")
    return netlist


class TestNetlistEditing:
    def test_driver_and_fanout(self):
        netlist = small_netlist()
        kind, gate = netlist.driver_of("n1")
        assert kind == "gate" and gate.name == "g1"
        kind, _ = netlist.driver_of("a")
        assert kind == "input"
        sinks = netlist.fanout_of("n1")
        assert [(k, e.name) for k, e in sinks] == [("gate", "g2")]

    def test_duplicate_input_rejected(self):
        netlist = small_netlist()
        with pytest.raises(NetlistError):
            netlist.add_input("a")

    def test_multiple_drivers_rejected(self):
        netlist = small_netlist()
        with pytest.raises(NetlistError):
            netlist.add_gate(Gate("g3", GateType.OR, ("a", "b"), "n1"))

    def test_duplicate_instance_rejected(self):
        netlist = small_netlist()
        with pytest.raises(NetlistError):
            netlist.add_gate(Gate("g1", GateType.OR, ("a", "b"), "n9"))

    def test_replace_flop_keeps_name(self):
        netlist = small_netlist()
        flop = netlist.flops["ff1"]
        from dataclasses import replace

        netlist.replace_flop("ff1", replace(flop, scan_in="a", scan_enable="b"))
        assert netlist.flops["ff1"].is_scan
        with pytest.raises(NetlistError):
            netlist.replace_flop("ff1", replace(flop, name="other"))

    def test_remove_gate(self):
        netlist = small_netlist()
        netlist.remove_gate("g2")
        assert "g2" not in netlist.gates
        with pytest.raises(NetlistError):
            netlist.remove_gate("g2")

    def test_all_nets(self):
        netlist = small_netlist()
        nets = netlist.all_nets()
        assert {"a", "b", "clk", "n1", "n2", "q1"} <= nets

    def test_stats(self):
        stats = small_netlist().stats()
        assert stats.num_gates == 2
        assert stats.num_flops == 1
        assert stats.num_primary_inputs == 3
        assert stats.num_primary_outputs == 1


class TestTopologicalOrder:
    def test_order_respects_dependencies(self):
        netlist = small_netlist()
        order = [g.name for g in netlist.topological_gate_order()]
        assert order.index("g1") < order.index("g2")

    def test_combinational_loop_detected(self):
        netlist = Netlist("loop")
        netlist.add_input("a")
        netlist.add_gate(Gate("g1", GateType.AND, ("a", "n2"), "n1"))
        netlist.add_gate(Gate("g2", GateType.AND, ("n1", "a"), "n2"))
        with pytest.raises(NetlistError):
            netlist.topological_gate_order()

    def test_flop_breaks_cycle(self):
        netlist = Netlist("seq_loop")
        netlist.add_input("clk")
        netlist.declare_clock("clk")
        netlist.add_gate(Gate("g1", GateType.NOT, ("q",), "d"))
        netlist.add_flop(FlipFlop(name="ff", d="d", q="q", clock="clk"))
        order = netlist.topological_gate_order()
        assert [g.name for g in order] == ["g1"]


class TestMergeAndCopy:
    def test_copy_is_independent(self):
        netlist = small_netlist()
        clone = netlist.copy("clone")
        clone.add_input("extra")
        assert "extra" not in netlist.inputs
        assert clone.name == "clone"

    def test_merge_prefixes_instances_and_keeps_nets(self):
        top = small_netlist()
        block = Netlist("block")
        block.add_input("n2")  # connects to top's internal net
        block.add_gate(Gate("bg", GateType.NOT, ("n2",), "block_out"))
        block.add_output("block_out")
        top.merge(block, prefix="u_")
        assert "u_bg" in top.gates
        # The block input "n2" must not become a primary input (already driven).
        assert "n2" not in top.inputs
        assert "block_out" in top.outputs

    def test_merge_adds_undriven_inputs(self):
        top = small_netlist()
        block = Netlist("block")
        block.add_input("fresh_in")
        block.add_gate(Gate("bg", GateType.BUF, ("fresh_in",), "fresh_out"))
        top.merge(block, prefix="u_")
        assert "fresh_in" in top.inputs


class TestSequentialElements:
    def test_latch_and_ram(self):
        netlist = Netlist("seq")
        netlist.add_input("clk")
        netlist.add_input("en")
        netlist.add_input("d")
        netlist.declare_clock("clk")
        netlist.add_latch(Latch(name="lat", d="d", q="lq", enable="en"))
        netlist.add_ram(
            RamMacro(
                name="ram",
                clock="clk",
                write_enable="en",
                address=("d",),
                data_in=("lq",),
                data_out=("ro",),
            )
        )
        assert netlist.rams["ram"].num_words == 2
        assert netlist.rams["ram"].width == 1
        assert any(isinstance(e, Latch) for e in netlist.sequential_elements())

    def test_scan_flop_queries(self):
        netlist = small_netlist()
        assert netlist.scan_flops() == []
        assert [f.name for f in netlist.nonscan_flops()] == ["ff1"]
