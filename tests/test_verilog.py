"""Unit tests for the structural Verilog writer/reader."""

import pytest

from repro.circuits import alu_slice, s27
from repro.dft import insert_scan
from repro.netlist import NetlistError, read_verilog, round_trip, write_verilog
from repro.netlist.builder import NetlistBuilder


def test_write_contains_module_and_cells(c17_netlist):
    text = write_verilog(c17_netlist)
    assert "module c17" in text
    assert "NAND2" in text
    assert text.strip().endswith("endmodule")


def test_round_trip_preserves_structure(c17_netlist):
    clone = round_trip(c17_netlist)
    assert clone.stats().as_dict() == c17_netlist.stats().as_dict()
    assert set(clone.inputs) == set(c17_netlist.inputs)
    assert set(clone.outputs) == set(c17_netlist.outputs)
    assert set(clone.gates) == set(c17_netlist.gates)


def test_round_trip_sequential():
    netlist = s27()
    clone = round_trip(netlist)
    assert set(clone.flops) == set(netlist.flops)
    assert clone.flops["ff0"].clock == "clk"


def test_round_trip_scan_cells():
    netlist, _ = insert_scan(s27(), num_chains=1)
    clone = round_trip(netlist)
    for name, flop in netlist.flops.items():
        assert clone.flops[name].scan_in == flop.scan_in
        assert clone.flops[name].scan_enable == flop.scan_enable


def test_round_trip_alu():
    netlist = alu_slice(4)
    clone = round_trip(netlist)
    assert clone.stats().num_gates == netlist.stats().num_gates


def test_round_trip_latch_and_ram():
    builder = NetlistBuilder("seq")
    clk = builder.clock("clk")
    en = builder.input("en")
    d = builder.input("d")
    lq = builder.latch(d, clk, name="lat0")
    addr = builder.inputs("a", 2)
    builder.ram(clk, en, addr, [lq, d], name="ram0")
    netlist = builder.build()
    clone = round_trip(netlist)
    assert "lat0" in clone.latches
    assert "ram0" in clone.rams
    assert clone.rams["ram0"].width == 2


def test_reader_rejects_garbage():
    with pytest.raises(NetlistError):
        read_verilog("this is not verilog;")


def test_reader_rejects_unknown_cell():
    text = """
    module bad (a, y);
      input a;
      output y;
      FOO u1 (.A(a), .Y(y));
    endmodule
    """
    with pytest.raises(NetlistError):
        read_verilog(text)


def test_comments_ignored():
    text = """
    // header comment
    module t (a, y);
      input a;  // an input
      output y;
      BUF u1 (.A(a), .Y(y));
    endmodule
    """
    netlist = read_verilog(text)
    assert set(netlist.inputs) == {"a"}
    assert "u1" in netlist.gates
