"""STIL round trip: parse_pattern_text is the inverse of export_stil."""

from __future__ import annotations

import pytest

from repro.api import TestSession
from repro.atpg import AtpgOptions
from repro.clocking import CapturePulse, NamedCaptureProcedure
from repro.logic import Logic
from repro.patterns import PatternSet, TestPattern, export_stil, parse_pattern_text

CHEAP = AtpgOptions(
    random_pattern_batches=1, patterns_per_batch=16, backtrack_limit=10,
)


@pytest.fixture(scope="module")
def exported_session():
    session = TestSession.for_design("tiny", options=CHEAP)
    session.add_scenario("table1-c", export_patterns=True)
    session.run()
    return session


class TestRoundTrip:
    def test_reexport_is_byte_identical(self, exported_session):
        session = exported_session
        prepared = session.prepared
        text = session.exported_patterns("table1-c")
        parsed = parse_pattern_text(text, prepared.scan)
        again = export_stil(
            parsed, prepared.scan, prepared.occ, design_name=prepared.netlist.name
        )
        assert again == text

    def test_structural_equivalence(self, exported_session):
        session = exported_session
        prepared = session.prepared
        original = session.artifacts["table1-c"].patterns
        parsed = parse_pattern_text(
            session.exported_patterns("table1-c"), prepared.scan
        )
        assert len(parsed) == len(original)
        for mine, theirs in zip(parsed, original.patterns()):
            assert mine.procedure.name == theirs.procedure.name
            assert mine.procedure.pulses == theirs.procedure.pulses
            assert mine.expected_unload == theirs.expected_unload
            # Exported loads are X-filled with 0; the parsed load must agree
            # on every care bit the original specified.
            for cell, value in theirs.scan_load.items():
                if value.is_known:
                    assert mine.scan_load[cell] is value

    def test_existing_procedures_are_reused_by_name(self, exported_session):
        session = exported_session
        prepared = session.prepared
        text = session.exported_patterns("table1-c")
        original = session.artifacts["table1-c"].patterns
        procedures = {p.procedure for p in original.patterns()}
        parsed = parse_pattern_text(text, prepared.scan, procedures=list(procedures))
        by_name = {p.name: p for p in procedures}
        for pattern in parsed:
            assert pattern.procedure is by_name[pattern.procedure.name]


class TestParserDetails:
    def _tiny_export(self, prepared, patterns):
        return export_stil(
            patterns, prepared.scan, prepared.occ, design_name=prepared.netlist.name
        )

    def test_procedure_reconstruction_from_describe(self, exported_session):
        prepared = exported_session.prepared
        procedure = NamedCaptureProcedure(
            name="mixed",
            pulses=(
                CapturePulse.of("fast", at_speed=False),
                CapturePulse.of("fast", "slow"),
            ),
        )
        chain = prepared.scan.chains[0]
        pattern = TestPattern(
            procedure=procedure,
            scan_load={cell: Logic.ZERO for cell in chain.cells},
            pi_frames=[{"reset": Logic.ZERO}, {"reset": Logic.ZERO}],
        )
        text = self._tiny_export(prepared, PatternSet([pattern]))
        parsed = parse_pattern_text(text, prepared.scan)
        assert len(parsed) == 1
        rebuilt = parsed[0].procedure
        assert rebuilt.name == "mixed"
        assert rebuilt.pulses == procedure.pulses
        assert self._tiny_export(prepared, parsed) == text

    def test_undeclared_procedure_rejected(self, exported_session):
        prepared = exported_session.prepared
        text = (
            "STIL 1.0; // test\n"
            "PatternBurst all_patterns {\n"
            "  Pattern p0 {\n"
            "    Call ghost_procedure;\n"
            "  }\n"
            "}\n"
        )
        with pytest.raises(ValueError, match="undeclared procedure"):
            parse_pattern_text(text, prepared.scan)

    def test_wrong_chain_length_rejected(self, exported_session):
        session = exported_session
        prepared = session.prepared
        text = session.exported_patterns("table1-c")
        chain = prepared.scan.chains[0]
        needle = f"{chain.scan_in}="
        broken_lines = []
        truncated_once = False
        for line in text.splitlines():
            if not truncated_once and line.strip().startswith(needle):
                head, _, rest = line.partition("=")
                load, _, tail = rest.partition(";")
                broken_lines.append(f"{head}={load[:-1]};{tail}")
                truncated_once = True
            else:
                broken_lines.append(line)
        with pytest.raises(ValueError, match="expects"):
            parse_pattern_text("\n".join(broken_lines), prepared.scan)
