"""Engine result-cache maintenance: stats() and prune(max_bytes=...)."""

from __future__ import annotations

import os
import time

import pytest

from repro.engine import ResultCache


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def fill(cache: ResultCache, count: int, payload_bytes: int = 512) -> list[str]:
    """Store ``count`` entries with distinct mtimes (oldest first)."""
    keys = []
    for index in range(count):
        key = f"{index:02d}" + "a" * 62
        assert cache.put(key, b"x" * payload_bytes, label=f"entry-{index}")
        payload_path = cache._entry_paths(key)[0]
        # Deterministic, strictly increasing mtimes without sleeping.
        stamp = time.time() - (count - index) * 60
        os.utime(payload_path, (stamp, stamp))
        keys.append(key)
    return keys


class TestStats:
    def test_empty_store(self, cache):
        stats = cache.stats()
        assert stats["entries"] == 0
        assert stats["payload_bytes"] == 0
        assert stats["oldest_mtime"] is None

    def test_counts_bytes_and_labels(self, cache):
        fill(cache, 3)
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["payload_bytes"] > 0
        assert set(stats["labels"]) == {"entry-0", "entry-1", "entry-2"}
        assert stats["oldest_mtime"] <= stats["newest_mtime"]
        assert stats["root"] == str(cache.root)


class TestPrune:
    def test_noop_when_under_budget(self, cache):
        fill(cache, 3)
        before = cache.stats()["payload_bytes"]
        outcome = cache.prune(max_bytes=before)
        assert outcome["removed"] == 0
        assert outcome["remaining_bytes"] == before
        assert cache.stats()["entries"] == 3

    def test_evicts_oldest_first(self, cache):
        keys = fill(cache, 4)
        total = cache.stats()["payload_bytes"]
        per_entry = total // 4
        outcome = cache.prune(max_bytes=total - per_entry)  # one must go
        assert outcome["removed"] == 1
        assert not cache.contains(keys[0]), "oldest entry survives the prune"
        assert all(cache.contains(key) for key in keys[1:])
        # Sidecar metadata goes with the payload.
        assert not cache._entry_paths(keys[0])[1].is_file()

    def test_prune_to_zero_clears_everything(self, cache):
        keys = fill(cache, 3)
        outcome = cache.prune(max_bytes=0)
        assert outcome["removed"] == 3
        assert outcome["remaining_entries"] == 0
        assert outcome["remaining_bytes"] == 0
        assert not any(cache.contains(key) for key in keys)
        assert cache.stats()["entries"] == 0

    def test_pruned_entries_read_as_misses(self, cache):
        keys = fill(cache, 2)
        cache.prune(max_bytes=0)
        assert cache.get(keys[0]) is None
        # The store keeps working after a prune.
        assert cache.put(keys[0], {"fresh": True}, label="again")
        assert cache.get(keys[0]) == {"fresh": True}

    def test_rejects_negative_budget(self, cache):
        with pytest.raises(ValueError, match="non-negative"):
            cache.prune(max_bytes=-1)

    def test_missing_root_is_harmless(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.prune(max_bytes=0) == {
            "removed": 0,
            "freed_bytes": 0,
            "remaining_entries": 0,
            "remaining_bytes": 0,
        }


class TestNamespaces:
    def test_namespaced_handles_share_the_root_but_not_entries(self, cache):
        alpha = cache.namespaced("tenant-alpha")
        beta = cache.namespaced("tenant-beta")
        key = "ab" + "c" * 62
        alpha.put(key, {"who": "alpha"})
        assert alpha.get(key) == {"who": "alpha"}
        assert beta.get(key) is None
        assert cache.get(key) is None  # root scope excludes namespaces' keys

    def test_invalid_namespace_rejected(self, cache):
        with pytest.raises(ValueError, match="illegal cache namespace"):
            cache.namespaced("../escape")
        # Two-hex-char names collide with the payload bucket layout.
        with pytest.raises(ValueError, match="bucket"):
            cache.namespaced("ab")

    def test_stats_reports_per_namespace_usage(self, cache):
        fill(cache, 2)  # root-scope entries
        alpha = cache.namespaced("tenant-alpha")
        alpha.put("aa" + "x" * 62, b"y" * 1024)
        stats = cache.stats()
        assert stats["entries"] == 3
        spaces = stats["namespaces"]
        assert spaces[""]["entries"] == 2
        assert spaces["tenant-alpha"]["entries"] == 1
        assert spaces["tenant-alpha"]["payload_bytes"] >= 1024
        # A namespaced handle's own stats see only its scope.
        scoped = alpha.stats()
        assert scoped["entries"] == 1
        assert scoped["namespace"] == "tenant-alpha"

    def test_scoped_prune_leaves_other_namespaces_alone(self, cache):
        alpha = cache.namespaced("tenant-alpha")
        beta = cache.namespaced("tenant-beta")
        alpha.put("aa" + "x" * 62, b"a" * 512)
        beta.put("bb" + "y" * 62, b"b" * 512)
        outcome = alpha.prune(max_bytes=0)
        assert outcome["removed"] == 1
        assert alpha.stats()["entries"] == 0
        assert beta.stats()["entries"] == 1

    def test_root_prune_covers_namespaces_too(self, cache):
        fill(cache, 1)
        cache.namespaced("tenant-alpha").put("aa" + "x" * 62, b"a" * 512)
        outcome = cache.prune(max_bytes=0)
        assert outcome["removed"] == 2
        assert cache.stats()["entries"] == 0
