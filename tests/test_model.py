"""Unit tests for the flattened circuit model."""

from repro.circuits import s27, two_domain_crossing
from repro.dft import insert_scan
from repro.netlist import NetlistBuilder
from repro.simulation import NodeKind, build_model


def test_c17_model_structure(c17_model):
    kinds = [node.kind for node in c17_model.nodes]
    assert kinds.count(NodeKind.PI) == 5
    assert kinds.count(NodeKind.GATE) == 6
    assert len(c17_model.po_nodes) == 2
    assert c17_model.max_level >= 2


def test_topological_property(c17_model):
    for node in c17_model.nodes:
        for src in node.fanin:
            assert src < node.index


def test_fanout_is_inverse_of_fanin(c17_model):
    for node in c17_model.nodes:
        for src in node.fanin:
            assert node.index in c17_model.fanout[src]


def test_state_elements_link_d_and_q():
    netlist = s27()
    model = build_model(netlist)
    assert len(model.state_elements) == 3
    for element in model.state_elements:
        assert model.nodes[element.q_node].kind is NodeKind.PPI
        assert element.d_node is not None


def test_clock_nets_excluded_from_pis():
    netlist = s27()
    model = build_model(netlist)
    nets = {model.nodes[idx].net for idx in model.pi_nodes}
    assert "clk" not in nets
    assert "G0" in nets


def test_clock_as_input_when_requested():
    netlist = s27()
    model = build_model(netlist, treat_clocks_as_inputs=True)
    nets = {model.nodes[idx].net for idx in model.pi_nodes}
    assert "clk" in nets


def test_ram_outputs_become_ram_nodes():
    builder = NetlistBuilder("ram")
    clk = builder.clock("clk")
    we = builder.input("we")
    addr = builder.inputs("a", 2)
    din = builder.inputs("d", 2)
    dout = builder.ram(clk, we, addr, din)
    for index, net in enumerate(dout):
        builder.output_from(net, f"q_{index}")
    model = build_model(builder.build())
    assert len(model.ram_out_nodes) == 2
    for idx in model.ram_out_nodes:
        assert model.nodes[idx].kind is NodeKind.RAM_OUT


def test_transitive_fanout_and_fanin(c17_model):
    pi = c17_model.node_of_net["N3"]
    cone = c17_model.transitive_fanout(pi)
    assert cone  # N3 reaches gates
    po = c17_model.node_of_net["N22"]
    assert po in cone or po in c17_model.transitive_fanout(pi)
    fanin = c17_model.transitive_fanin(po)
    assert pi in fanin


def test_observation_nodes_defaults():
    netlist, _ = insert_scan(s27(), num_chains=1)
    model = build_model(netlist)
    obs = model.observation_nodes()
    assert obs
    po_only = model.observation_nodes(observe_flops=False)
    assert set(po_only) <= set(obs)


def test_levels_grouping(c17_model):
    levels = c17_model.levels()
    assert sum(len(bucket) for bucket in levels) == c17_model.num_nodes
    for level, bucket in enumerate(levels):
        for idx in bucket:
            assert c17_model.nodes[idx].level == level


def test_multi_domain_state_elements():
    netlist = two_domain_crossing(4)
    model = build_model(netlist)
    clocks = {e.clock for e in model.state_elements}
    assert clocks == {"clk_a", "clk_b"}
