"""Executor semantics: events, skipping, pruning, cancellation, retry, spill.

These tests drive the executor with cheap synthetic job kinds (registered
below at module level, so forked process-pool workers resolve them too);
the heavyweight scenario/diagnosis kinds are covered by the equivalence
suite and the API tests.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine.cache import ResultCache
from repro.runtime import (
    EXECUTOR_BACKENDS,
    Event,
    Executor,
    Job,
    Plan,
    PlanCancelled,
    register_job_kind,
)


# --------------------------------------------------------------------------
# Synthetic job kinds
# --------------------------------------------------------------------------
@register_job_kind("echo")
def _echo(resources, params, deps):
    return params.get("value")


@register_job_kind("sum-deps")
def _sum_deps(resources, params, deps):
    return params.get("base", 0) + sum(deps.values())


@register_job_kind("flaky")
def _flaky(resources, params, deps):
    counter = resources.setdefault("attempts", {"n": 0})
    counter["n"] += 1
    if counter["n"] < params["succeed_on"]:
        raise RuntimeError(f"attempt {counter['n']} failed")
    return counter["n"]


@register_job_kind("boom")
def _boom(resources, params, deps):
    raise RuntimeError("boom")


@register_job_kind("unpicklable")
def _unpicklable(resources, params, deps):
    return lambda: params["value"]  # lambdas cannot cross a process boundary


@register_job_kind("sleep")
def _sleep(resources, params, deps):
    time.sleep(params["seconds"])
    return params["seconds"]


def echo_plan(count: int = 3, *, keys: bool = False, name: str = "echo-plan") -> Plan:
    return Plan(
        name=name,
        jobs=tuple(
            Job(
                id=f"echo:{i}", kind="echo", params={"value": i},
                cache_key=f"{name}-key-{i}" if keys else None,
            )
            for i in range(count)
        ),
    )


# --------------------------------------------------------------------------
# Scheduling + events
# --------------------------------------------------------------------------
class TestExecutionBasics:
    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_values_identical_on_every_backend(self, backend):
        result = Executor(backend=backend).execute(echo_plan(5))
        assert [result.value_of(f"echo:{i}") for i in range(5)] == list(range(5))
        assert result.backend == backend
        assert not result.cancelled and not result.fallbacks

    def test_dependency_values_flow_between_waves(self):
        plan = Plan(
            name="waves",
            jobs=(
                Job(id="a", kind="echo", params={"value": 2}),
                Job(id="b", kind="echo", params={"value": 3}),
                Job(id="total", kind="sum-deps", params={"base": 10},
                    deps=("a", "b")),
            ),
        )
        result = Executor(backend="threads").execute(plan)
        assert result.value_of("total") == 15

    def test_event_stream_shape(self):
        events: list[Event] = []
        Executor(on_event=events.append).execute(echo_plan(2))
        kinds = [event.kind for event in events]
        assert kinds == [
            "plan_started",
            "job_started", "job_finished", "plan_progress",
            "job_started", "job_finished", "plan_progress",
            "plan_finished",
        ]
        assert events[2].completed == 1 and events[2].total == 2
        finished = [e for e in events if e.kind == "job_finished"]
        assert [e.value for e in finished] == [0, 1]
        assert all(event.describe() for event in events)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            Executor(backend="warp-drive")

    def test_pool_knob_validation_shares_the_common_message(self):
        with pytest.raises(ValueError, match=r"workers must be a positive integer \(got 0\)"):
            Executor(backend="threads", max_workers=0)

    def test_job_failure_propagates_after_job_failed_event(self):
        events: list[Event] = []
        plan = Plan(name="fail", jobs=(Job(id="x", kind="boom"),))
        with pytest.raises(RuntimeError, match="boom"):
            Executor(on_event=events.append).execute(plan)
        assert any(e.kind == "job_failed" and e.job == "x" for e in events)


class TestRetries:
    def test_job_level_retries_rerun_next_to_the_work(self):
        plan = Plan(
            name="retry",
            jobs=(Job(id="f", kind="flaky", params={"succeed_on": 3}, retries=2),),
        )
        result = Executor().execute(plan, {"attempts": {"n": 0}})
        assert result["f"].value == 3
        assert result["f"].attempts == 3

    def test_executor_default_retries_apply_when_job_pins_none(self):
        plan = Plan(name="retry", jobs=(Job(id="f", kind="flaky",
                                            params={"succeed_on": 2}),))
        with pytest.raises(RuntimeError):
            Executor().execute(plan, {"attempts": {"n": 0}})
        result = Executor(retries=1).execute(plan, {"attempts": {"n": 0}})
        assert result["f"].attempts == 2


# --------------------------------------------------------------------------
# Cache-aware skipping, seeds, pruning
# --------------------------------------------------------------------------
class TestSkipping:
    def test_cache_hits_skip_jobs_and_misses_store(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = echo_plan(3, keys=True)
        first = Executor(cache=cache).execute(plan)
        assert first.executed() == ["echo:0", "echo:1", "echo:2"]
        second = Executor(cache=cache).execute(plan)
        assert second.executed() == []
        assert second.skipped("cache") == ["echo:0", "echo:1", "echo:2"]
        assert [second.value_of(f"echo:{i}") for i in range(3)] == [0, 1, 2]

    def test_seeds_short_circuit_like_cache_hits(self):
        result = Executor().execute(echo_plan(2), seeds={"echo:1": 99})
        assert result["echo:1"].skipped and result["echo:1"].reason == "seed"
        assert result.value_of("echo:1") == 99
        assert result.executed() == ["echo:0"]

    def test_if_needed_provider_pruned_when_consumers_satisfied(self):
        plan = Plan(
            name="prune",
            jobs=(
                Job(id="provider", kind="echo", params={"value": 1}, if_needed=True),
                Job(id="consumer", kind="sum-deps", deps=("provider",),
                    cache_key="prune-consumer"),
            ),
        )
        events: list[Event] = []
        result = Executor(on_event=events.append).execute(
            plan, seeds={"consumer": 41}
        )
        assert result["provider"].reason == "unneeded"
        assert result.executed() == []
        skip_reasons = {e.job: e.reason for e in events if e.kind == "job_skipped"}
        assert skip_reasons == {"consumer": "seed", "provider": "unneeded"}

    def test_executor_attached_cache_works_without_plan_level_cache(self, tmp_path):
        """A cache configured on the Executor itself must not be inert."""
        cache = ResultCache(tmp_path)
        plan = echo_plan(3, keys=True, name="executor-cache")
        first = Executor(cache=cache).execute(plan)
        assert len(first.executed()) == 3
        second = Executor(cache=cache).execute(plan)
        assert second.skipped("cache") == ["echo:0", "echo:1", "echo:2"]

    def test_cached_provider_pruned_without_touching_its_cache_entry(self, tmp_path):
        """Prune wins over probe: a provider whose consumers are all cached
        must be skipped as 'unneeded', never deserialized from the cache."""
        cache = ResultCache(tmp_path)
        plan = Plan(
            name="warm",
            jobs=(
                Job(id="provider", kind="echo", params={"value": 1},
                    cache_key="warm-provider", if_needed=True),
                Job(id="consumer", kind="sum-deps", deps=("provider",),
                    cache_key="warm-consumer"),
            ),
        )
        Executor(cache=cache).execute(plan)  # cold: both stored
        warm = Executor(cache=cache).execute(plan)
        assert warm["consumer"].reason == "cache"
        assert warm["provider"].reason == "unneeded"
        assert warm["provider"].value is None

    def test_pooled_failure_blames_the_job_that_raised(self):
        plan = Plan(
            name="blame",
            jobs=(
                Job(id="slow-ok", kind="sleep", params={"seconds": 0.2}),
                Job(id="fast-boom", kind="boom"),
            ),
        )
        events: list[Event] = []
        with pytest.raises(RuntimeError, match="boom"):
            Executor(backend="threads", on_event=events.append).execute(plan)
        failed = [e for e in events if e.kind == "job_failed"]
        assert [e.job for e in failed] == ["fast-boom"]

    def test_if_needed_provider_runs_when_a_consumer_must_run(self):
        plan = Plan(
            name="needed",
            jobs=(
                Job(id="provider", kind="echo", params={"value": 21}, if_needed=True),
                Job(id="consumer", kind="sum-deps", deps=("provider",)),
            ),
        )
        result = Executor().execute(plan)
        assert result.value_of("consumer") == 21
        assert set(result.executed()) == {"provider", "consumer"}


# --------------------------------------------------------------------------
# Cancellation + kill-and-resume
# --------------------------------------------------------------------------
class TestCancellation:
    def test_unknown_job_lookup_is_a_key_error_not_cancellation(self):
        result = Executor().execute(echo_plan(2))
        with pytest.raises(KeyError, match="has no job 'typo'"):
            result["typo"]
        with pytest.raises(KeyError):
            result.value_of("typo")

    def test_cancel_from_event_callback_stops_scheduling(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = Executor(cache=cache)
        seen: list[str] = []

        def killer(event: Event) -> None:
            if event.kind == "job_finished":
                seen.append(event.job)
                if len(seen) == 2:
                    executor.cancel()

        plan = echo_plan(5, keys=True, name="killable")
        result = executor.execute(plan, on_event=killer)
        assert result.cancelled
        assert len(result.results) == 2
        with pytest.raises(PlanCancelled, match="echo:4"):
            result["echo:4"]

    def test_kill_and_resume_reruns_zero_completed_jobs(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = Executor(cache=cache)

        def killer(event: Event) -> None:
            if event.kind == "job_finished" and event.job == "echo:1":
                executor.cancel()

        plan = echo_plan(5, keys=True, name="resumable")
        first = executor.execute(plan, on_event=killer)
        assert first.cancelled and len(first.results) == 2

        # Fresh executor, same cache: the completed prefix must be served
        # entirely from the cache — zero re-runs — and only the remainder
        # executes.
        resumed = Executor(cache=cache).execute(plan)
        assert not resumed.cancelled
        assert resumed.skipped("cache") == ["echo:0", "echo:1"]
        assert resumed.executed() == ["echo:2", "echo:3", "echo:4"]
        assert [resumed.value_of(f"echo:{i}") for i in range(5)] == list(range(5))

    def test_processes_cancel_mid_wave_leaves_no_orphans(self):
        """Cancelling while a process wave is in flight must retire the pool
        (no orphaned workers) and close the event stream with exactly one
        plan_finished."""
        executor = Executor(backend="processes", max_workers=2)
        events: list[Event] = []

        def killer(event: Event) -> None:
            events.append(event)
            if event.kind == "job_finished":
                executor.cancel()

        plan = Plan(
            name="mid-wave-cancel",
            jobs=tuple(
                Job(id=f"nap:{i}", kind="sleep", params={"seconds": 0.3})
                for i in range(8)
            ),
        )
        result = executor.execute(plan, on_event=killer)
        assert result.cancelled
        assert len(result.results) < 8
        finishes = [e for e in events if e.kind == "plan_finished"]
        assert len(finishes) == 1
        assert finishes[-1] is events[-1]
        # The pool is gone: no live process-pool children remain.
        import multiprocessing

        for _ in range(50):
            if not multiprocessing.active_children():
                break
            time.sleep(0.1)
        assert not multiprocessing.active_children()
        # Starts never exceed finishes+fails by more than the cancelled tail,
        # and every started job either finished or was abandoned cleanly.
        started = {e.job for e in events if e.kind == "job_started"}
        finished = {e.job for e in events if e.kind == "job_finished"}
        assert finished <= started


# --------------------------------------------------------------------------
# Spill fallback + cache concurrency
# --------------------------------------------------------------------------
class TestSpill:
    def test_unpicklable_results_spill_to_threads_and_are_recorded(self):
        plan = Plan(
            name="spill",
            jobs=tuple(
                Job(id=f"fn:{i}", kind="unpicklable", params={"value": i})
                for i in range(3)
            ),
        )
        events: list[Event] = []
        with pytest.warns(RuntimeWarning, match="falling back to the threads backend"):
            result = Executor(backend="processes", max_workers=2).execute(
                plan, on_event=events.append
            )
        assert [result.value_of(f"fn:{i}")() for i in range(3)] == [0, 1, 2]
        assert result.fallbacks and result.fallbacks[0]["requested"] == "processes"
        assert result.fallbacks[0]["used"] == "threads"
        # Starts pair 1:1 with finishes even across the spill — the fallback
        # wave must not announce jobs a second time.
        starts = [e.job for e in events if e.kind == "job_started"]
        assert sorted(starts) == sorted(j.id for j in plan.jobs)

    def test_pooled_wall_seconds_exclude_queue_wait(self):
        plan = Plan(
            name="timing",
            jobs=tuple(
                Job(id=f"nap:{i}", kind="sleep", params={"seconds": 0.05})
                for i in range(4)
            ),
        )
        result = Executor(backend="threads", max_workers=1).execute(plan)
        # With one worker the wave takes ~0.2s wall; each job's own time
        # must stay ~0.05s (measured at the work, not from wave submission).
        for i in range(4):
            assert result[f"nap:{i}"].wall_seconds < 0.15


class TestEventSinks:
    def test_sinks_see_every_event_and_detach_cleanly(self):
        executor = Executor()
        seen: list[str] = []
        token = executor.add_event_sink(lambda e: seen.append(e.kind))
        executor.execute(echo_plan(2))
        assert seen[0] == "plan_started" and seen[-1] == "plan_finished"
        count = len(seen)
        assert executor.remove_event_sink(token)
        assert not executor.remove_event_sink(token)  # idempotent
        executor.execute(echo_plan(2))
        assert len(seen) == count  # detached sinks observe nothing

    def test_sink_detached_mid_run_stops_observing(self):
        executor = Executor()
        kinds: list[str] = []
        token = executor.add_event_sink(lambda e: kinds.append(e.kind))

        def detach(event: Event) -> None:
            if event.kind == "job_finished":
                executor.remove_event_sink(token)

        executor.execute(echo_plan(3), on_event=detach)
        # Detachment applies to the very event that triggered it: listeners
        # run before the sink snapshot, so nothing past the detach point —
        # including that first job_finished — reaches the sink.
        assert kinds == ["plan_started", "job_started"]

    def test_raising_sink_never_fails_the_run(self):
        executor = Executor()

        def broken(event: Event) -> None:
            raise RuntimeError("observer crashed")

        executor.add_event_sink(broken)
        result = executor.execute(echo_plan(3))
        assert [result.value_of(f"echo:{i}") for i in range(3)] == [0, 1, 2]


class TestCacheConcurrency:
    def test_concurrent_prune_and_stats_under_threads_executor(self, tmp_path):
        """ResultCache maintenance must be safe while an executor writes."""
        cache = ResultCache(tmp_path)
        stop = threading.Event()
        failures: list[BaseException] = []

        def churn() -> None:
            while not stop.is_set():
                try:
                    cache.stats()
                    cache.prune(max_bytes=256)
                except BaseException as exc:  # pragma: no cover - the assertion
                    failures.append(exc)
                    return
                time.sleep(0.001)

        thread = threading.Thread(target=churn)
        thread.start()
        try:
            for round_index in range(3):
                plan = echo_plan(8, keys=True, name=f"churn-{round_index}")
                result = Executor(backend="threads", cache=cache).execute(plan)
                assert len(result.results) == 8
        finally:
            stop.set()
            thread.join()
        assert not failures
        stats = cache.stats()
        assert stats["entries"] == len(cache.entries())
