"""Tests for the DelayTestFlow wrapper and figure-level waveform helpers."""

import pytest

from repro.atpg import AtpgOptions
from repro.clocking import figure2_waveform
from repro.core import DelayTestFlow


@pytest.fixture(scope="module")
def quick_flow():
    options = AtpgOptions(random_pattern_batches=2, patterns_per_batch=24, backtrack_limit=10)
    return DelayTestFlow(size=1, seed=17, num_chains=4, options=options)


class TestDelayTestFlow:
    def test_run_single_experiment_and_cache(self, quick_flow):
        first = quick_flow.run_experiment("a")
        assert quick_flow.results["a"] is first
        assert first.coverage.detected > 0

    def test_run_all_reuses_cached_results(self, quick_flow):
        cached = quick_flow.results.get("a")
        results = quick_flow.run_all(keys=("a", "c"))
        assert results["a"] is cached or cached is None
        assert set(results) >= {"a", "c"}

    def test_table_formatting_from_flow(self, quick_flow):
        quick_flow.run_all(keys=("a", "c"))
        table = quick_flow.table1()
        assert "Stuck-at" in table
        assert "%" in table


class TestFigure2Waveform:
    def test_waveform_has_per_domain_bursts(self, tiny_prepared):
        domains = tiny_prepared.soc.functional_domains
        waveform = figure2_waveform(domains, shift_cycles=4, pulses_per_domain=2)
        assert "scan_clk" in waveform.signals()
        assert "scan_en" in waveform.signals()
        for domain in domains:
            assert waveform[f"clk_{domain.name}"].count_pulses() == 2

    def test_scan_enable_frames_the_capture_window(self, tiny_prepared):
        domains = tiny_prepared.soc.functional_domains
        waveform = figure2_waveform(domains, shift_cycles=4)
        scan_en = waveform["scan_en"]
        fall = scan_en.falling_edges()[0]
        rise = scan_en.rising_edges()[0]
        assert fall < rise
        for domain in domains:
            for pulse in waveform[f"clk_{domain.name}"].pulses():
                assert fall < pulse.start < rise

    def test_pulse_spacing_tracks_frequency(self, tiny_prepared):
        domains = sorted(tiny_prepared.soc.functional_domains, key=lambda d: d.frequency_mhz)
        waveform = figure2_waveform(domains)
        slow, fast = domains[0], domains[-1]
        slow_edges = waveform[f"clk_{slow.name}"].rising_edges()
        fast_edges = waveform[f"clk_{fast.name}"].rising_edges()
        assert (fast_edges[1] - fast_edges[0]) < (slow_edges[1] - slow_edges[0])

    def test_ascii_rendering_works(self, tiny_prepared):
        domains = tiny_prepared.soc.functional_domains
        waveform = figure2_waveform(domains)
        art = waveform.to_ascii(width=60)
        assert len(art.splitlines()) == len(waveform.signals())
