"""Unit tests for the fault classifier (undetected-fault grouping)."""

import pytest

from repro.clocking import ClockDomain, ClockDomainMap
from repro.dft import insert_scan
from repro.faults import (
    ClassifierContext,
    FaultClassifier,
    FaultList,
    FaultSite,
    TransitionFault,
    TransitionKind,
)
from repro.logic import Logic
from repro.netlist import NetlistBuilder
from repro.simulation import build_model


@pytest.fixture()
def classified_design():
    """A design containing one example of every structural blockage."""
    builder = NetlistBuilder("cls")
    clk_a = builder.clock("clk_a")
    clk_b = builder.clock("clk_b")
    tck = builder.clock("tck")
    builder.input("reset")
    d = builder.inputs("d", 4)

    # Domain-a registers feeding domain-a logic (normal faults).
    a_regs = [builder.flop(net, clk_a, name=f"a_ff_{i}") for i, net in enumerate(d)]
    a_logic = builder.and_([a_regs[0], a_regs[1]], output="a_logic")
    builder.flop(a_logic, clk_a, name="a_cap")

    # Cross-domain: domain-a registers feeding a domain-b capture flop.
    x_logic = builder.xor([a_regs[2], a_regs[3]], output="x_logic")
    builder.flop(x_logic, clk_b, name="b_cap")

    # Non-scan shadow: a non-scan flop feeding domain-a logic.
    ns_q = builder.flop(d[0], clk_a, name="ns_ff", scannable=False)
    ns_logic = builder.or_([ns_q, a_regs[0]], output="ns_logic")
    builder.flop(ns_logic, clk_a, name="ns_cap")

    # RAM shadow: RAM output feeding logic.
    ram_out = builder.ram(clk_b, builder.input("we"), [a_regs[0]], [a_regs[1]], name="ram0")
    ram_logic = builder.and_([ram_out[0], a_regs[2]], output="ram_logic")
    builder.flop(ram_logic, clk_b, name="ram_cap")

    # Test-controller logic captured only by the tck domain.
    tc_logic = builder.nor([a_regs[0], a_regs[1]], output="tc_logic")
    builder.flop(tc_logic, tck, name="tc_cap")

    netlist, scan = insert_scan(builder.build(), num_chains=2,
                                exclude=("ns_ff",), group_by_clock=True)
    model = build_model(netlist)
    domain_map = ClockDomainMap.from_netlist(
        netlist,
        [ClockDomain("a", "clk_a", 150.0), ClockDomain("b", "clk_b", 75.0),
         ClockDomain("tc", "tck", 10.0)],
    )
    context = ClassifierContext(
        netlist=netlist,
        model=model,
        domain_map=domain_map,
        at_speed_domains=frozenset({"a", "b"}),
        inter_domain_allowed=False,
        observe_pos=False,
        scan_enable_net=scan.scan_enable,
        scan_enable_constrained=True,
        constrained_pins={"reset": Logic.ZERO},
        ram_sequential=False,
        max_pulses=2,
    )
    return netlist, model, FaultClassifier(context)


def str_fault_at(model, net):
    return TransitionFault(site=FaultSite(node=model.node_of_net[net]),
                           kind=TransitionKind.SLOW_TO_RISE)


def test_cross_domain_group(classified_design):
    netlist, model, classifier = classified_design
    assert classifier.classify_fault(str_fault_at(model, "x_logic")) == "cross-domain"


def test_non_scan_shadow_group(classified_design):
    netlist, model, classifier = classified_design
    assert classifier.classify_fault(str_fault_at(model, "ns_logic")) == "non-scan-shadow"


def test_ram_shadow_group(classified_design):
    netlist, model, classifier = classified_design
    assert classifier.classify_fault(str_fault_at(model, "ram_logic")) == "ram-shadow"


def test_outside_at_speed_domains_group(classified_design):
    netlist, model, classifier = classified_design
    assert classifier.classify_fault(str_fault_at(model, "tc_logic")) == "outside-at-speed-domains"


def test_scan_path_group(classified_design):
    netlist, model, classifier = classified_design
    # A scan mux's scan-data pin fault (pin 2 of the MUX inserted for a_ff_0).
    mux_gate = None
    for node in model.nodes:
        if node.instance == "a_ff_0_scan_mux":
            mux_gate = node
            break
    assert mux_gate is not None
    fault = TransitionFault(site=FaultSite(node=mux_gate.index, pin=2),
                            kind=TransitionKind.SLOW_TO_RISE)
    assert classifier.classify_fault(fault) == "scan-path"


def test_normal_fault_unclassified(classified_design):
    netlist, model, classifier = classified_design
    assert classifier.classify_fault(str_fault_at(model, "a_logic")) == "unclassified"


def test_classify_list_skips_detected(classified_design):
    netlist, model, classifier = classified_design
    faults = [str_fault_at(model, "a_logic"), str_fault_at(model, "x_logic")]
    fault_list = FaultList(faults)
    fault_list.mark_detected(faults[0])
    histogram = classifier.classify_list(fault_list)
    assert histogram == {"cross-domain": 1}
    assert fault_list.record(faults[0]).group is None
