"""Unit tests for the stuck-at fault simulator."""

import itertools

from repro.faults import FaultSite, StuckAtFault, all_stuck_at_faults, collapse_faults
from repro.fault_sim import StuckAtFaultSimulator, propagate_fault_packed
from repro.logic import Logic
from repro.simulation import build_model, pack_patterns, simulate, simulate_packed
from repro.circuits import ripple_adder


def all_input_patterns(model):
    """Every 0/1 assignment over the model's primary inputs."""
    pis = model.pi_nodes
    patterns = []
    for bits in itertools.product((Logic.ZERO, Logic.ONE), repeat=len(pis)):
        patterns.append(dict(zip(pis, bits)))
    return patterns


def brute_force_detects(model, pattern, fault):
    """Reference detection check: full faulty re-simulation and PO compare."""
    # Emulate the fault by overriding evaluation through a modified model pass.
    # Use the packed engine for the faulty value and compare at POs.
    packed = simulate_packed(model, pack_patterns(model, [pattern]))
    mask = propagate_fault_packed(model, packed, fault, [idx for _, idx in model.po_nodes])
    return bool(mask & 1)


class TestC17Exhaustive:
    def test_exhaustive_coverage_is_complete(self, c17_model):
        """Every collapsed c17 stuck-at fault is detected by exhaustive patterns."""
        patterns = all_input_patterns(c17_model)
        faults = collapse_faults(c17_model, all_stuck_at_faults(c17_model)).representatives
        simulator = StuckAtFaultSimulator(c17_model)
        result = simulator.simulate(patterns, faults, drop_detected=True)
        undetected = [f for f, hits in result.detections.items() if not hits]
        assert undetected == []

    def test_single_known_detection(self, c17_model):
        # N1=N3=1 -> N10=0 (excites stuck-at-1); N2=0 -> N16=1 so the effect
        # propagates through N22 = NAND(N10, N16).
        pattern = {
            c17_model.node_of_net["N1"]: Logic.ONE,
            c17_model.node_of_net["N2"]: Logic.ZERO,
            c17_model.node_of_net["N3"]: Logic.ONE,
            c17_model.node_of_net["N6"]: Logic.ZERO,
            c17_model.node_of_net["N7"]: Logic.ZERO,
        }
        fault = StuckAtFault(site=FaultSite(node=c17_model.node_of_net["N10"]), value=1)
        simulator = StuckAtFaultSimulator(c17_model)
        assert simulator.detects(pattern, fault)

    def test_undetecting_pattern(self, c17_model):
        # With N1=0 and N3=0 the NAND output is forced to 1: a stuck-at-1 at
        # N10 cannot be excited.
        pattern = {idx: Logic.ZERO for idx in c17_model.pi_nodes}
        fault = StuckAtFault(site=FaultSite(node=c17_model.node_of_net["N10"]), value=1)
        simulator = StuckAtFaultSimulator(c17_model)
        assert not simulator.detects(pattern, fault)


class TestEngineDetails:
    def test_fault_dropping_reduces_work(self, c17_model):
        patterns = all_input_patterns(c17_model)[:8]
        faults = collapse_faults(c17_model, all_stuck_at_faults(c17_model)).representatives
        simulator = StuckAtFaultSimulator(c17_model)
        dropped = simulator.simulate(patterns, faults, drop_detected=True)
        kept = simulator.simulate(patterns, faults, drop_detected=False)
        for fault in faults:
            if dropped.detections[fault]:
                assert kept.detections[fault]
                assert len(kept.detections[fault]) >= len(dropped.detections[fault])

    def test_input_pin_fault_vs_output_fault(self):
        model = build_model(ripple_adder(2))
        # Pick a gate with fanout so branch and stem faults differ.
        target = None
        for node in model.nodes:
            if node.fanin and len(model.fanout[node.fanin[0]]) > 1:
                target = node
                break
        assert target is not None
        pin_fault = StuckAtFault(site=FaultSite(node=target.index, pin=0), value=0)
        stem_fault = StuckAtFault(site=FaultSite(node=target.fanin[0]), value=0)
        simulator = StuckAtFaultSimulator(model)
        patterns = all_input_patterns(model)
        res = simulator.simulate(patterns, [pin_fault, stem_fault], drop_detected=False)
        # The stem fault is detected at least as often as the branch fault.
        assert len(res.detections[stem_fault]) >= len(res.detections[pin_fault])

    def test_observation_restriction(self, c17_model):
        patterns = all_input_patterns(c17_model)
        fault = StuckAtFault(site=FaultSite(node=c17_model.node_of_net["N19"]), value=1)
        all_obs = StuckAtFaultSimulator(c17_model)
        # N19 only reaches N23; restricting observation to N22 hides it.
        only_n22 = StuckAtFaultSimulator(c17_model, observation=[c17_model.node_of_net["N22"]])
        assert all_obs.simulate(patterns, [fault]).detections[fault]
        assert not only_n22.simulate(patterns, [fault]).detections[fault]

    def test_batching_consistency(self, c17_model):
        patterns = all_input_patterns(c17_model)
        faults = collapse_faults(c17_model, all_stuck_at_faults(c17_model)).representatives
        small_batch = StuckAtFaultSimulator(c17_model, batch_size=5)
        big_batch = StuckAtFaultSimulator(c17_model, batch_size=256)
        a = small_batch.simulate(patterns, faults, drop_detected=True)
        b = big_batch.simulate(patterns, faults, drop_detected=True)
        assert {f for f, h in a.detections.items() if h} == {f for f, h in b.detections.items() if h}
