"""Unit tests for the hierarchical kernel compiler (PR-10 tentpole).

Small-scale, fast checks of the mechanics — kernel sharing, fingerprint
verification, non-closed demotion, the process-wide template cache.  The
large-scale bit-identity guarantees live in ``tests/test_hier_identity.py``.
"""

from __future__ import annotations

import random

from repro.circuits.hier_soc import build_hier_soc
from repro.dft import insert_scan
from repro.engine.compile import CompiledCircuit, compile_circuit
from repro.fault_sim import StuckAtFaultSimulator
from repro.faults import all_stuck_at_faults, collapse_faults
from repro.hier import compile as hier_compile
from repro.hier.compile import HierCompiledCircuit, shared_template_count
from repro.logic import Logic
from repro.netlist.builder import NetlistBuilder
from repro.netlist.gates import GateType
from repro.netlist.netlist import DesignHierarchy
from repro.simulation import build_model

CORES = 6
KINDS = 2


def _small_model():
    soc = build_hier_soc(
        num_cores=CORES, core_gates=32, core_kinds=KINDS, seed=3,
        name="hier_unit",
    )
    netlist, _ = insert_scan(soc.netlist, num_chains=2)
    return build_model(netlist)


def _patterns(model, count=6, seed=5):
    rng = random.Random(seed)
    sources = model.pi_nodes + model.ppi_nodes
    batch = []
    for _ in range(count):
        batch.append({
            idx: (Logic.ONE if rng.random() < 0.5 else Logic.ZERO)
            for idx in sources
        })
    return batch


def _detections(model, backend="serial"):
    faults = collapse_faults(model, all_stuck_at_faults(model)).representatives
    simulator = StuckAtFaultSimulator(model, backend=backend)
    return simulator.simulate(_patterns(model), faults).detections


def test_compile_dispatches_on_hierarchy_metadata():
    model = _small_model()
    compiled = compile_circuit(model)
    assert isinstance(compiled, HierCompiledCircuit)
    flat = model.without_hierarchy()
    reference = compile_circuit(flat)
    assert isinstance(reference, CompiledCircuit)
    assert not isinstance(reference, HierCompiledCircuit)


def test_kernel_sharing_is_sublinear_in_instances():
    compiled = HierCompiledCircuit(_small_model())
    stats = compiled.hier_stats()
    assert stats["instances_bound"] == CORES
    # Scan stitching may split one kind at a chain boundary (different
    # external aliasing -> different verified fingerprint), hence +1.
    assert stats["unique_core_kernels"] <= KINDS + 1
    assert stats["unique_core_kernels"] < stats["instances_bound"]
    assert stats["residual_ops"] > 0  # glue logic stays on the flat tape
    digests = compiled.binding_digests()
    assert len(digests) == CORES
    assert len(set(digests)) == stats["unique_core_kernels"]


def test_template_cache_shared_across_compiles():
    with hier_compile._TEMPLATE_LOCK:
        hier_compile._TEMPLATE_CACHE.clear()
    first = HierCompiledCircuit(_small_model())
    cached = shared_template_count()
    assert cached == first.hier_stats()["unique_core_kernels"]
    # A fresh build of the same family member reuses every kernel.
    second = HierCompiledCircuit(_small_model())
    assert shared_template_count() == cached
    assert second.binding_digests() == first.binding_digests()


def test_non_closed_instance_demoted_to_residual():
    sep = DesignHierarchy.SEPARATOR
    builder = NetlistBuilder("leaky")
    a = builder.input("a")
    b = builder.input("b")
    clk = builder.clock("clk")
    good = builder.gate(GateType.AND, [a, b], name=f"good{sep}g0")
    good2 = builder.gate(GateType.NOT, [good], name=f"good{sep}g1")
    leak = builder.gate(GateType.OR, [a, b], name=f"leak{sep}g0")
    leak2 = builder.gate(GateType.NOT, [leak], name=f"leak{sep}g1")
    # External glue reads a net from inside "leak" -> leak is not closed.
    glue = builder.gate(GateType.XOR, [leak, b], name="glue_x")
    # Core outputs land in flops (as in the real SoC): flop D pins are not
    # gate fanout, so they do not break closedness.
    builder.flop(good2, clk, name="ff_good")
    builder.flop(leak2, clk, name="ff_leak")
    builder.flop(glue, clk, name="ff_glue")
    netlist = builder.build()
    netlist.hierarchy = DesignHierarchy(
        instances=(("good", "coreT"), ("leak", "coreT"))
    )
    model = build_model(netlist)
    compiled = HierCompiledCircuit(model)
    stats = compiled.hier_stats()
    assert stats["instances_bound"] == 1  # only "good" survives closedness
    assert stats["residual_ops"] >= 3  # leak's gates + glue on the flat tape
    # Demotion must not change behaviour.
    assert _detections(model) == _detections(model.without_hierarchy())


def test_hier_and_flat_detections_identical_at_unit_scale():
    model = _small_model()
    assert isinstance(compile_circuit(model), HierCompiledCircuit)
    flat = model.without_hierarchy()
    assert _detections(model) == _detections(flat)
    assert _detections(model, backend="compiled") == _detections(flat)
