"""Unit tests for waveform storage, querying and export."""

import pytest

from repro.logic import Logic
from repro.simulation import SignalTrace, Waveform


def make_clock_trace(period=10.0, cycles=3):
    trace = SignalTrace("clk", initial=Logic.ZERO)
    for cycle in range(cycles):
        trace.record(cycle * period + 2.0, Logic.ONE)
        trace.record(cycle * period + 7.0, Logic.ZERO)
    return trace


class TestSignalTrace:
    def test_value_at(self):
        trace = make_clock_trace()
        assert trace.value_at(0.0) is Logic.ZERO
        assert trace.value_at(3.0) is Logic.ONE
        assert trace.value_at(8.0) is Logic.ZERO

    def test_edges_and_pulses(self):
        trace = make_clock_trace(cycles=4)
        assert len(trace.rising_edges()) == 4
        assert len(trace.falling_edges()) == 4
        pulses = trace.pulses()
        assert len(pulses) == 4
        assert pulses[0].width == pytest.approx(5.0)

    def test_pulse_window(self):
        trace = make_clock_trace(cycles=5)
        assert trace.count_pulses(start=10.0, end=30.0) == 2

    def test_duplicate_value_ignored(self):
        trace = SignalTrace("s", initial=Logic.ZERO)
        trace.record(1.0, Logic.ZERO)
        trace.record(2.0, Logic.ONE)
        trace.record(3.0, Logic.ONE)
        assert len(trace.edges()) == 1

    def test_non_monotonic_time_rejected(self):
        trace = SignalTrace("s", initial=Logic.ZERO)
        trace.record(5.0, Logic.ONE)
        with pytest.raises(ValueError):
            trace.record(1.0, Logic.ZERO)

    def test_same_instant_collapse(self):
        trace = SignalTrace("s", initial=Logic.ZERO)
        trace.record(5.0, Logic.ONE)
        trace.record(5.0, Logic.ZERO)  # glitch collapsed away at same instant
        assert trace.value_at(6.0) is Logic.ZERO
        assert len(trace.edges()) == 0

    def test_glitch_detection(self):
        trace = SignalTrace("s", initial=Logic.ZERO)
        trace.record(10.0, Logic.ONE)
        trace.record(10.5, Logic.ZERO)  # 0.5-wide spike
        assert trace.has_glitch(min_width=1.0)
        assert not trace.has_glitch(min_width=0.1)


class TestWaveform:
    def test_record_and_query(self):
        wave = Waveform()
        wave.record("a", 0.0, Logic.ZERO)
        wave.record("a", 5.0, Logic.ONE)
        wave.record("b", 3.0, Logic.ONE)
        assert wave.signals() == ["a", "b"]
        assert wave.values_at(4.0)["a"] is Logic.ZERO
        assert wave.values_at(6.0)["a"] is Logic.ONE
        assert wave.end_time == 5.0

    def test_vcd_export(self):
        wave = Waveform()
        wave.record("clk", 0.0, Logic.ZERO)
        wave.record("clk", 10.0, Logic.ONE)
        wave.record("data", 10.0, Logic.X)
        text = wave.to_vcd()
        assert "$timescale 1ps $end" in text
        assert "$var wire 1" in text
        assert "#10" in text
        assert "x" in text  # unknown value dumped

    def test_ascii_rendering(self):
        wave = Waveform()
        wave.record("clk", 0.0, Logic.ZERO)
        wave.record("clk", 50.0, Logic.ONE)
        art = wave.to_ascii(["clk"], end=100.0, width=20)
        assert "clk" in art
        assert "▁" in art and "▔" in art

    def test_contains_and_getitem(self):
        wave = Waveform()
        wave.record("x", 0.0, Logic.ONE)
        assert "x" in wave and "y" not in wave
        assert wave["x"].value_at(1.0) is Logic.ONE
