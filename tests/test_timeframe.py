"""Unit tests for time-frame expansion."""

import pytest

from repro.atpg import TestSetup, build_timeframe_view
from repro.clocking import (
    CapturePulse,
    ClockDomain,
    ClockDomainMap,
    NamedCaptureProcedure,
    external_clock_procedures,
)
from repro.dft import insert_scan
from repro.faults import FaultSite, TransitionFault, TransitionKind
from repro.logic import Logic
from repro.netlist import NetlistBuilder
from repro.simulation import build_model


@pytest.fixture()
def simple_design():
    builder = NetlistBuilder("simple")
    clk = builder.clock("clk")
    d = builder.input("d")
    q0 = builder.flop(d, clk, q="q0", name="ff0")
    inv = builder.inv(q0, output="inv_q0")
    builder.flop(inv, clk, q="q1", name="ff1")
    builder.output_from("q1", "out")
    netlist, scan = insert_scan(builder.build(), num_chains=1)
    model = build_model(netlist)
    domain_map = ClockDomainMap.from_netlist(netlist, [ClockDomain("clk", "clk", 100.0)])
    return netlist, model, domain_map


def two_pulse_setup(hold_pis=True, observe_pos=True):
    return TestSetup(
        name="t",
        procedures=external_clock_procedures(["clk"], max_pulses=2),
        observe_pos=observe_pos,
        hold_pis=hold_pis,
        scan_enable_net="scan_en",
    )


class TestExpansionStructure:
    def test_two_frames_share_held_pis(self, simple_design):
        _, model, domain_map = simple_design
        setup = two_pulse_setup(hold_pis=True)
        view = build_timeframe_view(model, domain_map, setup.procedures[0], setup)
        assert view.num_frames == 2
        d_node = model.node_of_net["d"]
        assert view.frame_map[0][d_node] == view.frame_map[1][d_node]

    def test_free_pis_get_per_frame_nodes(self, simple_design):
        _, model, domain_map = simple_design
        setup = two_pulse_setup(hold_pis=False)
        view = build_timeframe_view(model, domain_map, setup.procedures[0], setup)
        d_node = model.node_of_net["d"]
        assert view.frame_map[0][d_node] != view.frame_map[1][d_node]

    def test_captured_flop_maps_to_previous_frame_d(self, simple_design):
        _, model, domain_map = simple_design
        setup = two_pulse_setup()
        view = build_timeframe_view(model, domain_map, setup.procedures[0], setup)
        element = model.state_element_by_name("ff1")
        frame1_q = view.frame_map[1][element.q_node]
        node = view.model.nodes[frame1_q]
        # The frame-1 copy of ff1's output is a buffer of the frame-0 D value.
        assert node.fanin == (view.frame_map[0][element.d_node],)

    def test_scan_enable_constraint_fixed(self, simple_design):
        _, model, domain_map = simple_design
        setup = two_pulse_setup()
        view = build_timeframe_view(model, domain_map, setup.procedures[0], setup)
        se_node = model.node_of_net["scan_en"]
        expanded = view.frame_map[0][se_node]
        assert view.fixed[expanded] is Logic.ZERO
        assert expanded not in view.controllable

    def test_scan_state_controllable(self, simple_design):
        _, model, domain_map = simple_design
        setup = two_pulse_setup()
        view = build_timeframe_view(model, domain_map, setup.procedures[0], setup)
        assert set(view.scan_state_node) == {"ff0", "ff1"}
        for node in view.scan_state_node.values():
            assert node in view.controllable

    def test_observation_points(self, simple_design):
        _, model, domain_map = simple_design
        setup = two_pulse_setup(observe_pos=False)
        view = build_timeframe_view(model, domain_map, setup.procedures[0], setup)
        assert sorted(view.observed_flops) == ["ff0", "ff1"]
        assert view.observation
        with_pos = build_timeframe_view(model, domain_map, setup.procedures[0],
                                        two_pulse_setup(observe_pos=True))
        assert len(with_pos.observation) > len(view.observation)


class TestTransitionRequirements:
    def test_launch_node_in_launch_frame(self, simple_design):
        _, model, domain_map = simple_design
        setup = two_pulse_setup()
        view = build_timeframe_view(model, domain_map, setup.procedures[0], setup)
        site = FaultSite(node=model.node_of_net["q0"])
        fault = TransitionFault(site=site, kind=TransitionKind.SLOW_TO_RISE)
        stuck, required = view.transition_requirements(fault)
        assert stuck.value == 0
        assert stuck.site.node == view.frame_map[1][site.node]
        (launch_node, value), = required
        assert launch_node == view.frame_map[0][site.node]
        assert value is Logic.ZERO

    def test_pattern_fields_split(self, simple_design):
        _, model, domain_map = simple_design
        setup = two_pulse_setup()
        view = build_timeframe_view(model, domain_map, setup.procedures[0], setup)
        ff0_node = view.scan_state_node["ff0"]
        d_node = view.frame_map[0][model.node_of_net["d"]]
        scan_load, frames = view.pattern_fields({ff0_node: Logic.ONE, d_node: Logic.ZERO})
        assert scan_load["ff0"] is Logic.ONE
        assert scan_load["ff1"] is Logic.X
        assert len(frames) == 2
        assert frames[0]["d"] is Logic.ZERO
        assert frames[1]["d"] is Logic.ZERO  # held


class TestDomainSelectiveCapture:
    def test_unpulsed_domain_aliases_previous_frame(self, scanned_two_domain):
        _, _, model, domain_map = scanned_two_domain
        procedure = NamedCaptureProcedure(
            name="only_a", pulses=(CapturePulse.of("a"), CapturePulse.of("a"))
        )
        setup = TestSetup(name="t", procedures=[procedure], observe_pos=False,
                          scan_enable_net="scan_en")
        view = build_timeframe_view(model, domain_map, procedure, setup)
        for element in model.state_elements:
            domain = domain_map.domain_of(element.name)
            frame0 = view.frame_map[0][element.q_node]
            frame1 = view.frame_map[1][element.q_node]
            if domain == "a":
                assert frame0 != frame1
            else:
                assert frame0 == frame1

    def test_three_pulse_procedure_has_three_frames(self, simple_design):
        _, model, domain_map = simple_design
        procedure = NamedCaptureProcedure(
            name="threep",
            pulses=tuple(CapturePulse.of("clk") for _ in range(3)),
        )
        setup = TestSetup(name="t", procedures=[procedure], scan_enable_net="scan_en")
        view = build_timeframe_view(model, domain_map, procedure, setup)
        assert view.num_frames == 3
        assert view.launch_frame == 1
        assert view.capture_frame == 2
