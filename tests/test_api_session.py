"""Tests for TestSession, the stage pipeline, RunReport, and the legacy shims."""

import pytest

from repro.api import RunReport, TestSession, scenarios
from repro.atpg import AtpgOptions
from repro.core import DelayTestFlow, format_table1, instrument_soc


@pytest.fixture(scope="module")
def fast_options():
    """Deliberately tiny ATPG effort — these tests check plumbing, not coverage."""
    return AtpgOptions(
        random_pattern_batches=2, patterns_per_batch=16, backtrack_limit=8, random_seed=7
    )


@pytest.fixture(scope="module")
def table1_session(fast_options):
    """The five Table 1 scenarios run (in parallel) through the new API."""
    session = (
        TestSession.for_soc(size=1, seed=17)
        .with_chains(4)
        .with_options(fast_options)
        .add_scenarios(*scenarios.table1())
    )
    report = session.run(backend="threads")
    return session, report


@pytest.fixture(scope="module")
def legacy_flow(fast_options):
    """The same five experiments through the deprecated DelayTestFlow (serial)."""
    flow = DelayTestFlow(size=1, seed=17, num_chains=4, options=fast_options)
    flow.run_all()
    return flow


class TestTable1Golden:
    def test_report_table_matches_legacy_byte_for_byte(self, table1_session, legacy_flow):
        _, report = table1_session
        assert report.table() == legacy_flow.table1()

    def test_parallel_results_match_serial_legacy_run(self, table1_session, legacy_flow):
        """The parallel session and the serial legacy flow agree per experiment."""
        session, report = table1_session
        for key in "abcde":
            serial = legacy_flow.results[key]
            outcome = report[key]
            assert outcome.test_coverage == serial.coverage.test_coverage
            assert outcome.pattern_count == serial.pattern_count
            # Raw results stay reachable through the session.
            raw = session.result_of(f"table1-{key}")
            assert raw.pattern_count == serial.pattern_count

    def test_report_table_matches_format_table1(self, table1_session):
        session, report = table1_session
        results = {key: session.result_of(f"table1-{key}") for key in "abcde"}
        assert report.table() == format_table1(results)

    def test_outcomes_carry_stage_timings(self, table1_session):
        _, report = table1_session
        for outcome in report:
            assert set(outcome.stage_seconds) == {
                "setup", "atpg", "compaction", "compression", "export"
            }
            assert outcome.cpu_seconds == pytest.approx(
                sum(outcome.stage_seconds.values())
            )


class TestRunReportSerialization:
    def test_json_round_trip_is_lossless(self, table1_session):
        _, report = table1_session
        restored = RunReport.from_json(report.to_json())
        assert restored == report
        assert restored.table() == report.table()
        assert restored.same_results(report)

    def test_lookup_by_name_and_legacy_key(self, table1_session):
        _, report = table1_session
        assert report["a"] is report["table1-a"]
        assert "table1-b" in report and "b" in report
        with pytest.raises(KeyError, match="no outcome"):
            report["nope"]

    def test_same_results_detects_differences(self, table1_session):
        _, report = table1_session
        mutated = RunReport.from_json(report.to_json())
        mutated.outcomes[0].pattern_count += 1
        assert not report.same_results(mutated)


class TestExtendedScenarios:
    @pytest.fixture(scope="class")
    def extended_report(self, fast_options):
        session = (
            TestSession.for_soc(size=1, seed=17)
            .with_chains(4)
            .with_options(fast_options)
            .add_scenarios(*scenarios.extended())
        )
        report = session.run(backend="threads")
        return session, report

    def test_at_least_four_run_end_to_end(self, extended_report):
        _, report = extended_report
        assert len(report) >= 4
        for outcome in report:
            assert 0.0 <= outcome.test_coverage <= 100.0
            assert outcome.cpu_seconds > 0.0

    def test_edt_scenario_records_compression(self, extended_report):
        _, report = extended_report
        extras = report["stuck-at-edt"].extras
        assert extras["edt"]["channels"] == 2
        assert extras["edt"]["compression_ratio"] == 2.0
        assert extras["static_compaction"]["patterns_after"] <= (
            extras["static_compaction"]["patterns_before"]
        )

    def test_path_delay_scenario_reports_paths(self, extended_report):
        _, report = extended_report
        info = report["path-delay-simple-cpf"].extras["path_delay"]
        assert info["paths_targeted"] > 0
        assert (
            info["tests_found"] + info["aborted"] + info["untestable"]
            == info["paths_targeted"]
        )

    def test_mixed_scenario_combines_models(self, extended_report):
        _, report = extended_report
        outcome = report["mixed-constrained-sweep"]
        assert "stuck_at" in outcome.extras and "transition" in outcome.extras
        combined = outcome.extras["combined"]
        assert outcome.pattern_count == combined["pattern_count"]
        assert outcome.test_coverage == combined["test_coverage_percent"]

    def test_export_scenario_produces_stil(self, extended_report):
        session, report = extended_report
        stil = session.exported_patterns("transition-cpf-edt-export")
        assert stil.startswith("STIL 1.0;")
        assert report["transition-cpf-edt-export"].extras["export"]["lines"] > 0

    def test_json_round_trip_with_extras(self, extended_report):
        _, report = extended_report
        assert RunReport.from_json(report.to_json()) == report


class TestSessionBuilder:
    def test_run_without_scenarios_raises(self):
        with pytest.raises(RuntimeError, match="no scenarios"):
            TestSession.for_soc(size=1).run()

    def test_duplicate_scenario_rejected(self):
        session = TestSession.for_soc(size=1).add_scenario("table1-a")
        with pytest.raises(ValueError, match="already queued"):
            session.add_scenario("table1-a")

    def test_structure_change_invalidates_prepared(self):
        session = TestSession.for_soc(size=1, seed=11, num_chains=4)
        first = session.prepared
        session.with_chains(5)
        assert session.prepared is not first
        assert session.prepared.scan.num_chains == 5

    def test_from_prepared_refuses_structure_changes(self, tiny_prepared):
        session = TestSession.from_prepared(tiny_prepared)
        assert session.prepared is tiny_prepared
        with pytest.raises(RuntimeError, match="already prepared"):
            session.with_chains(8)

    def test_with_options_knobs(self):
        session = TestSession.for_soc(size=1).with_options(backtrack_limit=5)
        assert session.options.backtrack_limit == 5
        with pytest.raises(ValueError):
            session.with_options(AtpgOptions(), backtrack_limit=5)

    def test_unknown_stage_anchor_raises(self):
        session = TestSession.for_soc(size=1)
        with pytest.raises(KeyError, match="no pipeline stage"):
            session.with_stage("x", lambda s, r: None, after="nope")

    def test_custom_stage_runs_in_order(self, tiny_prepared, cheap_options):
        seen = []

        def probe(session, run):
            seen.append((run.spec.name, run.result is not None))

        session = (
            TestSession.from_prepared(tiny_prepared, options=cheap_options)
            .with_stage("probe", probe, after="atpg")
            .without_stage("compression")
        )
        outcome = session.run_scenario("table1-a")
        assert seen == [("table1-a", True)]
        assert "probe" in outcome.stage_seconds
        assert "compression" not in outcome.stage_seconds

    def test_result_of_unknown_scenario(self):
        session = TestSession.for_soc(size=1)
        with pytest.raises(KeyError, match="has not been executed"):
            session.result_of("table1-a")

    @pytest.mark.parametrize("backend", ("serial", "threads"))
    def test_custom_stage_sees_caller_session_state(
        self, tiny_prepared, cheap_options, backend
    ):
        """In-parent executions run stages on the compiling session itself,
        so stages reading caller-session attributes keep working."""

        def probe(session, run):
            run.extras["tag"] = session.custom_tag

        session = (
            TestSession.from_prepared(tiny_prepared, options=cheap_options)
            .with_stage("probe", probe)
            .add_scenario("table1-a")
        )
        session.custom_tag = "caller-state"
        report = session.run(backend=backend)
        assert report["a"].extras["tag"] == "caller-state"

    def test_trimmed_pipeline_respected_by_process_workers(
        self, tiny_prepared, cheap_options
    ):
        """Workers must honour an intentionally trimmed stage list — never
        substitute the default pipeline."""

        def trimmed() -> TestSession:
            return (
                TestSession.from_prepared(tiny_prepared, options=cheap_options)
                .without_stage("compaction")
                .without_stage("compression")
                .without_stage("export")
                .add_scenarios("table1-a", "table1-b")
            )

        serial = trimmed().run()
        processes = trimmed().run(backend="processes")
        for key in ("a", "b"):
            assert set(processes[key].stage_seconds) == {"setup", "atpg"}
        assert processes.same_results(serial)

    def test_cached_diagnosis_never_builds_a_scheduler(self, tiny_prepared, tmp_path):
        """A cache-served diagnose() must not pay for kernel compilation."""
        from repro.diagnose import DefectSpec

        options = AtpgOptions(
            random_pattern_batches=1, patterns_per_batch=8, backtrack_limit=4,
            max_patterns=4,
        )
        defect = DefectSpec(kind="stuck-at", net="scan_en", value=1)
        warmer = TestSession.from_prepared(tiny_prepared, options).with_cache(
            tmp_path / "cache"
        )
        warmer.diagnose(defect, scenario="a")
        fresh = TestSession.from_prepared(tiny_prepared, options).with_cache(
            tmp_path / "cache"
        )
        result = fresh.diagnose(defect, scenario="a")
        assert result.cache_hit
        assert fresh._diagnosis_schedulers == {}


class TestInstrumentMemoisation:
    def test_repeated_instrumentation_is_cached(self, tiny_prepared):
        first = instrument_soc(tiny_prepared)
        second = instrument_soc(tiny_prepared)
        assert first[0] is second[0] and first[1] is second[1]

    def test_enhanced_flavour_cached_separately(self, tiny_prepared):
        simple = instrument_soc(tiny_prepared, enhanced=False)
        enhanced = instrument_soc(tiny_prepared, enhanced=True)
        assert simple[0] is not enhanced[0]
        assert instrument_soc(tiny_prepared, enhanced=True)[0] is enhanced[0]

    def test_session_shares_instrumented_view(self, tiny_prepared):
        session = TestSession.from_prepared(tiny_prepared)
        assert session.instrumented()[0] is instrument_soc(tiny_prepared)[0]


class TestLegacyFlowShim:
    def test_run_all_returns_only_requested_keys(self, legacy_flow):
        subset = legacy_flow.run_all(keys=("a", "c"))
        assert set(subset) == {"a", "c"}  # no stale cached keys leak out
        assert subset["a"] is legacy_flow.results["a"]

    def test_run_experiment_caches(self, legacy_flow):
        again = legacy_flow.run_experiment("a")
        assert legacy_flow.results["a"] is again
