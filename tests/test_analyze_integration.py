"""Front-door integration of repro.analyze: TestSession.lint, the design
pipeline's spliceable lint stage, the campaign pre-flight gate, plan
linting, and the validate_netlist deprecation shim's report conversion."""

from __future__ import annotations

import pytest

from repro.analyze import LintError, LintReport, lint_plan
from repro.api import (
    Campaign,
    DesignPipeline,
    TestSession,
    resolve_design,
    stage_lint,
)
from repro.atpg import AtpgOptions
from repro.core import prepare_design
from repro.netlist import Gate, GateType
from repro.runtime import Job, Plan

CHEAP = AtpgOptions(
    random_pattern_batches=1, patterns_per_batch=8, backtrack_limit=4,
    max_patterns=4,
)


def _sabotage_with_loop(prepared):
    """Plant a combinational cycle in an already prepared design's netlist."""
    netlist = prepared.netlist
    inp = next(iter(netlist.inputs))
    netlist.add_gate(Gate("sab1", GateType.AND, (inp, "sab_n2"), "sab_n1"))
    netlist.add_gate(Gate("sab2", GateType.AND, ("sab_n1", inp), "sab_n2"))
    return prepared


# ---------------------------------------------------------------------------
# TestSession.lint
# ---------------------------------------------------------------------------
def test_session_lint_without_scenarios(tiny_prepared):
    report = TestSession.from_prepared(tiny_prepared, CHEAP).lint()
    assert isinstance(report, LintReport)
    assert report.ok, report.format_table()
    assert "x-source" in report.rules_run


def test_session_lint_uses_first_scenario_setup(tiny_prepared):
    session = TestSession.from_prepared(tiny_prepared, CHEAP).add_scenario("table1-a")
    report = session.lint()
    assert report.ok
    # With a setup bound, the setup-dependent rules execute too.
    assert "cdc-uncovered" in report.rules_run
    # The prover summary runs under the scenario's constraints.
    untestable = report.by_rule().get("untestable-faults", [])
    assert untestable and "provably untestable" in untestable[0].message


def test_session_lint_reports_seeded_error():
    prepared = _sabotage_with_loop(prepare_design(size=1, seed=7, num_chains=4))
    report = TestSession.from_prepared(prepared, CHEAP).lint()
    assert not report.ok
    assert any(f.rule == "combinational-loop" for f in report.errors)
    with pytest.raises(LintError):
        report.raise_on_error()


# ---------------------------------------------------------------------------
# Design pipeline lint stage
# ---------------------------------------------------------------------------
def test_pipeline_lint_stage_splices_after_model():
    pipeline_obj = DesignPipeline().with_stage("lint", stage_lint, after="model")
    assert pipeline_obj.stage_names == ["build", "scan", "clocking", "model", "lint"]
    build = pipeline_obj.run(resolve_design("tiny"))
    assert isinstance(build.lint_report, LintReport)
    assert build.lint_report.ok
    assert "lint" in build.stage_seconds


def test_default_pipeline_skips_lint():
    build = DesignPipeline().run(resolve_design("tiny"))
    assert build.lint_report is None


# ---------------------------------------------------------------------------
# Campaign pre-flight gate
# ---------------------------------------------------------------------------
def test_campaign_lint_gate_passes_clean_design():
    campaign = Campaign(["tiny"], ["table1-a"], CHEAP).with_lint()
    report = campaign.run()
    assert len(report) == 1
    assert campaign.lint_reports["tiny"].ok


def test_campaign_lint_gate_fails_fast_on_error():
    prepared = _sabotage_with_loop(prepare_design(size=1, seed=9, num_chains=4))
    campaign = Campaign([prepared], ["table1-a"], CHEAP).with_lint()
    with pytest.raises(LintError, match="pre-flight lint failed"):
        campaign.run()
    # The gate fired before any cell executed.
    assert campaign.artifacts == {}
    assert campaign.report is None
    (lint_report,) = campaign.lint_reports.values()
    assert any(f.rule == "combinational-loop" for f in lint_report.errors)


def test_campaign_without_lint_gate_never_materializes_for_lint():
    campaign = Campaign(["tiny"], ["table1-a"], CHEAP)
    campaign.run()
    assert campaign.lint_reports == {}


# ---------------------------------------------------------------------------
# Plan linting and Plan.validate
# ---------------------------------------------------------------------------
def test_plan_validate_accepts_well_formed_graph():
    plan = Plan(
        name="good",
        jobs=(
            Job(id="a", kind="scenario"),
            Job(id="b", kind="scenario", deps=("a",)),
        ),
    )
    plan.validate()  # construction already ran it; idempotent and quiet
    assert lint_plan(plan).ok


def test_plan_construction_rejects_graph_defects():
    with pytest.raises(ValueError, match="duplicate job ids"):
        Plan(name="dupes", jobs=(Job(id="a", kind="k"), Job(id="a", kind="k")))
    with pytest.raises(ValueError, match="unknown job"):
        Plan(name="dangling", jobs=(Job(id="a", kind="k", deps=("ghost",)),))


def test_lint_plan_flags_graph_defects_on_plan_dicts():
    plan_dict = {
        "name": "broken",
        "jobs": [
            {"id": "a", "kind": "k", "deps": ["b"]},
            {"id": "b", "kind": "k", "deps": ["a"]},
            {"id": "b", "kind": "k", "deps": []},
            {"id": "c", "kind": "k", "deps": ["ghost"]},
        ],
    }
    report = lint_plan(plan_dict)
    rules = {f.rule for f in report.errors}
    assert rules == {"plan-duplicate-job", "plan-unknown-dep", "plan-cycle"}
    assert not report.ok


def test_lint_plan_flags_cache_key_collisions():
    plan = Plan(
        name="collide",
        jobs=(
            Job(id="a", kind="scenario", params={"design": "x"}, cache_key="K"),
            Job(id="b", kind="scenario", params={"design": "y"}, cache_key="K"),
            Job(id="c", kind="scenario", params={"design": "x"}, cache_key="other"),
        ),
    )
    report = lint_plan(plan)
    collisions = report.by_rule().get("plan-cache-collision", [])
    assert len(collisions) == 1
    assert "K" in collisions[0].message or collisions[0].subject == "K"


def test_session_plan_lints_clean(tiny_prepared):
    session = TestSession.from_prepared(tiny_prepared, CHEAP).add_scenario("table1-a")
    assert lint_plan(session.plan()).ok
