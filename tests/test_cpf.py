"""Gate-level CPF tests: the Figure 3 schematic and Figure 4 waveform claims."""

import pytest

from repro.clocking import (
    build_cpf,
    build_enhanced_cpf,
    check_cpf_waveform,
    enhanced_cpf_config,
    insert_cpf,
    simulate_cpf_capture,
)
from repro.circuits import two_domain_crossing
from repro.logic import Logic
from repro.netlist import area_report, validate_netlist
from repro.simulation import EventSimulator, clock_stimulus


class TestSimpleCpf:
    def test_structure_is_about_ten_gates(self):
        block = build_cpf()
        assert block.gate_count <= 20
        assert block.shift_register_length == 5
        report = validate_netlist(block.netlist, allow_floating_inputs=True)
        assert report.ok

    def test_exactly_two_pulses_no_glitches(self):
        block = build_cpf()
        wave, timing = simulate_cpf_capture(block)
        report = check_cpf_waveform(
            wave, block.ports.clk_out, block.ports.pll_clk, block.ports.scan_clk,
            timing.trigger_time, timing.window_end, timing.pll_period,
            expected_pulses=2,
            shift_window=(timing.shift_start, timing.shift_end),
        )
        assert report.pulse_count_correct
        assert report.glitch_free
        assert report.ok

    def test_three_pll_cycle_latency(self):
        block = build_cpf()
        wave, timing = simulate_cpf_capture(block)
        report = check_cpf_waveform(
            wave, block.ports.clk_out, block.ports.pll_clk, block.ports.scan_clk,
            timing.trigger_time, timing.window_end, timing.pll_period,
        )
        assert report.latency_pll_cycles is not None
        assert 2.5 <= report.latency_pll_cycles <= 4.5

    def test_clk_out_follows_scan_clk_during_shift(self):
        block = build_cpf()
        wave, timing = simulate_cpf_capture(block, num_shift_cycles=5)
        report = check_cpf_waveform(
            wave, block.ports.clk_out, block.ports.pll_clk, block.ports.scan_clk,
            timing.trigger_time, timing.window_end, timing.pll_period,
            shift_window=(timing.shift_start, timing.shift_end),
        )
        assert report.shift_pulses_passed >= 4

    def test_functional_mode_passes_pll_clock(self):
        """The CGC must be permanently enabled when test_mode is 0."""
        block = build_cpf()
        sim = EventSimulator(block.netlist)
        sim.initialize({
            block.ports.scan_clk: Logic.ZERO,
            block.ports.pll_clk: Logic.ZERO,
            block.ports.scan_en: Logic.ZERO,
            block.ports.test_mode: Logic.ZERO,
        })
        sim.apply_stimulus({block.ports.pll_clk: clock_stimulus(1000.0, 12, start=500.0)})
        wave = sim.run(14_000.0)
        # All PLL pulses reach clk_out in functional mode.
        assert wave[block.ports.clk_out].count_pulses(0.0, 13_000.0) >= 10


class TestEnhancedCpf:
    @pytest.mark.parametrize("pulses", [2, 3, 4])
    def test_programmable_pulse_count(self, pulses):
        block = build_enhanced_cpf()
        wave, timing = simulate_cpf_capture(block, config_values=enhanced_cpf_config(pulses))
        report = check_cpf_waveform(
            wave, block.ports.clk_out, block.ports.pll_clk, block.ports.scan_clk,
            timing.trigger_time, timing.window_end, timing.pll_period,
            expected_pulses=pulses,
        )
        assert report.pulses_in_window == pulses
        assert report.glitch_free

    def test_delay_configuration_staggers_window(self):
        block = build_enhanced_cpf()
        normal_wave, timing = simulate_cpf_capture(
            block, config_values=enhanced_cpf_config(2, delayed=False)
        )
        delayed_block = build_enhanced_cpf(name="ecpf2")
        delayed_wave, timing2 = simulate_cpf_capture(
            delayed_block, config_values=enhanced_cpf_config(2, delayed=True)
        )
        first_normal = normal_wave[block.ports.clk_out].pulses(timing.trigger_time,
                                                               timing.window_end)[0].start
        first_delayed = delayed_wave[delayed_block.ports.clk_out].pulses(
            timing2.trigger_time, timing2.window_end)[0].start
        assert first_delayed - timing2.trigger_time > first_normal - timing.trigger_time

    def test_invalid_pulse_count_rejected(self):
        with pytest.raises(ValueError):
            enhanced_cpf_config(5)


class TestCpfInsertion:
    def test_insert_cpf_reclocks_domain(self):
        netlist = two_domain_crossing(4)
        record = insert_cpf(
            netlist, "a", pll_clk_net="clk_a", scan_clk_net="scan_clk",
            scan_en_net="scan_en", test_mode_net="test_mode",
        )
        new_clock = record.ports.clk_out
        domain_a_flops = [f for f in netlist.flops.values() if f.name.startswith(("a_ff", "ba_ff"))]
        assert domain_a_flops
        for flop in domain_a_flops:
            assert flop.clock == new_clock
        # CPF instances were merged with the given prefix.
        assert any(name.startswith(record.instance_prefix) for name in netlist.flops)
        assert "scan_clk" in netlist.inputs
        assert validate_netlist(netlist).ok

    def test_cpf_area_overhead_is_small(self):
        netlist = two_domain_crossing(8)
        before = area_report(netlist).total
        insert_cpf(netlist, "a", "clk_a", "scan_clk", "scan_en", "test_mode")
        insert_cpf(netlist, "b", "clk_b", "scan_clk", "scan_en", "test_mode")
        after = area_report(netlist).total
        # Each CPF is a handful of cells; the absolute overhead is bounded and
        # becomes negligible on any real-size domain.
        assert after - before < 2 * 80.0  # NAND2-equivalents for two CPFs
