"""The repro.analyze rule registry: report machinery, waivers, and one
seeded-violation design per structural rule family."""

from __future__ import annotations

import pytest

from repro.analyze import (
    CATEGORIES,
    AnalysisContext,
    Finding,
    LintError,
    LintReport,
    Severity,
    Waiver,
    all_rules,
    combinational_sccs,
    get_rule,
    lint_design,
    lint_netlist,
    rule_catalogue,
    run_rules,
    trace_shift_source,
)
from repro.api import design_names, get_scenario, prepare_from_spec
from repro.atpg import AtpgOptions
from repro.circuits import pipeline, two_domain_crossing
from repro.clocking import enhanced_cpf_procedures, simple_cpf_procedures
from repro.dft import insert_scan
from repro.dft.edt import EdtArchitecture
from repro.netlist import FlipFlop, Gate, GateType, Latch, Netlist


# ---------------------------------------------------------------------------
# Registry and report machinery
# ---------------------------------------------------------------------------
def test_registry_catalogue_is_consistent():
    catalogue = rule_catalogue()
    assert len(catalogue) >= 20
    assert len({entry["id"] for entry in catalogue}) == len(catalogue)
    for entry in catalogue:
        assert entry["category"] in CATEGORIES
        assert entry["severity"] in ("error", "warning", "info")
        assert entry["description"]
    # Category filtering returns exactly the matching subset.
    scan_rules = all_rules(category="scan")
    assert scan_rules and all(r.category == "scan" for r in scan_rules)
    assert get_rule("combinational-loop").severity is Severity.ERROR


def test_report_json_roundtrip_and_counts():
    findings = [
        Finding(rule="undriven-net", severity=Severity.ERROR,
                message="net is used as an input but has no driver",
                subject="n1", data={"why": "seeded"}),
        Finding(rule="chain-imbalance", severity=Severity.WARNING,
                message="unbalanced", subject="chain0,chain1"),
        Finding(rule="x-source", severity=Severity.INFO,
                message="blankers", subject="soc"),
    ]
    report = LintReport(target="unit", findings=findings,
                        rules_run=("undriven-net", "chain-imbalance", "x-source"))
    assert not report.ok
    assert report.counts() == {"error": 1, "warning": 1, "info": 1, "waived": 0}
    clone = LintReport.from_json(report.to_json())
    assert clone == report
    table = report.format_table()
    assert "undriven-net" in table and "1 error(s)" in table


def test_waivers_suppress_matching_findings():
    from repro.analyze import apply_waivers

    findings = [
        Finding(rule="unscanned-flop", severity=Severity.WARNING,
                message="left out", subject="core_ff_3"),
        Finding(rule="unscanned-flop", severity=Severity.WARNING,
                message="left out", subject="dbg_ff_0"),
    ]
    report = LintReport(target="unit", findings=findings, rules_run=("unscanned-flop",))
    merged = report.merged_with(LintReport(target="unit"))
    assert len(merged.findings) == 2
    run_waivers = [Waiver(rule="unscanned-flop", subject="dbg_*", reason="debug latches")]
    adjusted = apply_waivers(findings, run_waivers)
    flags = {f.subject: f.waived for f in adjusted}
    assert flags == {"core_ff_3": False, "dbg_ff_0": True}
    assert adjusted[1].waived_reason == "debug latches"


def test_raise_on_error_lists_first_errors():
    report = LintReport(
        target="bad",
        findings=[
            Finding(rule="missing-clock", severity=Severity.ERROR,
                    message="flip-flop has no clock net", subject="ff9"),
        ],
        rules_run=("missing-clock",),
    )
    with pytest.raises(LintError, match="missing-clock"):
        report.raise_on_error()


# ---------------------------------------------------------------------------
# Seeded violations — each planted defect must trigger exactly its rule
# ---------------------------------------------------------------------------
def test_seeded_combinational_loop_reports_scc_members():
    netlist = Netlist("looped")
    netlist.add_input("x")
    netlist.add_gate(Gate("g1", GateType.AND, ("x", "n2"), "n1"))
    netlist.add_gate(Gate("g2", GateType.AND, ("n1", "x"), "n2"))
    netlist.add_output("n1")
    assert combinational_sccs(netlist) == [["g1", "g2"]]
    report = lint_netlist(netlist)
    loops = report.by_rule()["combinational-loop"]
    assert len(loops) == 1
    assert loops[0].data["gates"] == ["g1", "g2"]
    assert not report.ok


def test_seeded_self_loop_is_reported():
    netlist = Netlist("selfloop")
    netlist.add_input("x")
    netlist.add_gate(Gate("g", GateType.OR, ("x", "y"), "y"))
    netlist.add_output("y")
    assert combinational_sccs(netlist) == [["g"]]
    assert any(f.rule == "combinational-loop" for f in lint_netlist(netlist).errors)


def test_seeded_unscanned_flop_is_flagged_by_name():
    netlist = pipeline(width=2, stages=2, seed=5)
    excluded = next(iter(netlist.flops))
    netlist, scan = insert_scan(netlist, num_chains=1, exclude=[excluded])
    context = AnalysisContext(netlist=netlist, scan=scan)
    report = run_rules(context, categories=("scan",), target="seeded")
    flagged = [f.subject for f in report.findings if f.rule == "unscanned-flop"]
    assert flagged == [excluded]


def test_seeded_missing_lockup_and_latch_fix():
    # group_by_clock=False stitches clk_a and clk_b cells into one chain with
    # no lockup element between them: the rule must fire at the boundary.
    netlist = two_domain_crossing(width=2)
    netlist, scan = insert_scan(netlist, num_chains=1, group_by_clock=False)
    chain = scan.chains[0]
    flops = netlist.flops
    boundaries = [
        (prev, cell)
        for prev, cell in zip(chain.cells, chain.cells[1:])
        if flops[prev].clock != flops[cell].clock
    ]
    assert boundaries, "seeded chain must mix clock domains"
    context = AnalysisContext(netlist=netlist, scan=scan)
    report = run_rules(context, rules=("missing-lockup",), target="seeded")
    subjects = {f.subject for f in report.errors}
    assert subjects == {f"{chain.name}:{cell}" for _, cell in boundaries}

    # Splicing a lockup latch into every crossing clears the rule: the shift
    # trace must cross the latch and still resolve the declared predecessor.
    for index, (prev, cell) in enumerate(boundaries):
        latch_q = f"lockup_{index}_q"
        netlist.add_latch(
            Latch(name=f"lockup_{index}", d=flops[prev].q, q=latch_q,
                  enable=flops[prev].clock, active_level=0)
        )
        fixed = flops[cell]
        netlist.replace_flop(cell, FlipFlop(
            name=fixed.name, d=fixed.d, q=fixed.q, clock=fixed.clock,
            reset=fixed.reset, scan_in=latch_q, scan_enable=fixed.scan_enable,
            scannable=fixed.scannable, init=fixed.init,
        ))
        source, saw_latch = trace_shift_source(netlist, latch_q)
        assert saw_latch and source == flops[prev].q
    fixed_report = run_rules(
        AnalysisContext(netlist=netlist, scan=scan),
        rules=("missing-lockup", "broken-shift-path"), target="fixed",
    )
    assert fixed_report.findings == []


def test_seeded_broken_shift_path_detects_rewired_cell():
    netlist = pipeline(width=2, stages=2, seed=5)
    netlist, scan = insert_scan(netlist, num_chains=1)
    chain = scan.chains[0]
    victim_name = chain.cells[2]
    victim = netlist.flops[victim_name]
    # Rewire the third cell's shift input straight to the chain input: the
    # declared predecessor no longer feeds it.
    netlist.replace_flop(victim_name, FlipFlop(
        name=victim.name, d=victim.d, q=victim.q, clock=victim.clock,
        reset=victim.reset, scan_in=chain.scan_in,
        scan_enable=victim.scan_enable, scannable=victim.scannable,
        init=victim.init,
    ))
    report = run_rules(
        AnalysisContext(netlist=netlist, scan=scan),
        rules=("broken-shift-path",), target="seeded",
    )
    assert [f.subject for f in report.errors] == [f"{chain.name}:{victim_name}"]
    assert report.errors[0].data["actual"] == chain.scan_in


def test_seeded_edt_phase_collision():
    netlist = pipeline(width=4, stages=3, seed=3)
    netlist, scan = insert_scan(netlist, num_chains=2)
    edt = EdtArchitecture(scan, num_input_channels=1)
    edt.decompressor.phase_taps[1] = edt.decompressor.phase_taps[0]
    report = run_rules(
        AnalysisContext(netlist=netlist, scan=scan, edt=edt),
        rules=("edt-phase-collision",), target="seeded",
    )
    assert len(report.errors) == 1
    assert report.errors[0].subject == f"{scan.chains[0].name},{scan.chains[1].name}"

    # An untouched architecture keeps distinct taps per chain and stays clean.
    clean = EdtArchitecture(scan, num_input_channels=1)
    clean_report = run_rules(
        AnalysisContext(netlist=netlist, scan=scan, edt=clean),
        rules=("edt-phase-collision",), target="clean",
    )
    assert clean_report.findings == []


def test_seeded_cdc_without_covering_procedure(scanned_two_domain):
    from repro.atpg import TestSetup

    netlist, scan, model, domain_map = scanned_two_domain
    uncovered = TestSetup(
        name="per-domain only",
        procedures=simple_cpf_procedures(["a", "b"]),
        scan_enable_net=scan.scan_enable,
    )
    report = run_rules(
        AnalysisContext(netlist=netlist, scan=scan, model=model,
                        domain_map=domain_map, setup=uncovered),
        rules=("cdc-uncovered",), target="seeded",
    )
    pairs = {f.subject for f in report.findings}
    assert "a->b" in pairs or "b->a" in pairs

    covered = TestSetup(
        name="inter-domain",
        procedures=enhanced_cpf_procedures(["a", "b"], inter_domain=True),
        scan_enable_net=scan.scan_enable,
    )
    covered_report = run_rules(
        AnalysisContext(netlist=netlist, scan=scan, model=model,
                        domain_map=domain_map, setup=covered),
        rules=("cdc-uncovered",), target="fixed",
    )
    assert covered_report.findings == []


# ---------------------------------------------------------------------------
# Built-in designs lint clean
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", design_names())
def test_builtin_designs_lint_clean(name):
    prepared = prepare_from_spec(name)
    setup = get_scenario("table1-a").build_setup(
        prepared, AtpgOptions(random_pattern_batches=1, patterns_per_batch=8)
    )
    report = lint_design(prepared, setup)
    assert report.ok, report.format_table()
