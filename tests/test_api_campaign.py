"""Tests for Campaign, CampaignReport, per-cell caching/resume, and the
legacy run_all_experiments routing."""

import warnings

import pytest

from repro.api import (
    Campaign,
    CampaignReport,
    TestSession,
    resolve_campaign_scenario,
)
from repro.atpg import AtpgOptions
from repro.core import DelayTestFlow, run_all_experiments
from repro.engine import ResultCache
from repro.runtime import Executor


@pytest.fixture(scope="module")
def fast_options():
    return AtpgOptions(
        random_pattern_batches=2, patterns_per_batch=16, backtrack_limit=8, random_seed=7
    )


@pytest.fixture(scope="module")
def small_grid_report(fast_options):
    """A 2-design x 2-scenario serial campaign (tiny + wide-edt, a + c)."""
    campaign = Campaign(
        designs=["tiny", "wide-edt"], scenarios=["a", "c"], options=fast_options
    )
    report = campaign.run()
    return campaign, report


class TestCampaignBuilder:
    def test_letters_resolve_to_table1_scenarios(self):
        assert resolve_campaign_scenario("a").name == "table1-a"
        assert resolve_campaign_scenario("table1-b").name == "table1-b"
        assert resolve_campaign_scenario("stuck-at-edt").name == "stuck-at-edt"

    def test_grid_is_design_major(self, fast_options):
        campaign = Campaign(["tiny", "wide-edt"], ["a", "c"], options=fast_options)
        assert campaign.grid() == [
            ("tiny", "table1-a"),
            ("tiny", "table1-c"),
            ("wide-edt", "table1-a"),
            ("wide-edt", "table1-c"),
        ]

    def test_empty_or_duplicate_axes_rejected(self, fast_options):
        with pytest.raises(ValueError, match="at least one design"):
            Campaign([], ["a"])
        with pytest.raises(ValueError, match="at least one scenario"):
            Campaign(["tiny"], [])
        with pytest.raises(ValueError, match="duplicate designs"):
            Campaign(["tiny", "tiny"], ["a"])
        with pytest.raises(ValueError, match="duplicate scenarios"):
            Campaign(["tiny"], ["a", "table1-a"])

    def test_unknown_backend_rejected(self, fast_options):
        campaign = Campaign(["tiny"], ["a"], options=fast_options)
        with pytest.raises(ValueError, match="unknown campaign backend"):
            campaign.run(backend="gpu")


class TestCampaignResults:
    def test_cells_cover_the_grid(self, small_grid_report):
        campaign, report = small_grid_report
        assert len(report) == 4
        assert report.designs() == ["tiny", "wide-edt"]
        assert report.scenarios() == ["table1-a", "table1-c"]
        assert [(c.design, c.scenario) for c in report] == campaign.grid()

    def test_cell_lookup_accepts_letters(self, small_grid_report):
        _, report = small_grid_report
        assert report.cell("tiny", "a") is report.cell("tiny", "table1-a")
        with pytest.raises(KeyError, match="no campaign cell"):
            report.cell("tiny", "e")

    def test_outcomes_match_a_plain_session(self, small_grid_report, fast_options):
        """A campaign cell equals the same scenario run through TestSession."""
        _, report = small_grid_report
        session_report = (
            TestSession.for_design("tiny", options=fast_options)
            .add_scenarios("table1-a", "table1-c")
            .run()
        )
        for key in ("a", "c"):
            assert report.cell("tiny", key).outcome.same_results(session_report[key])

    def test_design_default_edt_applies_to_every_cell(self, small_grid_report):
        _, report = small_grid_report
        assert "edt" not in report.cell("tiny", "a").outcome.extras
        assert report.cell("wide-edt", "a").outcome.extras["edt"]["channels"] == 4

    def test_result_of_returns_raw_atpg_result(self, small_grid_report):
        campaign, report = small_grid_report
        raw = campaign.result_of("tiny", "a")
        assert raw.pattern_count == report.cell("tiny", "a").outcome.pattern_count
        with pytest.raises(KeyError, match="has not been executed"):
            campaign.result_of("tiny", "e")

    def test_json_round_trip(self, small_grid_report):
        _, report = small_grid_report
        restored = CampaignReport.from_json(report.to_json())
        assert restored.same_results(report)
        assert restored.table("tiny") == report.table("tiny")

    def test_on_cell_streams_every_cell(self, fast_options):
        seen = []
        Campaign(["tiny"], ["a", "c"], options=fast_options).run(
            on_cell=lambda cell: seen.append((cell.design, cell.scenario))
        )
        assert sorted(seen) == [("tiny", "table1-a"), ("tiny", "table1-c")]


class TestTable1ByteCompatibility:
    def test_campaign_table_matches_legacy_flow(self, fast_options):
        """One campaign row == the deprecated DelayTestFlow, byte for byte.

        The ``tiny`` registered design is the same device as
        ``DelayTestFlow(size=1, seed=2005, num_chains=4)``; running the five
        paper scenarios over it through the campaign grid must reproduce the
        legacy table exactly (this mirrors the table1-soc acceptance check
        at unit-test scale).
        """
        report = Campaign(["tiny"], ["a", "b", "c", "d", "e"],
                          options=fast_options).run()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            flow = DelayTestFlow(size=1, seed=2005, num_chains=4, options=fast_options)
            flow.run_all()
        assert report.table("tiny") == flow.table1()


class TestCampaignBackends:
    def test_processes_matches_serial(self, small_grid_report, fast_options):
        _, serial_report = small_grid_report
        processes_report = Campaign(
            designs=["tiny", "wide-edt"], scenarios=["a", "c"], options=fast_options
        ).run(executor=Executor(backend="processes", max_workers=2))
        assert processes_report.same_results(serial_report)

    def test_threads_matches_serial(self, small_grid_report, fast_options):
        _, serial_report = small_grid_report
        threads_report = Campaign(
            designs=["tiny", "wide-edt"], scenarios=["a", "c"], options=fast_options
        ).run(executor=Executor(backend="threads"))
        assert threads_report.same_results(serial_report)


class TestCampaignCacheResume:
    def test_rerun_hits_cache_on_every_cell(self, tmp_path, fast_options):
        cache = ResultCache(tmp_path / "cache")
        cold = Campaign(["tiny", "wide-edt"], ["a", "c"], options=fast_options)
        cold_report = cold.with_cache(cache).run()
        assert cold_report.cache_hits() == 0
        warm = Campaign(["tiny", "wide-edt"], ["a", "c"], options=fast_options)
        warm_report = warm.with_cache(cache).run()
        assert warm_report.cache_hits() == len(warm_report) == 4
        assert warm_report.same_results(cold_report)

    def test_interrupted_campaign_resumes_partially(self, tmp_path, fast_options):
        """Cells completed by a smaller campaign are served from cache."""
        cache = ResultCache(tmp_path / "cache")
        Campaign(["tiny"], ["a"], options=fast_options).with_cache(cache).run()
        resumed = Campaign(["tiny"], ["a", "c"], options=fast_options)
        report = resumed.with_cache(cache).run()
        assert report.cache_hits() == 1
        assert report.cell("tiny", "a").cache_hit
        assert not report.cell("tiny", "c").cache_hit

    def test_option_changes_miss_the_cache(self, tmp_path, fast_options):
        cache = ResultCache(tmp_path / "cache")
        Campaign(["tiny"], ["a"], options=fast_options).with_cache(cache).run()
        import dataclasses

        retuned = dataclasses.replace(fast_options, backtrack_limit=9)
        report = Campaign(["tiny"], ["a"], options=retuned).with_cache(cache).run()
        assert report.cache_hits() == 0


class TestWireDegradedResults:
    def test_report_builder_rejects_degraded_event_values(self, fast_options):
        """A serve journal degrades unpicklable run values to a repr string
        (and corrupt pickles to None); the report assembler must name the
        cell and the degradation instead of dying on an AttributeError."""
        from repro.runtime import Event

        campaign = Campaign(designs=["tiny"], scenarios=["a"],
                            options=fast_options)
        plan = campaign.plan()
        _, handle, _ = campaign._report_builder(
            plan, metadata={}, cached=False
        )
        for degraded in ("ScenarioRun(...)", None):
            event = Event(kind="job_finished", plan=plan.name,
                          job=plan.jobs[0].id, value=degraded)
            with pytest.raises(TypeError,
                               match="did not survive the event wire"):
                handle(event)


class TestLegacyRouting:
    def test_run_all_experiments_goes_through_campaign(self, tiny_prepared, cheap_options):
        with pytest.warns(DeprecationWarning, match="run_all_experiments"):
            results = run_all_experiments(tiny_prepared, cheap_options, keys=("a", "c"))
        assert sorted(results) == ["a", "c"]
        session = TestSession.from_prepared(tiny_prepared, cheap_options)
        session.run_scenario("table1-a")
        assert (
            results["a"].pattern_count
            == session.result_of("table1-a").pattern_count
        )
