"""Unit tests for fault list bookkeeping and coverage reporting."""

import pytest

from repro.faults import FaultList, FaultSite, FaultStatus, StuckAtFault


def make_faults(n=10):
    return [StuckAtFault(site=FaultSite(node=i), value=i % 2) for i in range(n)]


def test_deduplication():
    faults = make_faults(5) + make_faults(5)
    flist = FaultList(faults)
    assert len(flist) == 5


def test_status_transitions():
    flist = FaultList(make_faults(4))
    fault = flist.faults[0]
    assert flist.status_of(fault) is FaultStatus.UNDETECTED
    flist.mark_detected(fault, pattern_index=3)
    assert flist.status_of(fault) is FaultStatus.DETECTED
    assert flist.record(fault).detected_by == 3


def test_mark_detected_many_counts_new_only():
    flist = FaultList(make_faults(4))
    first_two = flist.faults[:2]
    assert flist.mark_detected_many(first_two, pattern_index=0) == 2
    assert flist.mark_detected_many(flist.faults[:3], pattern_index=1) == 1


def test_remaining_and_with_status():
    flist = FaultList(make_faults(6))
    flist.mark_detected(flist.faults[0])
    flist.set_status(flist.faults[1], FaultStatus.ATPG_UNTESTABLE)
    flist.set_status(flist.faults[2], FaultStatus.ABORTED)
    assert flist.faults[0] not in flist.remaining()
    assert flist.faults[2] in flist.remaining()
    assert flist.with_status(FaultStatus.ATPG_UNTESTABLE) == [flist.faults[1]]


def test_coverage_report_percentages():
    flist = FaultList(make_faults(10))
    for fault in flist.faults[:6]:
        flist.mark_detected(fault)
    flist.set_status(flist.faults[6], FaultStatus.UNTESTABLE)
    flist.set_status(flist.faults[7], FaultStatus.ATPG_UNTESTABLE)
    report = flist.coverage()
    assert report.total_faults == 10
    assert report.detected == 6
    assert report.fault_coverage == pytest.approx(60.0)
    # Test coverage excludes the proven-untestable fault from the denominator.
    assert report.test_coverage == pytest.approx(100.0 * 6 / 9)
    assert report.atpg_effectiveness == pytest.approx(100.0 * 8 / 10)


def test_weighted_coverage_uses_equivalence_class_sizes():
    flist = FaultList(make_faults(2))
    flist.set_uncollapsed_count(flist.faults[0], 9)
    flist.set_uncollapsed_count(flist.faults[1], 1)
    flist.mark_detected(flist.faults[0])
    weighted = flist.coverage(weighted=True)
    assert weighted.total_faults == 10
    assert weighted.detected == 9
    unweighted = flist.coverage()
    assert unweighted.detected == 1


def test_group_histogram():
    flist = FaultList(make_faults(4))
    flist.mark_detected(flist.faults[0])
    flist.set_group(flist.faults[1], "cross-domain")
    flist.set_group(flist.faults[2], "cross-domain")
    histogram = flist.group_histogram()
    assert histogram["cross-domain"] == 2
    assert histogram["unclassified"] == 1


def test_partition():
    flist = FaultList(make_faults(6))
    even, odd = flist.partition(lambda f: f.site.node % 2 == 0)
    assert len(even) == 3 and len(odd) == 3


def test_empty_coverage_is_100_percent():
    report = FaultList([]).coverage()
    assert report.test_coverage == 100.0
    assert report.atpg_effectiveness == 100.0
