"""Plan/Job structure: validation, JSON round trips, registry, key helpers."""

from __future__ import annotations

import pytest

from repro.engine.cache import job_key, plan_fingerprint
from repro.runtime import (
    Job,
    JobKindNotFound,
    Plan,
    chain,
    handler_for,
    register_job_kind,
)


def _job(job_id: str, **kwargs) -> Job:
    kwargs.setdefault("kind", "noop")
    return Job(id=job_id, **kwargs)


class TestJob:
    def test_requires_id_and_kind(self):
        with pytest.raises(ValueError, match="non-empty id"):
            Job(id="", kind="noop")
        with pytest.raises(ValueError, match="needs a kind"):
            Job(id="a", kind="")

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="retries must be non-negative"):
            Job(id="a", kind="noop", retries=-1)

    def test_deps_coerced_to_tuple(self):
        job = Job(id="b", kind="noop", deps=["a"])
        assert job.deps == ("a",)

    def test_dict_round_trip(self):
        job = Job(
            id="cell:tiny:a", kind="scenario",
            params={"design": "tiny", "scenario": "a"},
            deps=("patterns:tiny:a",), cache_key="deadbeef",
            label="tiny::a", retries=2, if_needed=True,
        )
        assert Job.from_dict(job.to_dict()) == job


class TestPlanValidation:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate job ids"):
            Plan(name="p", jobs=(_job("a"), _job("a")))

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError, match="unknown job 'ghost'"):
            Plan(name="p", jobs=(_job("a", deps=("ghost",)),))

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="dependency cycle"):
            Plan(name="p", jobs=(_job("a", deps=("b",)), _job("b", deps=("a",))))

    def test_topological_order_respects_deps(self):
        plan = Plan(
            name="p",
            jobs=(
                _job("late", deps=("mid",)),
                _job("mid", deps=("early",)),
                _job("early"),
            ),
        )
        assert [job.id for job in plan.topological_order()] == ["early", "mid", "late"]

    def test_dependents_reverse_edges(self):
        plan = Plan(name="p", jobs=(_job("a"), _job("b", deps=("a",)),
                                    _job("c", deps=("a",))))
        assert plan.dependents()["a"] == ("b", "c")
        assert plan.dependents()["c"] == ()


class TestPlanSerialization:
    def _plan(self) -> Plan:
        return Plan(
            name="session:soc",
            jobs=(
                _job("patterns:a", if_needed=True, cache_key="k1", label="a"),
                _job("diagnose:a", deps=("patterns:a",), cache_key="k2",
                     params={"spec": {"scenario": "a"}}),
            ),
            metadata={"design": "soc"},
        )

    def test_json_round_trip_is_lossless(self):
        plan = self._plan()
        restored = Plan.from_json(plan.to_json())
        assert restored == plan
        assert restored.metadata == plan.metadata
        assert [j.to_dict() for j in restored.jobs] == [j.to_dict() for j in plan.jobs]

    def test_resources_never_serialize(self):
        plan = self._plan().with_resources({"designs": {"soc": object()}})
        restored = Plan.from_json(plan.to_json())
        assert restored.resources is None
        assert restored == plan  # resources excluded from equality

    def test_fingerprint_ignores_resources_but_not_structure(self):
        plan = self._plan()
        assert plan.fingerprint == plan.with_resources({"x": 1}).fingerprint
        reshaped = Plan(name=plan.name, jobs=plan.jobs[:1], metadata=plan.metadata)
        assert plan.fingerprint != reshaped.fingerprint
        assert plan.fingerprint == plan_fingerprint(plan.to_dict())

    def test_job_lookup(self):
        plan = self._plan()
        assert plan.job("patterns:a").if_needed
        with pytest.raises(KeyError, match="no job 'nope'"):
            plan.job("nope")


class TestChain:
    def test_chain_links_sequentially(self):
        linked = chain([_job("a"), _job("b"), _job("c", deps=("a",))])
        assert linked[1].deps == ("a",)
        assert set(linked[2].deps) == {"a", "b"}


class TestRegistry:
    def test_unknown_kind_raises(self):
        with pytest.raises(JobKindNotFound, match="no job handler registered"):
            handler_for("definitely-not-registered")

    def test_register_and_resolve(self):
        def handler(resources, params, deps):
            return params["x"]

        register_job_kind("plan-test-kind", handler)
        assert handler_for("plan-test-kind") is handler

    def test_builtin_kinds_registered_by_api_import(self):
        import repro.api  # noqa: F401 - registration side effect

        assert handler_for("scenario").__module__ == "repro.api.session"
        assert handler_for("diagnosis").__module__ == "repro.api.session"


class TestJobKeyHelper:
    def test_job_key_is_content_addressed(self):
        base = job_key("custom", {"a": 1}, design_fp="fp")
        assert base == job_key("custom", {"a": 1}, design_fp="fp")
        assert base != job_key("custom", {"a": 2}, design_fp="fp")
        assert base != job_key("custom", {"a": 1}, design_fp="other")
        assert base != job_key("other", {"a": 1}, design_fp="fp")
