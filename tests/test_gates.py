"""Unit tests for primitive gate evaluation."""

import pytest

from repro.logic import Logic
from repro.netlist import GateType, evaluate_gate, noncontrolling_value


ZERO, ONE, X = Logic.ZERO, Logic.ONE, Logic.X


class TestEvaluateGate:
    @pytest.mark.parametrize(
        "gtype, inputs, expected",
        [
            (GateType.AND, [ONE, ONE], ONE),
            (GateType.AND, [ONE, ZERO], ZERO),
            (GateType.AND, [X, ZERO], ZERO),
            (GateType.AND, [X, ONE], X),
            (GateType.NAND, [ONE, ONE], ZERO),
            (GateType.NAND, [ZERO, X], ONE),
            (GateType.OR, [ZERO, ZERO], ZERO),
            (GateType.OR, [X, ONE], ONE),
            (GateType.OR, [X, ZERO], X),
            (GateType.NOR, [ZERO, ZERO], ONE),
            (GateType.XOR, [ONE, ZERO], ONE),
            (GateType.XOR, [ONE, ONE], ZERO),
            (GateType.XOR, [X, ONE], X),
            (GateType.XNOR, [ONE, ONE], ONE),
            (GateType.NOT, [ONE], ZERO),
            (GateType.BUF, [X], X),
            (GateType.TIE0, [], ZERO),
            (GateType.TIE1, [], ONE),
        ],
    )
    def test_truth_tables(self, gtype, inputs, expected):
        assert evaluate_gate(gtype, inputs) is expected

    def test_three_input_gates(self):
        assert evaluate_gate(GateType.AND, [ONE, ONE, ONE]) is ONE
        assert evaluate_gate(GateType.OR, [ZERO, ZERO, ONE]) is ONE
        assert evaluate_gate(GateType.XOR, [ONE, ONE, ONE]) is ONE

    def test_mux_select_known(self):
        assert evaluate_gate(GateType.MUX2, [ZERO, ONE, ZERO]) is ONE
        assert evaluate_gate(GateType.MUX2, [ONE, ONE, ZERO]) is ZERO

    def test_mux_select_unknown(self):
        assert evaluate_gate(GateType.MUX2, [X, ONE, ONE]) is ONE
        assert evaluate_gate(GateType.MUX2, [X, ONE, ZERO]) is X

    def test_z_treated_as_x(self):
        assert evaluate_gate(GateType.AND, [Logic.Z, ONE]) is X
        assert evaluate_gate(GateType.AND, [Logic.Z, ZERO]) is ZERO

    def test_arity_errors(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.NOT, [ONE, ONE])
        with pytest.raises(ValueError):
            evaluate_gate(GateType.AND, [ONE])
        with pytest.raises(ValueError):
            evaluate_gate(GateType.MUX2, [ONE, ONE])


class TestGateMetadata:
    def test_controlling_values(self):
        assert GateType.AND.controlling_value is ZERO
        assert GateType.NAND.controlling_value is ZERO
        assert GateType.OR.controlling_value is ONE
        assert GateType.NOR.controlling_value is ONE
        assert GateType.XOR.controlling_value is None

    def test_noncontrolling_values(self):
        assert noncontrolling_value(GateType.AND) is ONE
        assert noncontrolling_value(GateType.NOR) is ZERO
        assert noncontrolling_value(GateType.XOR) is None

    def test_inverting(self):
        assert GateType.NAND.is_inverting
        assert GateType.NOT.is_inverting
        assert not GateType.AND.is_inverting
        assert not GateType.MUX2.is_inverting

    def test_arity_metadata(self):
        assert GateType.MUX2.min_inputs == GateType.MUX2.max_inputs == 3
        assert GateType.AND.max_inputs is None
        assert GateType.TIE0.min_inputs == 0
