"""Tests for DesignSpec, the design registry, the staged design pipeline,
and design-fingerprint / cache-key stability."""

import os
import subprocess
import sys

import pytest

from repro.api import (
    DesignNotFound,
    DesignPipeline,
    DesignSpec,
    DomainSpec,
    TestSession,
    design_names,
    get_design,
    prepare_from_spec,
    register_design,
    unregister_design,
)
from repro.api.design import DESIGN_STAGES
from repro.circuits import two_domain_crossing
from repro.core import prepare_design
from repro.dft import EdtConfig
from repro.engine import campaign_cell_key, design_fingerprint, design_spec_fingerprint
from repro.netlist.verilog import write_verilog


@pytest.fixture(scope="module")
def rich_spec():
    """A spec exercising every JSON-relevant field class."""
    return DesignSpec(
        name="rich",
        description="all fields set",
        size=1,
        seed=99,
        extra_domains=(100.0, 37.5),
        inter_domain_factor=2.0,
        num_chains=5,
        edt=EdtConfig(input_channels=3, lfsr_length=24),
        occ_style="enhanced",
        trigger_latency=4,
        tags=("unit", "rich"),
    )


class TestDesignSpecSerialization:
    def test_json_round_trip_is_lossless(self, rich_spec):
        restored = DesignSpec.from_json(rich_spec.to_json())
        assert restored == rich_spec
        assert restored.fingerprint == rich_spec.fingerprint

    def test_round_trip_with_custom_netlist(self):
        spec = DesignSpec(
            name="custom",
            netlist_verilog=write_verilog(two_domain_crossing(width=4)),
            num_chains=2,
            domains=(
                DomainSpec("a", "clk_a", 150.0),
                DomainSpec("b", "clk_b", 75.0),
            ),
        )
        restored = DesignSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.domains[0] == DomainSpec("a", "clk_a", 150.0)

    def test_from_dict_normalizes_lists(self, rich_spec):
        import json

        payload = json.loads(rich_spec.to_json())
        assert isinstance(payload["extra_domains"], list)
        restored = DesignSpec.from_dict(payload)
        assert restored.extra_domains == (100.0, 37.5)
        assert restored.tags == ("unit", "rich")

    def test_validation_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="non-empty name"):
            DesignSpec(name="")
        with pytest.raises(ValueError, match="size"):
            DesignSpec(name="x", size=0)
        with pytest.raises(ValueError, match="OCC style"):
            DesignSpec(name="x", occ_style="fancy")
        with pytest.raises(ValueError, match="describe its domains"):
            DesignSpec(name="x", netlist_verilog="module m(); endmodule")


class TestDesignRegistry:
    def test_builtins_are_registered(self):
        names = design_names()
        for expected in (
            "table1-soc", "tiny", "wide-edt", "many-domain", "interdomain-heavy"
        ):
            assert expected in names

    def test_lookup_unknown_lists_available(self):
        with pytest.raises(DesignNotFound, match="available designs:.*table1-soc"):
            get_design("nope")

    def test_tag_filter(self):
        assert "table1-soc" in design_names(tag="paper")
        assert "table1-soc" not in design_names(tag="variant")
        assert set(design_names(tag="variant")) >= {"tiny", "wide-edt"}

    def test_duplicate_registration_rejected(self):
        spec = DesignSpec(name="dup-test")
        register_design(spec)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_design(spec)
            register_design(spec.with_overrides(seed=1), replace_existing=True)
            assert get_design("dup-test").seed == 1
        finally:
            unregister_design("dup-test")
        with pytest.raises(DesignNotFound):
            get_design("dup-test")

    def test_table1_soc_matches_legacy_defaults(self):
        spec = get_design("table1-soc")
        assert (spec.size, spec.seed, spec.num_chains) == (2, 2005, 6)


class TestFingerprintStability:
    def test_equal_specs_share_fingerprints(self, rich_spec):
        clone = DesignSpec.from_json(rich_spec.to_json())
        assert design_spec_fingerprint(clone) == design_spec_fingerprint(rich_spec)

    def test_fingerprint_is_stable_across_processes(self):
        """Same spec -> same engine-cache key in a fresh interpreter."""
        spec = get_design("wide-edt")
        code = (
            "from repro.api import get_design\n"
            "from repro.engine import design_spec_fingerprint\n"
            "print(design_spec_fingerprint(get_design('wide-edt')))\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env=env, check=True,
        )
        assert child.stdout.strip() == design_spec_fingerprint(spec)

    def test_changed_edt_width_changes_cache_key(self):
        base = get_design("wide-edt")
        widened = base.with_overrides(edt=EdtConfig(input_channels=8))
        scenario = "dummy-scenario"
        key_base = campaign_cell_key(design_spec_fingerprint(base), scenario)
        key_wide = campaign_cell_key(design_spec_fingerprint(widened), scenario)
        assert key_base != key_wide
        # and an unchanged spec reproduces the identical key
        assert key_base == campaign_cell_key(
            design_spec_fingerprint(base.with_overrides()), scenario
        )

    def test_structural_knobs_change_fingerprint(self):
        base = get_design("tiny")
        assert design_spec_fingerprint(base) != design_spec_fingerprint(
            base.with_overrides(num_chains=5)
        )
        assert design_spec_fingerprint(base) != design_spec_fingerprint(
            base.with_overrides(occ_style="enhanced")
        )


class TestDesignPipeline:
    def test_pipeline_matches_legacy_prepare_design(self):
        """The staged pipeline and the legacy shim build the same model."""
        spec = DesignSpec(name="adhoc", size=1, seed=11, num_chains=4)
        via_pipeline = prepare_from_spec(spec)
        via_legacy = prepare_design(size=1, seed=11, num_chains=4)
        assert design_fingerprint(via_pipeline.model) == design_fingerprint(
            via_legacy.model
        )
        assert via_pipeline.scan.num_chains == via_legacy.scan.num_chains

    def test_stage_names_and_timings(self):
        prepared = prepare_from_spec("tiny")
        assert [name for name, _ in DESIGN_STAGES] == [
            "build", "scan", "clocking", "model"
        ]
        assert set(prepared.build_seconds) == {"build", "scan", "clocking", "model"}
        assert prepared.spec is not None and prepared.spec.name == "tiny"

    def test_custom_stage_splices_in(self):
        seen = []

        def probe(build):
            seen.append((build.spec.name, build.scan is not None))

        pipeline = DesignPipeline().with_stage("probe", probe, after="scan")
        prepared = pipeline.prepare(get_design("tiny"))
        assert seen == [("tiny", True)]
        assert "probe" in prepared.build_seconds
        with pytest.raises(KeyError, match="no design stage"):
            DesignPipeline().with_stage("x", probe, after="nope")

    def test_variant_families_build(self):
        many = prepare_from_spec("many-domain")
        assert many.functional_domain_names == ["fast", "slow", "aux0", "aux1"]
        assert many.occ.enhanced
        wide = prepare_from_spec("wide-edt")
        assert wide.scan.num_chains == 12
        assert wide.edt is not None
        assert wide.edt.decompressor.num_channels == 4
        heavy = prepare_from_spec("interdomain-heavy")
        # 4x the cross-domain cloud of the same-size tiny design
        tiny = prepare_from_spec("tiny")
        assert len(heavy.netlist.gates) > len(tiny.netlist.gates)

    def test_fractional_inter_domain_factor_builds(self):
        """Sub-unity factors shrink the cross cloud without crashing."""
        prepared = prepare_from_spec(
            DesignSpec(name="thin-cross", size=1, num_chains=4,
                       inter_domain_factor=0.2)
        )
        assert prepared.model is not None
        with pytest.raises(ValueError, match="inter_domain_factor"):
            prepare_from_spec(
                DesignSpec(name="bad-cross", size=1, inter_domain_factor=0.0)
            )

    def test_custom_netlist_design_prepares(self):
        spec = DesignSpec(
            name="custom-xing",
            netlist_verilog=write_verilog(two_domain_crossing(width=4)),
            num_chains=2,
            domains=(
                DomainSpec("a", "clk_a", 150.0),
                DomainSpec("b", "clk_b", 75.0),
            ),
        )
        prepared = prepare_from_spec(spec)
        assert prepared.all_domain_names == ["a", "b"]
        assert prepared.scan.num_chains == 2
        assert prepared.domain_map.flops_in("a")
        # the dangling reset input keeps constrain_reset scenarios satisfiable
        assert spec.reset_net in prepared.netlist.inputs


class TestSessionForDesign:
    def test_session_builds_registered_design(self, cheap_options):
        session = TestSession.for_design("tiny", options=cheap_options)
        assert session.prepared.scan.num_chains == 4
        assert session.design_spec.name == "tiny"

    def test_structural_builders_override_the_spec(self, cheap_options):
        session = TestSession.for_design("tiny", options=cheap_options).with_chains(5)
        assert session.design_spec.num_chains == 5
        assert session.prepared.scan.num_chains == 5

    def test_design_session_runs_scenarios(self, cheap_options):
        report = (
            TestSession.for_design("tiny", options=cheap_options)
            .add_scenario("table1-a")
            .run()
        )
        assert report["a"].pattern_count > 0
        assert report.session["design_spec"] == "tiny"
