"""Unit tests for netlist design-rule validation."""

from repro.netlist import (
    FlipFlop,
    Gate,
    GateType,
    Netlist,
    validate_netlist,
)


def test_clean_netlist_passes(c17_netlist):
    report = validate_netlist(c17_netlist)
    assert report.ok
    assert report.errors == []


def test_undriven_net_is_error():
    netlist = Netlist("bad")
    netlist.add_input("a")
    netlist.add_gate(Gate("g", GateType.AND, ("a", "floating"), "y"))
    netlist.add_output("y")
    report = validate_netlist(netlist)
    assert not report.ok
    assert any(v.rule == "undriven-net" for v in report.errors)


def test_undriven_net_can_be_downgraded():
    netlist = Netlist("block")
    netlist.add_input("a")
    netlist.add_gate(Gate("g", GateType.AND, ("a", "external"), "y"))
    netlist.add_output("y")
    report = validate_netlist(netlist, allow_floating_inputs=True)
    assert report.ok
    assert any(v.rule == "undriven-net" for v in report.warnings)


def test_dangling_output_is_warning():
    netlist = Netlist("dangle")
    netlist.add_input("a")
    netlist.add_gate(Gate("g", GateType.NOT, ("a",), "unused"))
    report = validate_netlist(netlist)
    assert report.ok
    assert any(v.rule == "dangling-output" for v in report.warnings)


def test_combinational_loop_is_error():
    netlist = Netlist("loop")
    netlist.add_input("a")
    netlist.add_gate(Gate("g1", GateType.AND, ("a", "n2"), "n1"))
    netlist.add_gate(Gate("g2", GateType.OR, ("n1", "a"), "n2"))
    netlist.add_output("n2")
    report = validate_netlist(netlist)
    assert any(v.rule == "combinational-loop" for v in report.errors)


def test_clock_as_data_is_warning():
    netlist = Netlist("cgc")
    netlist.add_input("clk")
    netlist.add_input("en")
    netlist.declare_clock("clk")
    netlist.add_gate(Gate("g", GateType.AND, ("clk", "en"), "gated"))
    netlist.add_output("gated")
    report = validate_netlist(netlist)
    assert report.ok
    assert any(v.rule == "clock-as-data" for v in report.warnings)


def test_partial_scan_cell_is_error():
    netlist = Netlist("scan")
    netlist.add_input("clk")
    netlist.add_input("d")
    netlist.declare_clock("clk")
    netlist.add_flop(FlipFlop(name="ff", d="d", q="q", clock="clk", scan_in="si"))
    netlist.add_output("q")
    report = validate_netlist(netlist)
    assert any(v.rule == "partial-scan-cell" for v in report.errors)


def test_raise_on_error():
    netlist = Netlist("bad")
    netlist.add_input("a")
    netlist.add_gate(Gate("g", GateType.AND, ("a", "floating"), "y"))
    netlist.add_output("y")
    report = validate_netlist(netlist)
    import pytest

    with pytest.raises(Exception):
        report.raise_on_error()


def test_violation_string_format():
    netlist = Netlist("dangle")
    netlist.add_input("a")
    netlist.add_gate(Gate("g", GateType.NOT, ("a",), "unused"))
    report = validate_netlist(netlist)
    text = str(report.warnings[0])
    assert "dangling-output" in text and "warning" in text
