"""Unit tests for the OCC controller protocol and the ATE export layer."""

from repro.clocking import (
    AteAction,
    CapturePulse,
    NamedCaptureProcedure,
    OccController,
    enhanced_cpf_procedures,
    simple_cpf_procedures,
)
from repro.dft import insert_scan
from repro.circuits import two_domain_crossing
from repro.logic import Logic
from repro.patterns import (
    PatternSet,
    TestPattern,
    export_stil,
    parse_stil_pattern_count,
    vector_memory_report,
)


PROC = simple_cpf_procedures(["a"])[0]
INTER = NamedCaptureProcedure(name="a_to_b", pulses=(CapturePulse.of("a"), CapturePulse.of("b")))


class TestOccProtocol:
    def test_capture_protocol_shape(self):
        occ = OccController()
        steps = occ.capture_protocol(PROC)
        actions = [step.action for step in steps]
        # scan_en low -> trigger pulse -> wait -> strobe -> scan_en high.
        assert AteAction.PULSE_SCAN_CLK in actions
        assert AteAction.WAIT_PLL_CYCLES in actions
        assert actions[-1] is AteAction.SET_SIGNAL
        drop = next(s for s in steps if s.action is AteAction.SET_SIGNAL and s.signal == "scan_en"
                    and s.value == 0)
        trigger_index = actions.index(AteAction.PULSE_SCAN_CLK)
        assert steps.index(drop) < trigger_index

    def test_wait_scales_with_pulse_count(self):
        occ = OccController()
        two = next(s for s in occ.capture_protocol(PROC) if s.action is AteAction.WAIT_PLL_CYCLES)
        four_proc = enhanced_cpf_procedures(["a"], max_pulses=4, inter_domain=False)[-1]
        four = next(s for s in occ.capture_protocol(four_proc)
                    if s.action is AteAction.WAIT_PLL_CYCLES)
        assert four.count > two.count

    def test_enhanced_configuration_values(self):
        occ = OccController(enhanced=True)
        values = occ.configuration_values(INTER)
        # Capture domain (b) is delayed, launch domain (a) is not.
        assert values["b_delay_cfg"] == 1
        assert values["a_delay_cfg"] == 0
        plain = OccController(enhanced=False).configuration_values(INTER)
        assert plain == {}

    def test_tester_cycles_dominated_by_shift(self):
        occ = OccController()
        assert occ.tester_cycles(PROC, chain_length=100) == 104

    def test_describe_is_readable(self):
        text = OccController().describe(PROC, chain_length=8)
        assert "pulse_scan_clk" in text
        assert "shift" in text.lower() or "Shift" in text


class TestAteExport:
    def setup_method(self):
        netlist, self.scan = insert_scan(two_domain_crossing(4), num_chains=2)
        self.occ = OccController()
        cells = [c for chain in self.scan.chains for c in chain.cells]
        self.patterns = PatternSet()
        for i in range(3):
            self.patterns.add(
                TestPattern(
                    procedure=PROC,
                    scan_load={cells[i]: Logic.ONE, cells[i + 1]: Logic.ZERO},
                    pi_frames=[{"da_0": Logic.ONE}, {"da_0": Logic.ONE}],
                    expected_outputs={"ya_0": Logic.ZERO},
                )
            )

    def test_stil_export_structure(self):
        text = export_stil(self.patterns, self.scan, self.occ, design_name="dut")
        assert "STIL 1.0" in text
        assert "Procedures {" in text
        assert parse_stil_pattern_count(text) == 3
        for chain in self.scan.chains:
            assert chain.scan_in in text
            assert chain.scan_out in text

    def test_vector_memory_report(self):
        uncompressed = vector_memory_report(self.patterns, self.scan, self.occ)
        compressed = vector_memory_report(self.patterns, self.scan, self.occ, external_channels=1)
        assert uncompressed.total_bits > compressed.total_bits
        assert uncompressed.num_patterns == 3
        assert compressed.fits_in(uncompressed.total_megabits)
