"""ServeServer + ServeClient integration: the control protocol, tenant
stores, cancellation, and the kill-and-restart recovery guarantee.

Everything here runs the server's *local* execution path (no remote
workers); the remote backend has its own suite in test_serve_remote.py.
"""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.runtime import Job, Plan, register_job_kind
from repro.serve import (
    ServeClient,
    ServeError,
    ServeQueue,
    ServeServer,
    TenantStore,
    tenant_namespace,
)


@register_job_kind("serve-value")
def _serve_value(resources, params, deps):
    return {"value": params["x"] * resources.get("factor", 1)}


@register_job_kind("serve-nap")
def _serve_nap(resources, params, deps):
    time.sleep(params.get("seconds", 0.1))
    return params["x"]


@register_job_kind("serve-payload")
def _serve_payload(resources, params, deps):
    return b"x" * params.get("bytes", 4096)


def value_plan(count: int = 4, *, name: str = "vals", keyed: bool = True) -> Plan:
    return Plan(
        name=name,
        jobs=tuple(
            Job(id=f"v:{i}", kind="serve-value", params={"x": i},
                cache_key=f"{name}-{i}" if keyed else None)
            for i in range(count)
        ),
    )


def nap_plan(count: int, seconds: float, *, name: str = "naps") -> Plan:
    return Plan(
        name=name,
        jobs=tuple(
            Job(id=f"n:{i}", kind="serve-nap",
                params={"x": i, "seconds": seconds},
                cache_key=f"{name}-{i}")
            for i in range(count)
        ),
    )


@pytest.fixture()
def service(tmp_path):
    server = ServeServer(tmp_path / "root", poll_seconds=0.02)
    server.start()
    yield server, ServeClient(server.address)
    server.stop()


class TestControlPlane:
    def test_ping_and_empty_stats(self, service):
        server, client = service
        assert client.ping()
        stats = client.stats()
        assert stats["queue"]["queued"] == 0
        assert stats["workers"] == []

    def test_submit_wait_results_round_trip(self, service):
        server, client = service
        job_id = client.submit(value_plan(), resources={"factor": 10})
        final = client.wait(job_id, timeout=30)
        assert final["state"] == "done"
        assert final["summary"]["executed"] == 4
        results = client.results(job_id)
        assert {k: e.value["value"] for k, e in results.items()} == {
            f"v:{i}": i * 10 for i in range(4)
        }

    def test_resubmission_is_served_from_the_tenant_cache(self, service):
        server, client = service
        plan = value_plan(name="cached")
        first = client.wait(client.submit(plan), timeout=30)
        assert first["summary"]["executed"] == 4
        second = client.wait(client.submit(plan), timeout=30)
        assert second["summary"]["executed"] == 0
        assert second["summary"]["skipped_cache"] == 4
        # The cache-resumed attempt still carries every job's value.
        results = client.results(2)
        assert len(results) == 4
        assert all(e.kind == "job_skipped" for e in results.values())

    def test_tenants_do_not_share_caches(self, service):
        server, client = service
        plan = value_plan(name="isolated")
        a = client.wait(client.submit(plan, tenant="alpha"), timeout=30)
        b = client.wait(client.submit(plan, tenant="beta"), timeout=30)
        assert a["summary"]["executed"] == 4
        assert b["summary"]["executed"] == 4  # no cross-tenant hits
        again = client.wait(client.submit(plan, tenant="alpha"), timeout=30)
        assert again["summary"]["skipped_cache"] == 4
        usage = client.stats()["store"]["tenants"]
        assert usage["alpha"]["entries"] == 4
        assert usage["beta"]["entries"] == 4

    def test_event_tail_snapshot_and_resume(self, service):
        server, client = service
        job_id = client.submit(value_plan(2, name="tailed"))
        client.wait(job_id, timeout=30)
        tail = list(client.events(job_id))
        kinds = [event.kind for _, event in tail]
        assert kinds[0] == "plan_started"
        assert kinds[-1] == "plan_finished"
        assert kinds.count("job_finished") == 2
        # Resuming from a mid-stream seq yields exactly the remainder.
        cut = tail[2][0]
        rest = list(client.events(job_id, after=cut))
        assert [seq for seq, _ in rest] == [seq for seq, _ in tail[3:]]

    def test_live_wait_streams_events_as_they_happen(self, service):
        server, client = service
        kinds: list[str] = []
        job_id = client.submit(nap_plan(3, 0.05, name="live"))
        client.wait(job_id, timeout=30, on_event=lambda e: kinds.append(e.kind))
        assert "plan_started" in kinds and "plan_finished" in kinds
        assert kinds.count("job_finished") == 3

    def test_cancel_a_running_job(self, service):
        server, client = service
        job_id = client.submit(nap_plan(40, 0.1, name="doomed"))
        for _, event in client.events(job_id, follow=True, timeout=60):
            if event.kind == "job_finished":
                state = client.cancel(job_id)
                assert state in ("running", "cancelled")
                break
        final = client.wait(job_id, timeout=60)
        assert final["state"] == "cancelled"
        assert final["summary"]["executed"] < 40

    def test_metadata_can_pin_a_local_backend(self, service):
        server, client = service
        job_id = client.submit(value_plan(3, name="pinned"),
                               metadata={"backend": "threads"})
        final = client.wait(job_id, timeout=30)
        assert final["state"] == "done"
        assert final["summary"]["backend"] == "threads"

    def test_failing_plan_lands_in_failed_state(self, service):
        server, client = service
        plan = Plan(name="boom", jobs=(
            Job(id="bad", kind="no-such-kind", params={}),
        ))
        job_id = client.submit(plan)
        final_state = None
        deadline = time.time() + 30
        while time.time() < deadline:
            status = client.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                final_state = status
                break
            time.sleep(0.05)
        assert final_state is not None and final_state["state"] == "failed"
        assert "no-such-kind" in final_state["error"]


class TestProtocolRobustness:
    def test_unknown_op_is_an_error_reply(self, service):
        server, client = service
        with pytest.raises(ServeError, match="unknown op"):
            client._request({"op": "teleport"})

    def test_unknown_job_ids_are_error_replies(self, service):
        server, client = service
        with pytest.raises(ServeError, match="no job"):
            client.status(999)
        with pytest.raises(ServeError, match="no job"):
            client.cancel(999)
        with pytest.raises(ServeError, match="no job"):
            list(client.events(999))
        with pytest.raises(ServeError, match="no job"):
            client.results(999)

    def test_bad_tenant_rejected_at_the_door(self, service):
        server, client = service
        with pytest.raises(ServeError, match="namespace"):
            client.submit(value_plan(1), tenant="../escape")
        assert client.stats()["queue"]["queued"] == 0

    def test_garbage_line_gets_an_error_not_a_hang(self, service):
        server, client = service
        sock = socket.create_connection(server.address, timeout=5)
        try:
            sock.sendall(b"this is not json\n")
            reply = json.loads(sock.makefile("rb").readline())
        finally:
            sock.close()
        assert reply["ok"] is False


class TestRestartRecovery:
    def test_killed_server_resumes_with_zero_reruns(self, tmp_path):
        """The acceptance scenario: kill mid-campaign, restart, and every
        plan job completed before the crash must be served from cache."""
        root = tmp_path / "root"
        server = ServeServer(root, poll_seconds=0.02)
        server.start()
        client = ServeClient(server.address)
        job_id = client.submit(nap_plan(8, 0.1, name="crashy"))

        finished_before_crash: set[str] = set()
        for _, event in client.events(job_id, follow=True, timeout=60):
            if event.kind == "job_finished":
                finished_before_crash.add(event.job)
                if len(finished_before_crash) >= 2:
                    break
        server.stop(abort=True)  # simulated kill: claim stays un-acked

        # The queue row is exactly what a dead process leaves behind.
        peek = ServeQueue(root / "queue.sqlite")
        assert peek.status(job_id)["state"] == "running"
        peek.close()

        revived = ServeServer(root, poll_seconds=0.02)
        revived.start()
        try:
            client = ServeClient(revived.address)
            final = client.wait(job_id, timeout=60)
            assert final["state"] == "done"
            assert final["attempts"] == 2
            summary = final["summary"]
            assert summary["executed"] + summary["skipped_cache"] == 8
            assert summary["skipped_cache"] >= len(finished_before_crash)

            # Zero re-runs: every job that finished before the crash came
            # back as a cache skip in the second attempt, never re-executed.
            second_attempt: list = []
            plan_starts = 0
            for _, event in client.events(job_id):
                if event.kind == "plan_started":
                    plan_starts += 1
                if plan_starts == 2:
                    second_attempt.append(event)
            assert plan_starts == 2, "the journal must keep both attempts"
            rerun = {e.job for e in second_attempt if e.kind == "job_finished"}
            assert not (rerun & finished_before_crash)
            skipped = {e.job for e in second_attempt
                       if e.kind == "job_skipped" and e.reason == "cache"}
            assert finished_before_crash <= skipped

            # The journal doubles as the result store across attempts.
            results = client.results(job_id)
            assert {k: e.value for k, e in results.items()} == {
                f"n:{i}": i for i in range(8)
            }
        finally:
            revived.stop()


class TestStreamLiveness:
    def test_wait_with_no_deadline_survives_quiet_gaps(self, tmp_path):
        """A follow stream must not inherit the client's short request
        timeout: one slow plan job means a long event-less gap, and an
        unbounded wait() has to sit through it (server keepalives + a
        blocking read), not die on a socket timeout."""
        server = ServeServer(tmp_path / "root", poll_seconds=0.02)
        server.start()
        try:
            client = ServeClient(server.address, timeout=0.4)
            job_id = client.submit(nap_plan(1, 1.2, name="quiet"))
            final = client.wait(job_id)  # timeout=None == forever
            assert final["state"] == "done"
        finally:
            server.stop()

    def test_finite_wait_deadline_raises_timeout(self, service):
        server, client = service
        job_id = client.submit(nap_plan(1, 2.0, name="slow"))
        with pytest.raises(TimeoutError, match="event stream"):
            client.wait(job_id, timeout=0.3)
        client.cancel(job_id)


class TestAuth:
    def test_token_checked_on_every_op_but_ping(self, tmp_path):
        server = ServeServer(tmp_path / "root", poll_seconds=0.02,
                             auth_token="s3cret")
        server.start()
        try:
            anonymous = ServeClient(server.address)
            assert anonymous.ping()  # health checks stay open
            with pytest.raises(ServeError, match="authentication failed"):
                anonymous.submit(value_plan(1, name="denied"))
            with pytest.raises(ServeError, match="authentication failed"):
                anonymous.stats()
            wrong = ServeClient(server.address, token="guess")
            with pytest.raises(ServeError, match="authentication failed"):
                wrong.stats()
            trusted = ServeClient(server.address, token="s3cret")
            final = trusted.wait(trusted.submit(value_plan(2, name="auth")),
                                 timeout=30)
            assert final["state"] == "done"
        finally:
            server.stop()

    def test_non_loopback_bind_refused_without_token(self, tmp_path):
        with pytest.raises(ValueError, match="auth_token"):
            ServeServer(tmp_path / "root", host="0.0.0.0")


class TestGracefulStop:
    def test_stop_waits_out_the_running_job(self, tmp_path):
        """stop(abort=False) must let the in-flight job finish normally —
        even past any join grace — and only then close the queue, so the
        job lands in a terminal state instead of dying on a closed db."""
        root = tmp_path / "root"
        server = ServeServer(root, poll_seconds=0.02)
        server.start()
        client = ServeClient(server.address)
        job_id = client.submit(nap_plan(4, 0.15, name="draining"))
        for _, event in client.events(job_id, follow=True, timeout=30):
            if event.kind == "job_started":
                break  # the runner is mid-plan right now
        server.stop()
        peek = ServeQueue(root / "queue.sqlite")
        try:
            status = peek.status(job_id)
            assert status["state"] == "done"
            assert status["summary"]["executed"] == 4
        finally:
            peek.close()


class TestServerMetrics:
    def test_counters_land_in_the_configured_registry(self, tmp_path):
        from repro.obs import Telemetry

        telemetry = Telemetry.on()
        server = ServeServer(tmp_path / "root", poll_seconds=0.02,
                             telemetry=telemetry)
        server.start()
        try:
            client = ServeClient(server.address)
            final = client.wait(client.submit(value_plan(2, name="counted")),
                                timeout=30)
            assert final["state"] == "done"
        finally:
            server.stop()
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters.get("serve.jobs_submitted") == 1
        assert counters.get("serve.jobs_started") == 1
        assert counters.get("serve.jobs_done") == 1


class TestTenantStore:
    def test_namespace_validation(self):
        assert tenant_namespace("acme") == "tenant-acme"
        with pytest.raises(ValueError):
            tenant_namespace("../up")

    def test_quota_enforcement_evicts_oldest(self, tmp_path):
        store = TenantStore(tmp_path / "cache")
        cache = store.cache_for("acme")
        for i in range(4):
            cache.put(f"{i:02x}" + "a" * 62, b"x" * 1024)
        store.set_quota("acme", 2048)
        outcome = store.enforce("acme")
        assert outcome["removed"] >= 2
        assert store.usage()["acme"]["payload_bytes"] <= 2048

    def test_default_quota_applies_to_every_tenant(self, tmp_path):
        store = TenantStore(tmp_path / "cache", default_quota_bytes=1024)
        for tenant in ("a1", "b2"):
            cache = store.cache_for(tenant)
            for i in range(3):
                cache.put(f"{i:02x}" + "c" * 62, b"y" * 1024)
        store.enforce_all()
        usage = store.usage()
        assert all(info["payload_bytes"] <= 1024 for info in usage.values())

    def test_no_quota_means_no_eviction(self, tmp_path):
        store = TenantStore(tmp_path / "cache")
        cache = store.cache_for("acme")
        cache.put("aa" + "d" * 62, b"z" * 4096)
        assert store.enforce("acme")["removed"] == 0
