"""Unit tests for the engine: kernel compiler, scheduler plumbing, cache."""

from __future__ import annotations

import random

import pytest

from repro.api import ScenarioSpec, TestSession
from repro.api.scenarios import table1_scenario
from repro.atpg import AtpgOptions
from repro.atpg.random_fill import derive_rng
from repro.circuits import random_combinational, random_sequential
from repro.engine import (
    BACKENDS,
    ENGINE_VERSION,
    FaultSimScheduler,
    ResultCache,
    compile_circuit,
    design_fingerprint,
    scenario_key,
    spec_fingerprint,
)
from repro.faults import all_stuck_at_faults, collapse_faults
from repro.fault_sim.stuck_at import propagate_fault_packed
from repro.logic import Logic
from repro.simulation import build_model
from repro.simulation.parallel_sim import pack_patterns, simulate_packed


def _random_assignments(model, rng, num_patterns=48):
    """Random batches with a 0/1/X mix on every source node."""
    patterns = []
    for _ in range(num_patterns):
        assignment = {}
        for idx in model.pi_nodes + model.ppi_nodes + model.ram_out_nodes:
            roll = rng.random()
            assignment[idx] = (
                Logic.ONE if roll < 0.4 else Logic.ZERO if roll < 0.8 else Logic.X
            )
        patterns.append(assignment)
    return patterns


def _random_packed(model, rng, num_patterns=48):
    return pack_patterns(model, _random_assignments(model, rng, num_patterns))


class TestKernelCompiler:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_compiled_simulation_matches_interpreted(self, seed):
        model = build_model(random_combinational(8, 60, 6, seed=seed))
        compiled = compile_circuit(model)
        assignments = _random_assignments(model, random.Random(seed), num_patterns=64)
        reference = pack_patterns(model, assignments)
        candidate = pack_patterns(model, assignments)
        simulate_packed(model, reference)
        compiled.simulate(candidate)
        assert candidate.can0 == reference.can0
        assert candidate.can1 == reference.can1

    @pytest.mark.parametrize("seed", [3, 11])
    def test_compiled_propagation_matches_interpreted(self, seed):
        model = build_model(random_sequential(6, 8, 70, 4, seed=seed))
        compiled = compile_circuit(model)
        packed = _random_packed(model, random.Random(seed))
        simulate_packed(model, packed)
        observation = model.observation_nodes()
        faults = collapse_faults(model, all_stuck_at_faults(model)).representatives
        for fault in faults:
            expected = propagate_fault_packed(model, packed, fault, observation)
            assert compiled.propagate_stuck_at(packed, fault, observation) == expected

    def test_compile_is_memoised_per_model(self):
        model = build_model(random_combinational(4, 10, 2, seed=5))
        assert compile_circuit(model) is compile_circuit(model)

    def test_compiled_memo_survives_pickling(self):
        import pickle

        model = build_model(random_combinational(4, 10, 2, seed=5))
        compile_circuit(model)
        clone = pickle.loads(pickle.dumps(model))
        assert "_engine_compiled" not in clone.__dict__
        assert compile_circuit(clone).num_nodes == model.num_nodes


class TestSchedulerPlumbing:
    def test_unknown_backend_rejected(self):
        model = build_model(random_combinational(4, 10, 2, seed=5))
        with pytest.raises(ValueError, match="unknown engine backend"):
            FaultSimScheduler(model, backend="gpu")

    def test_scenario_spec_backend_validated(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            ScenarioSpec(
                name="bad-backend",
                description="",
                procedures=lambda prepared: [],
                backend="quantum",
            )

    def test_session_with_backend_updates_options(self):
        session = TestSession.for_soc(size=1).with_backend(
            "processes", shards=3, workers=2
        )
        assert session.options.sim_backend == "processes"
        assert session.options.sim_shards == 3
        assert session.options.sim_workers == 2
        with pytest.raises(ValueError, match="unknown engine backend"):
            session.with_backend("gpu")

    def test_with_backend_preserves_configured_sharding(self):
        session = TestSession.for_soc(size=1).with_options(
            sim_shards=8, sim_workers=8
        ).with_backend("processes")
        assert session.options.sim_shards == 8
        assert session.options.sim_workers == 8

    def test_run_backend_validated(self):
        session = TestSession.for_soc(size=1).add_scenario("table1-a")
        with pytest.raises(ValueError, match="unknown run backend"):
            session.run(backend="fpga")

    def test_spec_backend_reaches_setup_options(self):
        spec = table1_scenario("a").with_overrides(backend="serial", rng_seed=99)
        session = TestSession.for_soc(size=1)
        setup = spec.build_setup(session.prepared, session.options)
        assert setup.options.sim_backend == "serial"
        assert setup.options.random_seed == 99
        assert "serial" in BACKENDS


class TestDeriveRng:
    def test_default_stream_is_bit_compatible_with_plain_seeding(self):
        assert derive_rng(2005).random() == random.Random(2005).random()

    def test_named_streams_are_independent_and_deterministic(self):
        a1 = [derive_rng(7, "alpha").random() for _ in range(3)]
        a2 = [derive_rng(7, "alpha").random() for _ in range(3)]
        b = [derive_rng(7, "beta").random() for _ in range(3)]
        assert a1 == a2
        assert a1 != b


class TestFingerprints:
    def test_design_fingerprint_is_content_addressed(self):
        model_a = build_model(random_combinational(6, 30, 3, seed=2))
        model_b = build_model(random_combinational(6, 30, 3, seed=2))
        model_c = build_model(random_combinational(6, 30, 3, seed=3))
        assert design_fingerprint(model_a) == design_fingerprint(model_b)
        assert design_fingerprint(model_a) != design_fingerprint(model_c)

    def test_spec_fingerprint_tracks_spec_and_options(self):
        spec = table1_scenario("a")
        base = spec_fingerprint(spec, AtpgOptions())
        assert base == spec_fingerprint(spec, AtpgOptions())
        assert base != spec_fingerprint(spec.with_overrides(rng_seed=1), AtpgOptions())
        assert base != spec_fingerprint(spec, AtpgOptions(backtrack_limit=99))

    def test_closure_factories_fingerprint_by_captured_values(self):
        def make_procs(count):
            def factory(prepared):
                return count

            return factory

        spec = table1_scenario("a")
        two = spec.with_overrides(procedures=make_procs(2))
        four = spec.with_overrides(procedures=make_procs(4))
        # Same __qualname__, different captured cells: must not collide.
        assert spec_fingerprint(two) != spec_fingerprint(four)
        # And the fingerprint must be stable for equal captures.
        assert spec_fingerprint(two) == spec_fingerprint(
            spec.with_overrides(procedures=make_procs(2))
        )

    def test_partial_factories_fingerprint_without_addresses(self):
        import functools

        def factory(count, prepared):
            return count

        spec = table1_scenario("a")
        p2 = spec.with_overrides(procedures=functools.partial(factory, 2))
        p2_again = spec.with_overrides(procedures=functools.partial(factory, 2))
        p4 = spec.with_overrides(procedures=functools.partial(factory, 4))
        assert spec_fingerprint(p2) == spec_fingerprint(p2_again)
        assert spec_fingerprint(p2) != spec_fingerprint(p4)

    def test_scenario_key_covers_engine_version(self):
        model = build_model(random_combinational(6, 30, 3, seed=2))
        key = scenario_key(model, table1_scenario("a"), AtpgOptions())
        assert len(key) == 64
        assert ENGINE_VERSION  # the key embeds it; bumping it must invalidate


class TestResultCache:
    def test_roundtrip_and_management(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.put("ab" * 32, {"planes": [1, 2, 3]}, label="unit")
        assert cache.contains("ab" * 32)
        assert cache.get("ab" * 32) == {"planes": [1, 2, 3]}
        entries = cache.entries()
        assert len(entries) == 1 and entries[0]["label"] == "unit"
        assert cache.clear() == 1
        assert cache.get("ab" * 32) is None

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("cd" * 32, [1, 2])
        payload_path = tmp_path / "cd" / ("cd" * 32 + ".pkl")
        payload_path.write_bytes(b"not a pickle")
        assert cache.get("cd" * 32) is None

    def test_unpicklable_payload_is_skipped(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert not cache.put("ef" * 32, lambda: None)
        assert not cache.contains("ef" * 32)

    def test_env_var_overrides_root(self, tmp_path, monkeypatch):
        from repro.engine.cache import CACHE_ENV_VAR, default_cache_root

        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "elsewhere"))
        assert default_cache_root() == tmp_path / "elsewhere"


class TestSessionCache:
    def _session(self, tmp_path):
        options = AtpgOptions(
            random_pattern_batches=1,
            patterns_per_batch=16,
            backtrack_limit=8,
            max_patterns=12,
        )
        return (
            TestSession.for_soc(size=1)
            .with_options(options)
            .with_cache(tmp_path)
            .add_scenario("table1-a")
        )

    def test_rerun_is_served_from_cache_with_identical_results(self, tmp_path):
        first = self._session(tmp_path).run()
        second_session = self._session(tmp_path)
        second = second_session.run()
        run = second_session.artifacts["table1-a"]
        assert run.cache_info is not None and run.cache_info["hit"] is True
        assert first.same_results(second)
        assert first.outcomes[0].test_coverage == second.outcomes[0].test_coverage
        assert first.outcomes[0].pattern_count == second.outcomes[0].pattern_count

    def test_option_change_invalidates(self, tmp_path):
        self._session(tmp_path).run()
        session = self._session(tmp_path).with_options(backtrack_limit=9)
        session.run()
        run = session.artifacts["table1-a"]
        assert run.cache_info is not None and run.cache_info["hit"] is False

    def test_custom_stage_changes_cache_key(self, tmp_path):
        self._session(tmp_path).run()

        def audit(session, run):
            run.extras["audit"] = True

        session = self._session(tmp_path).with_stage("audit", audit)
        session.run()
        run = session.artifacts["table1-a"]
        # A default-pipeline cache entry must not satisfy a session with a
        # custom stage — the stage has to actually execute.
        assert run.cache_info is not None and run.cache_info["hit"] is False
        assert run.extras["audit"] is True

    def test_with_cache_false_detaches(self, tmp_path):
        session = self._session(tmp_path).with_cache(False)
        assert session._cache is None
