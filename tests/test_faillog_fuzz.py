"""Seeded-random fuzz of the fail-log text format.

Volume mode archives thousands of logs as text and replays them later, so
``to_text`` -> ``parse_fail_log`` must be a byte-identical round trip for
*any* log shape — not just the tidy ones the capture path produces.  The
fuzzer generates random logs (including patterns with no fails, which the
text format simply omits) and also checks the parser's tolerance for the
noise real ATE exports accumulate: blank lines, ``//`` comments, and
re-indentation.
"""

import random

import pytest

from repro.diagnose import (
    POLARITIES,
    DefectSpec,
    FailBit,
    FailLog,
    parse_fail_log,
)

SEEDS = [0, 1, 7, 42, 1234, 99991]


def random_defect(rng: random.Random) -> DefectSpec:
    kind = rng.choice(("stuck-at", "transition", "inter-domain"))
    net = f"n{rng.randrange(1000)}_{rng.choice('abcxyz')}"
    pin = rng.choice((None, rng.randrange(4)))
    if kind == "stuck-at":
        return DefectSpec(kind=kind, net=net, pin=pin, value=rng.randrange(2))
    return DefectSpec(kind=kind, net=net, pin=pin, polarity=rng.choice(POLARITIES))


def random_log(seed: int) -> FailLog:
    rng = random.Random(seed)
    pattern_count = rng.randrange(1, 40)
    # Leave some patterns empty on purpose: the text format only lists
    # failing patterns, and the round trip must survive the gaps.
    failing = sorted(
        rng.sample(range(pattern_count), rng.randrange(0, pattern_count))
    )
    fails: list[FailBit] = []
    for pattern in failing:
        for _ in range(rng.randrange(1, 5)):
            if rng.random() < 0.3:
                chain, cycle = "po", 0
            else:
                chain, cycle = f"chain{rng.randrange(4)}", rng.randrange(64)
            expected = rng.choice("01")
            fails.append(
                FailBit(
                    pattern=pattern,
                    chain=chain,
                    cycle=cycle,
                    signal=f"u{rng.randrange(500)}.q",
                    expected=expected,
                    observed="1" if expected == "0" else "0",
                )
            )
    defects = [random_defect(rng) for _ in range(rng.randrange(0, 3))]
    return FailLog(
        design=f"fuzz-{seed}",
        pattern_count=pattern_count,
        fails=fails,
        defects=defects,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_text_round_trip_is_byte_identical(seed):
    log = random_log(seed)
    text = log.to_text()
    parsed = parse_fail_log(text)
    assert parsed == log
    assert parsed.to_text() == text


@pytest.mark.parametrize("seed", SEEDS)
def test_json_round_trip(seed):
    log = random_log(seed)
    assert FailLog.from_json(log.to_json()) == log


@pytest.mark.parametrize("seed", SEEDS)
def test_parser_tolerates_noise(seed):
    """Blank lines, ``//`` comments, and arbitrary indentation between
    records must not change what the parser reconstructs."""
    rng = random.Random(seed + 31337)
    log = random_log(seed)
    clean = log.to_text()
    noisy_lines: list[str] = []
    for line in clean.splitlines():
        if rng.random() < 0.4:
            noisy_lines.append("")
        if rng.random() < 0.3:
            noisy_lines.append(f"// tester note {rng.randrange(100)}")
        indent = " " * rng.randrange(0, 6)
        noisy_lines.append(indent + line.strip())
    noisy = "\n".join(noisy_lines) + "\n"
    parsed = parse_fail_log(noisy)
    assert parsed == log
    assert parsed.to_text() == clean


def test_fail_bit_outside_pattern_block_raises():
    bad = "Header { Design x; Patterns 2; Fails 1; }\n" \
          "Fail chain0 cycle 3 signal u1.q expect 0 got 1;\n"
    with pytest.raises(ValueError):
        parse_fail_log(bad)
