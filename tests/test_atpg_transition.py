"""Integration tests for the transition-fault ATPG flow."""

import pytest

from repro.atpg import AtpgOptions, TestSetup, TransitionAtpg, run_transition_atpg
from repro.clocking import (
    enhanced_cpf_procedures,
    external_clock_procedures,
    simple_cpf_procedures,
    stuck_at_procedure,
)
from repro.faults import FaultStatus
from repro.fault_sim import TransitionFaultSimulator


def transition_setup(procedures, options, observe_pos=True, constrain_se=True):
    return TestSetup(
        name="trans",
        procedures=procedures,
        observe_pos=observe_pos,
        hold_pis=True,
        scan_enable_net="scan_en",
        constrain_scan_enable=constrain_se,
        options=options,
    )


def test_rejects_single_pulse_procedures(scanned_s27, cheap_options):
    _, _, model, domain_map = scanned_s27
    with pytest.raises(ValueError):
        TransitionAtpg(model, domain_map,
                       transition_setup([stuck_at_procedure(["clk"])], cheap_options))


def test_pipeline_transition_flow(scanned_pipeline, cheap_options):
    _, _, model, domain_map = scanned_pipeline
    setup = transition_setup(external_clock_procedures(["clk"], max_pulses=2), cheap_options)
    result = run_transition_atpg(model, domain_map, setup)
    assert result.pattern_count > 0
    assert result.coverage.detected > 0
    assert result.stats.unconfirmed_podem_tests == 0


def test_detections_confirmed_by_simulator(scanned_pipeline, cheap_options):
    _, _, model, domain_map = scanned_pipeline
    setup = transition_setup(external_clock_procedures(["clk"], max_pulses=2), cheap_options)
    generator = TransitionAtpg(model, domain_map, setup)
    result = generator.run()
    detected = result.fault_list.with_status(FaultStatus.DETECTED)
    simulator = TransitionFaultSimulator(model, domain_map, setup)
    confirmed = simulator.simulate(result.patterns.patterns(), detected, drop_detected=True)
    missed = [f for f in detected if not confirmed.detections[f]]
    assert missed == []


def test_more_pulses_do_not_reduce_coverage(scanned_pipeline, cheap_options):
    _, _, model, domain_map = scanned_pipeline
    two = run_transition_atpg(
        model, domain_map,
        transition_setup(external_clock_procedures(["clk"], max_pulses=2), cheap_options),
    )
    four = run_transition_atpg(
        model, domain_map,
        transition_setup(external_clock_procedures(["clk"], max_pulses=4), cheap_options),
    )
    assert four.coverage.test_coverage >= two.coverage.test_coverage - 2.0


def test_inter_domain_procedures_improve_two_domain_coverage(scanned_two_domain):
    _, _, model, domain_map = scanned_two_domain
    options = AtpgOptions(random_pattern_batches=2, patterns_per_batch=32, backtrack_limit=25)
    simple = run_transition_atpg(
        model, domain_map,
        transition_setup(simple_cpf_procedures(["a", "b"]), options, observe_pos=False),
    )
    enhanced = run_transition_atpg(
        model, domain_map,
        transition_setup(
            enhanced_cpf_procedures(["a", "b"], max_pulses=3, inter_domain=True),
            options,
            observe_pos=False,
        ),
    )
    assert enhanced.coverage.test_coverage > simple.coverage.test_coverage


def test_pattern_procedures_come_from_setup(scanned_two_domain):
    _, _, model, domain_map = scanned_two_domain
    options = AtpgOptions(random_pattern_batches=1, patterns_per_batch=16, backtrack_limit=15)
    setup = transition_setup(simple_cpf_procedures(["a", "b"]), options, observe_pos=False)
    result = run_transition_atpg(model, domain_map, setup)
    allowed = {p.name for p in setup.procedures}
    for pattern in result.patterns:
        assert pattern.procedure.name in allowed


def test_max_patterns_option_caps_pattern_count(scanned_pipeline):
    _, _, model, domain_map = scanned_pipeline
    options = AtpgOptions(random_pattern_batches=1, patterns_per_batch=16,
                          backtrack_limit=15, max_patterns=5)
    setup = transition_setup(external_clock_procedures(["clk"], max_pulses=2), options)
    result = run_transition_atpg(model, domain_map, setup)
    assert result.pattern_count <= 5 + options.dynamic_compaction_limit
