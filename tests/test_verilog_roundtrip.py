"""Property-based Verilog round-trip fuzz (PR-10 satellite).

``write_verilog`` → ``read_verilog`` → ``write_verilog`` must be
byte-stable on seeded netlists spanning the constructs the large-design
import path exercises: random combinational and sequential logic,
hierarchical SoCs with repeated core instances (cell names carrying the
``instance__local`` separator), scan cells, latches and RAM macros with
bus pins.
"""

from __future__ import annotations

import random

import pytest

from repro.circuits import random_sequential
from repro.circuits.generators import random_combinational
from repro.circuits.hier_soc import build_hier_soc
from repro.dft import insert_scan
from repro.netlist.builder import NetlistBuilder
from repro.netlist.verilog import read_verilog, write_verilog


def _stable(netlist) -> None:
    text = write_verilog(netlist)
    again = write_verilog(read_verilog(text))
    assert again == text, "write -> read -> write is not byte-stable"


@pytest.mark.parametrize("seed", range(8))
def test_random_combinational_round_trip_byte_stable(seed):
    rng = random.Random(seed)
    _stable(
        random_combinational(
            num_inputs=rng.randint(2, 8),
            num_gates=rng.randint(5, 120),
            num_outputs=rng.randint(1, 6),
            seed=seed,
            name=f"fuzz_comb_{seed}",
        )
    )


@pytest.mark.parametrize("seed", range(6))
def test_random_sequential_round_trip_byte_stable(seed):
    rng = random.Random(100 + seed)
    netlist = random_sequential(
        num_inputs=rng.randint(2, 6),
        num_flops=rng.randint(2, 12),
        num_gates=rng.randint(10, 90),
        num_outputs=rng.randint(1, 4),
        seed=seed,
        nonscan_fraction=rng.choice((0.0, 0.25)),
        name=f"fuzz_seq_{seed}",
    )
    if rng.random() < 0.5:
        netlist, _ = insert_scan(netlist, num_chains=rng.randint(1, 3))
    _stable(netlist)


@pytest.mark.parametrize("seed", [3, 17])
def test_hierarchical_soc_round_trip_byte_stable(seed):
    """Hierarchical netlists (instance-prefixed cell names, RAM bus pins)."""
    soc = build_hier_soc(
        num_cores=4, core_gates=48, core_kinds=2, seed=seed,
        name=f"fuzz_hier_{seed}",
    )
    _stable(soc.netlist)


def test_hierarchical_round_trip_preserves_structure():
    soc = build_hier_soc(num_cores=4, core_gates=48, core_kinds=2, seed=5)
    netlist = soc.netlist
    again = read_verilog(write_verilog(netlist))
    assert set(again.gates) == set(netlist.gates)
    assert set(again.flops) == set(netlist.flops)
    assert set(again.rams) == set(netlist.rams)
    for name, gate in netlist.gates.items():
        other = again.gates[name]
        assert other.gtype == gate.gtype and other.inputs == gate.inputs


@pytest.mark.parametrize("width", [1, 3, 8])
def test_ram_bus_pins_round_trip_byte_stable(width):
    builder = NetlistBuilder("bus_fuzz")
    addr = builder.inputs("addr", 4)
    data = builder.inputs("d", width)
    clk = builder.clock("clk")
    we = builder.input("we")
    outs = builder.ram(clk, we, addr, data, name="uram_fuzz")
    for index, net in enumerate(outs):
        builder.output_from(net, f"out_{index}")
    _stable(builder.build())
