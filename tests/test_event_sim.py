"""Unit tests for the event-driven timing simulator."""

import pytest

from repro.logic import Logic
from repro.netlist import NetlistBuilder
from repro.simulation import EventSimulator, clock_stimulus, step_stimulus


def inverter_chain(length=3):
    builder = NetlistBuilder("chain")
    a = builder.input("a")
    net = a
    for i in range(length):
        net = builder.inv(net, output=f"n{i}")
    builder.output_from(net, "y")
    return builder.build()


def test_combinational_propagation_delay():
    netlist = inverter_chain(3)
    sim = EventSimulator(netlist)
    sim.initialize({"a": 0})
    sim.apply_stimulus({"a": [(1000.0, Logic.ONE)]})
    wave = sim.run(3000.0)
    edges = wave["n2"].edges()
    assert edges, "output must eventually change"
    # Three inverter delays after the input edge.
    assert edges[-1].time == pytest.approx(1000.0 + 3 * 20.0)
    assert sim.value("n2") is Logic.ZERO  # odd number of inversions of 1


def test_dff_captures_on_rising_edge():
    builder = NetlistBuilder("ff")
    d = builder.input("d")
    clk = builder.clock("clk")
    q = builder.flop(d, clk, q="q", name="ff0")
    builder.output_from(q)
    sim = EventSimulator(builder.build())
    sim.initialize({"d": 1, "clk": 0})
    sim.apply_stimulus({"clk": clock_stimulus(period=1000.0, num_cycles=2, start=500.0)})
    wave = sim.run(3000.0)
    assert sim.value("q") is Logic.ONE
    # Q changes only after the first rising edge plus clk->q delay.
    first_change = wave["q"].edges()[0].time
    assert first_change == pytest.approx(500.0 + 120.0)


def test_dff_async_reset():
    builder = NetlistBuilder("ffr")
    d = builder.input("d")
    rst = builder.input("rst")
    clk = builder.clock("clk")
    builder.flop(d, clk, q="q", name="ff0", reset=rst)
    builder.output_from("q")
    sim = EventSimulator(builder.build())
    sim.initialize({"d": 1, "clk": 0, "rst": 0})
    sim.apply_stimulus({"clk": clock_stimulus(1000.0, 1, start=500.0),
                        "rst": [(2000.0, Logic.ONE)]})
    sim.run(3000.0)
    assert sim.value("q") is Logic.ZERO


def test_latch_transparent_low():
    builder = NetlistBuilder("lat")
    d = builder.input("d")
    en = builder.input("en")
    builder.latch(d, en, q="q", name="lat0", active_level=0)
    builder.output_from("q")
    sim = EventSimulator(builder.build())
    sim.initialize({"d": 0, "en": 0})
    sim.apply_stimulus(
        {
            "d": [(1000.0, Logic.ONE), (5000.0, Logic.ZERO)],
            "en": [(3000.0, Logic.ONE)],
        }
    )
    sim.run(7000.0)
    # While en=0 the latch is transparent (q follows d=1); once en=1 it holds.
    assert sim.value("q") is Logic.ONE


def test_scan_mux_capture_behavior():
    builder = NetlistBuilder("scanff")
    d = builder.input("d")
    builder.input("si")
    builder.input("se")
    clk = builder.clock("clk")
    from dataclasses import replace

    builder.flop(d, clk, q="q", name="ff0")
    netlist = builder.build()
    netlist.replace_flop("ff0", replace(netlist.flops["ff0"], scan_in="si", scan_enable="se"))
    sim = EventSimulator(netlist)
    sim.initialize({"d": 0, "si": 1, "se": 1, "clk": 0})
    sim.apply_stimulus({"clk": clock_stimulus(1000.0, 1, start=500.0)})
    sim.run(2000.0)
    assert sim.value("q") is Logic.ONE  # captured from scan path


def test_clock_stimulus_shape():
    changes = clock_stimulus(period=10.0, num_cycles=3, start=5.0)
    rising = [t for t, v in changes if v is Logic.ONE]
    assert rising == [5.0, 15.0, 25.0]
    assert changes[0] == (0.0, Logic.ZERO)


def test_step_stimulus():
    assert step_stimulus([(1.0, 1), (2.0, 0)]) == [(1.0, Logic.ONE), (2.0, Logic.ZERO)]


def test_rejects_ram():
    builder = NetlistBuilder("ram")
    clk = builder.clock("clk")
    we = builder.input("we")
    builder.ram(clk, we, builder.inputs("a", 1), builder.inputs("d", 1))
    with pytest.raises(ValueError):
        EventSimulator(builder.build())


def test_past_event_rejected():
    netlist = inverter_chain(1)
    sim = EventSimulator(netlist)
    sim.initialize({"a": 0})
    sim.apply_stimulus({"a": [(100.0, Logic.ONE)]})
    sim.run(200.0)
    with pytest.raises(ValueError):
        sim.schedule("a", Logic.ZERO, 50.0)
