"""Unit tests for repro.diagnose: defects, fail logs, candidates, ranking."""

from __future__ import annotations

import pytest

from repro.api import TestSession
from repro.api.scenarios import table1_scenario
from repro.atpg import AtpgOptions, TestSetup
from repro.clocking import ClockDomain, ClockDomainMap, external_clock_procedures
from repro.diagnose import (
    PO_CHAIN,
    DefectInjector,
    DefectSpec,
    DiagnosisResult,
    DiagnosisSpec,
    FailBit,
    FailLog,
    capture_fail_log,
    extract_candidates,
    failing_observation_nodes,
    parse_fail_log,
    run_diagnosis,
)
from repro.dft import insert_scan
from repro.engine import compile_circuit
from repro.faults import StuckAtFault, FaultSite
from repro.faults.fault_list import FaultStatus
from repro.logic import Logic
from repro.netlist import NetlistBuilder
from repro.patterns import TestPattern
from repro.simulation import build_model

#: ATPG effort small enough for unit tests, big enough to detect most faults.
CHEAP = AtpgOptions(random_pattern_batches=2, patterns_per_batch=32, backtrack_limit=20)


@pytest.fixture(scope="module")
def diagnosis_env():
    """A small scan design plus one executed stuck-at scenario."""
    session = TestSession.for_design("tiny", options=CHEAP)
    spec = table1_scenario("a")
    session.run_scenario(spec)
    run = session.artifacts[spec.name]
    setup = spec.build_setup(session.prepared, CHEAP)
    return session, spec, run, setup


def detected_defect(session, result, kind="stuck-at", inter_domain=False):
    """A defect the generated pattern set provably detects."""
    model = session.prepared.model
    detected = result.fault_list.with_status(FaultStatus.DETECTED)
    assert detected, "the cheap ATPG run detected nothing"
    fault = detected[len(detected) // 2]
    if kind == "stuck-at":
        return DefectSpec.from_fault(model, fault)
    raise AssertionError(kind)


# --------------------------------------------------------------------------
# DefectSpec
# --------------------------------------------------------------------------
class TestDefectSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown defect kind"):
            DefectSpec(kind="bridge", net="n")
        with pytest.raises(ValueError, match="value 0 or 1"):
            DefectSpec(kind="stuck-at", net="n", value=2)
        with pytest.raises(ValueError, match="polarity"):
            DefectSpec(kind="transition", net="n")
        with pytest.raises(ValueError, match="no polarity"):
            DefectSpec(kind="stuck-at", net="n", value=0, polarity="slow-to-rise")
        with pytest.raises(ValueError, match="no stuck value"):
            DefectSpec(kind="inter-domain", net="n", value=1, polarity="slow-to-rise")

    def test_json_round_trip(self):
        for spec in (
            DefectSpec(kind="stuck-at", net="u1_y", pin=1, value=0),
            DefectSpec(kind="transition", net="u1_y", polarity="slow-to-rise"),
            DefectSpec(kind="inter-domain", net="x", polarity="slow-to-fall"),
        ):
            assert DefectSpec.from_json(spec.to_json()) == spec

    def test_site_resolution_errors(self, diagnosis_env):
        session, _, _, _ = diagnosis_env
        model = session.prepared.model
        with pytest.raises(KeyError, match="does not exist"):
            DefectSpec(kind="stuck-at", net="no_such_net", value=0).site(model)
        gate_net = next(
            node.net for node in model.nodes if node.fanin and len(node.fanin) >= 1
        )
        with pytest.raises(ValueError, match="out of range"):
            DefectSpec(kind="stuck-at", net=gate_net, pin=99, value=0).site(model)

    def test_from_fault_round_trips_through_site(self, diagnosis_env):
        session, _, _, _ = diagnosis_env
        model = session.prepared.model
        gate = next(node for node in model.nodes if len(node.fanin) == 2)
        fault = StuckAtFault(site=FaultSite(node=gate.index, pin=1), value=1)
        spec = DefectSpec.from_fault(model, fault)
        assert spec.site(model) == fault.site
        assert spec.as_fault(model) == fault


# --------------------------------------------------------------------------
# Injection
# --------------------------------------------------------------------------
class TestDefectInjector:
    @pytest.fixture()
    def sr_design(self):
        builder = NetlistBuilder("sr2")
        clk = builder.clock("clk")
        d = builder.input("d")
        q0 = builder.flop(d, clk, q="q0", name="ff0")
        mid = builder.buf(q0, output="mid")
        builder.flop(mid, clk, q="q1", name="ff1")
        builder.output_from("q1", "out")
        netlist, scan = insert_scan(builder.build(), num_chains=1)
        model = build_model(netlist)
        domain_map = ClockDomainMap.from_netlist(
            netlist, [ClockDomain("clk", "clk", 100.0)]
        )
        setup = TestSetup(
            name="inject",
            procedures=external_clock_procedures(["clk"], max_pulses=2),
            observe_pos=True,
            scan_enable_net="scan_en",
        )
        return netlist, scan, model, domain_map, setup

    def test_syndrome_or_equals_detect_mask(self, sr_design):
        """OR of the per-node syndrome reproduces the detect mask exactly."""
        _, _, model, domain_map, setup = sr_design
        from repro.engine import FaultSimScheduler
        from repro.fault_sim import FrameSimulator

        scheduler = FaultSimScheduler(model, backend="compiled")
        frames_sim = FrameSimulator(model, domain_map, setup, scheduler)
        procedure = setup.procedures[0]
        pattern = TestPattern(
            procedure=procedure,
            scan_load={"ff0": Logic.ZERO, "ff1": Logic.ZERO},
            pi_frames=[{"d": Logic.ONE, "scan_en": Logic.ZERO}] * procedure.num_frames,
        )
        frames = frames_sim.frame_values_packed([pattern], procedure)
        final = frames[procedure.capture_frame]
        observation = frames_sim.observation_nodes(procedure)
        defect = DefectSpec(kind="stuck-at", net="mid", value=0)
        injector = DefectInjector(model, defect)
        masks = injector.syndrome(final, observation)
        compiled = compile_circuit(model)
        merged = 0
        for mask in masks:
            merged |= mask
        assert merged == compiled.propagate_stuck_at(
            final, defect.as_fault(model), observation
        )

    def test_inter_domain_defect_silent_on_intra_domain_procedure(self, sr_design):
        _, _, model, _, setup = sr_design
        procedure = setup.procedures[0]  # all pulses clock the same domain
        defect = DefectSpec(kind="inter-domain", net="mid", polarity="slow-to-rise")
        injector = DefectInjector(model, defect)
        assert not injector.active_for(procedure)

    def test_model_is_not_mutated(self, sr_design):
        _, _, model, domain_map, setup = sr_design
        before = [(node.net, node.fanin) for node in model.nodes]
        DefectInjector(model, DefectSpec(kind="stuck-at", net="mid", value=1))
        assert [(node.net, node.fanin) for node in model.nodes] == before


# --------------------------------------------------------------------------
# Fail logs
# --------------------------------------------------------------------------
class TestFailLog:
    def _sample(self):
        return FailLog(
            design="soc",
            pattern_count=7,
            fails=[
                FailBit(pattern=2, chain="chain0", cycle=3, signal="ff_a",
                        expected="1", observed="0"),
                FailBit(pattern=2, chain=PO_CHAIN, cycle=0, signal="out1",
                        expected="0", observed="1"),
                FailBit(pattern=5, chain="chain1", cycle=0, signal="ff_b",
                        expected="0", observed="1"),
            ],
            defect=DefectSpec(kind="transition", net="u1_y", pin=0,
                              polarity="slow-to-fall"),
        )

    def test_json_round_trip(self):
        log = self._sample()
        assert FailLog.from_json(log.to_json()) == log

    def test_text_round_trip(self):
        log = self._sample()
        assert parse_fail_log(log.to_text()) == log

    def test_text_round_trip_without_defect(self):
        log = self._sample()
        log.defect = None
        assert parse_fail_log(log.to_text()) == log

    def test_parse_rejects_garbage_and_corruption(self):
        with pytest.raises(ValueError, match="missing Header"):
            parse_fail_log("STIL 1.0;\n")
        log = self._sample()
        truncated = "\n".join(log.to_text().splitlines()[:-2]) + "\n"
        with pytest.raises(ValueError, match="header declares"):
            parse_fail_log(truncated)

    def test_queries(self):
        log = self._sample()
        assert log.failing_patterns() == [2, 5]
        assert len(log.fails_of(2)) == 2
        assert (5, "ff_b") in log.observed_bits()


class TestCaptureFailLog:
    def test_capture_is_consistent_with_scan_geometry(self, diagnosis_env):
        session, _, run, setup = diagnosis_env
        prepared = session.prepared
        result = session.result_of("table1-a")
        defect = detected_defect(session, result)
        log = capture_fail_log(
            prepared.model, prepared.domain_map, prepared.scan, setup,
            run.patterns, defect,
        )
        assert log.num_fails > 0
        assert log.pattern_count == len(run.patterns)
        assert log.defect == defect
        chains = {chain.name: chain for chain in prepared.scan.chains}
        for bit in log.fails:
            assert bit.expected != bit.observed
            assert 0 <= bit.pattern < log.pattern_count
            if bit.chain == PO_CHAIN:
                assert bit.signal in dict(prepared.model.po_nodes)
            else:
                chain = chains[bit.chain]
                assert bit.signal in chain.cells
                # cycle is the unload position: last cell comes out first.
                assert chain.cells[chain.length - 1 - bit.cycle] == bit.signal
        assert parse_fail_log(log.to_text()) == log

    def test_undetected_defect_produces_empty_log(self, diagnosis_env):
        session, _, run, setup = diagnosis_env
        prepared = session.prepared
        # reset is constrained inactive (0) during capture: s-a-0 is invisible.
        defect = DefectSpec(
            kind="stuck-at", net=prepared.soc.reset_net, value=0
        )
        log = capture_fail_log(
            prepared.model, prepared.domain_map, prepared.scan, setup,
            run.patterns, defect,
        )
        assert log.num_fails == 0


# --------------------------------------------------------------------------
# Candidates
# --------------------------------------------------------------------------
class TestCandidates:
    def test_cone_intersection_reaches_every_failing_observation(self, diagnosis_env):
        session, _, run, setup = diagnosis_env
        prepared = session.prepared
        result = session.result_of("table1-a")
        defect = detected_defect(session, result)
        log = capture_fail_log(
            prepared.model, prepared.domain_map, prepared.scan, setup,
            run.patterns, defect,
        )
        model = prepared.model
        candidate_set = extract_candidates(model, log)
        failing = failing_observation_nodes(model, log)
        assert failing == candidate_set.failing_observation
        compiled = compile_circuit(model)
        for site in candidate_set.sites:
            for obs in failing:
                assert site.node == obs or obs in compiled.cone_indices(site.node)
        # The true defect's site is always among the candidates.
        assert defect.site(model) in candidate_set.sites

    def test_kind_filter_and_truncation(self, diagnosis_env):
        session, _, run, setup = diagnosis_env
        prepared = session.prepared
        result = session.result_of("table1-a")
        defect = detected_defect(session, result)
        log = capture_fail_log(
            prepared.model, prepared.domain_map, prepared.scan, setup,
            run.patterns, defect,
        )
        full = extract_candidates(prepared.model, log)
        stuck_only = extract_candidates(prepared.model, log, kinds=("stuck-at",))
        assert stuck_only.candidate_count == 2 * stuck_only.site_count
        assert full.candidate_count == 6 * full.site_count
        truncated = extract_candidates(prepared.model, log, max_sites=1)
        assert truncated.site_count == 1
        assert truncated.truncated_sites == full.site_count - 1
        with pytest.raises(ValueError, match="unknown defect kind"):
            extract_candidates(prepared.model, log, kinds=("bridge",))

    def test_empty_fail_log_yields_no_candidates(self, diagnosis_env):
        session, _, _, _ = diagnosis_env
        log = FailLog(design="soc", pattern_count=3, fails=[])
        candidate_set = extract_candidates(session.prepared.model, log)
        assert candidate_set.site_count == 0
        assert candidate_set.candidate_count == 0


# --------------------------------------------------------------------------
# Diagnosis
# --------------------------------------------------------------------------
class TestDiagnosis:
    def test_diagnosis_spec_validation_and_json(self):
        with pytest.raises(ValueError, match="scenario"):
            DiagnosisSpec(scenario="")
        with pytest.raises(ValueError, match="unknown candidate kind"):
            DiagnosisSpec(scenario="s", candidate_kinds=("bridge",))
        with pytest.raises(ValueError, match="unknown engine backend"):
            DiagnosisSpec(scenario="s", backend="gpu")
        spec = DiagnosisSpec(
            scenario="table1-a",
            defect=DefectSpec(kind="stuck-at", net="n", value=0),
            candidate_kinds=("stuck-at",),
            max_sites=50,
        )
        assert DiagnosisSpec.from_json(spec.to_json()) == spec

    def test_injected_defect_recovered_at_rank_1(self, diagnosis_env):
        session, spec, run, setup = diagnosis_env
        result = session.result_of("table1-a")
        defect = detected_defect(session, result)
        diagnosis = run_diagnosis(
            session.prepared, setup, run.patterns,
            DiagnosisSpec(scenario=spec.name, defect=defect), options=CHEAP,
        )
        assert diagnosis.rank_of_defect == 1
        assert diagnosis.recovered_at_rank_1
        assert diagnosis.resolution >= 1
        top = diagnosis.candidates[0]
        assert top.rank == 1 and top.misses == 0 and top.false_alarms == 0
        # Result is JSON-round-trippable.
        assert DiagnosisResult.from_json(diagnosis.to_json()).to_json() == \
            diagnosis.to_json()

    def test_external_fail_log_replay_matches_injection(self, diagnosis_env):
        """A log serialized to text and parsed back diagnoses identically."""
        session, spec, run, setup = diagnosis_env
        prepared = session.prepared
        result = session.result_of("table1-a")
        defect = detected_defect(session, result)
        log = capture_fail_log(
            prepared.model, prepared.domain_map, prepared.scan, setup,
            run.patterns, defect,
        )
        replayed = parse_fail_log(log.to_text())
        dspec = DiagnosisSpec(scenario=spec.name, defect=defect)
        direct = run_diagnosis(prepared, setup, run.patterns, dspec, options=CHEAP)
        via_log = run_diagnosis(
            prepared, setup, run.patterns, dspec, fail_log=replayed, options=CHEAP
        )
        assert direct.same_ranking(via_log)

    def test_empty_fail_log_diagnoses_to_nothing(self, diagnosis_env):
        session, spec, run, setup = diagnosis_env
        defect = DefectSpec(
            kind="stuck-at", net=session.prepared.soc.reset_net, value=0
        )
        diagnosis = run_diagnosis(
            session.prepared, setup, run.patterns,
            DiagnosisSpec(scenario=spec.name, defect=defect), options=CHEAP,
        )
        assert diagnosis.fail_count == 0
        assert diagnosis.candidate_count == 0
        assert diagnosis.rank_of_defect is None

    def test_missing_defect_and_log_rejected(self, diagnosis_env):
        session, spec, run, setup = diagnosis_env
        with pytest.raises(ValueError, match="fail log or a defect"):
            run_diagnosis(
                session.prepared, setup, run.patterns,
                DiagnosisSpec(scenario=spec.name), options=CHEAP,
            )


# --------------------------------------------------------------------------
# API integration
# --------------------------------------------------------------------------
class TestSessionDiagnose:
    def test_bare_defect_needs_scenario(self):
        session = TestSession.for_design("tiny", options=CHEAP)
        with pytest.raises(ValueError, match="scenario"):
            session.diagnose(DefectSpec(kind="stuck-at", net="scan_en", value=1))
        with pytest.raises(TypeError, match="DiagnosisSpec or DefectSpec"):
            session.diagnose("scan_en stuck-at 1")

    def test_session_diagnose_letters_and_cache(self, tmp_path):
        session = TestSession.for_design("tiny", options=CHEAP).with_cache(
            tmp_path / "cache"
        )
        defect = DefectSpec(kind="stuck-at", net="scan_en", value=1)
        first = session.diagnose(defect, scenario="a")
        assert first.rank_of_defect == 1
        assert not first.cache_hit
        # A fresh session (fresh pattern regeneration) resumes from cache.
        again = TestSession.for_design("tiny", options=CHEAP).with_cache(
            tmp_path / "cache"
        ).diagnose(defect, scenario="a")
        assert again.cache_hit
        assert again.same_ranking(first)

    def test_ad_hoc_scenario_spec_object(self):
        """An unregistered ScenarioSpec drives diagnosis without a registry hit."""
        session = TestSession.for_design("tiny", options=CHEAP)
        custom = table1_scenario("a").with_overrides(name="my-custom-a")
        result = session.diagnose(
            DefectSpec(kind="stuck-at", net="scan_en", value=1), scenario=custom
        )
        assert result.scenario == "my-custom-a"
        assert result.rank_of_defect == 1

    def test_custom_stage_pipeline_never_served_default_cache(self, tmp_path):
        """diagnosis_key folds in the stage pipeline, like the scenario cache."""
        defect = DefectSpec(kind="stuck-at", net="scan_en", value=1)
        first = (
            TestSession.for_design("tiny", options=CHEAP)
            .with_cache(tmp_path / "cache")
            .diagnose(defect, scenario="a")
        )
        assert not first.cache_hit

        def noop_stage(session, run):
            return None

        custom = (
            TestSession.for_design("tiny", options=CHEAP)
            .with_cache(tmp_path / "cache")
            .with_stage("noop", noop_stage)
            .diagnose(defect, scenario="a")
        )
        assert not custom.cache_hit

    def test_scheduler_is_reused_across_diagnoses(self):
        session = TestSession.for_design("tiny", options=CHEAP)
        defect = DefectSpec(kind="stuck-at", net="scan_en", value=1)
        session.diagnose(defect, scenario="a")
        session.diagnose(
            DefectSpec(kind="transition", net="scan_en", polarity="slow-to-fall"),
            scenario="a",
        )
        assert len(session._diagnosis_schedulers) == 1

    def test_campaign_diagnose_grid(self):
        from repro.api import Campaign

        defects = [
            DefectSpec(kind="stuck-at", net="scan_en", value=1),
            DefectSpec(kind="transition", net="scan_en", polarity="slow-to-fall"),
        ]
        campaign = Campaign(designs=["tiny"], scenarios=["a"], options=CHEAP)
        report = campaign.diagnose(defects)
        assert len(report) == 2
        assert report.cell("tiny", "table1-a", defects[0]).rank_of_defect == 1
        # streaming + JSON round trip
        from repro.diagnose import DiagnosisReport

        assert DiagnosisReport.from_json(report.to_json()).to_json() == \
            report.to_json()
        seen = []
        campaign2 = Campaign(designs=["tiny"], scenarios=["a"], options=CHEAP)
        campaign2.diagnose(defects, on_cell=seen.append)
        assert len(seen) == 2

    def test_campaign_diagnose_resume_never_builds_designs(self, tmp_path, monkeypatch):
        """A fully cached diagnosis sweep must stream without any design build."""
        import repro.api.campaign as campaign_mod
        from repro.api import Campaign

        defects = [DefectSpec(kind="stuck-at", net="scan_en", value=1)]
        cold = (Campaign(designs=["tiny"], scenarios=["a"], options=CHEAP)
                .with_cache(tmp_path / "cache").diagnose(defects))
        assert cold.cache_hits() == 0

        def forbidden(self):
            raise AssertionError("design build during a fully cached resume")

        monkeypatch.setattr(campaign_mod._DesignEntry, "materialize", forbidden)
        warm = (Campaign(designs=["tiny"], scenarios=["a"], options=CHEAP)
                .with_cache(tmp_path / "cache").diagnose(defects))
        assert warm.cache_hits() == len(warm.cells) == 1
        assert warm.cells[0].rank_of_defect == cold.cells[0].rank_of_defect


# --------------------------------------------------------------------------
# Multi-defect capture (the volume plane's evidence source)
# --------------------------------------------------------------------------
class TestMultiDefectCapture:
    def _visible_defects(self, session, spec, run, setup, count=2):
        prepared = session.prepared
        result = session.result_of(spec.name)
        visible = []
        for fault in result.fault_list.with_status(FaultStatus.DETECTED):
            defect = DefectSpec.from_fault(prepared.model, fault)
            log = capture_fail_log(
                prepared.model, prepared.domain_map, prepared.scan, setup,
                run.patterns, defect,
            )
            if log.num_fails and all(defect != seen for seen in visible):
                visible.append(defect)
            if len(visible) == count:
                return visible
        raise AssertionError("not enough visible defects on tiny/a")

    def test_injector_accepts_defect_list(self, diagnosis_env):
        session, spec, run, setup = diagnosis_env
        d1, d2 = self._visible_defects(session, spec, run, setup)
        injector = DefectInjector(session.prepared.model, [d1, d2])
        assert injector.defects == (d1, d2)
        assert injector.defect == d1  # first defect keeps the legacy surface
        assert len(injector.faults) == 2
        with pytest.raises(ValueError):
            DefectInjector(session.prepared.model, [])

    def test_two_defect_capture_unions_the_syndromes(self, diagnosis_env):
        """One two-defect pass logs exactly the union of the single-defect
        miscompares (the injected masks are OR-ed per batch)."""
        session, spec, run, setup = diagnosis_env
        prepared = session.prepared
        d1, d2 = self._visible_defects(session, spec, run, setup)

        def bits(defect):
            log = capture_fail_log(
                prepared.model, prepared.domain_map, prepared.scan, setup,
                run.patterns, defect,
            )
            return {
                (b.pattern, b.chain, b.cycle, b.signal, b.expected, b.observed)
                for b in log.fails
            }

        merged = capture_fail_log(
            prepared.model, prepared.domain_map, prepared.scan, setup,
            run.patterns, [d1, d2],
        )
        assert merged.defects == [d1, d2]
        assert merged.defect == d1
        merged_bits = {
            (b.pattern, b.chain, b.cycle, b.signal, b.expected, b.observed)
            for b in merged.fails
        }
        assert merged_bits == bits(d1) | bits(d2)

    def test_two_defect_log_round_trips(self, diagnosis_env):
        session, spec, run, setup = diagnosis_env
        prepared = session.prepared
        d1, d2 = self._visible_defects(session, spec, run, setup)
        log = capture_fail_log(
            prepared.model, prepared.domain_map, prepared.scan, setup,
            run.patterns, [d1, d2],
        )
        assert FailLog.from_dict(log.to_dict()) == log
        parsed = parse_fail_log(log.to_text())
        assert parsed.defects == [d1, d2]
        assert parsed == log
        assert log.to_text().count("Defect {") == 2


# --------------------------------------------------------------------------
# DiagnosisReport confidence column (volume-BP interop)
# --------------------------------------------------------------------------
class TestDiagnosisReportConfidence:
    def _cell(self, confidence):
        from repro.diagnose.diagnose import DiagnosisCell

        return DiagnosisCell(
            design="tiny", scenario="table1-a",
            defect=DefectSpec(kind="stuck-at", net="scan_en", value=1),
            rank_of_defect=1, resolution=1, candidate_count=12,
            site_count=4, fail_count=9, pattern_count=24,
            confidence=confidence,
        )

    def test_json_round_trip_keeps_confidence(self):
        from repro.diagnose.diagnose import DiagnosisCell, DiagnosisReport

        report = DiagnosisReport(cells=[self._cell(0.875), self._cell(None)])
        restored = DiagnosisReport.from_json(report.to_json())
        assert [c.confidence for c in restored] == [0.875, None]
        assert restored.cells[0].to_dict() == report.cells[0].to_dict()
        assert DiagnosisCell.from_dict(report.cells[1].to_dict()).confidence is None

    def test_summary_renders_confidence(self):
        from repro.diagnose.diagnose import DiagnosisReport

        lit = DiagnosisReport(cells=[self._cell(0.875)]).summary()
        assert "conf=0.875" in lit
        # The legacy syndrome ranking has no marginals: the column degrades
        # to a placeholder instead of disappearing (fixed-width parity).
        dark = DiagnosisReport(cells=[self._cell(None)]).summary()
        assert "conf=-" in dark

    def test_fallback_note_parity_with_volume_report(self):
        from repro.diagnose.diagnose import DiagnosisReport
        from repro.volume import BpDiagnosisReport

        fallbacks = [
            {"requested": "processes", "used": "threads", "reason": "no fork"}
        ]
        classic = DiagnosisReport(campaign={"backend_fallbacks": fallbacks})
        volume = BpDiagnosisReport(campaign={"backend_fallbacks": fallbacks})
        assert classic.degraded and volume.degraded
        assert classic.backend_fallbacks == volume.backend_fallbacks
        note = "NOTE: backend fallback processes -> threads: no fork"
        assert note in classic.summary()
        assert note in volume.summary()
