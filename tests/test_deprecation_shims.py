"""Deprecation hygiene of the legacy shims: warning text and attribution.

The shims must warn with ``stacklevel=2`` so the warning points at the
*caller's* line — asserted here via the recorded warning's filename.
"""

from __future__ import annotations

import pytest

from repro.atpg import AtpgOptions
from repro.core.experiments import (
    experiment_setup,
    run_all_experiments,
    run_experiment,
)
from repro.core.flow import DelayTestFlow, prepare_design

CHEAP = AtpgOptions(
    random_pattern_batches=1, patterns_per_batch=8, backtrack_limit=4,
    max_patterns=4,
)


@pytest.fixture(scope="module")
def tiny_prepared():
    return prepare_design(size=1, seed=7, num_chains=4)


def test_experiment_setup_warns_at_caller(tiny_prepared):
    with pytest.warns(DeprecationWarning, match="experiment_setup is deprecated") as rec:
        experiment_setup("a", tiny_prepared, CHEAP)
    assert rec[0].filename == __file__


def test_run_experiment_warns_at_caller(tiny_prepared):
    with pytest.warns(DeprecationWarning, match="run_experiment is deprecated") as rec:
        run_experiment("a", tiny_prepared, CHEAP)
    assert rec[0].filename == __file__


def test_run_all_experiments_warns_at_caller(tiny_prepared):
    with pytest.warns(
        DeprecationWarning, match="run_all_experiments is deprecated"
    ) as rec:
        run_all_experiments(tiny_prepared, CHEAP, keys=("a",))
    assert rec[0].filename == __file__


def test_delay_test_flow_warns_at_caller():
    with pytest.warns(DeprecationWarning, match="DelayTestFlow is deprecated") as rec:
        DelayTestFlow(size=1, seed=7, num_chains=4, options=CHEAP)
    assert rec[0].filename == __file__
