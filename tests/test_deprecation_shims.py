"""Deprecation hygiene of the legacy shims: warning text and attribution.

The shims must warn with ``stacklevel=2`` so the warning points at the
*caller's* line — asserted here via the recorded warning's filename.
"""

from __future__ import annotations

import pytest

from repro.atpg import AtpgOptions
from repro.core.experiments import (
    experiment_setup,
    run_all_experiments,
    run_experiment,
)
from repro.core.flow import DelayTestFlow, prepare_design

CHEAP = AtpgOptions(
    random_pattern_batches=1, patterns_per_batch=8, backtrack_limit=4,
    max_patterns=4,
)


@pytest.fixture(scope="module")
def tiny_prepared():
    return prepare_design(size=1, seed=7, num_chains=4)


def test_experiment_setup_warns_at_caller(tiny_prepared):
    with pytest.warns(DeprecationWarning, match="experiment_setup is deprecated") as rec:
        experiment_setup("a", tiny_prepared, CHEAP)
    assert rec[0].filename == __file__


def test_run_experiment_warns_at_caller(tiny_prepared):
    with pytest.warns(DeprecationWarning, match="run_experiment is deprecated") as rec:
        run_experiment("a", tiny_prepared, CHEAP)
    assert rec[0].filename == __file__


def test_run_all_experiments_warns_at_caller(tiny_prepared):
    with pytest.warns(
        DeprecationWarning, match="run_all_experiments is deprecated"
    ) as rec:
        run_all_experiments(tiny_prepared, CHEAP, keys=("a",))
    assert rec[0].filename == __file__


def test_delay_test_flow_warns_at_caller():
    with pytest.warns(DeprecationWarning, match="DelayTestFlow is deprecated") as rec:
        DelayTestFlow(size=1, seed=7, num_chains=4, options=CHEAP)
    assert rec[0].filename == __file__


# ---------------------------------------------------------------------------
# Execution-plane shims: the legacy run signatures still work, but compile to
# a runtime Plan and warn at the caller.
# ---------------------------------------------------------------------------
def test_session_run_parallel_warns_at_caller_and_still_runs(tiny_prepared):
    from repro.api import TestSession

    session = TestSession.from_prepared(tiny_prepared, CHEAP).add_scenario("table1-a")
    with pytest.warns(
        DeprecationWarning, match=r"run\(parallel=True\) is deprecated"
    ) as rec:
        report = session.run(parallel=True)
    assert rec[0].filename == __file__
    assert report.scenarios() == ["table1-a"]


def test_campaign_run_backend_warns_at_caller_and_still_runs(tiny_prepared):
    from repro.api import Campaign

    campaign = Campaign(designs=[tiny_prepared], scenarios=["a"], options=CHEAP)
    with pytest.warns(
        DeprecationWarning, match=r"Campaign\.run\(backend=\.\.\.\) is deprecated"
    ) as rec:
        report = campaign.run(backend="serial")
    assert rec[0].filename == __file__
    assert len(report) == 1


def test_executor_argument_paths_do_not_warn(tiny_prepared, recwarn):
    import warnings

    from repro.api import Campaign, TestSession
    from repro.runtime import Executor

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        TestSession.from_prepared(tiny_prepared, CHEAP).add_scenario(
            "table1-a"
        ).run(executor=Executor())
        Campaign(designs=[tiny_prepared], scenarios=["a"], options=CHEAP).run(
            executor=Executor()
        )


def test_run_rejects_mixing_executor_with_legacy_knobs(tiny_prepared):
    from repro.api import Campaign, TestSession
    from repro.runtime import Executor

    session = TestSession.from_prepared(tiny_prepared, CHEAP).add_scenario("table1-a")
    with pytest.raises(ValueError, match="either executor="):
        session.run(backend="threads", executor=Executor())
    campaign = Campaign(designs=[tiny_prepared], scenarios=["a"], options=CHEAP)
    with pytest.raises(ValueError, match="either executor="):
        campaign.run(backend="threads", executor=Executor())


def test_validate_netlist_warns_at_caller_and_still_reports():
    from repro.netlist import Gate, GateType, Netlist, validate_netlist

    netlist = Netlist("bad")
    netlist.add_input("a")
    netlist.add_gate(Gate("g", GateType.AND, ("a", "floating"), "y"))
    netlist.add_output("y")
    with pytest.warns(DeprecationWarning, match="validate_netlist is deprecated") as rec:
        report = validate_netlist(netlist)
    assert rec[0].filename == __file__
    # The shim still produces a working legacy-shaped report.
    assert not report.ok
    assert any(v.rule == "undriven-net" for v in report.errors)


def test_with_backend_rejects_non_positive_pool_knobs(tiny_prepared):
    """Session, campaign and executor share one validation message."""
    from repro.api import Campaign, TestSession
    from repro.runtime import Executor

    session = TestSession.from_prepared(tiny_prepared, CHEAP)
    campaign = Campaign(designs=[tiny_prepared], scenarios=["a"], options=CHEAP)
    expectation = r"shards must be a positive integer \(got 0\)"
    with pytest.raises(ValueError, match=expectation):
        session.with_backend("processes", shards=0)
    with pytest.raises(ValueError, match=expectation):
        campaign.with_backend("processes", shards=0)
    expectation = r"workers must be a positive integer \(got -2\)"
    with pytest.raises(ValueError, match=expectation):
        session.with_backend("threads", workers=-2)
    with pytest.raises(ValueError, match=expectation):
        campaign.with_backend("threads", workers=-2)
    with pytest.raises(ValueError, match=r"workers must be a positive integer \(got 0\)"):
        Executor(backend="processes", max_workers=0)
