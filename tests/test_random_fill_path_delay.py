"""Tests for random pattern generation and path-delay fault support."""

import random

import pytest

from repro.atpg import (
    AtpgOptions,
    PathDelayAtpg,
    TestSetup,
    fill_pattern,
    random_pattern,
    random_pattern_batch,
    select_critical_paths,
)
from repro.clocking import external_clock_procedures
from repro.fault_sim import PathDelaySensitizationChecker
from repro.faults import PathDelayFault
from repro.logic import Logic


@pytest.fixture()
def pipeline_env(scanned_pipeline):
    netlist, scan, model, domain_map = scanned_pipeline
    setup = TestSetup(
        name="pd",
        procedures=external_clock_procedures(["clk"], max_pulses=2),
        observe_pos=True,
        scan_enable_net="scan_en",
        options=AtpgOptions(backtrack_limit=30),
    )
    return netlist, scan, model, domain_map, setup


class TestRandomPatterns:
    def test_random_pattern_is_fully_specified(self, pipeline_env):
        _, scan, model, domain_map, setup = pipeline_env
        rng = random.Random(0)
        cells = [c for chain in scan.chains for c in chain.cells]
        pattern = random_pattern(setup.procedures[0], cells, ["d_0", "d_1"], rng)
        assert all(v.is_known for v in pattern.scan_load.values())
        assert all(v.is_known for frame in pattern.pi_frames for v in frame.values())

    def test_hold_pis_repeats_vector(self, pipeline_env):
        _, scan, _, _, setup = pipeline_env
        rng = random.Random(0)
        pattern = random_pattern(setup.procedures[0], ["ff0"], ["d_0"], rng, hold_pis=True)
        assert pattern.pi_frames[0] == pattern.pi_frames[1]

    def test_batch_cycles_procedures(self, pipeline_env):
        _, scan, _, _, setup = pipeline_env
        rng = random.Random(0)
        batch = random_pattern_batch(setup.procedures, ["ff0"], ["d_0"], 6, rng)
        assert len(batch) == 6
        assert {p.procedure.name for p in batch} == {p.name for p in setup.procedures[:1]} or len(
            {p.procedure.name for p in batch}
        ) >= 1

    def test_fill_modes(self, pipeline_env):
        _, scan, _, _, setup = pipeline_env
        from repro.patterns import TestPattern

        pattern = TestPattern(procedure=setup.procedures[0], scan_load={"ff0": Logic.X})
        assert fill_pattern(pattern, random.Random(0), fill="zero").scan_load["ff0"] is Logic.ZERO
        assert fill_pattern(pattern, random.Random(0), fill="one").scan_load["ff0"] is Logic.ONE
        assert fill_pattern(pattern, random.Random(0)).scan_load["ff0"].is_known


class TestPathDelay:
    def test_select_critical_paths_structure(self, pipeline_env):
        _, _, model, _, _ = pipeline_env
        paths = select_critical_paths(model, count=5)
        assert 0 < len(paths) <= 5
        for fault in paths:
            assert len(fault.nodes) >= 2
            # Each node is in the previous node's fanout.
            for a, b in zip(fault.nodes, fault.nodes[1:]):
                assert b in model.fanout[a]

    def test_path_fault_validation(self):
        with pytest.raises(ValueError):
            PathDelayFault(nodes=(1,), rising=True)

    def test_generate_and_check_sensitization(self, pipeline_env):
        netlist, scan, model, domain_map, setup = pipeline_env
        paths = select_critical_paths(model, count=4)
        atpg = PathDelayAtpg(model, domain_map, setup)
        checker = PathDelaySensitizationChecker(model, domain_map, setup)
        tests = atpg.generate_all(paths)
        assert len(tests) == len(paths)
        generated = [t for t in tests if t.pattern is not None]
        # At least something should be testable, and every generated pattern
        # must really sensitize its path per the independent checker.
        for test in generated:
            filled = fill_pattern(test.pattern, random.Random(1))
            assert checker.sensitizes(filled, test.fault)
