"""Tests for the synthetic SOC generator and the end-to-end flow plumbing."""

import pytest

from repro.circuits import build_soc
from repro.core import instrument_soc
from repro.netlist import validate_netlist
from repro.simulation import build_model


class TestSocGenerator:
    def test_structure_contains_required_ingredients(self):
        soc = build_soc(size=1, seed=5)
        stats = soc.netlist.stats()
        assert stats.num_rams == 1
        assert stats.num_flops > 20
        assert soc.nonscan_flops
        assert {d.name for d in soc.domains} == {"fast", "slow", "tc"}
        assert soc.pll.multiplication_factor("clk_fast") == pytest.approx(6.0)
        assert validate_netlist(soc.netlist).ok

    def test_size_scales_gate_count(self):
        small = build_soc(size=1, seed=5).netlist.stats().num_gates
        large = build_soc(size=3, seed=5).netlist.stats().num_gates
        assert large > 2 * small

    def test_generation_is_deterministic(self):
        a = build_soc(size=1, seed=9).netlist
        b = build_soc(size=1, seed=9).netlist
        assert set(a.gates) == set(b.gates)
        assert set(a.flops) == set(b.flops)

    def test_different_seeds_differ(self):
        a = build_soc(size=1, seed=1).netlist
        b = build_soc(size=1, seed=2).netlist
        a_types = sorted(g.gtype.value for g in a.gates.values())
        b_types = sorted(g.gtype.value for g in b.gates.values())
        assert a_types != b_types or set(a.gates) != set(b.gates)

    def test_cross_domain_paths_exist(self):
        soc = build_soc(size=1, seed=5)
        model = build_model(soc.netlist)
        from repro.clocking import ClockDomainMap

        dm = ClockDomainMap.from_netlist(soc.netlist, soc.domains)
        crossing = 0
        for element in model.state_elements:
            if element.d_node is None:
                continue
            capture_domain = dm.domain_of(element.name)
            for src in model.transitive_fanin(element.d_node):
                owner = model.nodes[src]
                if owner.kind.value == "PPI" and owner.instance:
                    source_domain = dm.domain_of(owner.instance)
                    if source_domain and capture_domain and source_domain != capture_domain:
                        crossing += 1
                        break
        assert crossing > 0

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            build_soc(size=0)


class TestPrepareDesign:
    def test_prepare_builds_consistent_views(self, tiny_prepared):
        prepared = tiny_prepared
        assert prepared.scan.num_chains >= 3
        assert prepared.model.num_nodes > 100
        assert set(prepared.domain_map.summary()) == {"fast", "slow", "tc"}
        # Every scan cell belongs to a chain and to the model's state elements.
        stitched = {c for chain in prepared.scan.chains for c in chain.cells}
        model_scan = {e.name for e in prepared.model.state_elements if e.flop.is_scan}
        assert stitched == model_scan

    def test_nonscan_cells_not_stitched(self, tiny_prepared):
        prepared = tiny_prepared
        stitched = {c for chain in prepared.scan.chains for c in chain.cells}
        assert stitched.isdisjoint(set(prepared.soc.nonscan_flops))


class TestInstrumentSoc:
    def test_cpf_per_functional_domain(self, tiny_prepared):
        top, inserted = instrument_soc(tiny_prepared)
        assert len(inserted) == 2
        assert {r.domain for r in inserted} == {"fast", "slow"}
        # Functional flip-flops are now clocked from the CPF outputs.
        cpf_clocks = {r.ports.clk_out for r in inserted}
        reclocked = [f for f in top.flops.values() if f.clock in cpf_clocks]
        assert len(reclocked) > 0.7 * len(tiny_prepared.netlist.flops)
        # The original prepared netlist is untouched.
        assert not any(f.clock in cpf_clocks for f in tiny_prepared.netlist.flops.values())

    def test_enhanced_instrumentation_adds_config_pins(self, tiny_prepared):
        top, inserted = instrument_soc(tiny_prepared, enhanced=True)
        for record in inserted:
            assert record.enhanced
            for net in record.ports.config:
                assert net in top.inputs
        assert validate_netlist(top).ok
