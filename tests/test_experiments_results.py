"""Tests for the experiment configurations and result reporting.

The heavy full-SOC comparison lives in the benchmark suite; here the setups
themselves are checked (which constraints each experiment applies), a reduced
two-experiment run exercises the flow end to end on the tiny SOC, and the
claim-evaluation/reporting code is tested on synthetic results.
"""


import pytest

from repro.atpg import AtpgOptions
from repro.atpg.compaction import CompactionStats
from repro.atpg.generator import AtpgResult, AtpgStatistics
from repro.core import (
    EXPERIMENT_DESCRIPTIONS,
    compare_with_paper,
    experiment_setup,
    format_comparison,
    format_table1,
    results_as_records,
    run_experiment,
)
from repro.faults import FaultList
from repro.patterns import PatternSet, format_table, shape_checks, table_rows
from repro.faults.fault_list import CoverageReport


class TestExperimentSetups:
    def test_experiment_a_is_slow_and_observable(self, tiny_prepared):
        setup = experiment_setup("a", tiny_prepared)
        assert setup.observe_pos
        assert not any(p.is_at_speed for p in setup.procedures)
        assert setup.max_pulses == 2

    def test_experiment_b_is_unconstrained_reference(self, tiny_prepared):
        setup = experiment_setup("b", tiny_prepared)
        assert setup.observe_pos and not setup.hold_pis
        assert not setup.constrain_scan_enable
        assert setup.max_pulses == 4
        assert "tc" in setup.all_domains

    def test_experiment_c_is_simple_cpf(self, tiny_prepared):
        setup = experiment_setup("c", tiny_prepared)
        assert not setup.observe_pos and setup.hold_pis
        assert setup.constrain_scan_enable
        assert setup.max_pulses == 2
        assert not setup.allows_inter_domain
        assert "tc" not in setup.all_domains
        # One procedure per functional domain, each pulsing a single domain.
        assert len(setup.procedures) == 2
        assert all(len(p.all_domains) == 1 for p in setup.procedures)

    def test_experiment_d_enhanced_cpf(self, tiny_prepared):
        setup = experiment_setup("d", tiny_prepared)
        assert setup.max_pulses == 4
        assert setup.allows_inter_domain
        assert not setup.observe_pos

    def test_experiment_e_constrained_external(self, tiny_prepared):
        setup = experiment_setup("e", tiny_prepared)
        assert not setup.observe_pos and setup.hold_pis
        assert setup.constrain_scan_enable
        # Both functional domains pulse together in every procedure.
        for procedure in setup.procedures:
            assert procedure.all_domains == frozenset({"fast", "slow"})

    def test_unknown_experiment_rejected(self, tiny_prepared):
        with pytest.raises(KeyError):
            experiment_setup("z", tiny_prepared)

    def test_reset_constrained_everywhere(self, tiny_prepared):
        for key in "abcde":
            setup = experiment_setup(key, tiny_prepared)
            assert tiny_prepared.soc.reset_net in setup.pin_constraints


class TestReducedExperimentRun:
    def test_experiments_a_and_c_run_on_tiny_soc(self, tiny_prepared):
        options = AtpgOptions(random_pattern_batches=2, patterns_per_batch=32,
                              backtrack_limit=15)
        result_a = run_experiment("a", tiny_prepared, options)
        result_c = run_experiment("c", tiny_prepared, options)
        assert result_a.coverage.detected > 0
        assert result_c.coverage.detected > 0
        # The constrained on-chip configuration cannot beat the slow external one.
        assert result_c.coverage.test_coverage <= result_a.coverage.test_coverage + 1e-9
        assert result_a.stats.unconfirmed_podem_tests == 0
        assert result_c.stats.unconfirmed_podem_tests == 0


def fake_result(name, coverage_percent, patterns):
    total = 1000
    detected = int(total * coverage_percent / 100)
    report = CoverageReport(
        total_faults=total,
        detected=detected,
        possibly_detected=0,
        atpg_untestable=total - detected,
        untestable=0,
        aborted=0,
        undetected=0,
    )
    return AtpgResult(
        setup_name=name,
        patterns=PatternSet([]),
        fault_list=FaultList([]),
        coverage=report,
        stats=AtpgStatistics(),
        compaction=CompactionStats(),
    )


def paperlike_results():
    """Synthetic results mirroring the paper's reported relations."""
    return {
        "a": fake_result("(a)", 98.7, 1000),
        "b": fake_result("(b)", 95.0, 4800),
        "c": fake_result("(c)", 87.5, 10500),
        "d": fake_result("(d)", 88.1, 10000),
        "e": fake_result("(e)", 88.4, 8400),
    }


class _PatternCountPatch:
    """AtpgResult.pattern_count reads len(patterns); patch via dummy patterns."""

    @staticmethod
    def apply(results, counts):
        from repro.clocking import CapturePulse, NamedCaptureProcedure
        from repro.patterns import TestPattern

        proc = NamedCaptureProcedure(name="p", pulses=(CapturePulse.of("x"),))
        for key, count in counts.items():
            results[key].patterns.extend(
                TestPattern(procedure=proc) for _ in range(count)
            )


class TestReporting:
    def make_results(self):
        results = paperlike_results()
        _PatternCountPatch.apply(
            results, {"a": 10, "b": 48, "c": 105, "d": 100, "e": 84}
        )
        return results

    def test_all_paper_claims_hold_on_paperlike_numbers(self):
        results = self.make_results()
        checks = compare_with_paper(results)
        assert all(check.holds for check in checks)
        text = format_comparison(results)
        assert "7/7" in text

    def test_table_formatting(self):
        results = self.make_results()
        table = format_table1(results)
        for key in "abcde":
            assert EXPERIMENT_DESCRIPTIONS[key][:20] in table
        rows = table_rows(results, EXPERIMENT_DESCRIPTIONS)
        assert len(rows) == 5
        assert "Table 1" in format_table(rows)

    def test_shape_checks_summary(self):
        results = self.make_results()
        checks = shape_checks(results)
        assert checks.stuck_at_above_transition
        assert checks.enhanced_cpf_recovers_coverage
        assert checks.transition_patterns_factor_over_stuck_at == pytest.approx(4.8)

    def test_records_serializable(self):
        records = results_as_records(self.make_results())
        assert len(records) == 5
        assert all("test_coverage_percent" in r for r in records)

    def test_missing_experiment_raises(self):
        results = self.make_results()
        del results["e"]
        with pytest.raises(KeyError):
            compare_with_paper(results)
