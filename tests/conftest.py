"""Shared fixtures: small circuits, scan-inserted designs, cheap ATPG options."""

from __future__ import annotations

import pytest

from repro.atpg import AtpgOptions, TestSetup
from repro.circuits import c17, pipeline, s27, two_domain_crossing
from repro.clocking import ClockDomain, ClockDomainMap, external_clock_procedures, stuck_at_procedures
from repro.core import prepare_design
from repro.dft import insert_scan
from repro.simulation import build_model


@pytest.fixture(scope="session")
def c17_netlist():
    return c17()


@pytest.fixture(scope="session")
def c17_model(c17_netlist):
    return build_model(c17_netlist)


@pytest.fixture()
def s27_netlist():
    return s27()


@pytest.fixture(scope="session")
def scanned_s27():
    """s27 with one scan chain inserted, plus its model and domain map."""
    netlist = s27()
    netlist, scan = insert_scan(netlist, num_chains=1)
    model = build_model(netlist)
    domain_map = ClockDomainMap.from_netlist(netlist, [ClockDomain("clk", "clk", 100.0)])
    return netlist, scan, model, domain_map


@pytest.fixture(scope="session")
def scanned_pipeline():
    """A 3-stage pipeline with 2 scan chains (model + domain map)."""
    netlist = pipeline(width=4, stages=3, seed=3)
    netlist, scan = insert_scan(netlist, num_chains=2)
    model = build_model(netlist)
    domain_map = ClockDomainMap.from_netlist(netlist, [ClockDomain("clk", "clk", 100.0)])
    return netlist, scan, model, domain_map


@pytest.fixture(scope="session")
def scanned_two_domain():
    """Two-clock-domain crossing circuit with scan (model + domain map)."""
    netlist = two_domain_crossing(width=4)
    netlist, scan = insert_scan(netlist, num_chains=2)
    model = build_model(netlist)
    domain_map = ClockDomainMap.from_netlist(
        netlist,
        [ClockDomain("a", "clk_a", 150.0), ClockDomain("b", "clk_b", 75.0)],
    )
    return netlist, scan, model, domain_map


@pytest.fixture(scope="session")
def cheap_options():
    """ATPG options tuned for unit-test speed."""
    return AtpgOptions(
        random_pattern_batches=2,
        patterns_per_batch=32,
        backtrack_limit=20,
        random_seed=7,
    )


@pytest.fixture(scope="session")
def tiny_prepared():
    """A size-1 SOC prepared (scan inserted, model + domain map built)."""
    return prepare_design(size=1, seed=11, num_chains=4)


@pytest.fixture(scope="session")
def single_clock_transition_setup():
    """A permissive transition test setup for single-clock circuits."""
    return TestSetup(
        name="unit-test transition",
        procedures=external_clock_procedures(["clk"], max_pulses=3),
        observe_pos=True,
        hold_pis=True,
        scan_enable_net="scan_en",
        constrain_scan_enable=True,
        options=AtpgOptions(random_pattern_batches=2, patterns_per_batch=32, backtrack_limit=20),
    )


@pytest.fixture(scope="session")
def single_clock_stuck_setup():
    """A stuck-at setup for single-clock circuits."""
    return TestSetup(
        name="unit-test stuck-at",
        procedures=stuck_at_procedures(["clk"], max_pulses=2),
        observe_pos=True,
        hold_pis=False,
        scan_enable_net="scan_en",
        constrain_scan_enable=False,
        options=AtpgOptions(random_pattern_batches=2, patterns_per_batch=32, backtrack_limit=20),
    )
