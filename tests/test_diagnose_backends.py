"""Diagnosis acceptance: rank-1 recovery on every registry design, and
bit-identical candidate rankings across all four engine backends.

For each registered design and each defect family (stuck-at, transition,
inter-domain) a single defect is injected, its fail log captured, and the
Table 1 scenario's pattern set diagnosed on serial / compiled / threads /
processes — every backend (and shard count) must produce the identical
ranking, with the injected defect at rank 1.
"""

from __future__ import annotations

import pytest

from repro.api import TestSession
from repro.api.design import design_names
from repro.api.scenarios import table1_scenario
from repro.atpg import AtpgOptions
from repro.diagnose import DefectSpec, DiagnosisSpec, capture_fail_log, run_diagnosis
from repro.faults.fault_list import FaultStatus

ALL_BACKENDS = ("serial", "compiled", "threads", "processes")

#: Minimal ATPG effort: diagnosis needs a *detected* defect, not coverage.
ULTRA = AtpgOptions(
    random_pattern_batches=1, patterns_per_batch=16, backtrack_limit=8,
    max_patterns=24,
)

#: Table 1 scenario exercising each defect family: stuck-at patterns for
#: stuck-at defects, the simple-CPF transition scenario for gross delay
#: defects, the enhanced-CPF scenario (the only one with inter-domain
#: launch/capture procedures) for inter-domain delay defects.
SCENARIO_OF_KIND = {"stuck-at": "a", "transition": "c", "inter-domain": "d"}

_ENVS: dict[tuple[str, str], tuple] = {}
_SESSIONS: dict[str, TestSession] = {}


def scenario_env(design: str, letter: str):
    """One executed (design, Table 1 scenario) cell, cached for the module."""
    key = (design, letter)
    if key not in _ENVS:
        session = _SESSIONS.get(design)
        if session is None:
            session = _SESSIONS[design] = TestSession.for_design(design, options=ULTRA)
        spec = table1_scenario(letter)
        if spec.name not in session.artifacts:
            session.run_scenario(spec)
        run = session.artifacts[spec.name]
        setup = spec.build_setup(session.prepared, ULTRA)
        _ENVS[key] = (session, spec, run, setup)
    return _ENVS[key]


def pick_defect(kind: str, session, spec, run, setup) -> DefectSpec:
    """A defect of the given family the pattern set provably exposes."""
    prepared = session.prepared
    result = session.result_of(spec.name)
    detected = result.fault_list.with_status(FaultStatus.DETECTED)
    assert detected, f"nothing detected on {prepared.netlist.name}/{spec.name}"
    # Start mid-list for variety; wrap around so a fail-log-visible defect is
    # always found.  Inter-domain defects stay silent unless an inter-domain
    # pattern exposes them, so faults whose recorded detecting pattern used an
    # inter-domain launch/capture procedure are probed first.
    start = len(detected) // 2
    ordered = detected[start:] + detected[:start]
    if kind == "inter-domain":
        patterns = run.patterns.patterns()
        fault_list = result.fault_list

        def detected_inter_domain(fault) -> bool:
            index = fault_list.record(fault).detected_by
            return (
                index is not None
                and index < len(patterns)
                and patterns[index].procedure.is_inter_domain
            )

        ordered = [f for f in ordered if detected_inter_domain(f)] + ordered
    for fault in ordered[:64]:
        defect = DefectSpec.from_fault(
            prepared.model, fault, inter_domain=(kind == "inter-domain")
        )
        log = capture_fail_log(
            prepared.model, prepared.domain_map, prepared.scan, setup,
            run.patterns, defect,
        )
        if log.num_fails:
            return defect
    raise AssertionError(f"no {kind} defect visible on {prepared.netlist.name}")


@pytest.mark.parametrize("design", design_names())
@pytest.mark.parametrize("kind", sorted(SCENARIO_OF_KIND))
def test_injected_defect_rank_1_on_all_backends(design, kind):
    session, spec, run, setup = scenario_env(design, SCENARIO_OF_KIND[kind])
    defect = pick_defect(kind, session, spec, run, setup)
    results = {}
    for backend in ALL_BACKENDS:
        results[backend] = run_diagnosis(
            session.prepared, setup, run.patterns,
            DiagnosisSpec(scenario=spec.name, defect=defect, backend=backend),
            options=ULTRA,
        )
    reference = results["compiled"]
    assert reference.rank_of_defect == 1, (
        f"{design}/{kind}: {defect.describe()} recovered at rank "
        f"{reference.rank_of_defect}"
    )
    top = reference.candidates[0]
    assert top.misses == 0 and top.false_alarms == 0
    for backend, result in results.items():
        assert result.rank_of_defect == 1, f"{design}/{kind}/{backend}"
        # Bit-identical syndrome scores, not merely the same rank order.
        assert result.same_ranking(reference), f"{design}/{kind}/{backend}"


@pytest.mark.parametrize("shards", [1, 3, 7])
def test_shard_count_does_not_change_rankings(shards):
    session, spec, run, setup = scenario_env("tiny", "c")
    defect = pick_defect("transition", session, spec, run, setup)
    reference = run_diagnosis(
        session.prepared, setup, run.patterns,
        DiagnosisSpec(scenario=spec.name, defect=defect, backend="compiled"),
        options=ULTRA,
    )
    for backend in ("threads", "processes"):
        sharded = run_diagnosis(
            session.prepared, setup, run.patterns,
            DiagnosisSpec(scenario=spec.name, defect=defect, backend=backend),
            options=AtpgOptions(sim_shards=shards),
        )
        assert sharded.same_ranking(reference), (backend, shards)


def test_syndrome_batch_consistent_with_detect_batch():
    """Engine-level contract: OR of syndrome_batch == detect_batch, on every
    backend, for both fault models."""
    from repro.engine import FaultSimScheduler
    from repro.fault_sim import FrameSimulator
    from repro.faults import all_stuck_at_faults, all_transition_faults

    session, spec, run, setup = scenario_env("tiny", "c")
    model = session.prepared.model
    procedure = run.patterns[0].procedure
    batch = [p for p in run.patterns if p.procedure.name == procedure.name][:16]
    stuck = all_stuck_at_faults(model)[::37][:20]
    transition = all_transition_faults(model)[::37][:20]
    reference = None
    for backend in ALL_BACKENDS:
        scheduler = FaultSimScheduler(model, backend=backend, spill_threshold=0)
        frames_sim = FrameSimulator(model, session.prepared.domain_map, setup, scheduler)
        frames = frames_sim.frame_values_packed(batch, procedure)
        launch = frames[procedure.launch_frame]
        final = frames[procedure.capture_frame]
        observation = frames_sim.observation_nodes(procedure)
        outcome = []
        for faults, launch_planes in ((stuck, None), (transition, launch)):
            syndromes = scheduler.syndrome_batch(
                final, faults, observation, launch=launch_planes
            )
            detects = scheduler.detect_batch(
                final, faults, observation, launch=launch_planes
            )
            for masks, detect in zip(syndromes, detects):
                merged = 0
                for mask in masks:
                    merged |= mask
                assert merged == detect
            outcome.append(syndromes)
        scheduler.close()
        if reference is None:
            reference = outcome
        else:
            assert outcome == reference, backend
