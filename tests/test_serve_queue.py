"""ServeQueue semantics: leased claims, crash recovery, cancel, journal."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve import JOB_STATES, TERMINAL_STATES, ServeQueue


@pytest.fixture()
def queue(tmp_path):
    q = ServeQueue(tmp_path / "queue.sqlite")
    yield q
    q.close()


def submit(queue: ServeQueue, name: str = "job", tenant: str = "default") -> int:
    return queue.submit(tenant, name, '{"name": "p", "jobs": []}')


class TestLifecycle:
    def test_submit_claim_finish_happy_path(self, queue):
        job_id = submit(queue)
        assert queue.status(job_id)["state"] == "queued"
        row = queue.claim()
        assert row["id"] == job_id
        assert row["state"] == "running"
        assert row["attempts"] == 1
        assert row["plan"].startswith("{")
        queue.finish(job_id, "done", summary={"jobs": 0})
        status = queue.status(job_id)
        assert status["state"] == "done"
        assert status["summary"] == {"jobs": 0}

    def test_claims_are_fifo(self, queue):
        first = submit(queue, "first")
        second = submit(queue, "second")
        assert queue.claim()["id"] == first
        assert queue.claim()["id"] == second
        assert queue.claim() is None

    def test_public_status_never_leaks_payloads(self, queue):
        job_id = queue.submit("default", "j", '{"jobs": []}', resources=b"blob")
        status = queue.status(job_id)
        assert "plan" not in status and "resources" not in status
        # The runner-facing accessor still has them.
        assert queue.payload(job_id) == ('{"jobs": []}', b"blob")

    def test_finish_rejects_non_terminal_states(self, queue):
        job_id = submit(queue)
        queue.claim()
        with pytest.raises(ValueError, match="terminal state"):
            queue.finish(job_id, "queued")

    def test_finish_is_a_running_only_transition(self, queue):
        job_id = submit(queue)
        queue.claim()
        queue.finish(job_id, "done")
        queue.finish(job_id, "failed", error="late ack")  # silently ignored
        assert queue.status(job_id)["state"] == "done"

    def test_counts_cover_every_state(self, queue):
        submit(queue)
        done = submit(queue)
        queue.claim(), queue.claim()
        queue.finish(done, "done")
        counts = queue.counts()
        assert set(counts) == set(JOB_STATES)
        assert counts["running"] == 1 and counts["done"] == 1


class TestLeases:
    def test_heartbeat_extends_only_running_jobs(self, queue):
        job_id = submit(queue)
        assert not queue.heartbeat(job_id)  # still queued
        queue.claim()
        assert queue.heartbeat(job_id)
        queue.finish(job_id, "done")
        assert not queue.heartbeat(job_id)

    def test_expired_lease_returns_the_job_to_the_queue(self, tmp_path):
        queue = ServeQueue(tmp_path / "q.sqlite", lease_seconds=0.05)
        job_id = submit(queue)
        queue.claim()
        assert queue.requeue_expired() == []  # lease still fresh... almost
        time.sleep(0.1)
        assert queue.requeue_expired() == [job_id]
        assert queue.status(job_id)["state"] == "queued"
        # The next claim increments attempts — the journal survives both.
        assert queue.claim()["attempts"] == 2
        queue.close()

    def test_heartbeat_keeps_the_lease_alive(self, tmp_path):
        queue = ServeQueue(tmp_path / "q.sqlite", lease_seconds=0.2)
        submit(queue)
        queue.claim()
        for _ in range(3):
            time.sleep(0.1)
            assert queue.heartbeat(1)
            assert queue.requeue_expired() == []
        queue.close()

    def test_recover_requeues_every_running_job(self, tmp_path):
        path = tmp_path / "q.sqlite"
        queue = ServeQueue(path)
        ids = [submit(queue, f"j{i}") for i in range(3)]
        queue.claim(), queue.claim()
        queue.close()  # simulated crash: two claims never acked
        revived = ServeQueue(path)
        assert sorted(revived.recover()) == ids[:2]
        assert revived.counts()["queued"] == 3
        revived.close()


class TestCancel:
    def test_queued_jobs_cancel_outright(self, queue):
        job_id = submit(queue)
        assert queue.request_cancel(job_id) == "cancelled"
        assert queue.status(job_id)["state"] == "cancelled"
        assert queue.claim() is None

    def test_running_jobs_get_the_flag_only(self, queue):
        job_id = submit(queue)
        queue.claim()
        assert queue.request_cancel(job_id) == "running"
        assert queue.cancel_requested(job_id)
        queue.finish(job_id, "cancelled")
        assert queue.status(job_id)["state"] == "cancelled"

    def test_terminal_and_unknown_jobs_are_untouched(self, queue):
        job_id = submit(queue)
        queue.claim()
        queue.finish(job_id, "done")
        assert queue.request_cancel(job_id) == "done"
        assert queue.request_cancel(9999) is None


class TestJournal:
    def test_events_append_and_tail_in_order(self, queue):
        job_id = submit(queue)
        seqs = [queue.append_event(job_id, f'{{"n": {i}}}') for i in range(4)]
        assert seqs == sorted(seqs)
        tail = queue.events_after(job_id)
        assert [payload for _, payload in tail] == [f'{{"n": {i}}}' for i in range(4)]
        # Resume from the middle.
        resumed = queue.events_after(job_id, after=tail[1][0])
        assert [payload for _, payload in resumed] == ['{"n": 2}', '{"n": 3}']

    def test_journals_are_per_job(self, queue):
        a, b = submit(queue, "a"), submit(queue, "b")
        queue.append_event(a, '{"who": "a"}')
        queue.append_event(b, '{"who": "b"}')
        assert [p for _, p in queue.events_after(a)] == ['{"who": "a"}']
        assert [p for _, p in queue.events_after(b)] == ['{"who": "b"}']

    def test_limit_bounds_a_tail_chunk(self, queue):
        job_id = submit(queue)
        for i in range(5):
            queue.append_event(job_id, f'{{"n": {i}}}')
        assert len(queue.events_after(job_id, limit=2)) == 2


class TestConcurrency:
    def test_parallel_claims_never_hand_out_the_same_job(self, queue):
        ids = {submit(queue, f"j{i}") for i in range(20)}
        claimed: list[int] = []
        lock = threading.Lock()

        def worker() -> None:
            while True:
                row = queue.claim()
                if row is None:
                    return
                with lock:
                    claimed.append(row["id"])
                queue.finish(row["id"], "done")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(claimed) == sorted(ids)
        assert len(set(claimed)) == len(ids)
        assert queue.counts()["done"] == len(ids)


def test_terminal_states_is_a_subset_of_job_states():
    assert set(TERMINAL_STATES) <= set(JOB_STATES)
