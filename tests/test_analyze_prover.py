"""The static untestability prover: soundness, ATPG pruning, backend-
identical accounting, and agreement with the structural fault classifier."""

from __future__ import annotations

import pytest

from repro.analyze import cross_check_with_classifier, prove_untestable, prune_fault_list
from repro.api import TestSession, design_names, get_scenario, prepare_from_spec
from repro.atpg import AtpgOptions
from repro.atpg.stuck_at import StuckAtAtpg
from repro.faults.classify import ClassifierContext, FaultClassifier
from repro.faults.fault_list import FaultList, FaultStatus
from repro.faults.models import all_stuck_at_faults, all_transition_faults
from repro.netlist import FlipFlop, Gate, GateType, Netlist
from repro.simulation import build_model

CHEAP = AtpgOptions(
    random_pattern_batches=2, patterns_per_batch=16, backtrack_limit=16,
)


def _setup_for(prepared, options=CHEAP):
    return get_scenario("table1-a").build_setup(prepared, options)


def _classifier_for(prepared, setup):
    context = ClassifierContext(
        netlist=prepared.netlist,
        model=prepared.model,
        domain_map=prepared.domain_map,
        at_speed_domains=setup.at_speed_domains,
        inter_domain_allowed=setup.allows_inter_domain,
        observe_pos=setup.observe_pos,
        scan_enable_net=setup.scan_enable_net,
        scan_enable_constrained=setup.constrain_scan_enable,
        constrained_pins=setup.pin_constraints,
        max_pulses=setup.max_pulses,
    )
    return FaultClassifier(context)


# ---------------------------------------------------------------------------
# Proof production
# ---------------------------------------------------------------------------
def test_prover_finds_untestable_faults_on_scan_design(tiny_prepared):
    setup = _setup_for(tiny_prepared)
    report = prove_untestable(tiny_prepared.model, setup=setup)
    assert report.num_untestable > 0
    assert set(report.by_reason()) <= {"constant-line", "unobservable"}
    assert report.total_faults >= report.num_untestable
    # The scan-enable constraint makes scan-mux shift pins unobservable
    # during capture: at least one proof must be of that kind.
    assert report.by_reason().get("unobservable", 0) > 0


def test_prover_is_deterministic(tiny_prepared):
    setup = _setup_for(tiny_prepared)
    first = prove_untestable(tiny_prepared.model, setup=setup)
    second = prove_untestable(tiny_prepared.model, setup=setup)
    assert first.proven_faults() == second.proven_faults()
    assert [p.reason for p in first.proofs] == [p.reason for p in second.proofs]


def test_constant_line_redundancy_from_tie_cell():
    netlist = Netlist("tied")
    netlist.add_input("a")
    netlist.declare_clock("clk")
    netlist.add_gate(Gate("t0", GateType.TIE0, (), "zero"))
    netlist.add_gate(Gate("g", GateType.AND, ("a", "zero"), "y"))
    netlist.add_flop(FlipFlop(name="ff", d="y", q="q", clock="clk"))
    netlist.add_output("q")
    model = build_model(netlist)

    stuck = prove_untestable(model, all_stuck_at_faults(model))
    reasons = {p.reason for p in stuck.proofs}
    assert "constant-line" in reasons
    details = " | ".join(p.detail for p in stuck.proofs if p.reason == "constant-line")
    assert "'zero'" in details or "'y'" in details

    # A constant line of either polarity kills both transition directions.
    transition = prove_untestable(model, all_transition_faults(model))
    assert any(p.reason == "constant-line" for p in transition.proofs)


def test_prune_marks_faults_untestable_with_proof_group(tiny_prepared):
    setup = _setup_for(tiny_prepared)
    fault_list = FaultList(all_stuck_at_faults(tiny_prepared.model))
    report = prune_fault_list(fault_list, tiny_prepared.model, setup=setup)
    assert report.num_untestable > 0
    coverage = fault_list.coverage()
    assert coverage.untestable == report.num_untestable
    for proof in report.proofs:
        record = fault_list.record(proof.fault)
        assert record.status is FaultStatus.UNTESTABLE
        assert record.group == f"proven-{proof.reason}"
    # Untestable faults leave the test-coverage denominator.
    assert coverage.total_faults - coverage.untestable < coverage.total_faults


# ---------------------------------------------------------------------------
# Soundness: no proven fault is ever detected by real ATPG
# ---------------------------------------------------------------------------
def test_proofs_are_sound_against_unpruned_atpg(tiny_prepared):
    setup = _setup_for(tiny_prepared, AtpgOptions(
        random_pattern_batches=4, patterns_per_batch=32, backtrack_limit=32,
    ))
    proven = prove_untestable(tiny_prepared.model, setup=setup)
    result = StuckAtAtpg(
        tiny_prepared.model, tiny_prepared.domain_map, setup
    ).run()
    detected = set(result.fault_list.with_status(FaultStatus.DETECTED))
    # collapse maps the uncollapsed universe onto representatives; compare
    # on the representative set the generator actually targeted.
    overlap = detected & proven.proven_faults()
    assert overlap == set(), f"prover claimed detected faults untestable: {overlap}"


# ---------------------------------------------------------------------------
# ATPG integration: bit-identical accounting across every backend
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backends", [("serial", "compiled", "threads", "processes")])
def test_pruned_coverage_bit_identical_across_backends(backends):
    results = {}
    for backend in backends:
        options = AtpgOptions(
            prune_untestable=True, sim_backend=backend,
            random_pattern_batches=2, patterns_per_batch=16, backtrack_limit=16,
        )
        session = TestSession.for_design("tiny", options=options).add_scenario(
            "table1-a"
        )
        session.run()
        result = session.artifacts["table1-a"].result
        assert result.stats.proven_untestable > 0
        results[backend] = (
            result.coverage.as_dict(),
            result.pattern_count,
            result.stats.proven_untestable,
        )
    reference = results[backends[0]]
    for backend in backends[1:]:
        assert results[backend] == reference, (
            f"{backend} accounting diverged from {backends[0]}"
        )


def test_prune_option_defaults_off(tiny_prepared):
    setup = _setup_for(tiny_prepared)
    assert setup.options.prune_untestable is False
    generator = StuckAtAtpg(tiny_prepared.model, tiny_prepared.domain_map, setup)
    assert generator.stats.proven_untestable == 0
    assert not generator.fault_list.with_status(FaultStatus.UNTESTABLE)


# ---------------------------------------------------------------------------
# Classifier agreement over the whole design registry
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", design_names())
def test_classifier_agrees_on_registry_design(name):
    prepared = prepare_from_spec(name)
    setup = _setup_for(prepared)
    report = prove_untestable(prepared.model, setup=setup)
    classifier = _classifier_for(prepared, setup)
    histogram = cross_check_with_classifier(report, classifier)
    # Every proven fault lands in a classifier group — the prover never
    # proves a fault the classifier has no structural explanation for.
    assert sum(histogram.values()) == report.num_untestable
    assert all(isinstance(group, str) and group for group in histogram)


def test_some_registry_design_has_nonempty_prune_set():
    totals = {}
    for name in design_names():
        prepared = prepare_from_spec(name)
        report = prove_untestable(prepared.model, setup=_setup_for(prepared))
        totals[name] = report.num_untestable
    assert any(count > 0 for count in totals.values()), totals
