"""Tests for the disk-spilling pattern store (PR-10 tentpole).

Covers both backends (sqlite and jsonl), the lazy view, interchange, and
the session/campaign wiring that spills executed scenarios' patterns.
"""

from __future__ import annotations

import pickle

import pytest

from repro.api import TestSession
from repro.api.campaign import Campaign
from repro.logic import Logic
from repro.clocking import CapturePulse, NamedCaptureProcedure
from repro.patterns.pattern import PatternSet, TestPattern
from repro.patterns.store import PatternStore, StoredPatternView
from repro.runtime import Executor

BACKEND_PATHS = {"sqlite": "store.db", "jsonl": "store.jsonl"}


def _procedure(name="stuck", at_speed=False):
    return NamedCaptureProcedure(
        name=name, pulses=(CapturePulse.of("fast", at_speed=at_speed),)
    )


def _pattern(index, procedure=None):
    procedure = procedure or _procedure()
    load = {f"ff_{i}": (Logic.ONE if (index >> i) & 1 else Logic.ZERO) for i in range(4)}
    return TestPattern(
        procedure=procedure,
        scan_load=load,
        pi_frames=[{"in_0": Logic.ZERO}],
        target_faults=[f"fault_{index}"],
    )


@pytest.fixture(params=sorted(BACKEND_PATHS))
def store(request, tmp_path):
    return PatternStore(tmp_path / BACKEND_PATHS[request.param])


class TestPatternStoreBackends:
    def test_backend_picked_from_suffix(self, tmp_path):
        assert PatternStore(tmp_path / "a.jsonl").kind == "jsonl"
        assert PatternStore(tmp_path / "a.db").kind == "sqlite"
        assert PatternStore(tmp_path / "nested" / "deep.db").path.parent.is_dir()

    def test_append_extend_count(self, store):
        assert store.append(_pattern(0), design="d", scenario="s") == 0
        assert store.append(_pattern(1), design="d", scenario="s") == 1
        written = store.extend(
            (_pattern(i) for i in range(2, 5)), design="d", scenario="t"
        )
        assert written == 3
        assert store.count(design="d", scenario="s") == 2
        assert store.count(design="d", scenario="t") == 3
        assert store.count() == len(store) == 5

    def test_groups_in_first_appearance_order(self, store):
        store.extend([_pattern(0)], design="b", scenario="z")
        store.extend([_pattern(1)], design="a", scenario="y")
        store.extend([_pattern(2)], design="b", scenario="z")
        assert store.groups() == [("b", "z"), ("a", "y")]

    def test_view_is_lazy_and_ordered(self, store):
        originals = [_pattern(i) for i in range(6)]
        store.spill(PatternSet(originals), design="d", scenario="s")
        store.extend([_pattern(99)], design="other", scenario="s")
        view = store.view(design="d", scenario="s")
        assert view._keys is None  # index built on first access, not init
        assert len(view) == 6
        assert view[2].scan_load == originals[2].scan_load
        assert [p.target_faults for p in view] == [p.target_faults for p in originals]
        assert len(view.patterns()) == 6

    def test_load_materializes_pattern_set(self, store):
        store.extend([_pattern(i) for i in range(3)], design="d", scenario="s")
        loaded = store.load(design="d", scenario="s")
        assert isinstance(loaded, PatternSet)
        assert len(loaded) == 3

    def test_stats_parity_with_pattern_set(self, store):
        originals = [
            _pattern(i, procedure=_procedure("p1" if i % 2 else "p2"))
            for i in range(5)
        ]
        store.spill(PatternSet(originals), design="d", scenario="s")
        expected = PatternSet(originals).stats()
        assert store.view(design="d", scenario="s").stats() == expected

    def test_view_survives_pickling(self, store):
        store.extend([_pattern(i) for i in range(3)], design="d", scenario="s")
        view = store.view(design="d", scenario="s")
        clone = pickle.loads(pickle.dumps(view))
        assert isinstance(clone, StoredPatternView)
        assert len(clone) == 3
        assert clone[0].scan_load == view[0].scan_load

    def test_export_import_jsonl_round_trip(self, store, tmp_path):
        store.extend([_pattern(i) for i in range(4)], design="d", scenario="s")
        store.extend([_pattern(9)], design="e", scenario="s")
        dump = tmp_path / "dump.jsonl"
        assert store.export_jsonl(dump) == 5
        other = PatternStore(tmp_path / "other.db")
        assert other.import_jsonl(dump) == 5
        assert other.groups() == store.groups()
        assert other.view(design="d", scenario="s")[1].scan_load == _pattern(1).scan_load


class TestSessionStoreStage:
    def _session(self, store):
        return (
            TestSession.for_soc(size=1, seed=17)
            .add_scenario("table1-a")
            .with_pattern_store(store)
        )

    def test_store_stage_spills_and_dedups(self, tmp_path):
        store = PatternStore(tmp_path / "session.db")
        session = self._session(store)
        report = session.run()
        run = session.artifacts["table1-a"]
        assert report is not None
        count = run.extras["store"]["patterns"]
        assert count == store.count(scenario="table1-a") > 0
        # A rerun finds the group present and leaves the store untouched.
        session2 = self._session(store)
        session2.run()
        assert store.count(scenario="table1-a") == count

    def test_stream_mode_serves_lazy_view(self, tmp_path):
        store = PatternStore(tmp_path / "session.db")
        session = (
            TestSession.for_soc(size=1, seed=17)
            .add_scenario("table1-a")
            .with_pattern_store(store, stream=True)
        )
        session.run()
        run = session.artifacts["table1-a"]
        assert isinstance(run.patterns, StoredPatternView)
        assert len(run.patterns) == store.count(scenario="table1-a")

    def test_detach_removes_stage(self, tmp_path):
        store = PatternStore(tmp_path / "session.db")
        session = self._session(store).with_pattern_store(None)
        session.run()
        assert len(store) == 0
        assert "store" not in session.artifacts["table1-a"].extras


class TestCampaignStore:
    def test_campaign_groups_by_design_name(self, tmp_path):
        store_path = tmp_path / "campaign.db"
        campaign = Campaign(
            ["tiny", "wide-edt"], ["table1-a"]
        ).with_pattern_store(PatternStore(store_path))
        campaign.run(executor=Executor(backend="serial"))
        store = PatternStore(store_path)
        groups = store.groups()
        assert ("tiny", "table1-a") in groups
        assert ("wide-edt", "table1-a") in groups
        assert all(store.count(design=d, scenario=s) > 0 for d, s in groups)
