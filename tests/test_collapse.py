"""Unit tests for structural fault-equivalence collapsing."""

from repro.faults import (
    FaultSite,
    StuckAtFault,
    all_stuck_at_faults,
    all_transition_faults,
    collapse_faults,
    equivalent_faults,
)
from repro.netlist import GateType, NetlistBuilder
from repro.simulation import build_model


def single_gate_model(gtype, fanin=2):
    builder = NetlistBuilder("g")
    inputs = builder.inputs("a", fanin)
    builder.output_from(builder.gate(gtype, inputs), "y")
    return build_model(builder.build())


def test_and_gate_equivalence():
    model = single_gate_model(GateType.AND)
    faults = all_stuck_at_faults(model)
    result = collapse_faults(model, faults)
    gate = next(n for n in model.nodes if n.gtype is GateType.AND)
    out_sa0 = StuckAtFault(site=FaultSite(node=gate.index), value=0)
    in0_sa0 = StuckAtFault(site=FaultSite(node=gate.index, pin=0), value=0)
    in1_sa0 = StuckAtFault(site=FaultSite(node=gate.index, pin=1), value=0)
    assert result.class_of[out_sa0] == result.class_of[in0_sa0] == result.class_of[in1_sa0]
    # sa1 faults stay distinct from each other.
    out_sa1 = StuckAtFault(site=FaultSite(node=gate.index), value=1)
    in0_sa1 = StuckAtFault(site=FaultSite(node=gate.index, pin=0), value=1)
    assert result.class_of[out_sa1] != result.class_of[in0_sa1]


def test_nand_gate_equivalence_inverts_polarity():
    model = single_gate_model(GateType.NAND)
    gate = next(n for n in model.nodes if n.gtype is GateType.NAND)
    result = collapse_faults(model, all_stuck_at_faults(model))
    out_sa1 = StuckAtFault(site=FaultSite(node=gate.index), value=1)
    in0_sa0 = StuckAtFault(site=FaultSite(node=gate.index, pin=0), value=0)
    assert result.class_of[out_sa1] == result.class_of[in0_sa0]


def test_inverter_chain_collapses_heavily():
    builder = NetlistBuilder("chain")
    net = builder.input("a")
    for _ in range(5):
        net = builder.inv(net)
    builder.output_from(net, "y")
    model = build_model(builder.build())
    result = collapse_faults(model, all_stuck_at_faults(model))
    # A fanout-free inverter chain collapses to exactly two classes... plus the
    # output buffer introduced by output_from.
    assert len(result.representatives) <= 4
    assert result.collapse_ratio > 3.0


def test_fanout_stem_not_merged_with_branches():
    builder = NetlistBuilder("fanout")
    a = builder.input("a")
    b = builder.input("b")
    stem = builder.and_([a, b], output="stem")
    builder.output_from(builder.and_([stem, a]), "y0")
    builder.output_from(builder.or_([stem, b]), "y1")
    model = build_model(builder.build())
    result = collapse_faults(model, all_stuck_at_faults(model))
    stem_node = model.node_of_net["stem"]
    branches = [n for n in model.nodes if n.fanin and stem_node in n.fanin]
    # The two branch input-pin faults must not be equivalent to each other.
    pin_faults = []
    for branch in branches:
        pin = branch.fanin.index(stem_node)
        pin_faults.append(StuckAtFault(site=FaultSite(node=branch.index, pin=pin), value=1))
    assert result.class_of[pin_faults[0]] != result.class_of[pin_faults[1]]


def test_transition_collapse_matches_stuck_at_counts(c17_model):
    stuck = collapse_faults(c17_model, all_stuck_at_faults(c17_model))
    transition = collapse_faults(c17_model, all_transition_faults(c17_model))
    # The paper notes both models share the same collapsed fault count.
    assert len(stuck.representatives) == len(transition.representatives)


def test_collapse_covers_every_fault(c17_model):
    faults = all_stuck_at_faults(c17_model)
    result = collapse_faults(c17_model, faults)
    assert set(result.class_of) == set(faults)
    assert set(result.class_of.values()) == set(result.representatives)


def test_equivalent_faults_symmetry(c17_model):
    fault = all_stuck_at_faults(c17_model)[5]
    klass = equivalent_faults(c17_model, fault)
    assert fault in klass
    for other in klass:
        assert fault in equivalent_faults(c17_model, other)


def test_empty_collapse():
    from repro.circuits import c17
    model = build_model(c17())
    empty = collapse_faults(model, [])
    assert empty.representatives == []
    assert empty.collapse_ratio == 1.0
