"""Hierarchical-kernel admission suite: flat and hierarchical lowerings of
a ≥10⁴-gate SoC must be bit-identical, on every backend and shard count.

The hierarchical compiler (:mod:`repro.hier.compile`) is only admissible
because it changes *where* closures are built, never *what* they compute.
This suite holds it to that bar at ``hier-soc-10k`` scale for fault
simulation, legacy diagnosis and one volume BP diagnosis — hier versus the
flat reference (``model.without_hierarchy()``), serial/compiled/threads/
processes, shard counts 1 and 4.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.atpg import AtpgOptions
from repro.atpg.random_fill import random_pattern_batch
from repro.api.design import prepare_from_spec
from repro.diagnose import DefectSpec, DiagnosisSpec, capture_fail_log, run_diagnosis
from repro.fault_sim import StuckAtFaultSimulator
from repro.faults import all_stuck_at_faults, collapse_faults
from repro.hier.compile import HierCompiledCircuit
from repro.hier.designs import HIER_SOC_10K
from repro.logic import Logic
from repro.patterns.pattern import PatternSet
from repro.volume import run_bp_diagnosis

ALL_BACKENDS = ("serial", "compiled", "threads", "processes")

#: Diagnosis needs a detected defect, not coverage.
ULTRA = AtpgOptions(
    random_pattern_batches=1, patterns_per_batch=16, backtrack_limit=8,
    max_patterns=24,
)

_STATE: dict[str, object] = {}


def env():
    """The prepared 10⁴-gate design plus sampled faults/patterns, built once."""
    if not _STATE:
        prepared = prepare_from_spec(HIER_SOC_10K)
        model = prepared.model
        assert model.hierarchy is not None, "scale design lost its hierarchy"
        universe = collapse_faults(model, all_stuck_at_faults(model)).representatives
        rng = random.Random(7)
        faults = [
            universe[i] for i in sorted(rng.sample(range(len(universe)), 150))
        ]
        patterns = []
        sources = model.pi_nodes + model.ppi_nodes
        for _ in range(16):
            assignment = {}
            for idx in sources:
                roll = rng.random()
                assignment[idx] = (
                    Logic.ONE if roll < 0.45
                    else Logic.ZERO if roll < 0.9
                    else Logic.X
                )
            patterns.append(assignment)
        _STATE["prepared"] = prepared
        _STATE["faults"] = faults
        _STATE["patterns"] = patterns
    return _STATE["prepared"], _STATE["faults"], _STATE["patterns"]


def flat_prepared(prepared):
    """The same prepared design forced through the flat reference compile."""
    return dataclasses.replace(prepared, model=prepared.model.without_hierarchy())


def _expected_detections():
    if "expected" not in _STATE:
        prepared, faults, patterns = env()
        flat = prepared.model.without_hierarchy()
        simulator = StuckAtFaultSimulator(flat, batch_size=8, backend="compiled")
        _STATE["expected"] = simulator.simulate(patterns, faults).detections
    return _STATE["expected"]


def test_design_is_at_least_ten_thousand_gates():
    prepared, _faults, _patterns = env()
    assert len(prepared.netlist.gates) >= 10_000


def test_hier_model_compiles_through_shared_kernels():
    prepared, _faults, _patterns = env()
    from repro.engine.compile import compile_circuit

    compiled = compile_circuit(prepared.model)
    assert isinstance(compiled, HierCompiledCircuit)
    stats = compiled.hier_stats()
    assert stats["instances_bound"] == HIER_SOC_10K.hier_cores
    # Sublinear sharing: far fewer kernels than instances.  (One extra
    # kernel beyond the declared core kinds is expected — a scan-chain
    # boundary landing inside a core changes its external aliasing, which
    # the verified fingerprint correctly refuses to share.)
    assert stats["unique_core_kernels"] <= HIER_SOC_10K.hier_core_kinds + 1
    assert stats["unique_core_kernels"] < stats["instances_bound"]


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_fault_sim_detections_identical_to_flat(backend):
    prepared, faults, patterns = env()
    expected = _expected_detections()
    simulator = StuckAtFaultSimulator(
        prepared.model, batch_size=8, backend=backend, shard_count=3,
        max_workers=2,
    )
    simulator.scheduler.spill_threshold = 0
    try:
        result = simulator.simulate(patterns, faults)
    finally:
        simulator.scheduler.close()
    assert result.detections == expected, f"{backend} diverged from flat"


@pytest.mark.parametrize("shard_count", [1, 4])
def test_shard_count_does_not_change_results(shard_count):
    prepared, faults, patterns = env()
    expected = _expected_detections()
    simulator = StuckAtFaultSimulator(
        prepared.model, batch_size=8, backend="threads",
        shard_count=shard_count, max_workers=2,
    )
    simulator.scheduler.spill_threshold = 0
    try:
        result = simulator.simulate(patterns, faults)
    finally:
        simulator.scheduler.close()
    assert result.detections == expected, f"shard_count={shard_count} diverged"


# ---------------------------------------------------------------- diagnosis
def _scan_pattern_set():
    """A committed-shaped pattern set for the fail-log/diagnosis paths."""
    if "pattern_set" not in _STATE:
        prepared, _faults, _patterns = env()
        setup = _setup()
        rng = random.Random(11)
        scan_flops = [
            e.name for e in prepared.model.state_elements if e.flop.is_scan
        ]
        constraints = setup.effective_pin_constraints()
        free_inputs = [
            prepared.model.nodes[i].net
            for i in prepared.model.pi_nodes
            if prepared.model.nodes[i].net not in constraints
        ]
        batch = random_pattern_batch(
            setup.procedures, scan_flops, free_inputs, 24, rng
        )
        _STATE["pattern_set"] = PatternSet(iter(batch))
    return _STATE["pattern_set"]


def _setup():
    """The stuck-at Table 1 scenario's constraint environment at 10⁴ gates."""
    if "setup" not in _STATE:
        from repro.api import get_scenario

        prepared, _faults, _patterns = env()
        _STATE["setup"] = get_scenario("table1-a").build_setup(prepared, ULTRA)
    return _STATE["setup"]


def _visible_defect():
    if "defect" not in _STATE:
        prepared, faults, _patterns = env()
        setup = _setup()
        patterns = _scan_pattern_set()
        for fault in faults:
            defect = DefectSpec.from_fault(prepared.model, fault)
            log = capture_fail_log(
                prepared.model, prepared.domain_map, prepared.scan, setup,
                patterns, defect,
            )
            if log.num_fails:
                _STATE["defect"] = defect
                break
        else:  # pragma: no cover - 150 sampled faults, 24 patterns
            raise AssertionError("no visible defect in the fault sample")
    return _STATE["defect"]


def test_diagnosis_identical_flat_vs_hier_on_all_backends():
    prepared, _faults, _patterns = env()
    setup = _setup()
    patterns = _scan_pattern_set()
    defect = _visible_defect()
    reference = run_diagnosis(
        flat_prepared(prepared), setup, patterns,
        DiagnosisSpec(scenario="hier-identity", defect=defect,
                      backend="compiled"),
        options=ULTRA,
    )
    assert reference.rank_of_defect is not None
    for backend in ALL_BACKENDS:
        result = run_diagnosis(
            prepared, setup, patterns,
            DiagnosisSpec(scenario="hier-identity", defect=defect,
                          backend=backend),
            options=ULTRA,
        )
        assert result.same_ranking(reference), f"hier/{backend} diverged"


def test_bp_diagnosis_identical_flat_vs_hier():
    prepared, _faults, _patterns = env()
    setup = _setup()
    patterns = _scan_pattern_set()
    defect = _visible_defect()
    reference = run_bp_diagnosis(
        flat_prepared(prepared), setup, patterns,
        DiagnosisSpec(scenario="hier-identity", defect=defect,
                      backend="compiled"),
        options=ULTRA,
    )
    for backend in ("serial", "compiled", "threads"):
        result = run_bp_diagnosis(
            prepared, setup, patterns,
            DiagnosisSpec(scenario="hier-identity", defect=defect,
                          backend=backend),
            options=ULTRA,
        )
        assert result.same_ranking(reference), f"hier BP/{backend} diverged"
        assert result.ambiguous_pairs == reference.ambiguous_pairs
