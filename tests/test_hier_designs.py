"""Unit tests for the ``hier-soc-*`` design families (PR-10 tentpole)."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.api.design import design_names, get_design, prepare_from_spec, unregister_design
from repro.hier.designs import (
    HIER_DESIGNS,
    HIER_SOC_1K,
    HIER_SOC_10K,
    HIER_SOC_100K,
    register_hier_designs,
)

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


@pytest.fixture
def clean_registry():
    """The hier families unregistered before and after the test."""
    for spec in HIER_DESIGNS:
        unregister_design(spec.name)
    yield
    for spec in HIER_DESIGNS:
        unregister_design(spec.name)


def test_import_does_not_register():
    # Importing the package must not touch the registry: registration is
    # explicit so registry-wide parametrization never builds 10^5 gates.
    # A subprocess gives a genuinely fresh import, untouched by other tests.
    script = (
        "import repro.hier, repro.hier.designs\n"
        "from repro.api.design import design_names\n"
        "names = design_names()\n"
        "assert not any(n.startswith('hier-') for n in names), names\n"
        "print('clean')\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": _SRC},
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "clean"


def test_register_hier_designs_is_idempotent(clean_registry):
    first = register_hier_designs()
    assert [spec.name for spec in first] == [
        "hier-soc-1k", "hier-soc-10k", "hier-soc-100k",
    ]
    again = register_hier_designs()  # replace_existing: no error, same specs
    assert again == first
    names = design_names()
    for spec in HIER_DESIGNS:
        assert spec.name in names
        assert get_design(spec.name) is spec
    assert set(design_names(tag="hier")) == {spec.name for spec in HIER_DESIGNS}


def test_family_spans_three_decades():
    counts = [spec.size_estimate()["gates"] for spec in HIER_DESIGNS]
    assert counts == sorted(counts)
    assert counts[0] >= 1_000 // 2
    assert counts[-1] >= 100_000 * 2 // 3


@pytest.mark.parametrize("spec", HIER_DESIGNS, ids=lambda s: s.name)
def test_size_estimate_shape(spec):
    estimate = spec.size_estimate()
    assert estimate["family"] == "hier-soc"
    assert estimate["exact"] is False
    assert estimate["cores"] == spec.hier_cores
    assert estimate["core_kinds"] == spec.hier_core_kinds
    assert estimate["gates"] > 0 and estimate["flops"] > 0


def test_estimate_tracks_actual_within_factor_two():
    prepared = prepare_from_spec(HIER_SOC_1K)
    actual = len(prepared.netlist.gates)
    estimated = HIER_SOC_1K.size_estimate()["gates"]
    assert actual >= 1_000
    assert 0.5 <= estimated / actual <= 2.0
    assert HIER_SOC_1K.gate_count() > 0  # exact path builds the netlist


def test_specs_disagree_only_in_scale():
    for spec in (HIER_SOC_10K, HIER_SOC_100K):
        assert spec.hier_core_kinds == HIER_SOC_1K.hier_core_kinds
        assert spec.hier_cores > HIER_SOC_1K.hier_cores
