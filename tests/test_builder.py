"""Unit tests for the netlist builder and its composite structures."""

import pytest

from repro.logic import Logic
from repro.netlist import GateType, NetlistBuilder, validate_netlist
from repro.simulation import build_model, simulate_by_net


def eval_comb(netlist, assignments):
    model = build_model(netlist)
    return simulate_by_net(model, assignments)


class TestBuilderBasics:
    def test_gate_and_output(self):
        b = NetlistBuilder("t")
        a, c = b.input("a"), b.input("c")
        y = b.and_([a, c], output="y")
        b.output_from(y)
        netlist = b.build()
        assert netlist.outputs == ("y",)
        assert validate_netlist(netlist).ok

    def test_output_from_with_rename_inserts_buffer(self):
        b = NetlistBuilder("t")
        a = b.input("a")
        b.output_from(a, "out")
        netlist = b.build()
        assert "out" in netlist.outputs
        assert any(g.gtype is GateType.BUF for g in netlist.gates.values())

    def test_fresh_nets_unique(self):
        b = NetlistBuilder("t")
        names = {b.fresh_net("n") for _ in range(100)}
        assert len(names) == 100

    def test_ties(self):
        b = NetlistBuilder("t")
        zero, one = b.tie0(), b.tie1()
        y = b.or_([zero, one], output="y")
        b.output_from(y)
        values = eval_comb(b.build(), {})
        assert values["y"] is Logic.ONE


class TestComposites:
    def test_ripple_adder_truth(self):
        b = NetlistBuilder("adder")
        a = b.inputs("a", 3)
        c = b.inputs("c", 3)
        sums, carry = b.ripple_adder(a, c)
        for i, s in enumerate(sums):
            b.output_from(s, f"s{i}")
        b.output_from(carry, "cout")
        netlist = b.build()
        for x, y in [(3, 5), (7, 7), (0, 0), (6, 1)]:
            assignment = {}
            for i in range(3):
                assignment[f"a_{i}"] = (x >> i) & 1
                assignment[f"c_{i}"] = (y >> i) & 1
            values = eval_comb(netlist, assignment)
            total = sum(values[f"s{i}"].to_int() << i for i in range(3))
            total += values["cout"].to_int() << 3
            assert total == x + y

    def test_equality_comparator(self):
        b = NetlistBuilder("cmp")
        a = b.inputs("a", 4)
        c = b.inputs("c", 4)
        eq = b.equality_comparator(a, c)
        b.output_from(eq, "eq")
        netlist = b.build()
        same = eval_comb(netlist, {f"a_{i}": 1 for i in range(4)} | {f"c_{i}": 1 for i in range(4)})
        assert same["eq"] is Logic.ONE
        diff = eval_comb(netlist, {f"a_{i}": 1 for i in range(4)} | {f"c_{i}": 0 for i in range(4)})
        assert diff["eq"] is Logic.ZERO

    def test_reduce_tree_and(self):
        b = NetlistBuilder("tree")
        nets = b.inputs("x", 5)
        out = b.reduce_tree(GateType.AND, nets)
        b.output_from(out, "y")
        netlist = b.build()
        all_ones = eval_comb(netlist, {f"x_{i}": 1 for i in range(5)})
        assert all_ones["y"] is Logic.ONE
        one_zero = eval_comb(netlist, {f"x_{i}": 1 for i in range(5)} | {"x_3": 0})
        assert one_zero["y"] is Logic.ZERO

    def test_reduce_tree_rejects_empty(self):
        b = NetlistBuilder("tree")
        with pytest.raises(ValueError):
            b.reduce_tree(GateType.AND, [])

    def test_mux(self):
        b = NetlistBuilder("mux")
        s, a, c = b.input("s"), b.input("a"), b.input("c")
        y = b.mux(s, a, c, output="y")
        b.output_from(y)
        netlist = b.build()
        assert eval_comb(netlist, {"s": 0, "a": 1, "c": 0})["y"] is Logic.ONE
        assert eval_comb(netlist, {"s": 1, "a": 1, "c": 0})["y"] is Logic.ZERO

    def test_register_bank_and_counter_build(self):
        b = NetlistBuilder("regs")
        clk = b.clock("clk")
        data = b.inputs("d", 4)
        enable = b.input("en")
        outs = b.register_bank(data, clk, enable=enable)
        assert len(outs) == 4
        state = b.counter(3, clk, enable)
        assert len(state) == 3
        netlist = b.build()
        assert netlist.stats().num_flops == 7
        assert validate_netlist(netlist).ok

    def test_adder_width_mismatch(self):
        b = NetlistBuilder("bad")
        with pytest.raises(ValueError):
            b.ripple_adder(b.inputs("a", 2), b.inputs("c", 3))
