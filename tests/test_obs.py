"""Observability plane: span nesting, exports, metrics, and byte-identity.

Three layers of guarantees:

* the :mod:`repro.obs` primitives themselves (tracer nesting and thread
  safety, Chrome/Perfetto export schema, metrics registry arithmetic);
* the instrumentation seams (executor plan/wave/job spans stable across
  backends, cache-probe wall time on skip events, fault-shard spans folded
  in at the mask-merge seam without changing detection masks);
* the reporting contract (disabled telemetry leaves report JSON
  byte-identical and key-free; enabled telemetry round-trips kernel/cache/
  ATPG counters through ``RunReport.session["telemetry"]``).
"""

from __future__ import annotations

import json
import random
import threading
import time

import pytest

from repro.api import Campaign, TestSession
from repro.atpg import AtpgOptions
from repro.circuits import random_sequential
from repro.dft import insert_scan
from repro.diagnose import DefectSpec
from repro.diagnose.diagnose import DiagnosisReport
from repro.fault_sim import StuckAtFaultSimulator
from repro.faults import all_stuck_at_faults, collapse_faults
from repro.logic import Logic
from repro.obs import (
    NULL_TELEMETRY,
    MetricsRegistry,
    NullMetrics,
    NullTracer,
    Telemetry,
    Trace,
    Tracer,
    active_metrics,
    coerce_telemetry,
    format_flame,
    format_table,
    get_telemetry,
    rss_kb,
)
from repro.runtime import Executor, Job, Plan, register_job_kind
from repro.simulation import build_model

#: ATPG effort tuned for unit-test speed (one batch, a handful of patterns).
CHEAP = AtpgOptions(
    random_pattern_batches=1, patterns_per_batch=8, backtrack_limit=4,
    max_patterns=4, random_seed=7,
)


@register_job_kind("obs-echo")
def _obs_echo(resources, params, deps):
    return params.get("value")


def _echo_plan(count: int = 4, *, keys: bool = False) -> Plan:
    return Plan(
        name="obs-plan",
        jobs=tuple(
            Job(
                id=f"echo:{i}", kind="obs-echo", params={"value": i},
                cache_key=f"obs-key-{i}" if keys else None,
            )
            for i in range(count)
        ),
    )


# --------------------------------------------------------------------------
# Tracer primitives
# --------------------------------------------------------------------------
class TestTracer:
    def test_spans_nest_and_record_parents(self):
        tracer = Tracer()
        with tracer.span("outer", kind="test"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        trace = tracer.trace()
        by_name = {span.name: span for span in trace}
        assert by_name["outer"].parent is None
        assert by_name["middle"].parent == by_name["outer"].id
        assert by_name["inner"].parent == by_name["middle"].id
        assert by_name["sibling"].parent == by_name["outer"].id
        assert by_name["outer"].attrs == {"kind": "test"}
        for span in trace:
            assert span.end >= span.start

    def test_trace_orders_parents_before_children(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        names = tracer.trace().names()
        assert names == ["a", "b", "c"]

    def test_worker_threads_attach_via_explicit_parent(self):
        tracer = Tracer()
        with tracer.span("dispatch") as handle:
            def work(index: int) -> None:
                with tracer.span(f"task:{index}", parent=handle.id):
                    pass

            threads = [
                threading.Thread(target=work, args=(i,), name=f"w{i}")
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        trace = tracer.trace()
        dispatch = trace.find("dispatch")[0]
        tasks = trace.find("task:")
        assert len(tasks) == 4
        assert {span.parent for span in tasks} == {dispatch.id}
        assert {span.thread for span in tasks} == {"w0", "w1", "w2", "w3"}

    def test_record_folds_external_timings(self):
        tracer = Tracer()
        base = time.perf_counter()
        with tracer.span("merge"):
            tracer.record("shard:0", start=base, duration=0.25, faults=10)
            tracer.record("shard:1", start=base + 0.25, duration=0.5, faults=12)
        trace = tracer.trace()
        shards = trace.find("shard:")
        assert [span.name for span in shards] == ["shard:0", "shard:1"]
        assert shards[0].parent == trace.find("merge")[0].id
        assert shards[0].duration == pytest.approx(0.25)
        assert shards[1].attrs["faults"] == 12

    def test_concurrent_span_creation_is_thread_safe(self):
        tracer = Tracer()

        def spin() -> None:
            for index in range(100):
                with tracer.span(f"spin:{index}"):
                    pass

        threads = [threading.Thread(target=spin) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        trace = tracer.trace()
        assert len(trace) == 600
        assert len({span.id for span in trace}) == 600

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("ignored", attr=1):
            tracer.record("also-ignored", duration=1.0)
        assert tracer.span_count() == 0
        assert len(tracer.trace()) == 0
        assert tracer.current_id() is None


# --------------------------------------------------------------------------
# Exports
# --------------------------------------------------------------------------
class TestTraceExports:
    def _sample_trace(self) -> Trace:
        tracer = Tracer()
        with tracer.span("plan:p", jobs=2):
            with tracer.span("job:a", kind="obs-echo"):
                pass
        return tracer.trace()

    def test_jsonl_is_one_object_per_line(self):
        trace = self._sample_trace()
        lines = trace.to_jsonl().strip().split("\n")
        decoded = [json.loads(line) for line in lines]
        assert [item["name"] for item in decoded] == ["plan:p", "job:a"]
        assert decoded[1]["parent"] == decoded[0]["id"]

    def test_chrome_document_matches_trace_event_schema(self):
        document = self._sample_trace().to_chrome()
        events = document["traceEvents"]
        assert isinstance(events, list) and events
        for event in events:
            assert isinstance(event, dict)
            for field in ("name", "ph", "pid", "tid"):
                assert field in event
            if event["ph"] == "X":
                assert isinstance(event["ts"], (int, float)) and event["ts"] >= 0
                assert isinstance(event["dur"], (int, float)) and event["dur"] >= 0
            elif event["ph"] == "M":
                assert isinstance(event["args"]["name"], str)
        phases = {event["ph"] for event in events}
        assert phases == {"M", "X"}
        complete = [event for event in events if event["ph"] == "X"]
        assert [event["name"] for event in complete] == ["plan:p", "job:a"]
        assert complete[1]["args"]["parent"] == complete[0]["args"]["span_id"]
        json.dumps(document)  # must be serializable as-is

    def test_write_chrome_is_loadable_json(self, tmp_path):
        path = self._sample_trace().write_chrome(tmp_path / "trace.json")
        document = json.loads(path.read_text())
        assert {event["name"] for event in document["traceEvents"]} >= {
            "plan:p", "job:a",
        }

    def test_non_json_attrs_are_coerced(self):
        tracer = Tracer()
        with tracer.span("odd", obj=object(), seq=(1, 2)):
            pass
        document = tracer.trace().to_chrome()
        args = [e for e in document["traceEvents"] if e["ph"] == "X"][0]["args"]
        assert isinstance(args["obj"], str)
        assert args["seq"] == [1, 2]
        json.dumps(document)


# --------------------------------------------------------------------------
# Metrics
# --------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_gauges_histograms_snapshot(self):
        metrics = MetricsRegistry()
        metrics.inc("engine.tape_passes")
        metrics.inc("engine.tape_passes", 2)
        metrics.gauge("cache.bytes", 512)
        metrics.observe("atpg.run_seconds", 0.5)
        metrics.observe("atpg.run_seconds", 1.5)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["engine.tape_passes"] == 3
        assert snapshot["gauges"]["cache.bytes"] == 512
        hist = snapshot["histograms"]["atpg.run_seconds"]
        assert hist["count"] == 2
        assert hist["total"] == pytest.approx(2.0)
        assert hist["min"] == pytest.approx(0.5)
        assert hist["max"] == pytest.approx(1.5)
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_merge_combines_snapshots(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.inc("n", 2)
        second.inc("n", 3)
        second.observe("h", 1.0)
        first.merge(second.snapshot())
        snapshot = first.snapshot()
        assert snapshot["counters"]["n"] == 5
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_concurrent_increments_are_exact(self):
        metrics = MetricsRegistry()

        def spin() -> None:
            for _ in range(1000):
                metrics.inc("n")

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.counter("n") == 8000

    def test_null_metrics_is_inert(self):
        metrics = NullMetrics()
        metrics.inc("n")
        metrics.gauge("g", 1)
        metrics.observe("h", 1.0)
        assert metrics.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


# --------------------------------------------------------------------------
# Telemetry handle + ambient activation
# --------------------------------------------------------------------------
class TestTelemetry:
    def test_on_off_and_coercion(self):
        assert bool(Telemetry.on()) is True
        assert bool(Telemetry.off()) is False
        assert Telemetry.off() is NULL_TELEMETRY
        assert coerce_telemetry(None) is NULL_TELEMETRY
        assert coerce_telemetry(False) is NULL_TELEMETRY
        assert bool(coerce_telemetry(True)) is True
        enabled = Telemetry.on()
        assert coerce_telemetry(enabled) is enabled
        with pytest.raises(TypeError):
            coerce_telemetry("yes")

    def test_activation_stack_is_lifo(self):
        assert get_telemetry() is NULL_TELEMETRY
        assert active_metrics() is None
        outer, inner = Telemetry.on(), Telemetry.on()
        with outer.activate():
            assert get_telemetry() is outer
            with inner.activate():
                assert get_telemetry() is inner
            assert get_telemetry() is outer
            assert active_metrics() is outer.metrics
        assert get_telemetry() is NULL_TELEMETRY
        assert active_metrics() is None

    def test_disabled_activation_is_a_noop(self):
        with NULL_TELEMETRY.activate():
            assert get_telemetry() is NULL_TELEMETRY
            assert active_metrics() is None

    def test_snapshot_round_trips_through_json(self):
        telemetry = Telemetry.on()
        with telemetry.activate():
            with telemetry.tracer.span("s"):
                telemetry.metrics.inc("n")
        snapshot = telemetry.snapshot()
        assert snapshot["enabled"] is True
        assert snapshot["span_count"] == 1
        assert snapshot["metrics"]["counters"]["n"] == 1
        assert json.loads(json.dumps(snapshot)) == snapshot


# --------------------------------------------------------------------------
# Profiling hooks
# --------------------------------------------------------------------------
class TestProfiling:
    def test_rss_kb_is_positive(self):
        assert rss_kb() > 0

    def test_profile_spans_sample_rss(self):
        telemetry = Telemetry.on(profile=True)
        with telemetry.tracer.span("probe"):
            pass
        span = telemetry.trace().find("probe")[0]
        assert span.attrs["rss_kb"] > 0
        assert "rss_kb_delta" in span.attrs

    def test_text_renderers_cover_every_span_name(self):
        tracer = Tracer()
        with tracer.span("plan:x"):
            with tracer.span("job:y"):
                pass
        trace = tracer.trace()
        table = format_table(trace)
        flame = format_flame(trace)
        for name in ("plan:x", "job:y"):
            assert name in table
            assert name in flame


# --------------------------------------------------------------------------
# Executor spans + skip-event stamping (satellite: wall on job_skipped)
# --------------------------------------------------------------------------
class TestExecutorSpans:
    def test_span_tree_stable_across_backends(self):
        """plan -> wave -> job nesting holds on every backend, with the
        identical span-name multiset (order within a wave may differ only
        by timing, never by membership)."""
        reference = None
        for backend in ("serial", "threads", "processes"):
            telemetry = Telemetry.on()
            executor = Executor(backend=backend, max_workers=2, telemetry=telemetry)
            result = executor.execute(_echo_plan())
            assert [result.value_of(f"echo:{i}") for i in range(4)] == [0, 1, 2, 3]
            trace = telemetry.trace()
            plans = trace.find("plan:")
            assert len(plans) == 1
            waves = trace.find("wave:")
            assert waves and all(s.parent == plans[0].id for s in waves)
            jobs = trace.find("job:")
            wave_ids = {s.id for s in waves}
            assert {s.parent for s in jobs} <= wave_ids
            names = sorted(trace.names())
            if reference is None:
                reference = names
            else:
                assert names == reference, f"{backend} span set diverged"

    def test_skip_events_carry_cache_probe_wall(self, tmp_path):
        cache_plan = _echo_plan(keys=True)
        executor = Executor(cache=tmp_path / "cache")
        executor.execute(cache_plan)

        events = []
        telemetry = Telemetry.on()
        warm = Executor(cache=tmp_path / "cache", telemetry=telemetry)
        warm.execute(cache_plan, on_event=events.append)

        skips = [e for e in events if e.kind == "job_skipped"]
        assert len(skips) == 4
        for event in skips:
            assert event.wall_seconds > 0.0  # the cache probe is timed now
        finished = [e for e in events if e.kind == "plan_finished"]
        assert len(finished) == 1
        assert finished[0].skipped == 4
        # Skipped jobs still produce job: spans (recorded, not opened).
        assert len(telemetry.trace().find("job:")) == 4

    def test_untraced_runs_emit_no_spans(self):
        executor = Executor()
        executor.execute(_echo_plan())
        assert NULL_TELEMETRY.trace().names() == []


# --------------------------------------------------------------------------
# Fault-shard spans at the mask-merge seam
# --------------------------------------------------------------------------
class TestFaultShardSpans:
    def _workload(self, seed=21):
        netlist = random_sequential(6, 10, 80, 4, seed=seed)
        netlist, _scan = insert_scan(netlist, num_chains=2)
        model = build_model(netlist)
        rng = random.Random(seed)
        sources = model.pi_nodes + model.ppi_nodes
        patterns = []
        for _ in range(16):
            patterns.append({
                idx: (Logic.ONE if rng.random() < 0.5 else Logic.ZERO)
                for idx in sources
            })
        faults = collapse_faults(model, all_stuck_at_faults(model)).representatives
        return model, patterns, faults

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_shard_spans_recorded_without_changing_masks(self, backend):
        model, patterns, faults = self._workload()
        baseline = StuckAtFaultSimulator(model, backend="compiled")
        expected = baseline.simulate(patterns, faults).detections

        telemetry = Telemetry.on()
        simulator = StuckAtFaultSimulator(
            model, backend=backend, shard_count=3, max_workers=2
        )
        simulator.scheduler.spill_threshold = 0  # force the pooled path
        try:
            with telemetry.activate():
                detections = simulator.simulate(patterns, faults).detections
        finally:
            simulator.scheduler.close()
        assert detections == expected  # telemetry must not perturb results

        shards = telemetry.trace().find("shard:")
        assert shards, f"no shard spans recorded on {backend}"
        # Spans are folded in at the merge seam in shard order per round.
        names = [span.name for span in shards]
        assert names[0] == "shard:0"
        assert all(span.attrs["backend"] == backend for span in shards)
        assert all(span.attrs["faults"] > 0 for span in shards)


# --------------------------------------------------------------------------
# Reports: byte-identity when disabled, counter round-trip when enabled
# --------------------------------------------------------------------------
def _scrub_seconds(obj, zero=False):
    """Zero every float under a ``*seconds*`` key (wall clocks differ per
    run; everything else in a report is deterministic and must match)."""
    if isinstance(obj, dict):
        return {
            key: _scrub_seconds(value, zero or "seconds" in key)
            for key, value in obj.items()
        }
    if isinstance(obj, list):
        return [_scrub_seconds(value, zero) for value in obj]
    if isinstance(obj, float) and zero:
        return 0.0
    return obj


def _normalized(report_json: str) -> str:
    return json.dumps(_scrub_seconds(json.loads(report_json)), sort_keys=True)


class TestReportTelemetry:
    def _session(self, tiny_prepared) -> TestSession:
        session = TestSession.from_prepared(tiny_prepared, CHEAP)
        session.add_scenario("table1-a")
        return session

    def test_disabled_reports_are_byte_identical(self, tiny_prepared):
        plain = self._session(tiny_prepared).run()
        dark = self._session(tiny_prepared).with_telemetry(False).run()
        assert "telemetry" not in plain.session
        assert "telemetry" not in dark.session
        assert "telemetry" not in plain.to_json()
        assert _normalized(plain.to_json()) == _normalized(dark.to_json())

    def test_enabled_snapshot_round_trips_with_counters(self, tiny_prepared, tmp_path):
        cache_dir = tmp_path / "cache"
        self._session(tiny_prepared).with_cache(cache_dir).run()  # cold: stores

        telemetry = Telemetry.on()
        report = (
            self._session(tiny_prepared)
            .with_cache(cache_dir)
            .with_telemetry(telemetry)
            .run()
        )
        snapshot = report.session["telemetry"]
        assert json.loads(report.to_json())["session"]["telemetry"] == snapshot
        counters = snapshot["metrics"]["counters"]
        assert counters["cache.hits"] >= 1  # warm run served from the cache

        lit = (
            self._session(tiny_prepared)
            .with_telemetry(Telemetry.on())
            .run()
        )
        counters = lit.session["telemetry"]["metrics"]["counters"]
        assert counters["engine.tape_passes"] >= 1
        assert counters["engine.gate_evaluations"] >= 1
        assert counters["atpg.random_patterns_simulated"] >= 1
        assert counters["atpg.patterns_kept"] >= 1
        restored = json.loads(lit.to_json())
        assert restored["session"]["telemetry"] == lit.session["telemetry"]

    def test_enabled_results_match_disabled(self, tiny_prepared):
        dark = self._session(tiny_prepared).run()
        lit = self._session(tiny_prepared).with_telemetry(True).run()
        assert lit.same_results(dark)

    def test_campaign_run_and_diagnose_trace_spans(self):
        telemetry = Telemetry.on()
        campaign = Campaign(
            designs=["tiny"], scenarios=["a"], options=CHEAP
        ).with_telemetry(telemetry)
        report = campaign.run()
        assert report.campaign["telemetry"]["span_count"] > 0
        diagnosis = campaign.diagnose(
            defects=[DefectSpec(kind="stuck-at", net="scan_en", value=1)],
        )
        assert diagnosis.campaign["telemetry"]["span_count"] > 0
        names = telemetry.trace().names()
        for prefix in ("plan:", "wave:", "job:", "stage:", "diagnose:"):
            assert any(name.startswith(prefix) for name in names), prefix
        assert len(telemetry.trace().find("plan:")) == 2  # run + diagnose

    def test_campaign_disabled_has_no_telemetry_key(self):
        campaign = Campaign(designs=["tiny"], scenarios=["a"], options=CHEAP)
        report = campaign.run()
        assert "telemetry" not in report.campaign
        assert "telemetry" not in report.to_json()


# --------------------------------------------------------------------------
# DiagnosisReport fallbacks (satellite: parity with RunReport)
# --------------------------------------------------------------------------
class TestDiagnosisReportFallbacks:
    def test_healthy_report_has_no_notes(self):
        report = DiagnosisReport()
        assert report.backend_fallbacks == []
        assert report.degraded is False
        assert "NOTE:" not in report.summary()

    def test_fallbacks_surface_and_annotate_summary(self):
        report = DiagnosisReport(
            campaign={
                "backend_fallbacks": [
                    {
                        "requested": "processes",
                        "used": "threads",
                        "reason": "result transport failed",
                    }
                ]
            }
        )
        assert report.degraded is True
        assert report.backend_fallbacks[0]["used"] == "threads"
        summary = report.summary()
        assert (
            "NOTE: backend fallback processes -> threads: "
            "result transport failed"
        ) in summary

    def test_fallbacks_survive_json_round_trip(self):
        report = DiagnosisReport(
            campaign={"backend_fallbacks": [{"requested": "processes",
                                            "used": "threads",
                                            "reason": "spill"}]}
        )
        restored = DiagnosisReport.from_json(report.to_json())
        assert restored.degraded
        assert restored.backend_fallbacks == report.backend_fallbacks
