"""Volume-BP acceptance: single-defect rank-1 parity with the legacy
ranking on every registry design, bit-identical BP verdicts across all four
engine backends and shard counts, and multi-defect set recovery.

Mirrors ``tests/test_diagnose_backends.py``: one defect per family is
injected per design, its fail log captured, and the BP diagnosis must put
it at rank 1 (matching or beating the classical ranking) with an identical
candidate table on serial / compiled / threads / processes.
"""

from __future__ import annotations

import pytest

from repro.api import TestSession
from repro.api.design import design_names
from repro.api.scenarios import table1_scenario
from repro.atpg import AtpgOptions
from repro.diagnose import DefectSpec, DiagnosisSpec, capture_fail_log, run_diagnosis
from repro.faults.fault_list import FaultStatus
from repro.volume import run_bp_diagnosis

ALL_BACKENDS = ("serial", "compiled", "threads", "processes")

#: Minimal ATPG effort: diagnosis needs a *detected* defect, not coverage.
ULTRA = AtpgOptions(
    random_pattern_batches=1, patterns_per_batch=16, backtrack_limit=8,
    max_patterns=24,
)

SCENARIO_OF_KIND = {"stuck-at": "a", "transition": "c", "inter-domain": "d"}

_ENVS: dict[tuple[str, str], tuple] = {}
_SESSIONS: dict[str, TestSession] = {}


def scenario_env(design: str, letter: str):
    """One executed (design, Table 1 scenario) cell, cached for the module."""
    key = (design, letter)
    if key not in _ENVS:
        session = _SESSIONS.get(design)
        if session is None:
            session = _SESSIONS[design] = TestSession.for_design(design, options=ULTRA)
        spec = table1_scenario(letter)
        if spec.name not in session.artifacts:
            session.run_scenario(spec)
        run = session.artifacts[spec.name]
        setup = spec.build_setup(session.prepared, ULTRA)
        _ENVS[key] = (session, spec, run, setup)
    return _ENVS[key]


def visible_defects(kind: str, session, spec, run, setup, count=1):
    """``count`` distinct defects of the family the patterns provably expose."""
    prepared = session.prepared
    result = session.result_of(spec.name)
    detected = result.fault_list.with_status(FaultStatus.DETECTED)
    assert detected, f"nothing detected on {prepared.netlist.name}/{spec.name}"
    start = len(detected) // 2
    ordered = detected[start:] + detected[:start]
    if kind == "inter-domain":
        patterns = run.patterns.patterns()
        fault_list = result.fault_list

        def detected_inter_domain(fault) -> bool:
            index = fault_list.record(fault).detected_by
            return (
                index is not None
                and index < len(patterns)
                and patterns[index].procedure.is_inter_domain
            )

        ordered = [f for f in ordered if detected_inter_domain(f)] + ordered
    found: list[DefectSpec] = []
    for fault in ordered[:96]:
        defect = DefectSpec.from_fault(
            prepared.model, fault, inter_domain=(kind == "inter-domain")
        )
        if any(defect == seen for seen in found):
            continue
        log = capture_fail_log(
            prepared.model, prepared.domain_map, prepared.scan, setup,
            run.patterns, defect,
        )
        if log.num_fails:
            found.append(defect)
        if len(found) == count:
            return found
    raise AssertionError(
        f"only {len(found)}/{count} {kind} defects visible on "
        f"{prepared.netlist.name}"
    )


@pytest.mark.parametrize("design", design_names())
@pytest.mark.parametrize("kind", sorted(SCENARIO_OF_KIND))
def test_bp_single_defect_rank_1_on_all_backends(design, kind):
    """BP matches or beats the legacy ranking and is backend-invariant."""
    session, spec, run, setup = scenario_env(design, SCENARIO_OF_KIND[kind])
    (defect,) = visible_defects(kind, session, spec, run, setup)
    legacy = run_diagnosis(
        session.prepared, setup, run.patterns,
        DiagnosisSpec(scenario=spec.name, defect=defect, backend="compiled"),
        options=ULTRA,
    )
    results = {}
    for backend in ALL_BACKENDS:
        results[backend] = run_bp_diagnosis(
            session.prepared, setup, run.patterns,
            DiagnosisSpec(scenario=spec.name, defect=defect, backend=backend),
            options=ULTRA,
        )
    reference = results["compiled"]
    assert reference.rank_of_defect == 1, (
        f"{design}/{kind}: {defect.describe()} at BP rank "
        f"{reference.rank_of_defect}"
    )
    assert legacy.rank_of_defect is not None
    assert reference.rank_of_defect <= legacy.rank_of_defect
    assert reference.converged, f"{design}/{kind}: BP diverged"
    # The injected defect's row must be part of the selected cover (possibly
    # through its syndrome-equivalence class).
    assert reference.recovered_all_defects(), f"{design}/{kind}"
    for backend, result in results.items():
        assert result.rank_of_defect == 1, f"{design}/{kind}/{backend}"
        assert result.same_ranking(reference), f"{design}/{kind}/{backend}"
        assert result.ambiguous_pairs == reference.ambiguous_pairs


@pytest.mark.parametrize("shards", [1, 3, 7])
def test_bp_shard_count_does_not_change_rankings(shards):
    session, spec, run, setup = scenario_env("tiny", "c")
    (defect,) = visible_defects("transition", session, spec, run, setup)
    reference = run_bp_diagnosis(
        session.prepared, setup, run.patterns,
        DiagnosisSpec(scenario=spec.name, defect=defect, backend="compiled"),
        options=ULTRA,
    )
    for backend in ("threads", "processes"):
        sharded = run_bp_diagnosis(
            session.prepared, setup, run.patterns,
            DiagnosisSpec(scenario=spec.name, defect=defect, backend=backend),
            options=AtpgOptions(sim_shards=shards),
        )
        assert sharded.same_ranking(reference), (backend, shards)


def test_bp_multi_defect_selects_both_true_defects():
    """Two injected defects, one two-defect capture: both true defects must
    land in the selected set with confidence at least that of the best
    *non-selected* candidate.

    The comparison is against non-SELECTED candidates on purpose: the best
    non-injected candidate overall can be a syndrome equivalent of a true
    defect (identical hit set and false alarms under the applied patterns).
    Such a candidate is indistinguishable in principle — selection reports
    the whole equivalence class and adaptive ATPG owns the split — so it
    cannot be required to score below the truth it mirrors.
    """
    session, spec, run, setup = scenario_env("tiny", SCENARIO_OF_KIND["stuck-at"])
    d1, d2 = visible_defects("stuck-at", session, spec, run, setup, count=2)
    result = run_bp_diagnosis(
        session.prepared, setup, run.patterns,
        DiagnosisSpec(scenario=spec.name, backend="compiled"),
        defects=[d1, d2],
        options=ULTRA,
    )
    assert result.defects == [d1, d2]
    assert result.recovered_all_defects()
    assert result.unexplained == 0
    true_rows = [
        next(row for row in result.candidates if row.matches(spec_))
        for spec_ in (d1, d2)
    ]
    non_selected = [row for row in result.candidates if not row.selected]
    if non_selected:
        floor = max(row.confidence for row in non_selected)
        for spec_, row in zip((d1, d2), true_rows):
            assert row.confidence >= floor, spec_.describe()
    # Backend equivalence holds for multi-defect inference too.
    serial = run_bp_diagnosis(
        session.prepared, setup, run.patterns,
        DiagnosisSpec(scenario=spec.name, backend="serial"),
        defects=[d1, d2],
        options=ULTRA,
    )
    assert serial.same_ranking(result)
