"""The Event wire schema: JSON round trips, version stamping, tolerance.

This is the contract the serve journal and event tails rely on: every event
an executor emits must survive ``to_json()`` -> ``event_from_json()`` with
its result value intact (or degraded predictably when pickling cannot carry
it), and decoders must keep working against payloads from other schema
revisions.
"""

from __future__ import annotations

import json

from repro.runtime import (
    EVENT_SCHEMA_VERSION,
    Event,
    Executor,
    Job,
    Plan,
    event_from_json,
    register_job_kind,
)


@register_job_kind("wire-echo")
def _wire_echo(resources, params, deps):
    return params.get("value")


class _Opaque:
    """Picklable but not JSON-representable."""

    def __init__(self, tag: str) -> None:
        self.tag = tag

    def __eq__(self, other) -> bool:
        return isinstance(other, _Opaque) and other.tag == self.tag

    def __hash__(self) -> int:
        return hash(self.tag)


class TestRoundTrip:
    def test_plain_event_round_trips(self):
        event = Event(kind="job_finished", plan="p", job="j", value=42,
                      wall_seconds=1.5, completed=3, total=7)
        assert event_from_json(event.to_json()) == event

    def test_every_live_event_round_trips(self):
        plan = Plan(
            name="wire",
            jobs=tuple(
                Job(id=f"w:{i}", kind="wire-echo", params={"value": i})
                for i in range(3)
            ),
        )
        events: list[Event] = []
        Executor(on_event=events.append).execute(plan)
        assert events, "the executor must have emitted something"
        for event in events:
            assert event_from_json(event.to_json()) == event

    def test_wire_form_is_one_json_line_with_schema_version(self):
        line = Event(kind="plan_started", plan="p").to_json()
        assert "\n" not in line
        payload = json.loads(line)
        assert payload["schema_version"] == EVENT_SCHEMA_VERSION
        assert payload["kind"] == "plan_started"

    def test_json_values_travel_inline(self):
        event = Event(kind="job_finished", plan="p", job="j",
                      value={"nested": [1, 2, {"deep": True}]})
        payload = json.loads(event.to_json())
        assert payload["value"] == {"nested": [1, 2, {"deep": True}]}
        assert event_from_json(payload).value == event.value

    def test_non_json_values_pickle_through(self):
        value = _Opaque("gamma")
        event = Event(kind="job_finished", plan="p", job="j", value=value)
        payload = json.loads(event.to_json())
        assert "__event_pickle__" in payload["value"]
        assert event_from_json(payload).value == value

    def test_unpicklable_values_degrade_to_repr_not_an_error(self):
        event = Event(kind="job_finished", plan="p", job="j",
                      value=lambda: 1)
        decoded = event_from_json(event.to_json())
        assert isinstance(decoded.value, str)
        assert "lambda" in decoded.value


class TestTolerance:
    def test_unknown_fields_from_future_schemas_are_ignored(self):
        payload = {
            "schema_version": EVENT_SCHEMA_VERSION + 1,
            "kind": "job_finished",
            "plan": "p",
            "job": "j",
            "value": 7,
            "hyperdrive": {"engaged": True},  # a field we have never heard of
        }
        event = event_from_json(json.dumps(payload))
        assert event.kind == "job_finished"
        assert event.value == 7
        assert not hasattr(event, "hyperdrive")

    def test_missing_fields_take_defaults(self):
        event = event_from_json('{"kind": "plan_started", "plan": "p"}')
        assert event.job is None
        assert event.value is None
        assert event.completed == 0 and event.total == 0

    def test_corrupt_pickle_degrades_to_none(self):
        payload = {"kind": "job_finished", "plan": "p", "job": "j",
                   "value": {"__event_pickle__": "not base64 pickle!!"}}
        assert event_from_json(json.dumps(payload)).value is None

    def test_mapping_input_accepted(self):
        event = Event(kind="plan_finished", plan="p", wall_seconds=2.0,
                      skipped=3)
        assert event_from_json(event.to_wire()) == event
