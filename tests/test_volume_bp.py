"""Unit tests for the loopy max-product BP kernel (`repro.volume.bp`).

These drive the message kernel directly on tiny hand-built factor graphs
where the LP optimum is obvious, so regressions in the schedule show up
as wrong selections rather than as subtle accuracy drift downstream.
"""

import pytest

from repro.diagnose.diagnose import _rerank_scores
from repro.volume import BpOptions, max_product_bp, rerank_tied_scores


class TestBpOptions:
    def test_defaults_are_valid(self):
        opts = BpOptions()
        assert opts.convexified
        assert 0.0 <= opts.damping < 1.0

    @pytest.mark.parametrize(
        "changes",
        [
            {"iterations": 0},
            {"damping": 1.0},
            {"damping": -0.1},
            {"tolerance": 0.0},
            {"base_cost": 0.0},
            {"false_alarm_weight": -1.0},
            {"ambiguity_threshold": -0.01},
        ],
    )
    def test_validation(self, changes):
        with pytest.raises(ValueError):
            BpOptions(**changes)

    def test_json_round_trip(self):
        opts = BpOptions(iterations=12, damping=0.25, convexified=False)
        assert BpOptions.from_json(opts.to_json()) == opts

    def test_with_overrides(self):
        opts = BpOptions().with_overrides(iterations=7)
        assert opts.iterations == 7
        assert opts.damping == BpOptions().damping


class TestMaxProductBp:
    def test_sole_explainer_is_forced_on(self):
        out = max_product_bp([1.0], [[0]])
        assert out.converged
        assert out.beliefs[0] < 0.0  # LP wants it selected
        assert out.marginals[0] > 0.5

    def test_symmetric_tie_stays_symmetric(self):
        out = max_product_bp([1.0, 1.0], [[0, 1]])
        assert out.converged
        assert out.beliefs[0] == out.beliefs[1]
        assert out.marginals[0] == out.marginals[1]
        # A shared bit is weaker evidence than sole ownership.
        sole = max_product_bp([1.0], [[0]])
        assert out.marginals[0] < sole.marginals[0]

    def test_multi_defect_cover_beats_redundant_candidate(self):
        # Candidate 0 solely explains bits 0 and 1; candidate 1 solely
        # explains bit 2; candidate 2 only re-explains bit 1.  The optimal
        # cover is {0, 1}.
        out = max_product_bp([1.0, 1.0, 1.0], [[0], [0, 2], [1]])
        assert out.converged
        assert out.marginals[0] > 0.5
        assert out.marginals[1] > 0.5
        assert out.marginals[2] < out.marginals[0]
        assert out.marginals[2] < out.marginals[1]

    def test_cheaper_candidate_wins_the_shared_bit(self):
        # Both cover the single bit; the false-alarm-laden one costs more.
        out = max_product_bp([1.0, 3.0], [[0, 1]])
        assert out.marginals[0] > out.marginals[1]

    def test_deterministic_and_schedule_invariant_selection(self):
        costs = [1.0, 1.25, 2.0, 1.0]
        factors = [[0, 1], [0], [1, 2], [3], [3, 2]]
        first = max_product_bp(costs, factors)
        second = max_product_bp(costs, factors)
        assert first.beliefs == second.beliefs
        assert first.marginals == second.marginals
        # Undamped / non-convexified schedules calibrate the marginals
        # differently but must agree on the candidate ordering here.
        plain = max_product_bp(
            costs, factors, BpOptions(damping=0.0, convexified=False)
        )

        def order(marginals):
            return sorted(range(len(marginals)), key=lambda j: -marginals[j])

        assert order(plain.marginals) == order(first.marginals)

    def test_validation(self):
        with pytest.raises(ValueError):
            max_product_bp([0.0], [[0]])
        with pytest.raises(ValueError):
            max_product_bp([1.0], [[]])
        with pytest.raises(ValueError):
            max_product_bp([1.0], [[1]])

    def test_iteration_budget_reported(self):
        out = max_product_bp([1.0, 1.0], [[0, 1]], BpOptions(iterations=2))
        assert out.iterations <= 2


class TestRerankDelegation:
    """Satellite: the classical tie re-ranker and the volume plane share one
    kernel — `_rerank_scores` must be the same function applied."""

    def _case(self):
        hit_pairs = [
            {(0, "a"), (1, "b"), (2, "c")},  # owns the rare bit (2, "c")
            {(0, "a"), (1, "b")},
            {(0, "a")},
        ]
        return [0, 1, 2], hit_pairs

    def test_same_scores_as_shared_kernel(self):
        group, hit_pairs = self._case()
        for iterations in (1, 2, 5):
            assert _rerank_scores(group, hit_pairs, iterations) == (
                rerank_tied_scores(group, hit_pairs, iterations)
            )

    def test_rare_evidence_dominates(self):
        group, hit_pairs = self._case()
        scores = rerank_tied_scores(group, hit_pairs, 2)
        assert scores[0] > scores[1] > scores[2]
