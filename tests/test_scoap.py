"""Unit tests for SCOAP testability measures."""

from repro.atpg import INFINITE_COST, compute_testability
from repro.logic import Logic
from repro.netlist import GateType, NetlistBuilder
from repro.simulation import build_model


def test_primary_inputs_cost_one(c17_model):
    measures = compute_testability(c17_model)
    for idx in c17_model.pi_nodes:
        assert measures.cc0[idx] == 1
        assert measures.cc1[idx] == 1


def test_and_gate_controllability():
    builder = NetlistBuilder("and")
    a, b = builder.input("a"), builder.input("b")
    y = builder.and_([a, b], output="y")
    builder.output_from(y)
    model = build_model(builder.build())
    measures = compute_testability(model)
    y_node = model.node_of_net["y"]
    # Setting the AND output to 0 needs one input; to 1 needs both.
    assert measures.cc0[y_node] == 2
    assert measures.cc1[y_node] == 3


def test_deep_logic_is_harder():
    builder = NetlistBuilder("deep")
    nets = builder.inputs("a", 8)
    y = builder.reduce_tree(GateType.AND, nets)
    builder.output_from(y, "y")
    model = build_model(builder.build())
    measures = compute_testability(model)
    assert measures.cc1[model.node_of_net["y"]] > measures.cc1[model.pi_nodes[0]]


def test_fixed_nodes_cost():
    builder = NetlistBuilder("fixed")
    a, b = builder.input("a"), builder.input("b")
    builder.output_from(builder.or_([a, b]), "y")
    model = build_model(builder.build())
    a_node = model.node_of_net["a"]
    measures = compute_testability(model, fixed={a_node: Logic.ZERO})
    assert measures.cc0[a_node] == 0
    assert measures.cc1[a_node] >= INFINITE_COST


def test_forced_unknown_blocks_both_values():
    builder = NetlistBuilder("xsource")
    a, b = builder.input("a"), builder.input("b")
    builder.output_from(builder.and_([a, b]), "y")
    model = build_model(builder.build())
    a_node = model.node_of_net["a"]
    measures = compute_testability(model, fixed={a_node: Logic.X})
    assert measures.cc0[a_node] >= INFINITE_COST
    assert measures.cc1[a_node] >= INFINITE_COST
    # The AND output can still be driven to 0 through the other input.
    y_node = model.node_of_net["y"]
    assert measures.cc0[y_node] < INFINITE_COST
    assert measures.cc1[y_node] >= INFINITE_COST


def test_observability_zero_at_observation_points(c17_model):
    measures = compute_testability(c17_model)
    for _, po in c17_model.po_nodes:
        assert measures.observability[po] == 0
    # Inputs are observable through some path.
    for idx in c17_model.pi_nodes:
        assert measures.observability[idx] < INFINITE_COST


def test_easiest_and_hardest_input_selection(c17_model):
    measures = compute_testability(c17_model)
    nodes = c17_model.pi_nodes[:3]
    easiest = measures.easiest_input(nodes, Logic.ONE)
    hardest = measures.hardest_input(nodes, Logic.ONE)
    assert easiest in nodes and hardest in nodes
    assert measures.easiest_input([], Logic.ONE) is None


def test_mux_controllability():
    builder = NetlistBuilder("mux")
    s, a, b = builder.input("s"), builder.input("a"), builder.input("b")
    builder.output_from(builder.mux(s, a, b), "y")
    model = build_model(builder.build())
    measures = compute_testability(model)
    y_node = model.node_of_net["y"]
    assert measures.cc0[y_node] < INFINITE_COST
    assert measures.cc1[y_node] < INFINITE_COST
