"""Unit tests for the scalar 4-valued simulator."""

from repro.circuits import alu_slice, ripple_adder
from repro.logic import Logic
from repro.simulation import (
    build_model,
    next_state_values,
    output_values,
    simulate,
    simulate_by_net,
)
from repro.simulation.scalar_sim import resimulate_from


def test_c17_known_vector(c17_model):
    values = simulate_by_net(c17_model, {"N1": 1, "N2": 1, "N3": 0, "N6": 1, "N7": 0})
    # N10 = NAND(1,0)=1, N11 = NAND(0,1)=1, N16 = NAND(1,1)=0, N19 = NAND(1,0)=1
    assert values["N10"] is Logic.ONE
    assert values["N16"] is Logic.ZERO
    assert values["N22"] is Logic.ONE
    assert values["N23"] is Logic.ONE


def test_unassigned_inputs_default_to_x(c17_model):
    values = simulate_by_net(c17_model, {"N1": 1})
    assert values["N22"] is Logic.X or values["N22"].is_known  # never crashes
    assert values["N2"] is Logic.X


def test_adder_exhaustive():
    model = build_model(ripple_adder(3))
    for a in range(8):
        for b in range(8):
            for cin in range(2):
                assignment = {f"a_{i}": (a >> i) & 1 for i in range(3)}
                assignment |= {f"b_{i}": (b >> i) & 1 for i in range(3)}
                assignment["cin"] = cin
                values = simulate_by_net(model, assignment)
                total = sum(values[f"sum_{i}"].to_int() << i for i in range(3))
                total += values["cout"].to_int() << 3
                assert total == a + b + cin


def test_alu_opcodes():
    model = build_model(alu_slice(4))
    a, b = 0b1100, 0b1010
    base = {f"a_{i}": (a >> i) & 1 for i in range(4)}
    base |= {f"b_{i}": (b >> i) & 1 for i in range(4)}

    def run(op):
        values = simulate_by_net(model, base | {"op_0": op & 1, "op_1": (op >> 1) & 1})
        return sum(values[f"y_{i}"].to_int() << i for i in range(4))

    assert run(0) == (a + b) & 0xF
    assert run(1) == a & b
    assert run(2) == a | b
    assert run(3) == a ^ b


def test_output_and_next_state_helpers():
    from repro.circuits import s27

    netlist = s27()
    model = build_model(netlist)
    assignment = {model.node_of_net[f"G{i}"]: Logic.ZERO for i in range(4)}
    for element in model.state_elements:
        assignment[element.q_node] = Logic.ZERO
    values = simulate(model, assignment)
    outs = output_values(model, values)
    assert set(outs) == {"G17"}
    nxt = next_state_values(model, values)
    assert set(nxt) == {"ff0", "ff1", "ff2"}
    assert all(v.is_known for v in nxt.values())


def test_resimulate_from_matches_full_sim(c17_model):
    full_a = simulate(c17_model, {c17_model.node_of_net[n]: Logic.ONE for n in
                                  ("N1", "N2", "N3", "N6", "N7")})
    # Start from a different input vector, then flip N3 and re-simulate incrementally.
    start = {c17_model.node_of_net[n]: Logic.ONE for n in ("N1", "N2", "N6", "N7")}
    start[c17_model.node_of_net["N3"]] = Logic.ZERO
    values = simulate(c17_model, start)
    values[c17_model.node_of_net["N3"]] = Logic.ONE
    incremental = resimulate_from(c17_model, values, [c17_model.node_of_net["N3"]])
    assert incremental == full_a
