"""Unit tests for the cycle-based sequential simulator."""

from repro.circuits import loadable_counter, s27
from repro.dft import insert_scan
from repro.logic import Logic
from repro.netlist import NetlistBuilder
from repro.simulation import SequentialSimulator


def test_counter_counts():
    sim = SequentialSimulator(loadable_counter(width=4))
    sim.load_state({f"cnt_ff_{i}": 0 for i in range(4)})
    sim.set_inputs({"load": 0, "enable": 1, "d_0": 0, "d_1": 0, "d_2": 0, "d_3": 0})
    for _ in range(5):
        sim.pulse(["clk"])
    value = sum(sim.state[f"cnt_ff_{i}"].to_int() << i for i in range(4))
    assert value == 5


def test_counter_hold_when_disabled():
    sim = SequentialSimulator(loadable_counter(width=4))
    sim.load_state({f"cnt_ff_{i}": (3 >> i) & 1 for i in range(4)})
    sim.set_inputs({"load": 0, "enable": 0})
    sim.pulse(["clk"])
    value = sum(sim.state[f"cnt_ff_{i}"].to_int() << i for i in range(4))
    assert value == 3


def test_counter_synchronous_load():
    sim = SequentialSimulator(loadable_counter(width=4))
    sim.load_state({f"cnt_ff_{i}": 0 for i in range(4)})
    sim.set_inputs({"load": 1, "enable": 0} | {f"d_{i}": (9 >> i) & 1 for i in range(4)})
    sim.pulse(["clk"])
    value = sum(sim.state[f"cnt_ff_{i}"].to_int() << i for i in range(4))
    assert value == 9


def test_only_named_clocks_pulse():
    sim = SequentialSimulator(loadable_counter(width=2))
    sim.load_state({"cnt_ff_0": 0, "cnt_ff_1": 0})
    sim.set_inputs({"load": 0, "enable": 1})
    sim.pulse(["some_other_clock"])
    assert all(v is Logic.ZERO for v in sim.state.values())


def test_reset_state_uses_init_values():
    builder = NetlistBuilder("init")
    clk = builder.clock("clk")
    d = builder.input("d")
    builder.flop(d, clk, q="q", name="ff0", init=1)
    builder.output_from("q")
    sim = SequentialSimulator(builder.build())
    assert sim.state["ff0"] is Logic.ONE
    sim.pulse(["clk"])  # d is X
    assert sim.state["ff0"] is Logic.X
    sim.reset_state()
    assert sim.state["ff0"] is Logic.ONE


def test_scan_shift_through_chain():
    netlist, scan = insert_scan(s27(), num_chains=1)
    sim = SequentialSimulator(netlist)
    chain = scan.chains[0]
    bits = [Logic.ONE, Logic.ZERO, Logic.ONE]
    sim.set_inputs({f"G{i}": 0 for i in range(4)})
    sim.scan_shift([list(chain.cells)], [bits], scan.scan_enable, ["clk"])
    # After 3 shift cycles the first bit shifted in sits in the last cell.
    assert sim.state[chain.cells[-1]] is bits[0]
    assert sim.state[chain.cells[0]] is bits[-1]


def test_scan_unload_returns_previous_contents():
    netlist, scan = insert_scan(s27(), num_chains=1)
    sim = SequentialSimulator(netlist)
    chain = scan.chains[0]
    sim.load_state({cell: Logic.ONE for cell in chain.cells})
    sim.set_inputs({f"G{i}": 0 for i in range(4)})
    out = sim.scan_shift(
        [list(chain.cells)],
        [[Logic.ZERO] * len(chain.cells)],
        scan.scan_enable,
        ["clk"],
    )
    assert all(bit is Logic.ONE for bit in out[0])


def test_ram_write_then_read():
    builder = NetlistBuilder("ramtest")
    clk = builder.clock("clk")
    we = builder.input("we")
    addr = builder.inputs("a", 2)
    din = builder.inputs("d", 2)
    dout = builder.ram(clk, we, addr, din, name="ram0")
    for i, net in enumerate(dout):
        builder.output_from(net, f"q_{i}")
    sim = SequentialSimulator(builder.build())
    sim.set_inputs({"we": 1, "a_0": 1, "a_1": 0, "d_0": 1, "d_1": 0})
    sim.pulse(["clk"])  # write 0b01 at address 0b01 and read it back
    outs = sim.outputs()
    assert outs["q_0"] is Logic.ONE
    assert outs["q_1"] is Logic.ZERO
    # Read from an unwritten address -> X
    sim.set_inputs({"we": 0, "a_0": 0, "a_1": 1})
    sim.pulse(["clk"])
    assert sim.outputs()["q_0"] is Logic.X


def test_ram_unknown_address_corrupts():
    builder = NetlistBuilder("ramx")
    clk = builder.clock("clk")
    we = builder.input("we")
    addr = builder.inputs("a", 1)
    din = builder.inputs("d", 1)
    builder.ram(clk, we, addr, din, name="ram0")
    sim = SequentialSimulator(builder.build())
    sim.set_inputs({"we": 1, "d_0": 1})  # address left X
    sim.pulse(["clk"])
    assert sim.rams["ram0"].corrupted


def test_trace_procedure_waveform():
    sim = SequentialSimulator(loadable_counter(width=2))
    sim.load_state({"cnt_ff_0": 0, "cnt_ff_1": 0})
    steps = [({"load": 0, "enable": 1}, ["clk"]) for _ in range(3)]
    wave = sim.trace_procedure(steps, signals=["cnt_0", "cnt_1"])
    assert "clk" in wave.signals()
    assert wave["clk"].count_pulses() == 3
