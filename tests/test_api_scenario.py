"""Tests for the scenario registry and the declarative scenario specs."""

import pytest

from repro.api import (
    ScenarioNotFound,
    ScenarioSpec,
    get_scenario,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.api.scenarios import TABLE1_DESCRIPTIONS, TABLE1_KEYS, table1, table1_scenario
from repro.clocking import (
    enhanced_cpf_procedures,
    external_clock_procedures,
    simple_cpf_procedures,
    stuck_at_procedures,
)
from repro.core import experiment_setup
from repro.logic import Logic


def _dummy_procedures(prepared):
    return stuck_at_procedures(["clk"], max_pulses=2)


class TestRegistry:
    def test_builtin_scenarios_registered(self):
        names = scenario_names()
        for key in TABLE1_KEYS:
            assert f"table1-{key}" in names

    def test_at_least_four_extended_scenarios(self):
        assert len(scenario_names(tag="extended")) >= 4

    def test_duplicate_registration_raises(self):
        spec = ScenarioSpec(
            name="test-duplicate", description="x", procedures=_dummy_procedures
        )
        register_scenario(spec)
        try:
            with pytest.raises(ValueError, match="test-duplicate.*already registered"):
                register_scenario(spec)
            # Explicit replacement is allowed.
            register_scenario(spec.with_overrides(description="y"), replace_existing=True)
            assert get_scenario("test-duplicate").description == "y"
        finally:
            unregister_scenario("test-duplicate")

    def test_unknown_scenario_lists_available_names(self):
        with pytest.raises(ScenarioNotFound) as excinfo:
            get_scenario("no-such-scenario")
        message = str(excinfo.value)
        assert "no-such-scenario" in message
        assert "table1-a" in message  # the error enumerates what exists

    def test_unknown_scenario_is_a_key_error(self):
        with pytest.raises(KeyError):
            get_scenario("no-such-scenario")

    def test_unregister_is_idempotent(self):
        unregister_scenario("never-registered")  # must not raise


class TestScenarioSpec:
    def test_rejects_unknown_fault_model(self):
        with pytest.raises(ValueError, match="fault model"):
            ScenarioSpec(
                name="bad", description="x", procedures=_dummy_procedures,
                fault_model="iddq",
            )

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="name"):
            ScenarioSpec(name="", description="x", procedures=_dummy_procedures)

    def test_row_key_prefers_legacy_key(self):
        spec = ScenarioSpec(
            name="x", description="d", procedures=_dummy_procedures, legacy_key="a"
        )
        assert spec.row_key == "a"
        assert spec.with_overrides(legacy_key=None).row_key == "x"

    def test_with_overrides_returns_modified_copy(self):
        spec = get_scenario("table1-c")
        tweaked = spec.with_overrides(edt_channels=3)
        assert tweaked.edt_channels == 3
        assert spec.edt_channels is None  # original untouched


class TestBuiltinSetupsMatchLegacy:
    """Every built-in scenario's TestSetup equals the legacy experiment_setup.

    The expected values replicate the retired hand-coded ``if/elif`` ladder
    literally, so this anchors both the registry specs and the
    ``experiment_setup`` shim against the original behaviour.
    """

    def _expected_procedures(self, key, prepared):
        functional = prepared.functional_domain_names
        all_domains = prepared.all_domain_names
        return {
            "a": stuck_at_procedures(all_domains, max_pulses=2),
            "b": external_clock_procedures(all_domains, max_pulses=4),
            "c": simple_cpf_procedures(functional),
            "d": enhanced_cpf_procedures(functional, max_pulses=4, inter_domain=True),
            "e": external_clock_procedures(functional, max_pulses=4, name_prefix="extc"),
        }[key]

    EXPECTED_FLAGS = {
        #      observe_pos, hold_pis, constrain_scan_enable
        "a": (True, False, False),
        "b": (True, False, False),
        "c": (False, True, True),
        "d": (False, True, True),
        "e": (False, True, True),
    }

    @pytest.mark.parametrize("key", TABLE1_KEYS)
    def test_setup_fields(self, key, tiny_prepared, cheap_options):
        setup = table1_scenario(key).build_setup(tiny_prepared, cheap_options)
        observe_pos, hold_pis, constrain_se = self.EXPECTED_FLAGS[key]

        assert setup.name == f"({key}) {TABLE1_DESCRIPTIONS[key]}"
        expected = self._expected_procedures(key, tiny_prepared)
        assert [p.name for p in setup.procedures] == [p.name for p in expected]
        assert [p.pulses for p in setup.procedures] == [p.pulses for p in expected]
        assert setup.observe_pos is observe_pos
        assert setup.hold_pis is hold_pis
        assert setup.pin_constraints == {tiny_prepared.soc.reset_net: Logic.ZERO}
        assert setup.scan_enable_net == tiny_prepared.scan_enable_net
        assert setup.constrain_scan_enable is constrain_se
        assert setup.options is cheap_options

    @pytest.mark.parametrize("key", TABLE1_KEYS)
    def test_shim_matches_registry(self, key, tiny_prepared, cheap_options):
        via_shim = experiment_setup(key, tiny_prepared, cheap_options)
        via_api = table1_scenario(key).build_setup(tiny_prepared, cheap_options)
        assert via_shim.name == via_api.name
        assert [p.name for p in via_shim.procedures] == [p.name for p in via_api.procedures]
        assert via_shim.observe_pos == via_api.observe_pos
        assert via_shim.hold_pis == via_api.hold_pis
        assert via_shim.pin_constraints == via_api.pin_constraints
        assert via_shim.constrain_scan_enable == via_api.constrain_scan_enable

    def test_unknown_experiment_key_raises(self, tiny_prepared):
        with pytest.raises(KeyError, match="unknown experiment"):
            experiment_setup("z", tiny_prepared)


class TestTable1Accessors:
    def test_table1_returns_five_in_paper_order(self):
        specs = table1()
        assert [spec.legacy_key for spec in specs] == list(TABLE1_KEYS)
        assert all(spec.name == f"table1-{spec.legacy_key}" for spec in specs)

    def test_table1_scenario_rejects_unknown_letter(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            table1_scenario("q")

    def test_fault_models(self):
        assert table1_scenario("a").fault_model == "stuck-at"
        for key in "bcde":
            assert table1_scenario(key).fault_model == "transition"
