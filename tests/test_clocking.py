"""Unit tests for clock domains, PLL model and named capture procedures."""

import pytest

from repro.circuits import two_domain_crossing
from repro.clocking import (
    CapturePulse,
    ClockDomain,
    ClockDomainMap,
    NamedCaptureProcedure,
    Pll,
    enhanced_cpf_procedures,
    external_clock_procedures,
    simple_cpf_procedures,
    stuck_at_procedure,
    stuck_at_procedures,
)


class TestClockDomains:
    def test_period_conversion(self):
        domain = ClockDomain(name="fast", clock_net="clk_f", frequency_mhz=150.0)
        assert domain.period_ns == pytest.approx(6.6667, rel=1e-3)
        assert domain.period_ps == pytest.approx(6666.7, rel=1e-3)

    def test_map_from_netlist(self):
        netlist = two_domain_crossing(4)
        mapping = ClockDomainMap.from_netlist(
            netlist,
            [ClockDomain("a", "clk_a", 150.0), ClockDomain("b", "clk_b", 75.0)],
        )
        assert mapping.domain_of("a_ff_0") == "a"
        assert mapping.domain_of("b_ff_0") == "b"
        assert set(mapping.flops_in("a")) >= {"a_ff_0", "ba_ff_0"}
        assert mapping.summary()["a"] + mapping.summary()["b"] == len(netlist.flops)

    def test_unassigned_flops(self):
        netlist = two_domain_crossing(4)
        mapping = ClockDomainMap.from_netlist(netlist, [ClockDomain("a", "clk_a", 150.0)])
        assert mapping.domain_of("b_ff_0") is None
        assert "b_ff_0" in mapping.unassigned_flops(netlist)

    def test_retarget_after_cpf_insertion(self):
        netlist = two_domain_crossing(4)
        mapping = ClockDomainMap.from_netlist(
            netlist,
            [ClockDomain("a", "clk_a", 150.0), ClockDomain("b", "clk_b", 75.0)],
        )
        updated = mapping.retarget({"a": "clk_a_cpf"})
        assert updated.clock_net_of("a") == "clk_a_cpf"
        assert updated.domain_of("a_ff_0") == "a"

    def test_duplicate_domain_rejected(self):
        with pytest.raises(ValueError):
            ClockDomainMap([ClockDomain("a", "x", 1.0), ClockDomain("a", "y", 2.0)])


class TestPll:
    def test_outputs_and_multiplication(self):
        pll = Pll(reference_mhz=25.0)
        pll.add_output("clk_fast", 150.0)
        pll.add_output("clk_slow", 75.0)
        assert pll.multiplication_factor("clk_fast") == pytest.approx(6.0)
        with pytest.raises(ValueError):
            pll.add_output("clk_fast", 100.0)
        with pytest.raises(KeyError):
            pll.output("missing")

    def test_stimulus_generation(self):
        pll = Pll(reference_mhz=25.0, lock_time_ps=500.0)
        pll.add_output("clk", 100.0)  # 10 ns period
        changes = pll.stimulus("clk", duration_ps=50_000.0)
        rising = [t for t, v in changes if str(v) == "1"]
        assert rising[0] == pytest.approx(500.0)
        assert len(pll.all_stimuli(20_000.0)) == 1


class TestNamedCaptureProcedures:
    def test_framing_of_two_pulse_procedure(self):
        procedure = NamedCaptureProcedure(
            name="p", pulses=(CapturePulse.of("a"), CapturePulse.of("a"))
        )
        assert procedure.num_frames == 2
        assert procedure.launch_frame == 0
        assert procedure.capture_frame == 1
        assert not procedure.is_inter_domain
        assert procedure.is_at_speed

    def test_inter_domain_detection(self):
        procedure = NamedCaptureProcedure(
            name="x", pulses=(CapturePulse.of("a"), CapturePulse.of("b"))
        )
        assert procedure.is_inter_domain
        assert procedure.launch_domains == frozenset({"a"})
        assert procedure.capture_domains == frozenset({"b"})

    def test_stuck_at_procedure_is_slow(self):
        procedure = stuck_at_procedure(["a", "b"])
        assert procedure.num_pulses == 1
        assert not procedure.is_at_speed

    def test_stuck_at_procedures_family(self):
        procedures = stuck_at_procedures(["a"], max_pulses=3)
        assert [p.num_pulses for p in procedures] == [1, 2, 3]

    def test_external_clock_family(self):
        procedures = external_clock_procedures(["a", "b"], max_pulses=4)
        assert [p.num_pulses for p in procedures] == [2, 3, 4]
        for procedure in procedures:
            assert procedure.all_domains == frozenset({"a", "b"})

    def test_simple_cpf_family(self):
        procedures = simple_cpf_procedures(["a", "b"])
        assert len(procedures) == 2
        for procedure in procedures:
            assert procedure.num_pulses == 2
            assert len(procedure.all_domains) == 1

    def test_enhanced_cpf_family(self):
        procedures = enhanced_cpf_procedures(["a", "b"], max_pulses=4, inter_domain=True)
        pulse_counts = {p.num_pulses for p in procedures}
        assert pulse_counts == {2, 3, 4}
        assert any(p.is_inter_domain for p in procedures)
        no_inter = enhanced_cpf_procedures(["a", "b"], max_pulses=4, inter_domain=False)
        assert not any(p.is_inter_domain for p in no_inter)

    def test_describe_mentions_every_pulse(self):
        procedure = NamedCaptureProcedure(
            name="p", pulses=(CapturePulse.of("a"), CapturePulse.of("b"))
        )
        text = procedure.describe()
        assert "P1" in text and "P2" in text and "a" in text and "b" in text

    def test_empty_procedure_rejected(self):
        with pytest.raises(ValueError):
            NamedCaptureProcedure(name="bad", pulses=())
