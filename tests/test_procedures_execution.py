"""Integration tests: applying patterns to the netlist-level simulator.

These tests close the loop between the abstract ATPG view (time-frame
expanded model + named capture procedures) and the physical application of a
pattern (scan shifting, clock pulses per domain, unload): the good-machine
expectation computed by the transition fault simulator must match what the
cycle-accurate sequential simulator observes when the pattern is really
applied — including when the scan load is performed by honest bit-by-bit
shifting.
"""

import pytest

from repro.atpg import TestSetup
from repro.clocking import external_clock_procedures, simple_cpf_procedures
from repro.fault_sim import TransitionFaultSimulator
from repro.logic import Logic
from repro.patterns import TestPattern, elaborate_pattern, execute_pattern
from repro.clocking import OccController
from repro.simulation import SequentialSimulator


@pytest.fixture()
def executed_design(scanned_s27):
    netlist, scan, model, domain_map = scanned_s27
    setup = TestSetup(
        name="exec",
        procedures=external_clock_procedures(["clk"], max_pulses=2),
        observe_pos=True,
        scan_enable_net="scan_en",
    )
    return netlist, scan, model, domain_map, setup


def make_pattern(procedure, scan, value_pattern):
    cells = [cell for chain in scan.chains for cell in chain.cells]
    load = {cell: (Logic.ONE if i % 2 == value_pattern else Logic.ZERO)
            for i, cell in enumerate(cells)}
    pis = {f"G{i}": Logic.from_int((i + value_pattern) % 2) for i in range(4)}
    return TestPattern(procedure=procedure, scan_load=load,
                       pi_frames=[dict(pis), dict(pis)])


class TestExecutionAgainstGoodMachine:
    @pytest.mark.parametrize("value_pattern", [0, 1])
    def test_direct_load_matches_simulator_expectation(self, executed_design, value_pattern):
        netlist, scan, model, domain_map, setup = executed_design
        procedure = setup.procedures[0]
        pattern = make_pattern(procedure, scan, value_pattern)
        simulator = TransitionFaultSimulator(model, domain_map, setup)
        expected_unload, expected_outputs = simulator.good_capture(pattern)

        seq = SequentialSimulator(netlist)
        execution = execute_pattern(
            seq, pattern, scan,
            clock_nets_of_domains={"clk": "clk"},
            shift_clock_nets=["clk"],
            pin_constraints={"scan_en": Logic.ZERO},
        )
        for cell, value in expected_unload.items():
            if value.is_known:
                assert execution.captured_state[cell] is value, cell
        for net, value in expected_outputs.items():
            if value.is_known:
                assert execution.outputs[net] is value, net

    def test_full_shift_load_matches_direct_load(self, executed_design):
        netlist, scan, model, domain_map, setup = executed_design
        procedure = setup.procedures[0]
        pattern = make_pattern(procedure, scan, 0)

        direct = execute_pattern(
            SequentialSimulator(netlist), pattern, scan,
            clock_nets_of_domains={"clk": "clk"}, shift_clock_nets=["clk"],
            pin_constraints={"scan_en": Logic.ZERO},
        )
        shifted = execute_pattern(
            SequentialSimulator(netlist), pattern, scan,
            clock_nets_of_domains={"clk": "clk"}, shift_clock_nets=["clk"],
            pin_constraints={"scan_en": Logic.ZERO},
            full_shift=True,
        )
        assert direct.captured_state == shifted.captured_state
        assert shifted.unload_streams  # full shift also unloads


class TestElaboration:
    def test_elaborate_pattern_produces_protocol_and_shift_data(self, executed_design):
        netlist, scan, model, domain_map, setup = executed_design
        pattern = make_pattern(setup.procedures[0], scan, 0)
        application = elaborate_pattern(pattern, scan, OccController())
        assert set(application.load_sequences) == {c.name for c in scan.chains}
        for chain in scan.chains:
            assert len(application.load_sequences[chain.name]) == chain.length
        assert application.tester_cycles > scan.max_chain_length
        assert application.protocol


class TestDomainSelectiveExecution:
    def test_only_pulsed_domain_captures(self, scanned_two_domain):
        netlist, scan, model, domain_map = scanned_two_domain
        setup = TestSetup(
            name="cpf", procedures=simple_cpf_procedures(["a", "b"]),
            observe_pos=False, scan_enable_net="scan_en",
        )
        procedure = setup.procedure_by_name("cpf_a_2pulse")
        cells = [cell for chain in scan.chains for cell in chain.cells]
        load = {cell: Logic.ZERO for cell in cells}
        pis = {f"da_{i}": Logic.ONE for i in range(4)} | {f"db_{i}": Logic.ONE for i in range(4)}
        pattern = TestPattern(procedure=procedure, scan_load=load,
                              pi_frames=[dict(pis), dict(pis)])
        seq = SequentialSimulator(netlist)
        execution = execute_pattern(
            seq, pattern, scan,
            clock_nets_of_domains={"a": "clk_a", "b": "clk_b"},
            shift_clock_nets=["clk_a", "clk_b"],
            pin_constraints={"scan_en": Logic.ZERO},
        )
        # Domain-b flip-flops were never clocked: they keep their loaded zeros.
        for name, value in execution.captured_state.items():
            if domain_map.domain_of(name) == "b":
                assert value is Logic.ZERO
        # At least one domain-a input register captured the held 1s.
        a_flops = [n for n in execution.captured_state if domain_map.domain_of(n) == "a"]
        assert any(execution.captured_state[n] is Logic.ONE for n in a_flops)
