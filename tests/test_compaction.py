"""Unit tests for pattern merging and compaction."""

from repro.atpg import DynamicCompactor, compact_pattern_set, static_compaction
from repro.clocking import CapturePulse, NamedCaptureProcedure
from repro.logic import Logic
from repro.patterns import PatternSet, TestPattern


PROC_A = NamedCaptureProcedure(name="proc_a", pulses=(CapturePulse.of("a"), CapturePulse.of("a")))
PROC_B = NamedCaptureProcedure(name="proc_b", pulses=(CapturePulse.of("b"), CapturePulse.of("b")))


def pattern(procedure=PROC_A, **scan_bits):
    return TestPattern(
        procedure=procedure,
        scan_load={k: v for k, v in scan_bits.items()},
        pi_frames=[{}, {}],
    )


class TestMerging:
    def test_compatible_patterns_merge(self):
        p1 = pattern(ff0=Logic.ONE, ff1=Logic.X)
        p2 = pattern(ff0=Logic.X, ff1=Logic.ZERO)
        merged = p1.merged_with(p2)
        assert merged is not None
        assert merged.scan_load["ff0"] is Logic.ONE
        assert merged.scan_load["ff1"] is Logic.ZERO

    def test_conflicting_patterns_do_not_merge(self):
        p1 = pattern(ff0=Logic.ONE)
        p2 = pattern(ff0=Logic.ZERO)
        assert p1.merged_with(p2) is None

    def test_different_procedures_do_not_merge(self):
        assert pattern(PROC_A, ff0=Logic.ONE).merged_with(pattern(PROC_B, ff0=Logic.ONE)) is None

    def test_pi_conflicts_block_merge(self):
        p1 = TestPattern(procedure=PROC_A, pi_frames=[{"x": Logic.ONE}, {}])
        p2 = TestPattern(procedure=PROC_A, pi_frames=[{"x": Logic.ZERO}, {}])
        assert p1.merged_with(p2) is None

    def test_merge_accumulates_targets(self):
        p1 = pattern(ff0=Logic.ONE)
        p1.target_faults.append("f1")
        p2 = pattern(ff1=Logic.ZERO)
        p2.target_faults.append("f2")
        merged = p1.merged_with(p2)
        assert set(merged.target_faults) == {"f1", "f2"}


class TestStaticCompaction:
    def test_compatible_set_collapses(self):
        patterns = [pattern(**{f"ff{i}": Logic.ONE}) for i in range(8)]
        compacted, stats = static_compaction(patterns)
        assert len(compacted) == 1
        assert stats.successful_merges == 7
        assert stats.reduction > 0.8

    def test_conflicts_preserved(self):
        patterns = [pattern(ff0=Logic.ONE), pattern(ff0=Logic.ZERO), pattern(ff0=Logic.ONE)]
        compacted, _ = static_compaction(patterns)
        assert len(compacted) == 2

    def test_pattern_set_wrapper(self):
        pset = PatternSet([pattern(ff0=Logic.ONE), pattern(ff1=Logic.ZERO)])
        compacted, stats = compact_pattern_set(pset)
        assert isinstance(compacted, PatternSet)
        assert len(compacted) == 1
        assert stats.patterns_in == 2


class TestDynamicCompactor:
    def test_merges_into_window(self):
        compactor = DynamicCompactor(window=4)
        assert compactor.add(pattern(ff0=Logic.ONE)) == []
        assert compactor.add(pattern(ff1=Logic.ZERO)) == []
        final = compactor.flush()
        assert len(final) == 1
        assert compactor.stats.successful_merges == 1

    def test_window_eviction(self):
        compactor = DynamicCompactor(window=2)
        evicted = []
        for i in range(5):
            # Conflicting values prevent merging so the window fills up.
            evicted += compactor.add(pattern(**{"ff0": Logic.ONE if i % 2 else Logic.ZERO,
                                                f"ff{i+1}": Logic.ONE}))
        evicted += compactor.flush()
        assert len(evicted) == 5 - compactor.stats.successful_merges

    def test_flush_empties_window(self):
        compactor = DynamicCompactor(window=3)
        compactor.add(pattern(ff0=Logic.ONE))
        assert compactor.flush()
        assert compactor.flush() == []
