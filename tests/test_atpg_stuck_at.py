"""Integration tests for the stuck-at ATPG flow."""


from repro.atpg import StuckAtAtpg, TestSetup, run_stuck_at_atpg
from repro.clocking import stuck_at_procedures
from repro.faults import FaultStatus
from repro.fault_sim import TransitionFaultSimulator


def stuck_setup(domains, options, observe_pos=True):
    return TestSetup(
        name="stuck",
        procedures=stuck_at_procedures(domains, max_pulses=2),
        observe_pos=observe_pos,
        hold_pis=False,
        scan_enable_net="scan_en",
        constrain_scan_enable=False,
        options=options,
    )


def test_s27_stuck_at_full_flow(scanned_s27, cheap_options):
    netlist, scan, model, domain_map = scanned_s27
    setup = stuck_setup(["clk"], cheap_options)
    result = run_stuck_at_atpg(model, domain_map, setup)
    assert result.coverage.test_coverage > 90.0
    assert result.pattern_count > 0
    assert result.coverage.undetected == 0  # everything resolved one way or another
    assert result.stats.unconfirmed_podem_tests == 0


def test_pipeline_stuck_at_coverage(scanned_pipeline, cheap_options):
    netlist, scan, model, domain_map = scanned_pipeline
    setup = stuck_setup(["clk"], cheap_options)
    result = run_stuck_at_atpg(model, domain_map, setup)
    assert result.coverage.test_coverage > 85.0


def test_patterns_confirm_by_independent_simulation(scanned_s27, cheap_options):
    """Every detection credited by the generator is reproducible by the
    multi-frame fault simulator on the final pattern set."""
    netlist, scan, model, domain_map = scanned_s27
    setup = stuck_setup(["clk"], cheap_options)
    generator = StuckAtAtpg(model, domain_map, setup)
    result = generator.run()
    detected = result.fault_list.with_status(FaultStatus.DETECTED)
    simulator = TransitionFaultSimulator(model, domain_map, setup)
    detections = simulator.simulate_stuck_at(result.patterns.patterns(), detected,
                                             drop_detected=True)
    missed = [f for f in detected if not detections[f]]
    assert missed == []


def test_masked_outputs_reduce_or_keep_coverage(scanned_s27, cheap_options):
    netlist, scan, model, domain_map = scanned_s27
    observable = run_stuck_at_atpg(model, domain_map, stuck_setup(["clk"], cheap_options, True))
    masked = run_stuck_at_atpg(model, domain_map, stuck_setup(["clk"], cheap_options, False))
    assert masked.coverage.test_coverage <= observable.coverage.test_coverage + 1e-9


def test_fault_list_statuses_are_exhaustive(scanned_s27, cheap_options):
    netlist, scan, model, domain_map = scanned_s27
    result = run_stuck_at_atpg(model, domain_map, stuck_setup(["clk"], cheap_options))
    statuses = {result.fault_list.status_of(f) for f in result.fault_list}
    assert statuses <= {
        FaultStatus.DETECTED,
        FaultStatus.ATPG_UNTESTABLE,
        FaultStatus.ABORTED,
        FaultStatus.UNDETECTED,
    }


def test_summary_fields(scanned_s27, cheap_options):
    netlist, scan, model, domain_map = scanned_s27
    result = run_stuck_at_atpg(model, domain_map, stuck_setup(["clk"], cheap_options))
    summary = result.summary()
    assert summary["pattern_count"] == result.pattern_count
    assert 0 < summary["test_coverage_percent"] <= 100.0
    assert result.stats.podem_runs >= 0
