"""Engine/legacy equivalence: every backend must produce identical results.

The compiled kernels and the sharded pooled backends are only admissible
because they change *where* the arithmetic runs, never *what* it computes.
This suite holds them to that bar on randomized circuits and on the SoC
session flow: identical detection masks fault by fault, identical coverage
and pattern counts, regardless of backend or shard count.
"""

from __future__ import annotations

import random

import pytest

from repro.api import TestSession
from repro.atpg import AtpgOptions, TestSetup
from repro.atpg.random_fill import random_pattern_batch
from repro.circuits import random_sequential
from repro.clocking import ClockDomain, ClockDomainMap, external_clock_procedures
from repro.dft import insert_scan
from repro.fault_sim import StuckAtFaultSimulator, TransitionFaultSimulator
from repro.faults import (
    all_stuck_at_faults,
    all_transition_faults,
    collapse_faults,
)
from repro.logic import Logic
from repro.simulation import build_model

ALL_BACKENDS = ("serial", "compiled", "threads", "processes")


def _random_design(seed):
    """A random scan-inserted sequential circuit plus its test environment."""
    netlist = random_sequential(6, 10, 80, 4, seed=seed)
    netlist, _scan = insert_scan(netlist, num_chains=2)
    model = build_model(netlist)
    domain_map = ClockDomainMap.from_netlist(
        netlist, [ClockDomain("clk", "clk", 100.0)]
    )
    setup = TestSetup(
        name=f"equivalence-{seed}",
        procedures=external_clock_procedures(["clk"], max_pulses=3),
        observe_pos=True,
        scan_enable_net="scan_en",
    )
    return model, domain_map, setup


def _pattern_batch(model, setup, seed, count=24):
    rng = random.Random(seed)
    scan_flops = [e.name for e in model.state_elements if e.flop.is_scan]
    constraints = setup.effective_pin_constraints()
    free_inputs = [
        model.nodes[i].net
        for i in model.pi_nodes
        if model.nodes[i].net not in constraints
    ]
    return random_pattern_batch(
        setup.procedures, scan_flops, free_inputs, count, rng
    )


def _flat_patterns(model, seed, count=24):
    """Node-index keyed flat assignments for the stuck-at simulator."""
    rng = random.Random(seed)
    sources = model.pi_nodes + model.ppi_nodes
    patterns = []
    for _ in range(count):
        assignment = {}
        for idx in sources:
            roll = rng.random()
            assignment[idx] = (
                Logic.ONE if roll < 0.45 else Logic.ZERO if roll < 0.9 else Logic.X
            )
        patterns.append(assignment)
    return patterns


@pytest.mark.parametrize("seed", [2, 9, 31])
def test_stuck_at_detection_masks_identical_across_backends(seed):
    model, _domain_map, _setup = _random_design(seed)
    faults = collapse_faults(model, all_stuck_at_faults(model)).representatives
    patterns = _flat_patterns(model, seed)
    reference = None
    for backend in ("serial", "compiled", "threads"):
        simulator = StuckAtFaultSimulator(
            model, batch_size=8, backend=backend, shard_count=3, max_workers=2
        )
        # Force the pooled path even on tiny rounds so sharding is exercised.
        simulator.scheduler.spill_threshold = 0
        try:
            result = simulator.simulate(patterns, faults, drop_detected=True)
        finally:
            simulator.scheduler.close()
        if reference is None:
            reference = result.detections
        else:
            assert result.detections == reference, f"{backend} diverged (seed {seed})"
    assert reference and any(hits for hits in reference.values())


@pytest.mark.parametrize("seed", [4, 17])
def test_transition_detections_identical_across_backends(seed):
    model, domain_map, setup = _random_design(seed)
    faults = collapse_faults(model, all_transition_faults(model)).representatives
    patterns = _pattern_batch(model, setup, seed)
    results = {}
    for backend in ALL_BACKENDS:
        simulator = TransitionFaultSimulator(
            model,
            domain_map,
            setup,
            batch_size=8,
            backend=backend,
            shard_count=3,
            max_workers=2,
        )
        simulator.scheduler.spill_threshold = 0
        try:
            results[backend] = simulator.simulate(
                patterns, faults, drop_detected=True
            ).detections
        finally:
            simulator.scheduler.close()
    for backend in ALL_BACKENDS[1:]:
        assert results[backend] == results["serial"], f"{backend} diverged"
    assert any(hits for hits in results["serial"].values())


def test_multi_frame_stuck_at_identical_across_backends():
    model, domain_map, setup = _random_design(13)
    faults = collapse_faults(model, all_stuck_at_faults(model)).representatives
    patterns = _pattern_batch(model, setup, 13)
    reference = None
    for backend in ("serial", "compiled", "processes"):
        simulator = TransitionFaultSimulator(
            model, domain_map, setup, backend=backend, shard_count=2
        )
        simulator.scheduler.spill_threshold = 0
        try:
            detections = simulator.simulate_stuck_at(patterns, faults)
        finally:
            simulator.scheduler.close()
        if reference is None:
            reference = detections
        else:
            assert detections == reference, f"{backend} diverged"


@pytest.mark.parametrize("shard_count", [1, 4])
def test_shard_count_does_not_change_results(shard_count):
    model, _domain_map, _setup = _random_design(21)
    faults = collapse_faults(model, all_stuck_at_faults(model)).representatives
    patterns = _flat_patterns(model, 21)
    baseline = StuckAtFaultSimulator(model, backend="compiled")
    expected = baseline.simulate(patterns, faults).detections
    sharded = StuckAtFaultSimulator(
        model, backend="threads", shard_count=shard_count, max_workers=2
    )
    sharded.scheduler.spill_threshold = 0
    try:
        assert sharded.simulate(patterns, faults).detections == expected
    finally:
        sharded.scheduler.close()


class TestSessionLevelEquivalence:
    """Coverage numbers and pattern counts agree across every fan-out."""

    OPTIONS = AtpgOptions(
        random_pattern_batches=2,
        patterns_per_batch=16,
        backtrack_limit=10,
        max_patterns=20,
    )

    def _run(self, run_backend, sim_backend="compiled"):
        session = (
            TestSession.for_soc(size=1)
            .with_options(self.OPTIONS)
            .with_backend(sim_backend)
            .add_scenarios("table1-a", "table1-c")
        )
        report = session.run(backend=run_backend)
        return [
            (o.scenario, round(o.test_coverage, 6), round(o.fault_coverage, 6),
             o.pattern_count)
            for o in report.outcomes
        ]

    def test_thread_and_process_fanout_match_serial(self):
        serial = self._run("serial")
        assert self._run("threads") == serial
        assert self._run("processes") == serial

    def test_sim_backends_match_reference_end_to_end(self):
        reference = self._run("serial", sim_backend="serial")
        assert self._run("serial", sim_backend="compiled") == reference
        assert self._run("serial", sim_backend="processes") == reference

    def test_rng_seed_override_is_reproducible_across_backends(self):
        def run_with_seed(sim_backend):
            session = (
                TestSession.for_soc(size=1)
                .with_options(self.OPTIONS)
                .with_backend(sim_backend)
                .add_scenario("table1-a", rng_seed=1234)
            )
            outcome = session.run().outcomes[0]
            return (round(outcome.test_coverage, 6), outcome.pattern_count)

        assert run_with_seed("serial") == run_with_seed("compiled")
