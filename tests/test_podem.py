"""Unit tests for the PODEM test generator."""


from repro.atpg import PodemEngine, PodemStatus
from repro.faults import FaultSite, StuckAtFault, all_stuck_at_faults, collapse_faults
from repro.fault_sim import StuckAtFaultSimulator
from repro.logic import Logic
from repro.netlist import GateType, NetlistBuilder
from repro.simulation import build_model


def engine_for(model, observation=None, fixed=None, backtrack_limit=50):
    controllable = set(model.pi_nodes) | set(model.ppi_nodes)
    fixed = dict(fixed or {})
    controllable -= set(fixed)
    observation = observation if observation is not None else [idx for _, idx in model.po_nodes]
    return PodemEngine(model, controllable, fixed, observation, backtrack_limit=backtrack_limit)


class TestC17:
    def test_every_collapsed_fault_gets_verified_test(self, c17_model):
        engine = engine_for(c17_model)
        simulator = StuckAtFaultSimulator(c17_model, observation=[i for _, i in c17_model.po_nodes])
        faults = collapse_faults(c17_model, all_stuck_at_faults(c17_model)).representatives
        for fault in faults:
            result = engine.run(fault)
            assert result.found, f"no test for {fault.describe(c17_model)}"
            pattern = {
                idx: value if value.is_known else Logic.ZERO
                for idx, value in result.assignment.items()
            }
            assert simulator.detects(pattern, fault), fault.describe(c17_model)

    def test_assignment_only_uses_controllable_nodes(self, c17_model):
        engine = engine_for(c17_model)
        fault = StuckAtFault(site=FaultSite(node=c17_model.node_of_net["N22"]), value=0)
        result = engine.run(fault)
        assert result.found
        assert set(result.assignment) <= set(c17_model.pi_nodes)


class TestRedundancyAndConstraints:
    def test_redundant_fault_is_untestable(self):
        # y = AND(a, NOT(a)) is constant 0: stuck-at-0 at y is undetectable.
        builder = NetlistBuilder("redundant")
        a = builder.input("a")
        na = builder.inv(a)
        y = builder.and_([a, na], output="y")
        builder.output_from(y)
        model = build_model(builder.build())
        engine = engine_for(model)
        fault = StuckAtFault(site=FaultSite(node=model.node_of_net["y"]), value=0)
        result = engine.run(fault)
        assert result.status is PodemStatus.UNTESTABLE

    def test_constant_zero_output_stuck_at_one_testable(self):
        builder = NetlistBuilder("redundant")
        a = builder.input("a")
        na = builder.inv(a)
        y = builder.and_([a, na], output="y")
        builder.output_from(y)
        model = build_model(builder.build())
        engine = engine_for(model)
        fault = StuckAtFault(site=FaultSite(node=model.node_of_net["y"]), value=1)
        assert engine.run(fault).found

    def test_fixed_pin_blocks_activation(self):
        builder = NetlistBuilder("constrained")
        a, b = builder.input("a"), builder.input("b")
        y = builder.and_([a, b], output="y")
        builder.output_from(y)
        model = build_model(builder.build())
        a_node = model.node_of_net["a"]
        engine = engine_for(model, fixed={a_node: Logic.ZERO})
        # With a forced to 0 the AND output is 0: stuck-at-0 cannot be excited.
        fault = StuckAtFault(site=FaultSite(node=model.node_of_net["y"]), value=0)
        assert engine.run(fault).status is PodemStatus.UNTESTABLE
        # ...but stuck-at-1 at the output is still testable (output observed as 0).
        fault1 = StuckAtFault(site=FaultSite(node=model.node_of_net["y"]), value=1)
        assert engine.run(fault1).found

    def test_forced_unknown_source_blocks_test(self):
        builder = NetlistBuilder("xblock")
        a, b = builder.input("a"), builder.input("b")
        y = builder.and_([a, b], output="y")
        builder.output_from(y)
        model = build_model(builder.build())
        b_node = model.node_of_net["b"]
        engine = engine_for(model, fixed={b_node: Logic.X})
        fault = StuckAtFault(site=FaultSite(node=model.node_of_net["y"]), value=0)
        assert engine.run(fault).status is PodemStatus.UNTESTABLE

    def test_required_objective_satisfied(self, c17_model):
        engine = engine_for(c17_model)
        fault = StuckAtFault(site=FaultSite(node=c17_model.node_of_net["N10"]), value=1)
        required_node = c17_model.node_of_net["N2"]
        result = engine.run(fault, required=[(required_node, Logic.ONE)])
        assert result.found
        assert result.assignment.get(required_node) is Logic.ONE

    def test_conflicting_required_objective_untestable(self, c17_model):
        engine = engine_for(c17_model)
        fault = StuckAtFault(site=FaultSite(node=c17_model.node_of_net["N10"]), value=1)
        # N10 stuck-at-1 requires N1=N3=1; demanding N1=0 makes it impossible.
        result = engine.run(fault, required=[(c17_model.node_of_net["N1"], Logic.ZERO)])
        assert result.status is PodemStatus.UNTESTABLE

    def test_unobservable_fault(self, c17_model):
        # Restrict observation to N22; N19 only feeds N23.
        engine = engine_for(c17_model, observation=[c17_model.node_of_net["N22"]])
        fault = StuckAtFault(site=FaultSite(node=c17_model.node_of_net["N19"]), value=1)
        result = engine.run(fault)
        assert result.status is PodemStatus.UNTESTABLE
        assert not engine.observable(c17_model.node_of_net["N19"])


class TestBacktrackLimit:
    def test_abort_reported(self):
        # A wide parity tree with one observation point and a tight backtrack
        # limit forces an abort (XOR logic defeats the backtrace heuristics).
        builder = NetlistBuilder("parity")
        nets = builder.inputs("a", 10)
        y = builder.reduce_tree(GateType.XOR, nets)
        z = builder.inputs("b", 10)
        y2 = builder.reduce_tree(GateType.XOR, z)
        out = builder.and_([y, y2], output="out")
        builder.output_from(out)
        model = build_model(builder.build())
        engine = engine_for(model, backtrack_limit=0)
        fault = StuckAtFault(site=FaultSite(node=model.node_of_net["out"]), value=0)
        result = engine.run(fault)
        assert result.status in (PodemStatus.ABORTED, PodemStatus.TEST_FOUND)
        # With zero backtracks allowed the engine must not claim UNTESTABLE.
        assert result.status is not PodemStatus.UNTESTABLE
