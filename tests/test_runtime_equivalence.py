"""Executor equivalence: the plan-compiled paths reproduce the direct paths.

The acceptance contract of the execution-plane redesign: for **every**
registry design × **every** registry scenario, the report produced through
``Executor``-driven ``TestSession.run`` / ``Campaign.run`` is byte-identical
(table output; deterministic fields via ``same_results``) to the direct
stage-pipeline execution, on every plan backend — and a diagnosis plan ranks
identically to a direct ``run_diagnosis`` call.

ATPG effort is deliberately tiny: these tests pin plumbing equivalence, not
coverage numbers (the engine equivalence suite holds the kernels to
bit-identical detections separately).
"""

from __future__ import annotations

import pytest

from repro.api import (
    Campaign,
    RunReport,
    TestSession,
    all_scenarios,
    design_names,
    outcome_of,
    prepare_from_spec,
    resolve_design,
)
from repro.atpg import AtpgOptions
from repro.runtime import EXECUTOR_BACKENDS, Executor

CHEAP = AtpgOptions(
    random_pattern_batches=1, patterns_per_batch=8, backtrack_limit=4,
    max_patterns=4, random_seed=7,
)

DESIGNS = tuple(design_names())
SCENARIOS = tuple(spec.name for spec in all_scenarios())
CAMPAIGN_DESIGNS = ("tiny", "wide-edt")


@pytest.fixture(scope="module")
def prepared_designs():
    """Every registry design, built once and shared by all passes."""
    return {name: prepare_from_spec(resolve_design(name)) for name in DESIGNS}


def _session(prepared) -> TestSession:
    return TestSession.from_prepared(prepared, CHEAP).add_scenarios(*SCENARIOS)


@pytest.fixture(scope="module")
def reference_reports(prepared_designs):
    """The direct path: every scenario through the raw stage pipeline."""
    reports: dict[str, RunReport] = {}
    for name, prepared in prepared_designs.items():
        session = _session(prepared)
        outcomes = [
            outcome_of(session._execute_stages(spec))
            for spec in session.queued_scenarios
        ]
        reports[name] = RunReport(
            session=session._session_metadata(session.queued_scenarios),
            outcomes=outcomes,
        )
    return reports


class TestSessionEquivalence:
    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_every_design_x_scenario_matches_direct_path(
        self, prepared_designs, reference_reports, backend
    ):
        for name in DESIGNS:
            report = _session(prepared_designs[name]).run(backend=backend)
            reference = reference_reports[name]
            assert report.table() == reference.table(), (name, backend)
            assert report.same_results(reference), (name, backend)
            # Healthy runs carry no degradation marker — the session
            # metadata (and hence the JSON envelope) is unchanged.
            assert report.session == reference.session, (name, backend)


class TestCampaignEquivalence:
    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_campaign_cells_match_direct_path(
        self, prepared_designs, reference_reports, backend
    ):
        campaign = Campaign(
            designs=[prepared_designs[name] for name in CAMPAIGN_DESIGNS],
            scenarios=SCENARIOS,
            options=CHEAP,
        )
        report = campaign.run(executor=Executor(backend=backend))
        for name in CAMPAIGN_DESIGNS:
            reference = reference_reports[name]
            assert report.table(name) == reference.table(), (name, backend)
            assert report.run_report(name).same_results(reference), (name, backend)


class TestDiagnosisEquivalence:
    @pytest.fixture(scope="class")
    def defect(self, prepared_designs):
        from repro.diagnose import DefectSpec

        model = prepared_designs["tiny"].model
        net = model.nodes[model.po_nodes[0][1]].net
        return DefectSpec(kind="stuck-at", net=net, value=0)

    @pytest.fixture(scope="class")
    def reference_result(self, prepared_designs, defect):
        """The direct path: raw pattern generation + run_diagnosis."""
        from repro.api.scenarios import resolve_scenario_or_letter
        from repro.diagnose import DiagnosisSpec, run_diagnosis

        prepared = prepared_designs["tiny"]
        scenario = resolve_scenario_or_letter("a")
        session = TestSession.from_prepared(prepared, CHEAP)
        run = session._execute_stages(scenario)
        setup = scenario.build_setup(prepared, CHEAP)
        return run_diagnosis(
            prepared, setup, run.patterns,
            DiagnosisSpec(scenario=scenario.name, defect=defect),
            options=CHEAP,
        )

    def test_session_diagnosis_plan_matches_direct_call(
        self, prepared_designs, defect, reference_result
    ):
        session = TestSession.from_prepared(prepared_designs["tiny"], CHEAP)
        result = session.diagnose(defect, scenario="a")
        assert result.same_ranking(reference_result)
        assert result.rank_of_defect == reference_result.rank_of_defect
        assert result.resolution == reference_result.resolution

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_diagnosis_sweep_identical_on_every_backend(
        self, prepared_designs, defect, reference_result, backend
    ):
        campaign = Campaign(
            designs=[prepared_designs["tiny"]], scenarios=["a"], options=CHEAP
        )
        report = campaign.diagnose([defect], executor=Executor(backend=backend))
        assert len(report) == 1
        cell = report.cells[0]
        assert cell.rank_of_defect == reference_result.rank_of_defect
        assert cell.resolution == reference_result.resolution
        assert cell.candidate_count == reference_result.candidate_count
        assert cell.fail_count == reference_result.fail_count
        assert cell.pattern_count == reference_result.pattern_count

    @pytest.mark.parametrize("backend", ("threads", "processes"))
    def test_multi_defect_sweep_cells_stay_in_grid_order(
        self, prepared_designs, defect, backend
    ):
        """Pooled backends land cells in completion order; the final report
        must still be deterministic, grid-ordered, and identical to serial."""
        from repro.diagnose import DefectSpec

        model = prepared_designs["tiny"].model
        second_net = model.nodes[model.po_nodes[-1][1]].net
        defects = [defect, DefectSpec(kind="stuck-at", net=second_net, value=1)]

        def sweep(executor_backend: str):
            campaign = Campaign(
                designs=[prepared_designs["tiny"]], scenarios=["a"], options=CHEAP
            )
            report = campaign.diagnose(
                defects, executor=Executor(backend=executor_backend)
            )
            return [
                (cell.design, cell.scenario, cell.defect.describe(),
                 cell.rank_of_defect, cell.resolution)
                for cell in report
            ]

        assert sweep(backend) == sweep("serial")
