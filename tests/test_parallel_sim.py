"""Unit tests for the bit-parallel (packed) simulator."""

import random

from repro.circuits import random_combinational
from repro.logic import Logic
from repro.simulation import build_model, pack_patterns, simulate, simulate_packed, unpack_value
from repro.simulation.parallel_sim import (
    known_equal_mask,
    mask_to_indices,
    unpack_node,
)


def random_assignment(model, rng, x_probability=0.2):
    assignment = {}
    for idx in model.pi_nodes:
        r = rng.random()
        if r < x_probability:
            assignment[idx] = Logic.X
        elif r < 0.5 + x_probability / 2:
            assignment[idx] = Logic.ZERO
        else:
            assignment[idx] = Logic.ONE
    return assignment


def test_packed_matches_scalar_on_c17(c17_model):
    rng = random.Random(1)
    patterns = [random_assignment(c17_model, rng) for _ in range(50)]
    packed = simulate_packed(c17_model, pack_patterns(c17_model, patterns))
    for p, assignment in enumerate(patterns):
        scalar = simulate(c17_model, assignment)
        for node in c17_model.nodes:
            assert unpack_value(packed, node.index, p) is scalar[node.index]


def test_packed_matches_scalar_on_random_circuits():
    rng = random.Random(7)
    for seed in range(3):
        netlist = random_combinational(num_inputs=6, num_gates=40, num_outputs=4, seed=seed)
        model = build_model(netlist)
        patterns = [random_assignment(model, rng) for _ in range(33)]
        packed = simulate_packed(model, pack_patterns(model, patterns))
        for p, assignment in enumerate(patterns):
            scalar = simulate(model, assignment)
            for _, po in model.po_nodes:
                assert unpack_value(packed, po, p) is scalar[po]


def test_pack_defaults_to_x(c17_model):
    packed = pack_patterns(c17_model, [{}])
    pi = c17_model.pi_nodes[0]
    assert unpack_value(packed, pi, 0) is Logic.X


def test_unpack_node_batch(c17_model):
    pi = c17_model.pi_nodes[0]
    patterns = [{pi: Logic.ONE}, {pi: Logic.ZERO}, {pi: Logic.X}]
    packed = pack_patterns(c17_model, patterns)
    assert unpack_node(packed, pi) == [Logic.ONE, Logic.ZERO, Logic.X]


def test_known_equal_mask(c17_model):
    pi = c17_model.pi_nodes[0]
    patterns = [{pi: Logic.ONE}, {pi: Logic.ZERO}, {pi: Logic.ONE}]
    packed = pack_patterns(c17_model, patterns)
    assert known_equal_mask(packed, pi, Logic.ONE) == 0b101
    assert known_equal_mask(packed, pi, Logic.ZERO) == 0b010


def test_mask_to_indices():
    assert mask_to_indices(0b1011) == [0, 1, 3]
    assert mask_to_indices(0b1011, offset=10) == [10, 11, 13]
    assert mask_to_indices(0) == []


def test_full_mask_tracks_batch_size(c17_model):
    packed = pack_patterns(c17_model, [{} for _ in range(70)])
    assert packed.full_mask == (1 << 70) - 1
