"""Unit tests for cell library metadata, area and timing estimates."""

from repro.circuits import c17, ripple_adder
from repro.clocking import build_cpf
from repro.dft import insert_scan
from repro.netlist import (
    DEFAULT_LIBRARY,
    GateType,
    area_report,
    critical_path_estimate,
    gate_area,
    gate_delay,
)


def test_every_gate_type_has_library_entry():
    for gtype in GateType:
        assert gtype in DEFAULT_LIBRARY
        assert gate_delay(gtype) >= 0.0
        assert gate_area(gtype) > 0.0


def test_nand_is_area_reference():
    assert gate_area(GateType.NAND) == 1.0


def test_area_report_combinational():
    report = area_report(c17())
    assert report.sequential == 0.0
    assert report.memory == 0.0
    assert report.combinational > 0.0
    assert report.total == report.combinational


def test_area_report_counts_scan_overhead():
    from repro.circuits import s27

    before = area_report(s27())
    scanned, _ = insert_scan(s27(), num_chains=1)
    after = area_report(scanned)
    assert after.sequential > before.sequential
    assert after.combinational > before.combinational  # scan muxes


def test_cpf_area_is_negligible():
    """The paper: 'the entire CPF consists of ten standard digital logic gates'."""
    block = build_cpf()
    report = area_report(block.netlist)
    assert block.gate_count <= 20
    assert report.total < 60  # NAND2-equivalents; tiny versus any real domain


def test_critical_path_monotone_with_depth():
    shallow = critical_path_estimate(ripple_adder(2))
    deep = critical_path_estimate(ripple_adder(8))
    assert deep > shallow > 0.0
