"""Legacy setuptools shim.

The project is configured through ``pyproject.toml``; this file exists only so
that ``pip install -e .`` (and ``python setup.py develop``) keep working on
older toolchains without the ``wheel`` package, e.g. air-gapped machines.
"""

from setuptools import setup

setup()
