"""Runtime-plane benchmark: plan-execution overhead and cache resume.

Two measurements over the same session workload (registered designs ×
Table 1 scenarios, tiny ATPG effort):

* **overhead** — the same scenarios executed through the raw stage pipeline
  (the direct pre-plane path) vs compiled to a Plan and run by the serial
  ``Executor``.  The plan machinery (compilation, topological scheduling,
  event dispatch) must cost **<5%** on top of the direct calls;
* **resume** — a cold plan execution against an empty persistent cache vs a
  warm re-execution of the identical plan, which must skip every job.

Results land in ``BENCH_runtime.json`` (override with
``REPRO_BENCH_RUNTIME_JSON``), uploaded by the CI ``runtime-smoke`` job.

Runs two ways::

    python -m pytest benchmarks/bench_runtime.py -q    # pytest harness
    python benchmarks/bench_runtime.py --repeats 5     # plain script

Environment: ``REPRO_RUNTIME_DESIGN`` (default ``tiny``),
``REPRO_RUNTIME_SCENARIOS`` (comma-separated, default ``a,c``),
``REPRO_BENCH_PATTERNS`` (patterns per random batch, default 32),
``REPRO_RUNTIME_REPEATS`` (default 3; the best pass is reported).
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

# Script mode (python benchmarks/bench_runtime.py) without an installed
# repro: put the in-tree sources on the path before the repro imports below.
if "repro" not in sys.modules:  # pragma: no cover - import plumbing
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.api import TestSession, outcome_of, prepare_from_spec, resolve_design
from repro.api.scenarios import resolve_scenario_or_letter
from repro.atpg.config import AtpgOptions
from repro.engine import ENGINE_VERSION, ResultCache

from _common import emit_bench

#: Overhead gate: plan execution may cost at most this fraction on top of
#: the direct stage-pipeline calls.
MAX_OVERHEAD = 0.05

DEFAULT_DESIGN = "tiny"
DEFAULT_SCENARIOS = ("a", "c")


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def _env_list(name: str, default: tuple[str, ...]) -> tuple[str, ...]:
    raw = os.environ.get(name, "")
    items = tuple(item.strip() for item in raw.split(",") if item.strip())
    return items or default


def _bench_options(num_patterns: int) -> AtpgOptions:
    return AtpgOptions(
        random_pattern_batches=2,
        patterns_per_batch=num_patterns,
        backtrack_limit=15,
        random_seed=2005,
    )


def run_bench(
    design: str,
    scenarios: tuple[str, ...],
    num_patterns: int,
    repeats: int,
    out_path: Path,
) -> dict[str, object]:
    """Measure direct vs plan execution and cold vs warm resume."""
    options = _bench_options(num_patterns)
    prepared = prepare_from_spec(resolve_design(design))
    specs = [resolve_scenario_or_letter(name) for name in scenarios]

    def fresh_session() -> TestSession:
        session = TestSession.from_prepared(prepared, options)
        for spec in specs:
            session.add_scenario(spec)
        return session

    # ------------------------------------------------- direct vs plan passes
    direct_seconds: list[float] = []
    plan_seconds: list[float] = []
    reference = None
    for _ in range(repeats):
        session = fresh_session()
        started = time.perf_counter()
        runs = [session._execute_stages(spec) for spec in specs]
        direct_seconds.append(time.perf_counter() - started)

        session = fresh_session()
        started = time.perf_counter()
        report = session.run()  # plan compile + serial Executor
        plan_seconds.append(time.perf_counter() - started)

        outcomes = [outcome_of(run) for run in runs]
        if not all(
            mine.same_results(theirs) for mine, theirs in zip(outcomes, report)
        ):
            raise AssertionError("plan-executed results diverged from direct calls")
        reference = report

    # Best-of-N: the minimum is the standard low-noise estimator for
    # overhead comparisons (scheduler noise only ever adds time).
    direct = min(direct_seconds)
    plan = min(plan_seconds)
    overhead = (plan - direct) / direct if direct else 0.0

    # ------------------------------------------------------ cold/warm resume
    with tempfile.TemporaryDirectory(prefix="repro-runtime-bench-") as tmp:
        cache = ResultCache(tmp)
        session = fresh_session().with_cache(cache)
        started = time.perf_counter()
        cold_report = session.run()
        cold_seconds = time.perf_counter() - started

        session = fresh_session().with_cache(cache)
        started = time.perf_counter()
        warm_report = session.run()
        warm_seconds = time.perf_counter() - started
    if not warm_report.same_results(cold_report):
        raise AssertionError("warm (cache-resumed) plan results diverged")
    warm_hits = sum(
        1 for run in session.artifacts.values()
        if (run.cache_info or {}).get("hit")
    )

    payload: dict[str, object] = {
        "engine_version": ENGINE_VERSION,
        "backend": "serial",
        "design": design,
        "scenarios": [spec.name for spec in specs],
        "repeats": repeats,
        "direct_seconds": round(direct, 4),
        "plan_seconds": round(plan, 4),
        "plan_overhead_fraction": round(overhead, 4),
        "max_overhead_fraction": MAX_OVERHEAD,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_cache_hits": warm_hits,
        "speedup_resume": round(cold_seconds / warm_seconds, 3) if warm_seconds else 0.0,
        "jobs": len(specs),
    }
    emit_bench(
        "runtime",
        rows=[
            {"phase": "direct", "wall_seconds": payload["direct_seconds"]},
            {"phase": "plan", "wall_seconds": payload["plan_seconds"]},
            {"phase": "cold", "wall_seconds": payload["cold_seconds"]},
            {"phase": "warm", "wall_seconds": payload["warm_seconds"]},
        ],
        meta=payload,
        out_path=out_path,
    )
    print(
        f"direct={direct:.3f}s  plan={plan:.3f}s  "
        f"overhead={100 * overhead:+.2f}% (gate {100 * MAX_OVERHEAD:.0f}%)"
    )
    print(
        f"cold={cold_seconds:.3f}s  warm(resume)={warm_seconds:.3f}s  "
        f"hits={warm_hits}/{len(specs)}  (resume speedup x{payload['speedup_resume']})"
    )
    assert reference is not None
    return payload


def _default_out_path() -> Path:
    default = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"
    return Path(os.environ.get("REPRO_BENCH_RUNTIME_JSON", default))


# --------------------------------------------------------------------- pytest
def test_plan_overhead_below_gate_and_resume_skips_everything():
    """Acceptance: <5% plan overhead vs direct calls; warm resume serves
    every job from the cache and beats the cold pass."""
    payload = run_bench(
        os.environ.get("REPRO_RUNTIME_DESIGN", DEFAULT_DESIGN),
        _env_list("REPRO_RUNTIME_SCENARIOS", DEFAULT_SCENARIOS),
        _env_int("REPRO_BENCH_PATTERNS", 32),
        _env_int("REPRO_RUNTIME_REPEATS", 3),
        _default_out_path(),
    )
    assert payload["plan_overhead_fraction"] < MAX_OVERHEAD
    assert payload["warm_cache_hits"] == payload["jobs"]
    assert payload["warm_seconds"] < payload["cold_seconds"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--design", type=str,
                        default=os.environ.get("REPRO_RUNTIME_DESIGN", DEFAULT_DESIGN),
                        help="registered design name (default tiny)")
    parser.add_argument("--scenarios", type=str,
                        default=",".join(_env_list("REPRO_RUNTIME_SCENARIOS",
                                                   DEFAULT_SCENARIOS)),
                        help="comma-separated scenario names or letters a-e")
    parser.add_argument("--patterns", type=int,
                        default=_env_int("REPRO_BENCH_PATTERNS", 32),
                        help="random patterns per ATPG batch (default 32)")
    parser.add_argument("--repeats", type=int,
                        default=_env_int("REPRO_RUNTIME_REPEATS", 3),
                        help="measurement repeats; the best is reported")
    parser.add_argument("--out", type=Path, default=_default_out_path(),
                        help="output JSON path (default BENCH_runtime.json)")
    args = parser.parse_args(argv)
    scenarios = tuple(s.strip() for s in args.scenarios.split(",") if s.strip())
    payload = run_bench(args.design, scenarios, args.patterns, args.repeats, args.out)
    # Script mode gates everything CI cares about: the overhead ceiling AND
    # a working cold->warm resume (every job skipped, measurably faster).
    healthy = (
        payload["plan_overhead_fraction"] < MAX_OVERHEAD
        and payload["warm_cache_hits"] == payload["jobs"]
        and payload["warm_seconds"] < payload["cold_seconds"]
    )
    return 0 if healthy else 1


if __name__ == "__main__":
    raise SystemExit(main())
