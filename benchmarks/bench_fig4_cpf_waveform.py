"""Figure 4: the CPF waveform — exactly two clean at-speed pulses.

The gate-level CPF is driven through the real tester protocol (shift, scan-en
drop with relaxed timing, a single scan-clk trigger pulse, wait) by the
event-driven timing simulator; the checks assert the properties the paper's
waveform shows: clk_out follows scan_clk during shift, the enable window opens
three PLL cycles after the trigger, exactly two full-width pulses appear, and
the clock gating cell produces no glitches.  The enhanced CPF is swept over
its programmable pulse counts.
"""

from __future__ import annotations

import pytest

from repro.clocking import (
    build_cpf,
    build_enhanced_cpf,
    check_cpf_waveform,
    enhanced_cpf_config,
    simulate_cpf_capture,
)


@pytest.mark.benchmark(group="figure4")
def test_fig4_simple_cpf_waveform(benchmark):
    block = build_cpf()
    wave, timing = benchmark(simulate_cpf_capture, block, 1000.0, 8000.0, 4)
    report = check_cpf_waveform(
        wave,
        block.ports.clk_out,
        block.ports.pll_clk,
        block.ports.scan_clk,
        timing.trigger_time,
        timing.window_end,
        timing.pll_period,
        expected_pulses=2,
        shift_window=(timing.shift_start, timing.shift_end),
    )
    print()
    print("Figure 4: CPF waveform (shift, trigger, two at-speed pulses)")
    print(wave.to_ascii(
        [block.ports.scan_en, block.ports.scan_clk, block.ports.pll_clk, block.ports.clk_out],
        start=timing.shift_end - timing.scan_period,
        end=timing.trigger_time + 10 * timing.pll_period,
        width=100,
    ))
    print(f"  pulses in capture window : {report.pulses_in_window}")
    print(f"  latency after trigger    : {report.latency_pll_cycles:.2f} PLL cycles")
    print(f"  glitch free              : {report.glitch_free}")
    print(f"  shift pulses passed      : {report.shift_pulses_passed}")

    assert report.pulse_count_correct
    assert report.glitch_free
    assert report.shift_pulses_passed >= 3
    assert 2.5 <= report.latency_pll_cycles <= 4.5
    assert all(width == pytest.approx(timing.pll_period / 2) for width in report.pulse_widths_ps)


@pytest.mark.benchmark(group="figure4")
@pytest.mark.parametrize("pulses", [2, 3, 4])
def test_fig4_enhanced_cpf_pulse_programming(benchmark, pulses):
    block = build_enhanced_cpf(name=f"ecpf{pulses}")
    config = enhanced_cpf_config(pulses)
    wave, timing = benchmark.pedantic(
        simulate_cpf_capture, args=(block,), kwargs={"config_values": config},
        iterations=1, rounds=3,
    )
    report = check_cpf_waveform(
        wave,
        block.ports.clk_out,
        block.ports.pll_clk,
        block.ports.scan_clk,
        timing.trigger_time,
        timing.window_end,
        timing.pll_period,
        expected_pulses=pulses,
    )
    print()
    print(f"Enhanced CPF programmed for {pulses} pulses -> {report.pulses_in_window} observed")
    assert report.pulses_in_window == pulses
    assert report.glitch_free
