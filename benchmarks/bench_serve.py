"""Service-plane benchmark: submit latency and remote-vs-local throughput.

One campaign workload (registered design × Table 1 scenarios, tiny ATPG
effort) measured three ways:

* **processes** — ``Campaign.run`` on the local process-pool backend, the
  reference both for results and for throughput;
* **serve/remote** — the same campaign submitted through a
  :class:`~repro.serve.ServeClient` to a :class:`~repro.serve.ServeServer`
  with two registered workers, timing **submit→first-event latency** (how
  fast a submission starts streaming progress) and end-to-end wall time;
* **identity gate** — the served report must match the processes report on
  every deterministic field (``CampaignReport.same_results``) and render
  byte-identical tables; a throughput ratio is recorded, not gated (two
  single-slot workers against a process pool is not an apples race).

Results land in ``BENCH_serve.json`` (override with
``REPRO_BENCH_SERVE_JSON``), uploaded by the CI ``serve-smoke`` job.

Runs two ways::

    python -m pytest benchmarks/bench_serve.py -q      # pytest harness
    python benchmarks/bench_serve.py --scenarios a,c   # plain script

Environment: ``REPRO_SERVE_DESIGN`` (default ``tiny``),
``REPRO_SERVE_SCENARIOS`` (comma-separated, default ``a,c``),
``REPRO_SERVE_WORKERS`` (default 2).
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

if "repro" not in sys.modules:  # pragma: no cover - import plumbing
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.api import Campaign
from repro.runtime import Executor
from repro.serve import ServeClient, ServeServer, ServeWorker

from _common import emit_bench

#: Submit→first-event gate: a submission must start streaming progress
#: within this budget (covers claim poll + executor spin-up, not the jobs).
MAX_FIRST_EVENT_SECONDS = 5.0

DEFAULT_DESIGN = "tiny"
DEFAULT_SCENARIOS = ("a", "c")


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def _env_list(name: str, default: tuple[str, ...]) -> tuple[str, ...]:
    raw = os.environ.get(name, "")
    items = tuple(item.strip() for item in raw.split(",") if item.strip())
    return items or default


def _campaign(design: str, scenarios: tuple[str, ...]) -> Campaign:
    return Campaign(designs=[design], scenarios=list(scenarios))


def run_bench(
    design: str,
    scenarios: tuple[str, ...],
    worker_count: int,
    out_path: Path,
) -> dict[str, object]:
    """Measure the serve path against the local processes backend."""
    # ------------------------------------------------------ local reference
    started = time.perf_counter()
    reference = _campaign(design, scenarios).run(
        executor=Executor(backend="processes", max_workers=worker_count)
    )
    processes_seconds = time.perf_counter() - started

    # ------------------------------------------------------------ serve path
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        server = ServeServer(Path(tmp) / "root", poll_seconds=0.02)
        server.start()
        workers = [
            ServeWorker(server_address=server.address, register_seconds=0.2).start()
            for _ in range(worker_count)
        ]
        try:
            client = ServeClient(server.address)
            deadline = time.time() + 15
            while time.time() < deadline and len(client.workers()) < worker_count:
                time.sleep(0.05)
            if len(client.workers()) < worker_count:
                raise AssertionError("workers never registered with the server")

            first_event = [None]
            submitted = time.perf_counter()

            def clock_first(event) -> None:
                if first_event[0] is None:
                    first_event[0] = time.perf_counter() - submitted

            campaign = _campaign(design, scenarios)
            handle = campaign.submit(client, tenant="bench")
            report = handle.report(timeout=1800, on_event=clock_first)
            serve_seconds = time.perf_counter() - submitted
            summary = handle.status()["summary"]
        finally:
            for worker in workers:
                worker.stop()
            server.stop()

    # --------------------------------------------------------- identity gate
    identical = report.same_results(reference)
    tables_identical = report.table(design) == reference.table(design)
    first_event_seconds = first_event[0] if first_event[0] is not None else -1.0

    payload: dict[str, object] = {
        "backend": "remote",
        "design": design,
        "scenarios": list(scenarios),
        "workers": worker_count,
        "remote_backend_used": summary["backend"],
        "executed": summary["executed"],
        "processes_seconds": round(processes_seconds, 4),
        "serve_seconds": round(serve_seconds, 4),
        "first_event_seconds": round(first_event_seconds, 4),
        "max_first_event_seconds": MAX_FIRST_EVENT_SECONDS,
        "throughput_ratio": round(serve_seconds / processes_seconds, 3)
        if processes_seconds else 0.0,
        "results_identical": identical,
        "tables_identical": tables_identical,
    }
    emit_bench(
        "serve",
        rows=[
            {"phase": "processes", "wall_seconds": payload["processes_seconds"]},
            {"phase": "serve_remote", "wall_seconds": payload["serve_seconds"]},
            {"phase": "first_event", "wall_seconds": payload["first_event_seconds"]},
        ],
        meta=payload,
        out_path=out_path,
    )
    print(
        f"processes={processes_seconds:.3f}s  serve(remote)={serve_seconds:.3f}s  "
        f"ratio=x{payload['throughput_ratio']}"
    )
    print(
        f"submit->first-event={first_event_seconds:.3f}s "
        f"(gate {MAX_FIRST_EVENT_SECONDS:.0f}s)  identical={identical}"
    )
    return payload


def _default_out_path() -> Path:
    default = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    return Path(os.environ.get("REPRO_BENCH_SERVE_JSON", default))


# --------------------------------------------------------------------- pytest
def test_served_campaign_matches_processes_and_streams_promptly():
    """Acceptance: remote execution through the service returns results
    identical to the local processes backend, dispatched on the remote
    backend, with the first progress event inside the latency gate."""
    payload = run_bench(
        os.environ.get("REPRO_SERVE_DESIGN", DEFAULT_DESIGN),
        _env_list("REPRO_SERVE_SCENARIOS", DEFAULT_SCENARIOS),
        _env_int("REPRO_SERVE_WORKERS", 2),
        _default_out_path(),
    )
    assert payload["results_identical"] and payload["tables_identical"]
    assert payload["remote_backend_used"] == "remote"
    assert 0 <= payload["first_event_seconds"] < payload["max_first_event_seconds"]


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--design", type=str,
                        default=os.environ.get("REPRO_SERVE_DESIGN", DEFAULT_DESIGN),
                        help="registered design name (default tiny)")
    parser.add_argument("--scenarios", type=str,
                        default=",".join(_env_list("REPRO_SERVE_SCENARIOS",
                                                   DEFAULT_SCENARIOS)),
                        help="comma-separated scenario names or letters a-e")
    parser.add_argument("--workers", type=int,
                        default=_env_int("REPRO_SERVE_WORKERS", 2),
                        help="remote worker count (default 2)")
    parser.add_argument("--out", type=Path, default=_default_out_path(),
                        help="output JSON path (default BENCH_serve.json)")
    args = parser.parse_args(argv)
    scenarios = tuple(s.strip() for s in args.scenarios.split(",") if s.strip())
    payload = run_bench(args.design, scenarios, args.workers, args.out)
    healthy = (
        bool(payload["results_identical"])
        and bool(payload["tables_identical"])
        and payload["remote_backend_used"] == "remote"
        and 0 <= payload["first_event_seconds"] < MAX_FIRST_EVENT_SECONDS
    )
    return 0 if healthy else 1


if __name__ == "__main__":
    raise SystemExit(main())
