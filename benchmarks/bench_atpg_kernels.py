"""Micro-benchmarks of the compute kernels behind the experiments.

These are not paper artefacts; they track the performance of the pieces the
Table 1 runtime is made of (good-machine packed simulation, single-fault
propagation, PODEM on the time-frame expanded model), so regressions in the
algorithms show up even when the end-to-end benchmarks are run at a small SOC
size.
"""

from __future__ import annotations

import random

import pytest

from repro.atpg import PodemEngine, TestSetup, build_timeframe_view
from repro.clocking import external_clock_procedures
from repro.faults import all_stuck_at_faults, all_transition_faults, collapse_faults
from repro.fault_sim import propagate_fault_packed
from repro.logic import Logic
from repro.simulation import pack_patterns, simulate_packed


@pytest.fixture(scope="module")
def packed_good(prepared_soc):
    model = prepared_soc.model
    rng = random.Random(1)
    patterns = []
    for _ in range(64):
        patterns.append({idx: (Logic.ONE if rng.random() < 0.5 else Logic.ZERO)
                         for idx in model.pi_nodes + model.ppi_nodes})
    packed = pack_patterns(model, patterns)
    simulate_packed(model, packed)
    return packed


@pytest.mark.benchmark(group="kernels")
def test_kernel_packed_good_simulation(benchmark, prepared_soc):
    model = prepared_soc.model
    rng = random.Random(2)
    patterns = [
        {idx: (Logic.ONE if rng.random() < 0.5 else Logic.ZERO) for idx in model.pi_nodes}
        for _ in range(64)
    ]

    def run():
        return simulate_packed(model, pack_patterns(model, patterns))

    benchmark(run)


@pytest.mark.benchmark(group="kernels")
def test_kernel_single_fault_propagation(benchmark, prepared_soc, packed_good):
    model = prepared_soc.model
    faults = collapse_faults(model, all_stuck_at_faults(model)).representatives[:200]
    observation = model.observation_nodes()

    def run():
        detected = 0
        for fault in faults:
            if propagate_fault_packed(model, packed_good, fault, observation):
                detected += 1
        return detected

    detected = benchmark(run)
    assert detected > 0


@pytest.mark.benchmark(group="kernels")
def test_kernel_podem_transition_targeting(benchmark, prepared_soc):
    model = prepared_soc.model
    setup = TestSetup(
        name="kernel",
        procedures=external_clock_procedures(["fast", "slow"], max_pulses=2),
        observe_pos=False,
        scan_enable_net="scan_en",
    )
    view = build_timeframe_view(model, prepared_soc.domain_map, setup.procedures[0], setup)
    engine = PodemEngine(view.model, view.controllable, view.fixed, view.observation,
                         backtrack_limit=25)
    faults = collapse_faults(model, all_transition_faults(model)).representatives
    rng = random.Random(3)
    sample = rng.sample(faults, 40)

    def run():
        found = 0
        for fault in sample:
            stuck, required = view.transition_requirements(fault)
            if not engine.observable(stuck.site.node):
                continue
            if engine.run(stuck, required).found:
                found += 1
        return found

    found = benchmark(run)
    assert found > 0
