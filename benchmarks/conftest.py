"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper on the
synthetic SOC.  The experiments run through the :mod:`repro.api` session
layer (one :class:`~repro.api.session.TestSession` shared by all Table 1
rows).  The device size and the ATPG effort are configurable through
environment variables so the same harness can run as a quick smoke benchmark
(default) or as a longer, closer-to-the-paper run:

* ``REPRO_SOC_SIZE``      — SOC size factor (default 1; the paper-shape run
  in EXPERIMENTS.md used 2);
* ``REPRO_ATPG_BACKTRACKS`` — PODEM backtrack limit (default 25);
* ``REPRO_RANDOM_BATCHES``  — random-phase batches (default 4).
"""

from __future__ import annotations

import os

import pytest

from repro.api import TestSession
from repro.api.scenarios import TABLE1_DESCRIPTIONS, table1_scenario
from repro.atpg import AtpgOptions
from repro.core import prepare_design


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


SOC_SIZE = _env_int("REPRO_SOC_SIZE", 1)
BACKTRACK_LIMIT = _env_int("REPRO_ATPG_BACKTRACKS", 25)
RANDOM_BATCHES = _env_int("REPRO_RANDOM_BATCHES", 4)


@pytest.fixture(scope="session")
def atpg_options() -> AtpgOptions:
    return AtpgOptions(
        random_pattern_batches=RANDOM_BATCHES,
        patterns_per_batch=64,
        backtrack_limit=BACKTRACK_LIMIT,
        random_seed=2005,
    )


@pytest.fixture(scope="session")
def prepared_soc():
    """The scan-inserted synthetic SOC shared by every benchmark."""
    return prepare_design(size=SOC_SIZE, seed=2005, num_chains=6)


class ExperimentCache:
    """Runs each Table 1 scenario once through a session and remembers it."""

    def __init__(self, prepared, options):
        self.session = TestSession.from_prepared(prepared, options=options)
        self.soc_size = SOC_SIZE
        self.results = {}
        self.outcomes = {}

    def run(self, key: str):
        if key not in self.results:
            spec = table1_scenario(key)
            self.outcomes[key] = self.session.run_scenario(spec)
            self.results[key] = self.session.result_of(spec.name)
        return self.results[key]

    def row(self, key: str) -> str:
        result = self.run(key)
        return (
            f"({key}) {TABLE1_DESCRIPTIONS[key]:<55} "
            f"coverage={result.coverage.test_coverage:6.2f}%  "
            f"patterns={result.pattern_count:5d}"
        )


_ACTIVE_CACHE: ExperimentCache | None = None


@pytest.fixture(scope="session")
def experiment_cache(prepared_soc, atpg_options) -> ExperimentCache:
    global _ACTIVE_CACHE
    _ACTIVE_CACHE = ExperimentCache(prepared_soc, atpg_options)
    return _ACTIVE_CACHE


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print the reproduced Table 1 and the paper comparison after the run.

    Benchmark tests capture stdout, so the measured rows are echoed here where
    they always reach the report (and the tee'd bench_output.txt).
    """
    cache = _ACTIVE_CACHE
    if cache is None or not cache.results:
        return
    from repro.core import format_comparison, format_table1

    terminalreporter.write_sep("=", f"Table 1 reproduction (SOC size={SOC_SIZE})")
    terminalreporter.write_line(format_table1(cache.results))
    if set("abcde") <= set(cache.results):
        terminalreporter.write_line("")
        terminalreporter.write_line(format_comparison(cache.results))
