"""Figure 2: delay-test clocking for two clock domains.

The benchmark renders the cycle-level clocking picture — slow scan clock while
``scan_en`` is high, then a two-pulse at-speed burst per functional domain at
its own frequency — and verifies its structural properties (pulse counts,
ordering of shift and capture, faster domain pulses closer together).
"""

from __future__ import annotations

import pytest

from repro.clocking import figure2_waveform


@pytest.mark.benchmark(group="figure2")
def test_fig2_two_domain_delay_test_clocking(benchmark, prepared_soc):
    domains = prepared_soc.soc.functional_domains
    waveform = benchmark(figure2_waveform, domains, 6, 2)

    print()
    print("Figure 2: delay test clock for two clock domains")
    print(waveform.to_ascii(
        ["scan_en", "scan_clk"] + [f"clk_{d.name}" for d in domains], width=100
    ))

    scan_clk = waveform["scan_clk"]
    scan_en = waveform["scan_en"]
    assert scan_clk.count_pulses() >= 12  # shift before and after the capture
    # scan_en drops before the at-speed bursts and rises again afterwards.
    fall = scan_en.falling_edges()[0]
    rise = scan_en.rising_edges()[0]
    for domain in domains:
        clk = waveform[f"clk_{domain.name}"]
        pulses = clk.pulses()
        assert len(pulses) == 2, "exactly launch + capture per domain"
        assert all(fall < p.start < rise for p in pulses)
    # The faster domain's pulses are closer together.
    fast, slow = sorted(domains, key=lambda d: d.period_ns)
    fast_gap = waveform[f"clk_{fast.name}"].rising_edges()
    slow_gap = waveform[f"clk_{slow.name}"].rising_edges()
    assert (fast_gap[1] - fast_gap[0]) < (slow_gap[1] - slow_gap[0])
