"""Volume-diagnosis benchmark: fail-log throughput cold vs cache-warm, and
BP accuracy against the legacy syndrome ranking.

Models a tester-floor volume shift through :mod:`repro.volume`: one pattern
set, a store of failing devices (two injected defects each, plus a
single-defect slice for the accuracy comparison), compiled into one
runtime plan and executed twice against the same persistent result cache:

* **cold** — every log diagnosed from scratch (capture-free: the logs are
  the evidence; candidate extraction + syndrome simulation + loopy BP);
* **warm** — the identical plan resumed from the cache: every BP verdict
  is content-addressed by design x scenario x spec x log fingerprint, so
  the second pass re-runs nothing.

The accuracy rows compare BP's single-defect rank-1 recovery against the
classical ranking of :func:`repro.diagnose.run_diagnosis` on the same
logs (held bit-identical across backends by
``tests/test_volume_backends.py``).  Results land in ``BENCH_volume.json``
(override with ``REPRO_BENCH_VOLUME_JSON``), uploaded by CI's volume-smoke
job.

Runs two ways::

    python -m pytest benchmarks/bench_volume.py -q    # pytest harness
    python benchmarks/bench_volume.py --logs 12       # plain script

Environment: ``REPRO_BENCH_LOGS`` (default 24), ``REPRO_BENCH_DESIGN``
(default tiny).
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

# Script mode (python benchmarks/bench_volume.py) without an installed
# repro: put the in-tree sources on the path before the repro imports below.
if "repro" not in sys.modules:  # pragma: no cover - import plumbing
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.api import TestSession
from repro.api.scenarios import table1_scenario
from repro.atpg.config import AtpgOptions
from repro.diagnose import (
    DefectSpec,
    DiagnosisSpec,
    capture_fail_log,
    run_diagnosis,
)
from repro.engine import ENGINE_VERSION
from repro.engine.cache import ResultCache
from repro.faults.fault_list import FaultStatus
from repro.runtime import Executor
from repro.volume import FailLogStore, VolumeSpec, execute_volume_plan, volume_plan

from _common import emit_bench

#: ATPG effort for the shared pattern set: enough to expose plenty of
#: defects without dominating the benchmark's wall time.
ATPG_OPTIONS = AtpgOptions(
    random_pattern_batches=2, patterns_per_batch=32, backtrack_limit=16
)


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def build_workload(design: str, num_logs: int, store_path: Path):
    """One executed scenario plus a ``num_logs``-record fail-log store.

    Every device carries provenance (its injected defects), so the accuracy
    comparison below can score both rankings against ground truth.  Half
    the store is single-defect (the legacy-comparable slice), half is
    two-defect (the workload BP exists for).
    """
    session = TestSession.for_design(design, options=ATPG_OPTIONS)
    spec = table1_scenario("a")
    session.run_scenario(spec)
    run = session.artifacts[spec.name]
    setup = spec.build_setup(session.prepared, ATPG_OPTIONS)
    prepared = session.prepared
    model = prepared.model
    detected = session.result_of(spec.name).fault_list.with_status(
        FaultStatus.DETECTED
    )
    visible: list[DefectSpec] = []
    for fault in detected:
        defect = DefectSpec.from_fault(model, fault)
        if any(defect.net == seen.net for seen in visible):
            continue
        probe = capture_fail_log(
            model, prepared.domain_map, prepared.scan, setup, run.patterns, defect
        )
        if probe.num_fails:
            visible.append(defect)
        if len(visible) >= max(4, num_logs // 4):
            break
    if len(visible) < 2:
        raise RuntimeError(f"fewer than 2 visible defects on {design}/a")
    store = FailLogStore(store_path)
    for index in range(num_logs):
        if index % 2 == 0:
            injected = [visible[index % len(visible)]]
        else:
            first = visible[index % len(visible)]
            second = visible[(index + 1) % len(visible)]
            injected = [first] if first == second else [first, second]
        log = capture_fail_log(
            model, prepared.domain_map, prepared.scan, setup,
            run.patterns, injected, design_name=design,
        )
        store.add(f"die-{index:04d}", log, scenario=spec.name)
    return session, spec, run, setup, store


def bench_throughput(session, spec, store, design: str, cache_dir: Path):
    """Time the volume plan cold and cache-warm; return the record."""
    plan = volume_plan(
        store,
        {design: session.prepared},
        {spec.name: spec},
        VolumeSpec(scenario=spec.name, backend="compiled"),
        options=ATPG_OPTIONS,
    )
    cache = ResultCache(cache_dir)
    record: dict[str, object] = {"logs": len(store)}
    reports = {}
    for phase in ("cold", "warm"):
        started = time.perf_counter()
        report = execute_volume_plan(plan, executor=Executor(cache=cache))
        seconds = time.perf_counter() - started
        record[f"{phase}_seconds"] = round(seconds, 4)
        record[f"{phase}_logs_per_second"] = round(len(report) / seconds, 2)
        reports[phase] = report
    if not reports["warm"].same_results(reports["cold"]):
        raise AssertionError("cache-warm report differs from the cold run")
    record["warm_cache_hits"] = reports["warm"].cache_hits()
    record["recovered_all"] = reports["cold"].recovered_count()
    return record, reports["cold"]


def bench_accuracy(session, spec, run, setup, store, report):
    """BP vs legacy rank-1 recovery on the single-defect slice."""
    single = [
        record for record in store.records()
        if len(record.log.defects) == 1
    ]
    legacy_rank1 = 0
    bp_rank1 = 0
    for record in single:
        legacy = run_diagnosis(
            session.prepared, setup, run.patterns,
            DiagnosisSpec(
                scenario=spec.name, defect=record.log.defect, backend="compiled"
            ),
            fail_log=record.log, options=ATPG_OPTIONS,
        )
        if legacy.rank_of_defect == 1:
            legacy_rank1 += 1
        if report.cell(record.name).rank_of_defect == 1:
            bp_rank1 += 1
    return {
        "single_defect_logs": len(single),
        "legacy_rank_1": legacy_rank1,
        "bp_rank_1": bp_rank1,
    }


def run_bench(design: str, num_logs: int, out_path: Path) -> dict[str, object]:
    """Run the volume benchmark and write ``BENCH_volume.json``."""
    with tempfile.TemporaryDirectory(prefix="bench_volume_") as scratch:
        scratch_path = Path(scratch)
        session, spec, run, setup, store = build_workload(
            design, num_logs, scratch_path / "store.sqlite"
        )
        record, report = bench_throughput(
            session, spec, store, design, scratch_path / "cache"
        )
        accuracy = bench_accuracy(session, spec, run, setup, store, report)
    payload: dict[str, object] = {
        "engine_version": ENGINE_VERSION,
        "design": design,
        "scenario": spec.name,
        "backend": "compiled",
        "cpu_count": os.cpu_count(),
        "throughput": record,
        "accuracy": accuracy,
    }
    print(
        f"logs={record['logs']}  "
        f"cold={record['cold_seconds']:.3f}s "
        f"({record['cold_logs_per_second']}/s)  "
        f"warm={record['warm_seconds']:.3f}s "
        f"({record['warm_logs_per_second']}/s)  "
        f"rank-1 BP {accuracy['bp_rank_1']}/{accuracy['single_defect_logs']} "
        f"vs legacy {accuracy['legacy_rank_1']}/{accuracy['single_defect_logs']}"
    )
    rows = [
        {
            "phase": phase,
            "wall_seconds": record[f"{phase}_seconds"],
            "logs": record["logs"],
            "logs_per_second": record[f"{phase}_logs_per_second"],
        }
        for phase in ("cold", "warm")
    ]
    emit_bench("volume", rows=rows, meta=payload, out_path=out_path)
    return payload


def _default_out_path() -> Path:
    default = Path(__file__).resolve().parent.parent / "BENCH_volume.json"
    return Path(os.environ.get("REPRO_BENCH_VOLUME_JSON", default))


# --------------------------------------------------------------------- pytest
def test_warm_pass_serves_every_log_from_cache():
    """Acceptance: the cache-warm pass re-runs nothing and BP's rank-1
    recovery matches or beats the legacy ranking."""
    design = os.environ.get("REPRO_BENCH_DESIGN", "tiny")
    num_logs = _env_int("REPRO_BENCH_LOGS", 24)
    payload = run_bench(design, num_logs, _default_out_path())
    record = payload["throughput"]
    accuracy = payload["accuracy"]
    assert record["warm_cache_hits"] == record["logs"], (
        "cache-warm volume pass re-ran some logs"
    )
    assert record["warm_seconds"] < record["cold_seconds"]
    assert accuracy["bp_rank_1"] >= accuracy["legacy_rank_1"], (
        "BP lost rank-1 recoveries to the legacy ranking"
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--design", default=os.environ.get("REPRO_BENCH_DESIGN", "tiny"),
                        help="registry design under test (default tiny)")
    parser.add_argument("--logs", type=int, default=_env_int("REPRO_BENCH_LOGS", 24),
                        help="fail logs in the store (default 24)")
    parser.add_argument("--out", type=Path, default=_default_out_path(),
                        help="output JSON path (default BENCH_volume.json)")
    args = parser.parse_args(argv)
    payload = run_bench(args.design, args.logs, args.out)
    record = payload["throughput"]
    if record["warm_cache_hits"] != record["logs"]:
        print("WARNING: cache-warm pass re-ran some logs")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
