"""Shared ``BENCH_*.json`` emission — one schema for every benchmark artifact.

Every ``bench_*.py`` writes its results through :func:`emit_bench`, so the
artifacts CI uploads are machine-comparable across PRs: a fixed envelope
(schema version, git sha, python version, backend, engine version) wrapping
per-measurement ``rows`` — each normalized to carry ``wall_seconds`` and the
emitting process's ``rss_kb`` — plus the bench-specific knobs and aggregates
verbatim under ``meta``.

The helper deliberately imports ``repro`` lazily: benchmark scripts bootstrap
``src/`` onto ``sys.path`` themselves in script mode, and ``_common`` must
stay importable either way.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from pathlib import Path

#: Bump when the envelope shape changes (not when a bench adds row fields).
BENCH_SCHEMA_VERSION = 1

_REPO_ROOT = Path(__file__).resolve().parent.parent


def git_sha() -> "str | None":
    """The checked-out commit sha, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def default_out_path(name: str) -> Path:
    """``BENCH_{name}.json`` at the repo root, overridable via environment.

    The override variable follows the per-bench convention that predates this
    helper: ``REPRO_BENCH_{NAME}_JSON``, except ``table1`` which has always
    used plain ``REPRO_BENCH_JSON``.
    """
    env = "REPRO_BENCH_JSON" if name == "table1" else f"REPRO_BENCH_{name.upper()}_JSON"
    return Path(os.environ.get(env, str(_REPO_ROOT / f"BENCH_{name}.json")))


def emit_bench(
    name: str,
    rows: "list[dict[str, object]]",
    meta: "dict[str, object] | None" = None,
    *,
    out_path: "Path | str | None" = None,
) -> "dict[str, object]":
    """Write ``BENCH_{name}.json`` in the shared schema; return the payload.

    ``rows`` is the per-measurement list (one dict per workload, backend, or
    phase); every row is normalized to carry ``wall_seconds`` (``None`` when
    that row was not individually timed) and ``rss_kb``.  ``meta`` is the
    bench's own payload, kept verbatim; ``meta["backend"]`` (when present)
    is lifted into the envelope for cross-bench queries.
    """
    from repro.engine import ENGINE_VERSION
    from repro.obs.profile import rss_kb

    meta = dict(meta or {})
    sampled_rss = rss_kb()
    normalized: list[dict[str, object]] = []
    for row in rows:
        row = dict(row)
        row.setdefault("wall_seconds", None)
        row.setdefault("rss_kb", sampled_rss)
        normalized.append(row)
    payload: dict[str, object] = {
        "bench": name,
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_sha": git_sha(),
        "python_version": platform.python_version(),
        "platform": platform.platform(),
        "engine_version": ENGINE_VERSION,
        "backend": meta.get("backend"),
        "meta": meta,
        "rows": normalized,
    }
    path = Path(out_path) if out_path is not None else default_out_path(name)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return payload
