"""Observability benchmark: telemetry overhead gate and trace-schema check.

Two measurements over bench_runtime's plan workload (registered design ×
Table 1 scenarios, tiny ATPG effort, serial ``Executor``):

* **overhead** — the same session executed with telemetry disabled (the
  default no-op :data:`repro.obs.NULL_TELEMETRY`) vs enabled
  (:meth:`repro.obs.Telemetry.on`).  Full tracing + metrics must cost
  **<3%** on top of the dark run;
* **schema** — the enabled run's exported Chrome/Perfetto trace is
  validated against the trace-event format (``{"traceEvents": [...]}``,
  ``"ph": "X"`` complete events with non-negative microsecond ``ts``/
  ``dur``, ``"ph": "M"`` metadata events naming every pid/tid) and must
  contain the spans the acceptance criteria promise: one per plan, per
  job, and per pipeline stage.

Results land in ``BENCH_obs.json`` (override with ``REPRO_BENCH_OBS_JSON``),
uploaded by the CI ``obs-smoke`` job.

Runs two ways::

    python -m pytest benchmarks/bench_obs.py -q     # pytest harness
    python benchmarks/bench_obs.py --repeats 5      # plain script

Environment: ``REPRO_OBS_DESIGN`` (default ``tiny``),
``REPRO_OBS_SCENARIOS`` (comma-separated, default ``a,c``),
``REPRO_BENCH_PATTERNS`` (patterns per random batch, default 32),
``REPRO_OBS_REPEATS`` (default 3; the best pass is reported).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

# Script mode (python benchmarks/bench_obs.py) without an installed repro:
# put the in-tree sources on the path before the repro imports below.
if "repro" not in sys.modules:  # pragma: no cover - import plumbing
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.api import TestSession, prepare_from_spec, resolve_design
from repro.api.scenarios import resolve_scenario_or_letter
from repro.atpg.config import AtpgOptions
from repro.engine import ENGINE_VERSION
from repro.obs import Telemetry

from _common import emit_bench

#: Overhead gate: full tracing + metrics may cost at most this fraction on
#: top of the telemetry-disabled run of the identical plan.
MAX_OVERHEAD = 0.03

DEFAULT_DESIGN = "tiny"
DEFAULT_SCENARIOS = ("a", "c")


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def _env_list(name: str, default: tuple[str, ...]) -> tuple[str, ...]:
    raw = os.environ.get(name, "")
    items = tuple(item.strip() for item in raw.split(",") if item.strip())
    return items or default


def _bench_options(num_patterns: int) -> AtpgOptions:
    return AtpgOptions(
        random_pattern_batches=2,
        patterns_per_batch=num_patterns,
        backtrack_limit=15,
        random_seed=2005,
    )


def validate_chrome_trace(document: "dict[str, object]") -> "list[str]":
    """Check one exported document against the Chrome trace-event format.

    Returns a list of human-readable violations (empty when valid): the
    structural rules https://ui.perfetto.dev and ``chrome://tracing`` rely
    on — a ``traceEvents`` list of dicts, every event carrying ``name``/
    ``ph``/``pid``/``tid``, complete (``X``) events with non-negative
    numeric ``ts``/``dur``, metadata (``M``) events with an ``args.name``.
    """
    problems: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where} is not an object")
            continue
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                problems.append(f"{where} missing {field!r}")
        phase = event.get("ph")
        if phase == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(f"{where} has invalid {field!r}: {value!r}")
        elif phase == "M":
            args = event.get("args")
            if not (isinstance(args, dict) and isinstance(args.get("name"), str)):
                problems.append(f"{where} metadata event lacks args.name")
        elif not isinstance(phase, str):
            problems.append(f"{where} has non-string ph: {phase!r}")
    try:
        json.dumps(document)
    except (TypeError, ValueError) as exc:
        problems.append(f"document is not JSON-serializable: {exc}")
    return problems


def run_bench(
    design: str,
    scenarios: tuple[str, ...],
    num_patterns: int,
    repeats: int,
    out_path: Path,
) -> dict[str, object]:
    """Measure disabled vs enabled telemetry and validate the trace export."""
    options = _bench_options(num_patterns)
    prepared = prepare_from_spec(resolve_design(design))
    specs = [resolve_scenario_or_letter(name) for name in scenarios]

    def fresh_session() -> TestSession:
        session = TestSession.from_prepared(prepared, options)
        for spec in specs:
            session.add_scenario(spec)
        return session

    dark_seconds: list[float] = []
    lit_seconds: list[float] = []
    reference = None
    telemetry = None
    for _ in range(repeats):
        session = fresh_session()
        started = time.perf_counter()
        dark_report = session.run()
        dark_seconds.append(time.perf_counter() - started)

        telemetry = Telemetry.on()
        session = fresh_session().with_telemetry(telemetry)
        started = time.perf_counter()
        lit_report = session.run()
        lit_seconds.append(time.perf_counter() - started)

        if not lit_report.same_results(dark_report):
            raise AssertionError("telemetry-enabled results diverged")
        reference = lit_report

    # Best-of-N: the minimum is the standard low-noise estimator for
    # overhead comparisons (scheduler noise only ever adds time).
    dark = min(dark_seconds)
    lit = min(lit_seconds)
    overhead = (lit - dark) / dark if dark else 0.0

    # ------------------------------------------------- trace schema + spans
    assert telemetry is not None and reference is not None
    trace = telemetry.trace()
    document = trace.to_chrome()
    problems = validate_chrome_trace(document)
    names = trace.names()
    for prefix, what in (("plan:", "plan"), ("job:", "job"), ("stage:", "stage")):
        if not any(name.startswith(prefix) for name in names):
            problems.append(f"trace contains no {what} span ({prefix}*)")
    if len(trace.find("plan:")) != 1:
        problems.append("expected exactly one plan span per executed plan")
    snapshot = reference.session.get("telemetry")
    if not isinstance(snapshot, dict) or not snapshot.get("metrics", {}).get("counters"):
        problems.append("RunReport.session['telemetry'] lacks metric counters")

    payload: dict[str, object] = {
        "engine_version": ENGINE_VERSION,
        "backend": "serial",
        "design": design,
        "scenarios": [spec.name for spec in specs],
        "repeats": repeats,
        "disabled_seconds": round(dark, 4),
        "enabled_seconds": round(lit, 4),
        "telemetry_overhead_fraction": round(overhead, 4),
        "max_overhead_fraction": MAX_OVERHEAD,
        "span_count": len(trace),
        "trace_events": len(document.get("traceEvents", [])),
        "trace_problems": problems,
        "counters": (snapshot or {}).get("metrics", {}).get("counters", {}),
    }
    emit_bench(
        "obs",
        rows=[
            {"phase": "disabled", "wall_seconds": payload["disabled_seconds"]},
            {"phase": "enabled", "wall_seconds": payload["enabled_seconds"]},
        ],
        meta=payload,
        out_path=out_path,
    )
    print(
        f"disabled={dark:.3f}s  enabled={lit:.3f}s  "
        f"overhead={100 * overhead:+.2f}% (gate {100 * MAX_OVERHEAD:.0f}%)"
    )
    print(
        f"spans={len(trace)}  trace_events={payload['trace_events']}  "
        f"schema={'ok' if not problems else '; '.join(problems)}"
    )
    return payload


def _default_out_path() -> Path:
    default = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    return Path(os.environ.get("REPRO_BENCH_OBS_JSON", default))


# --------------------------------------------------------------------- pytest
def test_telemetry_overhead_below_gate_and_trace_is_valid():
    """Acceptance: <3% telemetry overhead vs the dark run; the exported
    Chrome trace passes the trace-event schema and carries plan/job/stage
    spans plus populated metric counters."""
    payload = run_bench(
        os.environ.get("REPRO_OBS_DESIGN", DEFAULT_DESIGN),
        _env_list("REPRO_OBS_SCENARIOS", DEFAULT_SCENARIOS),
        _env_int("REPRO_BENCH_PATTERNS", 32),
        _env_int("REPRO_OBS_REPEATS", 3),
        _default_out_path(),
    )
    assert payload["trace_problems"] == []
    assert payload["telemetry_overhead_fraction"] < MAX_OVERHEAD


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--design", type=str,
                        default=os.environ.get("REPRO_OBS_DESIGN", DEFAULT_DESIGN),
                        help="registered design name (default tiny)")
    parser.add_argument("--scenarios", type=str,
                        default=",".join(_env_list("REPRO_OBS_SCENARIOS",
                                                   DEFAULT_SCENARIOS)),
                        help="comma-separated scenario names or letters a-e")
    parser.add_argument("--patterns", type=int,
                        default=_env_int("REPRO_BENCH_PATTERNS", 32),
                        help="random patterns per ATPG batch (default 32)")
    parser.add_argument("--repeats", type=int,
                        default=_env_int("REPRO_OBS_REPEATS", 3),
                        help="measurement repeats; the best is reported")
    parser.add_argument("--out", type=Path, default=_default_out_path(),
                        help="output JSON path (default BENCH_obs.json)")
    args = parser.parse_args(argv)
    scenarios = tuple(s.strip() for s in args.scenarios.split(",") if s.strip())
    payload = run_bench(args.design, scenarios, args.patterns, args.repeats, args.out)
    healthy = (
        payload["trace_problems"] == []
        and payload["telemetry_overhead_fraction"] < MAX_OVERHEAD
    )
    return 0 if healthy else 1


if __name__ == "__main__":
    raise SystemExit(main())
