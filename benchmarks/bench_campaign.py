"""Campaign benchmark: design×scenario grid throughput and cache resume.

Runs a grid of registered designs × Table 1 scenarios through
:class:`repro.api.Campaign` on the engine's process backend, twice against
the same persistent result cache:

* **cold** — empty cache, every cell executes (per-cell wall time recorded);
* **warm** — identical campaign re-run, which must serve *every* cell from
  the cache (the resumability contract of interrupted campaigns).

Results land in ``BENCH_campaign.json`` (override with
``REPRO_BENCH_CAMPAIGN_JSON``), which the CI campaign-smoke job uploads as
an artifact alongside ``BENCH_engine.json``.

Runs two ways::

    python -m pytest benchmarks/bench_campaign.py -q      # pytest harness
    python benchmarks/bench_campaign.py --backend serial  # plain script

Environment: ``REPRO_CAMPAIGN_DESIGNS`` / ``REPRO_CAMPAIGN_SCENARIOS``
(comma-separated, default ``tiny,wide-edt`` × ``a,c``),
``REPRO_BENCH_WORKERS`` (default: engine auto), ``REPRO_BENCH_PATTERNS``
(patterns per random batch, default 32).
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

# Script mode (python benchmarks/bench_campaign.py) without an installed
# repro: put the in-tree sources on the path before the repro imports below.
if "repro" not in sys.modules:  # pragma: no cover - import plumbing
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.api import Campaign
from repro.atpg.config import AtpgOptions
from repro.engine import ENGINE_VERSION, ResultCache, default_worker_count
from repro.runtime import Executor

from _common import emit_bench

DEFAULT_DESIGNS = ("tiny", "wide-edt")
DEFAULT_SCENARIOS = ("a", "c")


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def _env_list(name: str, default: tuple[str, ...]) -> tuple[str, ...]:
    raw = os.environ.get(name, "")
    items = tuple(item.strip() for item in raw.split(",") if item.strip())
    return items or default


def _bench_options(num_patterns: int) -> AtpgOptions:
    return AtpgOptions(
        random_pattern_batches=2,
        patterns_per_batch=num_patterns,
        backtrack_limit=15,
        random_seed=2005,
    )


def run_bench(
    designs: tuple[str, ...],
    scenarios: tuple[str, ...],
    backend: str,
    workers: int | None,
    num_patterns: int,
    out_path: Path,
) -> dict[str, object]:
    """Run the cold + warm campaign pair and write ``BENCH_campaign.json``."""
    options = _bench_options(num_patterns)
    with tempfile.TemporaryDirectory(prefix="repro-campaign-bench-") as tmp:
        cache = ResultCache(tmp)

        cold = Campaign(designs=list(designs), scenarios=list(scenarios),
                        options=options).with_cache(cache)
        started = time.perf_counter()
        cold_report = cold.run(executor=Executor(backend=backend, max_workers=workers))
        cold_seconds = time.perf_counter() - started

        warm = Campaign(designs=list(designs), scenarios=list(scenarios),
                        options=options).with_cache(cache)
        started = time.perf_counter()
        warm_report = warm.run(executor=Executor(backend=backend, max_workers=workers))
        warm_seconds = time.perf_counter() - started

    if not warm_report.same_results(cold_report):
        raise AssertionError("warm (cache-resumed) campaign results diverged")

    payload: dict[str, object] = {
        "engine_version": ENGINE_VERSION,
        "backend": backend,
        "workers": workers or default_worker_count(),
        "cpu_count": os.cpu_count(),
        "designs": list(designs),
        "scenarios": cold.scenario_names,
        "cells": [
            {
                "design": cell.design,
                "scenario": cell.scenario,
                "wall_seconds": round(cell.wall_seconds, 4),
                "test_coverage": cell.outcome.test_coverage,
                "pattern_count": cell.outcome.pattern_count,
            }
            for cell in cold_report
        ],
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_cache_hits": warm_report.cache_hits(),
        "grid_cells": len(cold_report),
        "speedup_resume": round(cold_seconds / warm_seconds, 3) if warm_seconds else 0.0,
    }
    rows = [
        {"phase": "cold", "wall_seconds": payload["cold_seconds"]},
        {"phase": "warm", "wall_seconds": payload["warm_seconds"]},
    ] + [
        {
            "design": cell["design"],  # type: ignore[index]
            "scenario": cell["scenario"],  # type: ignore[index]
            "wall_seconds": cell["wall_seconds"],  # type: ignore[index]
            "test_coverage": cell["test_coverage"],  # type: ignore[index]
            "pattern_count": cell["pattern_count"],  # type: ignore[index]
        }
        for cell in payload["cells"]  # type: ignore[union-attr]
    ]
    emit_bench("campaign", rows=rows, meta=payload, out_path=out_path)
    for cell in cold_report:
        print(
            f"{cell.design:<18} {cell.scenario:<12} "
            f"TC={cell.outcome.test_coverage:6.2f}%  "
            f"cell={cell.wall_seconds:6.2f}s"
        )
    print(
        f"cold={cold_seconds:.2f}s  warm(resume)={warm_seconds:.2f}s  "
        f"hits={warm_report.cache_hits()}/{len(warm_report)}  "
        f"(resume speedup x{payload['speedup_resume']})"
    )
    return payload


def _default_out_path() -> Path:
    default = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"
    return Path(os.environ.get("REPRO_BENCH_CAMPAIGN_JSON", default))


# --------------------------------------------------------------------- pytest
def test_campaign_grid_completes_and_resumes_from_cache():
    """Acceptance: the grid completes on the process backend and a re-run
    of the identical campaign is served entirely from the cache."""
    designs = _env_list("REPRO_CAMPAIGN_DESIGNS", DEFAULT_DESIGNS)
    scenarios = _env_list("REPRO_CAMPAIGN_SCENARIOS", DEFAULT_SCENARIOS)
    workers = _env_int("REPRO_BENCH_WORKERS", 0) or None
    num_patterns = _env_int("REPRO_BENCH_PATTERNS", 32)
    payload = run_bench(
        designs, scenarios, "processes", workers, num_patterns, _default_out_path()
    )
    assert payload["grid_cells"] == len(designs) * len(scenarios)
    assert payload["warm_cache_hits"] == payload["grid_cells"]
    assert payload["warm_seconds"] < payload["cold_seconds"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--designs", type=str,
                        default=",".join(_env_list("REPRO_CAMPAIGN_DESIGNS",
                                                   DEFAULT_DESIGNS)),
                        help="comma-separated registered design names")
    parser.add_argument("--scenarios", type=str,
                        default=",".join(_env_list("REPRO_CAMPAIGN_SCENARIOS",
                                                   DEFAULT_SCENARIOS)),
                        help="comma-separated scenario names or letters a-e")
    parser.add_argument("--backend", type=str, default="processes",
                        choices=("serial", "threads", "processes"))
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (default: engine auto)")
    parser.add_argument("--patterns", type=int,
                        default=_env_int("REPRO_BENCH_PATTERNS", 32),
                        help="random patterns per ATPG batch (default 32)")
    parser.add_argument("--out", type=Path, default=_default_out_path(),
                        help="output JSON path (default BENCH_campaign.json)")
    args = parser.parse_args(argv)
    designs = tuple(d.strip() for d in args.designs.split(",") if d.strip())
    scenarios = tuple(s.strip() for s in args.scenarios.split(",") if s.strip())
    payload = run_bench(
        designs, scenarios, args.backend, args.workers, args.patterns, args.out
    )
    return 0 if payload["warm_cache_hits"] == payload["grid_cells"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
