"""Ablation: how many programmable pulses should the enhanced CPF offer?

The paper's experiment (d) allows 2–4 pulses; the extra initialization cycles
are what lets non-scan cells take part in delay test.  This sweep isolates
that effect by running the on-chip-clocking transition ATPG with the maximum
pulse count limited to 2, 3 and 4 (no inter-domain procedures).
"""

from __future__ import annotations

import pytest

from repro.core import pulse_count_ablation


@pytest.mark.benchmark(group="ablation-pulses")
def test_ablation_pulse_count(benchmark, prepared_soc, atpg_options):
    results = benchmark.pedantic(
        pulse_count_ablation,
        args=(prepared_soc,),
        kwargs={"options": atpg_options, "pulse_counts": (2, 3, 4)},
        iterations=1,
        rounds=1,
    )
    print()
    print("Ablation: coverage versus maximum CPF pulse count (no inter-domain)")
    for pulses, result in sorted(results.items()):
        print(f"  {pulses} pulses: coverage={result.coverage.test_coverage:6.2f}%  "
              f"patterns={result.pattern_count:5d}")
    coverages = [results[p].coverage.test_coverage for p in (2, 3, 4)]
    # More pulses never hurt, and going beyond two pulses helps non-scan logic.
    assert coverages[1] >= coverages[0] - 0.5
    assert coverages[2] >= coverages[0] - 0.5
    assert max(coverages[1], coverages[2]) >= coverages[0]
