"""Ablation: dynamic pattern compaction on/off.

Pattern-count pressure is central to the paper's argument (transition pattern
sets are several times larger than stuck-at sets, and on-chip clocking roughly
doubles them again).  This ablation quantifies how much of that pressure the
generator's dynamic compaction absorbs by running the simple-CPF experiment
with merging enabled and disabled.
"""

from __future__ import annotations

import pytest

from repro.core import compaction_ablation


@pytest.mark.benchmark(group="ablation-compaction")
def test_ablation_dynamic_compaction(benchmark, prepared_soc, atpg_options):
    results = benchmark.pedantic(
        compaction_ablation,
        args=(prepared_soc,),
        kwargs={"options": atpg_options},
        iterations=1,
        rounds=1,
    )
    with_compaction = results["with_compaction"]
    without_compaction = results["without_compaction"]
    print()
    print("Ablation: dynamic compaction (simple-CPF transition test)")
    print(f"  with merging   : patterns={with_compaction.pattern_count:5d}  "
          f"coverage={with_compaction.coverage.test_coverage:6.2f}%")
    print(f"  without merging: patterns={without_compaction.pattern_count:5d}  "
          f"coverage={without_compaction.coverage.test_coverage:6.2f}%")
    # Compaction must not lose coverage and should not increase pattern count.
    assert with_compaction.pattern_count <= without_compaction.pattern_count * 1.05 + 2
    assert (
        with_compaction.coverage.test_coverage
        >= without_compaction.coverage.test_coverage - 2.0
    )
