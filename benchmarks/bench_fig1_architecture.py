"""Figure 1: the device with one clock pulse filter per clock domain.

The benchmark instruments the synthetic SOC with a CPF per functional clock
domain (simple and enhanced variants), checks the structural properties the
figure conveys — every functional flip-flop is clocked from a CPF output, the
CPFs are driven by the PLL clocks plus the slow tester signals — and reports
the area overhead.
"""

from __future__ import annotations

import pytest

from repro.core import instrument_soc
from repro.netlist import area_report, validate_netlist


@pytest.mark.benchmark(group="figure1")
def test_fig1_simple_cpf_instrumentation(benchmark, prepared_soc):
    top, inserted = benchmark.pedantic(
        # refresh=True bypasses the PreparedDesign memoisation so every round
        # times the actual CPF insertion, not a cache lookup.
        lambda: instrument_soc(prepared_soc, enhanced=False, refresh=True),
        iterations=1,
        rounds=3,
    )
    assert len(inserted) == len(prepared_soc.soc.functional_domains)
    cpf_clocks = {record.ports.clk_out for record in inserted}
    reclocked = sum(1 for f in top.flops.values() if f.clock in cpf_clocks)
    functional_flops = sum(
        1
        for f in prepared_soc.netlist.flops.values()
        if prepared_soc.domain_map.domain_of(f.name) in {"fast", "slow"}
    )
    assert reclocked >= functional_flops
    assert validate_netlist(top).ok

    base_area = area_report(prepared_soc.netlist).total
    instrumented_area = area_report(top).total
    overhead = instrumented_area - base_area
    print()
    print(f"Figure 1: {len(inserted)} CPF blocks inserted "
          f"({', '.join(r.domain for r in inserted)})")
    print(f"  core area            : {base_area:9.1f} NAND2-eq")
    print(f"  area with CPFs       : {instrumented_area:9.1f} NAND2-eq")
    print(f"  clock-control overhead: {overhead:8.1f} NAND2-eq "
          f"({100.0 * overhead / base_area:.2f}% of the core)")


@pytest.mark.benchmark(group="figure1")
def test_fig1_enhanced_cpf_instrumentation(benchmark, prepared_soc):
    top, inserted = benchmark.pedantic(
        lambda: instrument_soc(prepared_soc, enhanced=True, refresh=True),
        iterations=1,
        rounds=3,
    )
    assert all(record.enhanced for record in inserted)
    for record in inserted:
        for net in record.ports.config:
            assert net in top.inputs
    print()
    print("Figure 1 (enhanced): per-domain pulse-count/delay configuration pins:",
          sorted(net for record in inserted for net in record.ports.config))
