"""Scaling benchmark: wall time and peak RSS versus design size.

Answers the PR-10 scaling questions on the hierarchical SoC families:

* how do prepare / compile / fault-sim wall time and process RSS grow from
  10^3 to 10^5 gates, per engine backend;
* what does hierarchical compile save over the flat reference — kernel
  count versus instance count, cold cache versus warm (second family
  member finds its per-core kernels already compiled);
* do the hierarchical kernels stay bit-identical to the flat lowering on
  every backend (the admission bar for the whole subsystem).

Results land in ``BENCH_scale.json`` (override with
``REPRO_BENCH_SCALE_JSON``), uploaded by the CI ``scale-smoke`` job.

CI runs the 10^3 and 10^4 points only.  The 10^5 point
(``hier-soc-100k``) is a local/manual run — minutes of wall time and a
multi-GB RSS envelope are out of smoke-job budget::

    REPRO_BENCH_SCALE_DESIGNS=hier-soc-1k,hier-soc-10k,hier-soc-100k \\
        python benchmarks/bench_scale.py

Runs two ways::

    python -m pytest benchmarks/bench_scale.py -q     # pytest harness
    python benchmarks/bench_scale.py                  # plain script

Environment: ``REPRO_BENCH_SCALE_DESIGNS`` (comma list, default
``hier-soc-1k,hier-soc-10k``), ``REPRO_BENCH_SCALE_BACKENDS`` (default all
four), ``REPRO_BENCH_SCALE_FAULTS`` (fault sample per design, default 96),
``REPRO_BENCH_SCALE_PATTERNS`` (default 16).
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time
from pathlib import Path

# Script mode (python benchmarks/bench_scale.py) without an installed repro:
# put the in-tree sources on the path before the repro imports below.
if "repro" not in sys.modules:  # pragma: no cover - import plumbing
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.api import prepare_from_spec
from repro.engine.compile import compile_circuit
from repro.fault_sim import StuckAtFaultSimulator
from repro.faults import all_stuck_at_faults, collapse_faults
from repro.hier.compile import HierCompiledCircuit, shared_template_count
from repro.hier.designs import HIER_DESIGNS
from repro.logic import Logic
from repro.obs.profile import rss_kb
from repro.simulation import build_model

from _common import emit_bench

ALL_BACKENDS = ("serial", "compiled", "threads", "processes")


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def _env_list(name: str, default: str) -> list[str]:
    raw = os.environ.get(name, default)
    return [item.strip() for item in raw.split(",") if item.strip()]


def _spec(name: str):
    for spec in HIER_DESIGNS:
        if spec.name == name:
            return spec
    raise SystemExit(
        f"unknown scale design {name!r}; known: "
        + ", ".join(s.name for s in HIER_DESIGNS)
    )


def _sample(items, count: int, seed: int):
    items = list(items)
    if len(items) <= count:
        return items
    rng = random.Random(seed)
    picked = rng.sample(range(len(items)), count)
    return [items[i] for i in sorted(picked)]


def _flat_patterns(model, seed: int, count: int):
    """Node-index keyed random scan/PI assignments (engine-test idiom)."""
    rng = random.Random(seed)
    sources = model.pi_nodes + model.ppi_nodes
    patterns = []
    for _ in range(count):
        assignment = {}
        for idx in sources:
            roll = rng.random()
            assignment[idx] = (
                Logic.ONE if roll < 0.45 else Logic.ZERO if roll < 0.9 else Logic.X
            )
        patterns.append(assignment)
    return patterns


def _fresh_model(netlist):
    """A model with no memoized compile, so compile timings start cold."""
    model = build_model(netlist)
    model.__dict__.pop("_engine_compiled", None)
    return model


def _time_compile(model) -> float:
    started = time.perf_counter()
    compile_circuit(model)
    return time.perf_counter() - started


def bench_design(
    name: str, backends: list[str], num_faults: int, num_patterns: int
) -> tuple[dict[str, object], list[dict[str, object]]]:
    """One scale point: prepare, compile flat/hier (cold+warm), fault-sim."""
    spec = _spec(name)
    rows: list[dict[str, object]] = []

    started = time.perf_counter()
    prepared = prepare_from_spec(spec)
    prepare_seconds = time.perf_counter() - started
    stats = prepared.netlist.stats()
    base = {"design": name, "gates": stats.num_gates, "flops": stats.num_flops}
    rows.append(
        dict(base, phase="prepare", wall_seconds=round(prepare_seconds, 4),
             rss_kb=rss_kb())
    )

    # Flat reference compile versus hierarchical compile, cold then warm.
    # "Cold" purges the process-wide per-core template cache; "warm"
    # recompiles a fresh model of the same netlist, finding every kernel
    # already in it — the cross-family-member reuse path campaigns hit.
    from repro.hier import compile as hier_compile_mod

    flat_model = _fresh_model(prepared.netlist).without_hierarchy()
    flat_model.__dict__.pop("_engine_compiled", None)
    flat_seconds = _time_compile(flat_model)
    hier_compile_mod._TEMPLATE_CACHE.clear()
    hier_model = _fresh_model(prepared.netlist)
    hier_cold_seconds = _time_compile(hier_model)
    compiled = compile_circuit(hier_model)
    hier_stats = (
        compiled.hier_stats() if isinstance(compiled, HierCompiledCircuit) else {}
    )
    hier_warm_seconds = _time_compile(_fresh_model(prepared.netlist))
    rows.append(dict(base, phase="compile-flat",
                     wall_seconds=round(flat_seconds, 4), rss_kb=rss_kb()))
    rows.append(dict(base, phase="compile-hier-cold",
                     wall_seconds=round(hier_cold_seconds, 4), rss_kb=rss_kb(),
                     **hier_stats))
    rows.append(dict(base, phase="compile-hier-warm",
                     wall_seconds=round(hier_warm_seconds, 4), rss_kb=rss_kb(),
                     shared_templates=shared_template_count()))

    # Sampled stuck-at fault simulation per backend, hierarchical kernels,
    # with the flat compiled lowering as the bit-identity reference.
    model = build_model(prepared.netlist)
    flat_model = model.without_hierarchy()
    universe = collapse_faults(model, all_stuck_at_faults(model)).representatives
    faults = _sample(universe, num_faults, seed=spec.seed)
    patterns = _flat_patterns(model, seed=spec.seed, count=num_patterns)

    # Same batch size as the measured runs: batching interacts with
    # detected-fault dropping, so detection masks only compare at equal
    # batch boundaries.
    reference = StuckAtFaultSimulator(flat_model, batch_size=8, backend="compiled")
    expected = reference.simulate(patterns, faults).detections

    backend_results: dict[str, dict[str, object]] = {}
    for backend in backends:
        simulator = StuckAtFaultSimulator(
            model, batch_size=8, backend=backend, shard_count=3, max_workers=2
        )
        started = time.perf_counter()
        try:
            result = simulator.simulate(patterns, faults)
        finally:
            simulator.scheduler.close()
        seconds = time.perf_counter() - started
        identical = result.detections == expected
        backend_results[backend] = {
            "wall_seconds": round(seconds, 4),
            "bit_identical_to_flat": identical,
            "detected": sum(1 for hits in result.detections.values() if hits),
        }
        rows.append(dict(base, phase="fault-sim", backend=backend,
                         wall_seconds=round(seconds, 4), rss_kb=rss_kb(),
                         bit_identical_to_flat=identical))

    record: dict[str, object] = {
        "gates": stats.num_gates,
        "flops": stats.num_flops,
        "prepare_seconds": round(prepare_seconds, 4),
        "flat_compile_seconds": round(flat_seconds, 4),
        "hier_compile_cold_seconds": round(hier_cold_seconds, 4),
        "hier_compile_warm_seconds": round(hier_warm_seconds, 4),
        "hier_stats": hier_stats,
        "sampled_faults": len(faults),
        "patterns": num_patterns,
        "backends": backend_results,
        "rss_kb": rss_kb(),
    }
    return record, rows


def run_bench(
    designs: list[str],
    backends: list[str],
    num_faults: int,
    num_patterns: int,
    out_path: Path,
) -> dict[str, object]:
    """Benchmark every requested scale point and write ``BENCH_scale.json``."""
    payload: dict[str, object] = {
        "backends": list(backends),
        "designs": {},
    }
    all_rows: list[dict[str, object]] = []
    for name in designs:
        record, rows = bench_design(name, backends, num_faults, num_patterns)
        payload["designs"][name] = record  # type: ignore[index]
        all_rows.extend(rows)
        kernels = record["hier_stats"].get("unique_core_kernels", "-")  # type: ignore[union-attr]
        instances = record["hier_stats"].get("instances_bound", "-")  # type: ignore[union-attr]
        print(
            f"{name:<14} gates={record['gates']:>7} "
            f"prepare={record['prepare_seconds']:.2f}s "
            f"compile flat={record['flat_compile_seconds']:.2f}s "
            f"hier={record['hier_compile_cold_seconds']:.2f}s"
            f"/{record['hier_compile_warm_seconds']:.2f}s warm "
            f"kernels={kernels}/{instances} rss={record['rss_kb']}KiB"
        )
        for backend, res in record["backends"].items():  # type: ignore[union-attr]
            flag = "ok" if res["bit_identical_to_flat"] else "DIVERGED"
            print(f"    {backend:<10} sim={res['wall_seconds']:.2f}s {flag}")
    emit_bench("scale", rows=all_rows, meta=payload, out_path=out_path)
    return payload


def _default_out_path() -> Path:
    default = Path(__file__).resolve().parent.parent / "BENCH_scale.json"
    return Path(os.environ.get("REPRO_BENCH_SCALE_JSON", default))


# --------------------------------------------------------------------- pytest
def test_scale_bench_smoke():
    """Acceptance: every point compiles sublinearly in instances (kernels <
    instances), every backend stays bit-identical to the flat reference."""
    designs = _env_list("REPRO_BENCH_SCALE_DESIGNS", "hier-soc-1k,hier-soc-10k")
    payload = run_bench(
        designs,
        _env_list("REPRO_BENCH_SCALE_BACKENDS", ",".join(ALL_BACKENDS)),
        _env_int("REPRO_BENCH_SCALE_FAULTS", 96),
        _env_int("REPRO_BENCH_SCALE_PATTERNS", 16),
        _default_out_path(),
    )
    for name, record in payload["designs"].items():
        stats = record["hier_stats"]
        assert stats["unique_core_kernels"] < stats["instances_bound"], name
        for backend, res in record["backends"].items():
            assert res["bit_identical_to_flat"], f"{name}/{backend} diverged"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--designs",
        default=",".join(_env_list("REPRO_BENCH_SCALE_DESIGNS",
                                   "hier-soc-1k,hier-soc-10k")),
        help="comma-separated hier design names",
    )
    parser.add_argument(
        "--backends",
        default=",".join(_env_list("REPRO_BENCH_SCALE_BACKENDS",
                                   ",".join(ALL_BACKENDS))),
        help="comma-separated engine backends",
    )
    parser.add_argument(
        "--faults", type=int, default=_env_int("REPRO_BENCH_SCALE_FAULTS", 96),
        help="stuck-at fault sample size per design",
    )
    parser.add_argument(
        "--patterns", type=int,
        default=_env_int("REPRO_BENCH_SCALE_PATTERNS", 16),
        help="random patterns per design",
    )
    parser.add_argument(
        "--out", type=Path, default=_default_out_path(),
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    run_bench(
        [name.strip() for name in args.designs.split(",") if name.strip()],
        [b.strip() for b in args.backends.split(",") if b.strip()],
        args.faults,
        args.patterns,
        args.out,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - script entry
    raise SystemExit(main())
