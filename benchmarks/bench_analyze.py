"""Static-analysis benchmark: lint runtime and untestability-prune payoff.

Two questions, answered per registry design:

* how long does the full design lint (every rule category, constraint-aware
  under the table1-(a) setup) take, and what does it find;
* what does the untestability pre-pass (``AtpgOptions.prune_untestable``)
  cost and save — prover wall-clock, prune-set size, and the stuck-at ATPG
  wall-clock with and without pruning (same seed, same options, identical
  coverage accounting by construction).

Results land in ``BENCH_analyze.json`` (override with
``REPRO_BENCH_ANALYZE_JSON``), which the CI analyze-smoke job uploads as an
artifact.

Runs two ways::

    python -m pytest benchmarks/bench_analyze.py -q       # pytest harness
    python benchmarks/bench_analyze.py --designs tiny     # plain script

Hierarchical scale designs (``hier-soc-*``) are registered on demand and
default to lint+prover only — deterministic ATPG at 10^4+ gates is out of
smoke budget (force it with ``--full``)::

    python benchmarks/bench_analyze.py --designs hier-soc-10k

Environment: ``REPRO_BENCH_DESIGNS`` (comma list, default ``tiny``),
``REPRO_BENCH_BATCHES`` (default 2), ``REPRO_BENCH_PPB`` (default 16).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

# Script mode (python benchmarks/bench_analyze.py) without an installed repro:
# put the in-tree sources on the path before the repro imports below.
if "repro" not in sys.modules:  # pragma: no cover - import plumbing
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.analyze import lint_design, prove_untestable, rule_catalogue
from repro.api import get_scenario, prepare_from_spec
from repro.atpg.config import AtpgOptions
from repro.atpg.stuck_at import StuckAtAtpg

from _common import emit_bench


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def _env_designs(default: str = "tiny,hier-soc-10k") -> list[str]:
    raw = os.environ.get("REPRO_BENCH_DESIGNS", default)
    return [name.strip() for name in raw.split(",") if name.strip()]


def _atpg_seconds(prepared, setup) -> tuple[float, dict[str, object]]:
    started = time.perf_counter()
    result = StuckAtAtpg(prepared.model, prepared.domain_map, setup).run()
    seconds = time.perf_counter() - started
    return seconds, {
        "patterns": result.pattern_count,
        "test_coverage": round(result.test_coverage, 4),
        "fault_coverage": round(result.fault_coverage, 4),
        "proven_untestable": result.stats.proven_untestable,
    }


def _resolve_bench_design(name: str):
    """Registry lookup, registering the hier scale designs on demand."""
    if name.startswith("hier-"):
        from repro.hier.designs import register_hier_designs

        register_hier_designs()
    return name


def bench_design(
    name: str, batches: int, ppb: int, *, lint_only: bool = False
) -> dict[str, object]:
    """Lint one registry design and time ATPG with/without the prune pass.

    ``lint_only`` keeps the record to the lint and prover phases — the mode
    the 10^4-gate hier designs run in, where deterministic ATPG would
    dominate the smoke budget without measuring anything new.
    """
    prepared = prepare_from_spec(_resolve_bench_design(name))
    base = AtpgOptions(
        random_pattern_batches=batches, patterns_per_batch=ppb,
        backtrack_limit=16,
    )
    setup = get_scenario("table1-a").build_setup(prepared, base)

    started = time.perf_counter()
    lint = lint_design(prepared, setup)
    lint_seconds = time.perf_counter() - started

    prover = prove_untestable(prepared.model, setup=setup)

    if lint_only:
        return {
            "lint_seconds": round(lint_seconds, 4),
            "lint_counts": lint.counts(),
            "lint_rules_run": len(lint.rules_run),
            "prover_seconds": round(prover.seconds, 4),
            "prover_total_faults": prover.total_faults,
            "prover_untestable": prover.num_untestable,
            "prover_by_reason": prover.by_reason(),
            "lint_only": True,
        }

    plain_seconds, plain = _atpg_seconds(prepared, setup)
    pruned_setup = get_scenario("table1-a").build_setup(
        prepared,
        AtpgOptions(
            random_pattern_batches=batches, patterns_per_batch=ppb,
            backtrack_limit=16, prune_untestable=True,
        ),
    )
    pruned_seconds, pruned = _atpg_seconds(prepared, pruned_setup)

    return {
        "lint_seconds": round(lint_seconds, 4),
        "lint_counts": lint.counts(),
        "lint_rules_run": len(lint.rules_run),
        "prover_seconds": round(prover.seconds, 4),
        "prover_total_faults": prover.total_faults,
        "prover_untestable": prover.num_untestable,
        "prover_by_reason": prover.by_reason(),
        "atpg_seconds": round(plain_seconds, 4),
        "atpg": plain,
        "atpg_pruned_seconds": round(pruned_seconds, 4),
        "atpg_pruned": pruned,
    }


def run_bench(
    designs: list[str], batches: int, ppb: int, out_path: Path,
    *, full: bool = False,
) -> dict[str, object]:
    """Benchmark every requested design and write ``BENCH_analyze.json``.

    ``hier-soc-*`` designs default to the lint+prover phases only; ``full``
    forces the ATPG phases everywhere.
    """
    payload: dict[str, object] = {
        "num_rules": len(rule_catalogue()),
        "designs": {},
    }
    for name in designs:
        lint_only = name.startswith("hier-") and not full
        record = bench_design(name, batches, ppb, lint_only=lint_only)
        payload["designs"][name] = record  # type: ignore[index]
        line = (
            f"{name:<18} lint={record['lint_seconds']:.3f}s "
            f"({record['lint_rules_run']} rules)  "
            f"prover={record['prover_seconds']:.3f}s "
            f"pruned={record['prover_untestable']}/{record['prover_total_faults']}"
        )
        if not lint_only:
            line += (
                f"  atpg={record['atpg_seconds']:.3f}s -> "
                f"{record['atpg_pruned_seconds']:.3f}s with prune"
            )
        print(line)
    rows = [
        {"design": name, "phase": phase, "wall_seconds": record[key]}
        for name, record in payload["designs"].items()  # type: ignore[union-attr]
        for phase, key in (
            ("lint", "lint_seconds"),
            ("prover", "prover_seconds"),
            ("atpg", "atpg_seconds"),
            ("atpg_pruned", "atpg_pruned_seconds"),
        )
        if key in record
    ]
    emit_bench("analyze", rows=rows, meta=payload, out_path=out_path)
    return payload


def _default_out_path() -> Path:
    default = Path(__file__).resolve().parent.parent / "BENCH_analyze.json"
    return Path(os.environ.get("REPRO_BENCH_ANALYZE_JSON", default))


# --------------------------------------------------------------------- pytest
def test_analyze_bench_smoke():
    """Acceptance: lint runs everywhere; pruning never changes detections'
    backend-independent accounting and prunes faults on some design."""
    designs = _env_designs()
    payload = run_bench(
        designs,
        _env_int("REPRO_BENCH_BATCHES", 2),
        _env_int("REPRO_BENCH_PPB", 16),
        _default_out_path(),
    )
    records = payload["designs"]
    assert set(records) == set(designs)
    assert any(r["prover_untestable"] > 0 for r in records.values())
    for record in records.values():
        assert record["lint_counts"]["error"] == 0
        if record.get("lint_only"):
            continue
        # The generator proves over collapsed representatives, the standalone
        # prover over the full universe: a subset, never more.
        assert record["atpg_pruned"]["proven_untestable"] <= record["prover_untestable"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--designs", default=",".join(_env_designs()),
        help="comma-separated registry design names",
    )
    parser.add_argument(
        "--batches", type=int, default=_env_int("REPRO_BENCH_BATCHES", 2),
        help="random pattern batches per ATPG run",
    )
    parser.add_argument(
        "--ppb", type=int, default=_env_int("REPRO_BENCH_PPB", 16),
        help="patterns per random batch",
    )
    parser.add_argument(
        "--out", type=Path, default=_default_out_path(),
        help="output JSON path",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="run the ATPG phases on hier-soc-* designs too (slow)",
    )
    args = parser.parse_args(argv)
    designs = [name.strip() for name in args.designs.split(",") if name.strip()]
    run_bench(designs, args.batches, args.ppb, args.out, full=args.full)
    return 0


if __name__ == "__main__":  # pragma: no cover - script entry
    raise SystemExit(main())
