"""Engine benchmark: serial vs compiled vs processes fault simulation.

Measures the dominant cost of the paper's Table 1 experiments — parallel
pattern single-fault-propagation fault simulation — on each of the (a)-(e)
SoC workloads, once per engine backend:

* ``serial``    — the interpreted pre-engine reference path;
* ``compiled``  — the in-process compiled kernels of :mod:`repro.engine`;
* ``processes`` — compiled kernels over fault shards on a process pool.

Every backend simulates the *same* seeded random pattern batch against the
*same* collapsed fault list (with fault dropping between rounds) and, by the
engine's equivalence guarantee, produces identical detections — so the
wall-clock numbers are directly comparable.  Results land in
``BENCH_engine.json`` (override with ``REPRO_BENCH_ENGINE_JSON``), which the
CI bench-smoke job uploads as an artifact.

Runs two ways::

    python -m pytest benchmarks/bench_engine.py -q        # pytest harness
    python benchmarks/bench_engine.py --size 1            # plain script

Environment: ``REPRO_SOC_SIZE`` (default 2), ``REPRO_BENCH_PATTERNS``
(default 128), ``REPRO_BENCH_WORKERS`` (default: engine auto).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

# Script mode (python benchmarks/bench_engine.py) without an installed repro:
# put the in-tree sources on the path before the repro imports below.
if "repro" not in sys.modules:  # pragma: no cover - import plumbing
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.api.scenarios import TABLE1_KEYS, table1_scenario
from repro.atpg.config import AtpgOptions
from repro.atpg.random_fill import derive_rng, random_pattern_batch
from repro.core.flow import PreparedDesign, prepare_design
from repro.engine import ENGINE_VERSION, default_worker_count
from repro.fault_sim.transition import TransitionFaultSimulator
from repro.faults.collapse import collapse_faults
from repro.faults.models import all_stuck_at_faults, all_transition_faults

from _common import emit_bench

#: Backends the benchmark compares (threads is GIL-bound for this workload
#: and adds nothing over compiled; it is covered by the equivalence tests).
BENCH_BACKENDS = ("serial", "compiled", "processes")


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def bench_workload(
    prepared: PreparedDesign,
    key: str,
    num_patterns: int,
    workers: int | None,
    seed: int = 2005,
) -> dict[str, object]:
    """Time one Table 1 workload's fault simulation on every backend."""
    spec = table1_scenario(key)
    setup = spec.build_setup(prepared, AtpgOptions(random_seed=seed))
    model = prepared.model
    if spec.fault_model == "stuck-at":
        universe = all_stuck_at_faults(model)
    else:
        universe = all_transition_faults(model)
    faults = collapse_faults(model, universe).representatives

    scan_flops = [e.name for e in model.state_elements if e.flop.is_scan]
    constraints = setup.effective_pin_constraints()
    free_inputs = [
        model.nodes[i].net for i in model.pi_nodes
        if model.nodes[i].net not in constraints
    ]
    patterns = random_pattern_batch(
        setup.procedures,
        scan_flops,
        free_inputs,
        num_patterns,
        derive_rng(seed, stream=f"bench-{key}"),
        hold_pis=setup.hold_pis,
        observe_pos=setup.observe_pos,
    )

    record: dict[str, object] = {
        "description": spec.description,
        "fault_model": spec.fault_model,
        "faults": len(faults),
        "patterns": num_patterns,
    }
    detected: dict[str, int] = {}
    for backend in BENCH_BACKENDS:
        simulator = TransitionFaultSimulator(
            model,
            prepared.domain_map,
            setup,
            backend=backend,
            max_workers=workers,
        )
        try:
            # Warm-up: spin up the worker pool and ship the model once, so
            # the timed section measures steady-state simulation throughput
            # (pool start-up amortizes over a session, not over one batch).
            # The spill threshold is zeroed for the warm-up only — a 1-fault
            # round would otherwise run in-process and never touch the pool.
            scheduler = simulator.scheduler
            saved_threshold = scheduler.spill_threshold
            scheduler.spill_threshold = 0
            if spec.fault_model == "stuck-at":
                simulator.simulate_stuck_at(patterns[:1], faults[:1])
            else:
                simulator.simulate(patterns[:1], faults[:1])
            scheduler.spill_threshold = saved_threshold
            started = time.perf_counter()
            if spec.fault_model == "stuck-at":
                detections = simulator.simulate_stuck_at(patterns, faults)
            else:
                detections = simulator.simulate(patterns, faults).detections
            record[f"{backend}_seconds"] = round(time.perf_counter() - started, 4)
            detected[backend] = sum(1 for hits in detections.values() if hits)
        finally:
            simulator.close()
    if len(set(detected.values())) != 1:
        raise AssertionError(f"workload {key}: backends disagree: {detected}")
    record["detected"] = detected["serial"]
    serial = float(record["serial_seconds"])  # type: ignore[arg-type]
    for backend in ("compiled", "processes"):
        seconds = float(record[f"{backend}_seconds"])  # type: ignore[arg-type]
        record[f"speedup_{backend}_vs_serial"] = round(serial / seconds, 3) if seconds else 0.0
    return record


def run_bench(
    size: int, num_patterns: int, workers: int | None, out_path: Path
) -> dict[str, object]:
    """Run all Table 1 workloads and write ``BENCH_engine.json``."""
    prepared = prepare_design(size=size, seed=2005, num_chains=6)
    payload: dict[str, object] = {
        "engine_version": ENGINE_VERSION,
        "soc_size": size,
        "workers": workers or default_worker_count(),
        "cpu_count": os.cpu_count(),
        "workloads": {},
    }
    for key in TABLE1_KEYS:
        record = bench_workload(prepared, key, num_patterns, workers)
        payload["workloads"][key] = record  # type: ignore[index]
        print(
            f"({key}) {record['fault_model']:<10} faults={record['faults']:5d}  "
            f"serial={record['serial_seconds']:.3f}s  "
            f"compiled={record['compiled_seconds']:.3f}s  "
            f"processes={record['processes_seconds']:.3f}s  "
            f"(processes speedup x{record['speedup_processes_vs_serial']})"
        )
    rows = [
        {
            "workload": key,
            "backend": backend,
            "wall_seconds": record[f"{backend}_seconds"],
            "fault_model": record["fault_model"],
            "faults": record["faults"],
            "patterns": record["patterns"],
            "detected": record["detected"],
        }
        for key, record in payload["workloads"].items()  # type: ignore[union-attr]
        for backend in BENCH_BACKENDS
    ]
    emit_bench("engine", rows=rows, meta=payload, out_path=out_path)
    return payload


def _default_out_path() -> Path:
    default = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    return Path(os.environ.get("REPRO_BENCH_ENGINE_JSON", default))


# --------------------------------------------------------------------- pytest
def test_engine_backends_beat_serial_on_table1_workloads():
    """Acceptance: the processes backend beats the seed serial wall-clock."""
    size = _env_int("REPRO_SOC_SIZE", 2)
    num_patterns = _env_int("REPRO_BENCH_PATTERNS", 128)
    workers = _env_int("REPRO_BENCH_WORKERS", 0) or None
    payload = run_bench(size, num_patterns, workers, _default_out_path())
    workloads = payload["workloads"]
    assert set(workloads) == set(TABLE1_KEYS)
    slower = [
        key
        for key, record in workloads.items()
        if record["processes_seconds"] >= record["serial_seconds"]
    ]
    # The process pool pays a fixed start-up cost per workload; the compiled
    # kernels must win it back on every row.
    assert not slower, f"processes backend lost to serial on: {slower}"
    assert all(
        record["compiled_seconds"] < record["serial_seconds"]
        for record in workloads.values()
    ), "compiled kernels should always beat the interpreted path"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=_env_int("REPRO_SOC_SIZE", 2),
                        help="SOC size factor (default: env REPRO_SOC_SIZE or 2)")
    parser.add_argument("--patterns", type=int,
                        default=_env_int("REPRO_BENCH_PATTERNS", 128),
                        help="random patterns per workload (default 128)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (default: engine auto)")
    parser.add_argument("--out", type=Path, default=_default_out_path(),
                        help="output JSON path (default BENCH_engine.json)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when the processes backend loses "
                             "to serial on any workload (off by default: "
                             "shared CI runners make wall-clock gates flaky)")
    args = parser.parse_args(argv)
    payload = run_bench(args.size, args.patterns, args.workers, args.out)
    slower = [
        key
        for key, record in payload["workloads"].items()  # type: ignore[union-attr]
        if record["processes_seconds"] >= record["serial_seconds"]
    ]
    if slower:
        print(f"WARNING: processes backend lost to serial on: {slower}", file=sys.stderr)
        return 1 if args.strict else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
