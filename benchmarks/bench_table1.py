"""Table 1 reproduction: coverage and pattern count for experiments (a)–(e).

Each benchmark runs one ATPG experiment on the synthetic SOC and prints its
Table 1 row; the final check evaluates the paper's qualitative claims on the
full set of measured rows (who wins, in which direction, by roughly what
factor).  Absolute numbers differ from the paper because the device is a
synthetic surrogate — see EXPERIMENTS.md for the recorded comparison.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import format_comparison, format_table1
from repro.core.results import compare_with_paper

from _common import emit_bench


@pytest.fixture(scope="session", autouse=True)
def _emit_bench_json(experiment_cache):
    """Write ``BENCH_table1.json`` (per-experiment wall time + coverage).

    The machine-readable counterpart of the printed Table 1: one record per
    executed experiment, straight from the session's structured outcomes, so
    future PRs have a performance trajectory to compare against.  The target
    path can be overridden with ``REPRO_BENCH_JSON``.
    """
    yield
    outcomes = experiment_cache.outcomes
    if not outcomes:
        return
    default = Path(__file__).resolve().parent.parent / "BENCH_table1.json"
    path = Path(os.environ.get("REPRO_BENCH_JSON", default))
    options = experiment_cache.session.options
    rows = [
        {
            "experiment": key,
            "description": outcome.description,
            "test_coverage_percent": round(outcome.test_coverage, 2),
            "fault_coverage_percent": round(outcome.fault_coverage, 2),
            "pattern_count": outcome.pattern_count,
            "wall_seconds": round(outcome.cpu_seconds, 3),
            "stage_seconds": {
                stage: round(seconds, 3)
                for stage, seconds in outcome.stage_seconds.items()
            },
        }
        for key, outcome in sorted(outcomes.items())
    ]
    meta = {
        "soc_size": experiment_cache.soc_size,
        "backtrack_limit": options.backtrack_limit,
        "random_batches": options.random_pattern_batches,
    }
    emit_bench("table1", rows=rows, meta=meta, out_path=path)


def _run_row(benchmark, experiment_cache, key):
    result = benchmark.pedantic(
        experiment_cache.run, args=(key,), iterations=1, rounds=1
    )
    print()
    print(experiment_cache.row(key))
    return result


@pytest.mark.benchmark(group="table1")
def test_table1_row_a_stuck_at_external_clock(benchmark, experiment_cache):
    result = _run_row(benchmark, experiment_cache, "a")
    assert result.coverage.detected > 0
    assert result.pattern_count > 0


@pytest.mark.benchmark(group="table1")
def test_table1_row_b_transition_external_clock(benchmark, experiment_cache):
    result = _run_row(benchmark, experiment_cache, "b")
    assert result.coverage.detected > 0


@pytest.mark.benchmark(group="table1")
def test_table1_row_c_simple_cpf(benchmark, experiment_cache):
    result = _run_row(benchmark, experiment_cache, "c")
    assert result.coverage.detected > 0


@pytest.mark.benchmark(group="table1")
def test_table1_row_d_enhanced_cpf(benchmark, experiment_cache):
    result = _run_row(benchmark, experiment_cache, "d")
    assert result.coverage.detected > 0


@pytest.mark.benchmark(group="table1")
def test_table1_row_e_constrained_external_clock(benchmark, experiment_cache):
    result = _run_row(benchmark, experiment_cache, "e")
    assert result.coverage.detected > 0


@pytest.mark.benchmark(group="table1")
def test_table1_shape_matches_paper(benchmark, experiment_cache):
    """The qualitative relations of Section 5.2 hold on the measured rows."""
    results = benchmark.pedantic(
        lambda: {key: experiment_cache.run(key) for key in "abcde"},
        iterations=1,
        rounds=1,
    )
    print()
    print(format_table1(results))
    print()
    print(format_comparison(results))

    a, b, c, d, e = (results[k] for k in "abcde")
    # Stuck-at coverage is the highest; transition reference comes close.
    assert a.coverage.test_coverage >= b.coverage.test_coverage - 1.0
    # The simple 2-pulse CPF costs coverage versus the reference.
    assert c.coverage.test_coverage < b.coverage.test_coverage
    # The enhanced CPF recovers part of it.
    assert d.coverage.test_coverage >= c.coverage.test_coverage
    # The constrained external clock bounds the CPF configurations from above
    # (within abort noise) and stays below the unconstrained reference.
    assert e.coverage.test_coverage < b.coverage.test_coverage
    assert e.coverage.test_coverage >= d.coverage.test_coverage - 2.0
    # Transition pattern counts exceed the stuck-at count.
    assert b.pattern_count > a.pattern_count
    # A more flexible scheme needs fewer patterns than the enhanced CPF.
    assert e.pattern_count <= d.pattern_count
    # Most of the published claims must reproduce on this run.  The default
    # (size=1) SOC reproduces every coverage ordering but understates the
    # pattern-count factors; the size=2 run recorded in EXPERIMENTS.md
    # (REPRO_SOC_SIZE=2) reproduces 6-7 of 7.
    checks = compare_with_paper(results)
    assert sum(1 for check in checks if check.holds) >= 5
