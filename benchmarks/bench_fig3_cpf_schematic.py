"""Figure 3: the CPF schematic — structure and (negligible) area.

The paper states the whole CPF is about ten standard cells per clock domain
and that its clock-tree delay is absorbed during clock-tree balancing.  The
benchmark builds the block, counts its cells, reports its NAND2-equivalent
area against the synthetic SOC, and writes the structural Verilog so the
schematic can be inspected.
"""

from __future__ import annotations

import pytest

from repro.clocking import build_cpf, build_enhanced_cpf
from repro.netlist import area_report, write_verilog


@pytest.mark.benchmark(group="figure3")
def test_fig3_cpf_gate_count_and_area(benchmark, prepared_soc):
    block = benchmark(build_cpf)
    report = area_report(block.netlist)
    soc_area = area_report(prepared_soc.netlist).total
    stats = block.netlist.stats()

    print()
    print("Figure 3: clock pulse filter implementation")
    print(f"  combinational gates : {stats.num_gates}")
    print(f"  flip-flops          : {stats.num_flops} "
          f"(trigger + {block.shift_register_length}-bit shift register)")
    print(f"  latches (CGC)       : {stats.num_latches}")
    print(f"  total cells         : {block.gate_count}")
    print(f"  area                : {report.total:.1f} NAND2-eq "
          f"({100.0 * report.total / soc_area:.2f}% of the synthetic SOC)")
    print()
    print(write_verilog(block.netlist))

    assert block.gate_count <= 20
    assert stats.num_flops == 6  # trigger + 5-stage shift register
    assert stats.num_latches == 1
    assert report.total / soc_area < 0.10


@pytest.mark.benchmark(group="figure3")
def test_fig3_enhanced_cpf_overhead(benchmark):
    simple = build_cpf()
    enhanced = benchmark(build_enhanced_cpf)
    print()
    print(f"Enhanced CPF cells: {enhanced.gate_count} "
          f"(simple CPF: {simple.gate_count})")
    assert enhanced.gate_count > simple.gate_count
    assert enhanced.gate_count <= 35
