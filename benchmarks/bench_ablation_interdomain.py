"""Ablation: value of inter-domain launch/capture procedures.

The paper's conclusions highlight at-speed testing of logic between
synchronous clock domains as one of the enhanced CPF's contributions ("these
tests ... improve the coverage at least to some extent").  This ablation runs
the enhanced-CPF configuration with and without the inter-domain procedures.
"""

from __future__ import annotations

import pytest

from repro.core import inter_domain_ablation


@pytest.mark.benchmark(group="ablation-interdomain")
def test_ablation_inter_domain(benchmark, prepared_soc, atpg_options):
    results = benchmark.pedantic(
        inter_domain_ablation,
        args=(prepared_soc,),
        kwargs={"options": atpg_options},
        iterations=1,
        rounds=1,
    )
    without = results["without_inter_domain"]
    with_inter = results["with_inter_domain"]
    print()
    print("Ablation: inter-domain launch/capture")
    print(f"  without inter-domain: coverage={without.coverage.test_coverage:6.2f}%  "
          f"patterns={without.pattern_count}")
    print(f"  with inter-domain   : coverage={with_inter.coverage.test_coverage:6.2f}%  "
          f"patterns={with_inter.pattern_count}")
    gain = with_inter.coverage.test_coverage - without.coverage.test_coverage
    print(f"  coverage gained     : {gain:+.2f}%")
    assert gain >= -0.5  # never loses coverage (allowing abort noise)
