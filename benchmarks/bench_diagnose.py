"""Diagnosis benchmark: volume fault diagnosis throughput per engine backend.

Models the production loop the :mod:`repro.diagnose` subsystem exists for:
one pattern set, a stream of failing devices (one injected defect each), and
a diagnosis per device — candidate extraction by cone intersection, then
per-candidate fault simulation scored by syndrome match.  The candidate
simulation — the dominant cost — runs once per backend:

* ``serial``    — the interpreted reference kernels;
* ``compiled``  — in-process compiled kernels;
* ``processes`` — compiled kernels sharded over a process pool (shared by
  all devices, as a volume-diagnosis service would run it).

All backends produce bit-identical rankings (held to that by
``tests/test_diagnose_backends.py``); only the wall clock differs.  Results
land in ``BENCH_diagnose.json`` (override with ``REPRO_BENCH_DIAGNOSE_JSON``),
which the CI diagnose-smoke job uploads as an artifact.

Runs two ways::

    python -m pytest benchmarks/bench_diagnose.py -q     # pytest harness
    python benchmarks/bench_diagnose.py --size 1         # plain script

Environment: ``REPRO_SOC_SIZE`` (default 2), ``REPRO_BENCH_DEFECTS``
(default 16), ``REPRO_BENCH_WORKERS`` (default: engine auto).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

# Script mode (python benchmarks/bench_diagnose.py) without an installed
# repro: put the in-tree sources on the path before the repro imports below.
if "repro" not in sys.modules:  # pragma: no cover - import plumbing
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.api import TestSession
from repro.api.scenarios import table1_scenario
from repro.atpg.config import AtpgOptions
from repro.diagnose import (
    DefectSpec,
    capture_fail_log,
    extract_candidates,
    score_candidates,
)
from repro.engine import ENGINE_VERSION, FaultSimScheduler, default_worker_count
from repro.faults.fault_list import FaultStatus

from _common import emit_bench

#: Backends the benchmark compares (threads is GIL-bound for this workload
#: and adds nothing over compiled; it is covered by the equivalence tests).
BENCH_BACKENDS = ("serial", "compiled", "processes")

#: ATPG effort for the shared pattern set: enough to expose plenty of
#: defects without dominating the benchmark's wall time.
ATPG_OPTIONS = AtpgOptions(
    random_pattern_batches=2, patterns_per_batch=48, backtrack_limit=16
)


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def build_workload(size: int, scenario_key: str, num_defects: int):
    """One executed scenario plus ``num_defects`` injected devices."""
    session = TestSession.for_soc(size=size).with_options(ATPG_OPTIONS)
    spec = table1_scenario(scenario_key)
    session.run_scenario(spec)
    run = session.artifacts[spec.name]
    setup = spec.build_setup(session.prepared, ATPG_OPTIONS)
    prepared = session.prepared
    model = prepared.model
    detected = session.result_of(spec.name).fault_list.with_status(FaultStatus.DETECTED)
    step = max(1, len(detected) // num_defects)
    defects = [
        DefectSpec.from_fault(model, fault) for fault in detected[::step][:num_defects]
    ]
    devices = []
    for defect in defects:
        log = capture_fail_log(
            model, prepared.domain_map, prepared.scan, setup, run.patterns, defect
        )
        devices.append((defect, log, extract_candidates(model, log)))
    return prepared, setup, run.patterns, devices


def bench_backends(prepared, setup, patterns, devices, workers):
    """Time the candidate simulation of every device on each backend."""
    model = prepared.model
    total_candidates = sum(c.candidate_count for _, _, c in devices)
    record: dict[str, object] = {
        "devices": len(devices),
        "patterns": len(patterns),
        "candidates_total": total_candidates,
        "candidates_mean": round(total_candidates / max(1, len(devices)), 1),
    }
    rankings = {}
    for backend in BENCH_BACKENDS:
        scheduler = FaultSimScheduler(model, backend=backend, max_workers=workers)
        try:
            if backend == "processes":
                # Warm-up: spin the pool up and ship the model once so the
                # timed section measures steady-state volume-diagnosis
                # throughput (the pool amortizes over a production shift,
                # not over one device).
                saved = scheduler.spill_threshold
                scheduler.spill_threshold = 0
                _, log, candidate_set = devices[0]
                score_candidates(
                    model, prepared.domain_map, setup, list(patterns)[:1],
                    candidate_set, log, scheduler=scheduler,
                )
                scheduler.spill_threshold = saved
            started = time.perf_counter()
            outcome = []
            for defect, log, candidate_set in devices:
                rows = score_candidates(
                    model, prepared.domain_map, setup, patterns,
                    candidate_set, log, scheduler=scheduler,
                )
                rank = next(
                    (row.rank for row in rows if row.matches(defect)), None
                )
                outcome.append((rank, [row.to_dict() for row in rows[:3]]))
            record[f"{backend}_seconds"] = round(time.perf_counter() - started, 4)
            rankings[backend] = outcome
        finally:
            scheduler.close()
    if any(ranking != rankings["serial"] for ranking in rankings.values()):
        raise AssertionError("backends disagree on diagnosis rankings")
    record["rank_1_recoveries"] = sum(
        1 for rank, _ in rankings["serial"] if rank == 1
    )
    serial = float(record["serial_seconds"])  # type: ignore[arg-type]
    for backend in ("compiled", "processes"):
        seconds = float(record[f"{backend}_seconds"])  # type: ignore[arg-type]
        record[f"speedup_{backend}_vs_serial"] = (
            round(serial / seconds, 3) if seconds else 0.0
        )
    return record


def run_bench(
    size: int, num_defects: int, workers: int | None, out_path: Path,
    scenario_key: str = "c",
) -> dict[str, object]:
    """Run the volume-diagnosis benchmark and write ``BENCH_diagnose.json``."""
    prepared, setup, patterns, devices = build_workload(
        size, scenario_key, num_defects
    )
    record = bench_backends(prepared, setup, patterns, devices, workers)
    payload: dict[str, object] = {
        "engine_version": ENGINE_VERSION,
        "soc_size": size,
        "scenario": scenario_key,
        "workers": workers or default_worker_count(),
        "cpu_count": os.cpu_count(),
        "diagnosis": record,
    }
    print(
        f"devices={record['devices']}  candidates={record['candidates_total']}  "
        f"serial={record['serial_seconds']:.3f}s  "
        f"compiled={record['compiled_seconds']:.3f}s  "
        f"processes={record['processes_seconds']:.3f}s  "
        f"(processes speedup x{record['speedup_processes_vs_serial']})  "
        f"rank-1 {record['rank_1_recoveries']}/{record['devices']}"
    )
    rows = [
        {
            "backend": backend,
            "wall_seconds": record[f"{backend}_seconds"],
            "devices": record["devices"],
            "candidates_total": record["candidates_total"],
            "rank_1_recoveries": record["rank_1_recoveries"],
        }
        for backend in BENCH_BACKENDS
    ]
    emit_bench("diagnose", rows=rows, meta=payload, out_path=out_path)
    return payload


def _default_out_path() -> Path:
    default = Path(__file__).resolve().parent.parent / "BENCH_diagnose.json"
    return Path(os.environ.get("REPRO_BENCH_DIAGNOSE_JSON", default))


# --------------------------------------------------------------------- pytest
def test_processes_backend_beats_serial_on_candidate_simulation():
    """Acceptance: sharded candidate simulation beats the interpreted path."""
    size = _env_int("REPRO_SOC_SIZE", 2)
    num_defects = _env_int("REPRO_BENCH_DEFECTS", 16)
    workers = _env_int("REPRO_BENCH_WORKERS", 0) or None
    payload = run_bench(size, num_defects, workers, _default_out_path())
    record = payload["diagnosis"]
    assert record["processes_seconds"] < record["serial_seconds"], (
        "processes backend lost to serial on candidate simulation"
    )
    assert record["compiled_seconds"] < record["serial_seconds"]
    assert record["rank_1_recoveries"] == record["devices"], (
        "every injected defect must be recovered at rank 1"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=_env_int("REPRO_SOC_SIZE", 2),
                        help="SOC size factor (default: env REPRO_SOC_SIZE or 2)")
    parser.add_argument("--defects", type=int,
                        default=_env_int("REPRO_BENCH_DEFECTS", 16),
                        help="failing devices to diagnose (default 16)")
    parser.add_argument("--scenario", default="c",
                        help="Table 1 scenario providing the pattern set "
                             "(default c)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (default: engine auto)")
    parser.add_argument("--out", type=Path, default=_default_out_path(),
                        help="output JSON path (default BENCH_diagnose.json)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when the processes backend loses "
                             "to serial (off by default: shared CI runners "
                             "make wall-clock gates flaky)")
    args = parser.parse_args(argv)
    payload = run_bench(
        args.size, args.defects, args.workers, args.out, scenario_key=args.scenario
    )
    record = payload["diagnosis"]
    lost = record["processes_seconds"] >= record["serial_seconds"]
    if lost:
        print("WARNING: processes backend lost to serial on this run")
    return 1 if (lost and args.strict) else 0


if __name__ == "__main__":
    raise SystemExit(main())
