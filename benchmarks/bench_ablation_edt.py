"""Ablation: EDT compression versus tester vector memory.

The paper leans on EDT ("the observed pattern count can be loaded into the
ATE vector memory without truncation [only] using this technique").  This
benchmark takes the transition pattern set of the simple-CPF experiment,
encodes it through the EDT decompressor for several external channel counts,
and reports compression ratio, encode success and vector-memory footprint.
"""

from __future__ import annotations

import pytest

from repro.core import edt_ablation


@pytest.mark.benchmark(group="ablation-edt")
def test_ablation_edt_compression(benchmark, prepared_soc, atpg_options, experiment_cache):
    result_c = experiment_cache.run("c")
    rows = benchmark.pedantic(
        edt_ablation,
        args=(prepared_soc, result_c.patterns),
        kwargs={"channel_counts": (1, 2, 4)},
        iterations=1,
        rounds=1,
    )
    print()
    print("Ablation: EDT compression of the simple-CPF transition pattern set")
    uncompressed = rows[0]["uncompressed_megabits"]
    print(f"  uncompressed vector memory: {uncompressed * 1000:.1f} kbit")
    for row in rows:
        print(
            f"  channels={row['channels']}: ratio={row['compression_ratio']:.1f}x  "
            f"encoded={row['encoded_patterns']}/{row['encoded_patterns'] + row['encoding_conflicts']}  "
            f"memory={row['vector_memory_megabits'] * 1000:.1f} kbit"
        )
    # Compression shrinks the footprint and most patterns remain encodable.
    for row in rows:
        assert row["vector_memory_megabits"] <= uncompressed + 1e-9
        total = row["encoded_patterns"] + row["encoding_conflicts"]
        if total and row["channels"] >= 2:
            assert row["encoded_patterns"] >= 0.5 * total
    ratios = [row["compression_ratio"] for row in rows]
    assert ratios == sorted(ratios, reverse=True)
