#!/usr/bin/env python3
"""Full SOC delay-test flow: the paper's Table 1 experiments end to end.

The script builds a :class:`repro.api.TestSession` on the synthetic
two-domain micro-controller SOC and runs the five registered Table 1
scenarios (``table1-a`` .. ``table1-e``) from Section 5.1 of the paper.  It
then prints the measured Table 1, the comparison against the paper's
qualitative claims, and the classification of the faults the simple-CPF
configuration leaves untested (the analysis the paper's conclusions call
for).

Run with ``python examples/soc_delay_test.py [size] [--serial]`` — size
defaults to 1 so the script finishes in a couple of minutes; size 2 matches
EXPERIMENTS.md.  ``--serial`` disables the parallel scenario fan-out.
"""

import sys

from repro.api import TestSession, scenarios
from repro.atpg import AtpgOptions
from repro.core import format_comparison
from repro.faults import ClassifierContext, FaultClassifier
from repro.logic import Logic


def main() -> None:
    args = sys.argv[1:]
    parallel = "--serial" not in args
    positional = [arg for arg in args if arg != "--serial"]
    size = int(positional[0]) if positional else 1
    print(f"Building the synthetic SOC (size={size}) and inserting scan ...")
    options = AtpgOptions(random_pattern_batches=4, patterns_per_batch=64, backtrack_limit=30)
    session = (
        TestSession.for_soc(size=size, seed=2005)
        .with_chains(6)
        .with_options(options)
        .add_scenarios(*scenarios.table1())
    )
    prepared = session.prepared
    stats = prepared.netlist.stats()
    print(f"  gates={stats.num_gates}  flip-flops={stats.num_flops} "
          f"(non-scan={stats.num_nonscan_flops})  RAMs={stats.num_rams}")
    print(f"  scan chains={prepared.scan.num_chains}, "
          f"longest={prepared.scan.max_chain_length} cells")
    print(f"  clock domains: {prepared.domain_map.summary()}")

    mode = "parallel" if parallel else "serial"
    print(f"\nRunning experiments (a)-(e) ({mode}); transition runs take a while ...")
    report = session.run(backend="threads" if parallel else "serial")

    print()
    print(report.table())
    print()
    results = {key: session.result_of(f"table1-{key}") for key in "abcde"}
    print(format_comparison(results))

    # Why does the simple two-pulse CPF lose coverage?  Classify its leftovers.
    context = ClassifierContext(
        netlist=prepared.netlist,
        model=prepared.model,
        domain_map=prepared.domain_map,
        at_speed_domains=frozenset({"fast", "slow"}),
        inter_domain_allowed=False,
        observe_pos=False,
        scan_enable_net=prepared.scan_enable_net,
        scan_enable_constrained=True,
        constrained_pins={prepared.soc.reset_net: Logic.ZERO},
        ram_sequential=False,
        max_pulses=2,
    )
    histogram = FaultClassifier(context).classify_list(results["c"].fault_list)
    print("\nWhy the simple 2-pulse CPF (experiment c) leaves faults untested:")
    for group, count in sorted(histogram.items(), key=lambda kv: -kv[1]):
        print(f"  {group:<28} {count:5d} fault classes")


if __name__ == "__main__":
    main()
