#!/usr/bin/env python3
"""Trace a campaign end to end and open the result in Perfetto.

Runs a small design×scenario campaign (plus one closed-loop diagnosis
sweep) with telemetry enabled, then writes ``trace.json`` in the Chrome /
Perfetto trace-event format — drag it into https://ui.perfetto.dev (or
``chrome://tracing``) and every plan, wave, job, pipeline stage, ATPG
phase, and fault-simulation shard shows up as one span on its recording
thread's track.  The same run prints the text renderers (per-span-name
aggregate table, indented flame view) and the metric counters that land in
``CampaignReport.campaign["telemetry"]``.

Run with ``python examples/trace_campaign.py``.
"""

from repro.api import Campaign
from repro.atpg import AtpgOptions
from repro.diagnose import DefectSpec
from repro.obs import Telemetry, format_flame, format_table


def main() -> None:
    options = AtpgOptions(
        random_pattern_batches=2, patterns_per_batch=24, backtrack_limit=12,
        random_seed=2005,
    )
    telemetry = Telemetry.on()

    campaign = Campaign(
        designs=["tiny"], scenarios=["a", "c"], options=options
    ).with_telemetry(telemetry)
    report = campaign.run()
    for cell in report:
        print(
            f"{cell.design:<8} {cell.scenario:<10} "
            f"TC={cell.outcome.test_coverage:6.2f}%  {cell.wall_seconds:5.2f}s"
        )

    # One closed-loop diagnosis per cell: inject a defect, capture the ATE
    # fail log, rank candidates — the scoring spans join the same trace.
    diagnosis = campaign.diagnose(
        defects=[DefectSpec(kind="stuck-at", net="scan_en", value=1)],
    )
    print(diagnosis.summary())

    trace = telemetry.trace()
    path = trace.write_chrome("trace.json")
    print(f"\nwrote {path} — open it at https://ui.perfetto.dev")

    print("\nPer-span-name aggregate:")
    print(format_table(trace))
    print("\nFlame view:")
    print(format_flame(trace))

    counters = telemetry.snapshot()["metrics"]["counters"]
    print("\nMetric counters:")
    for name, value in counters.items():
        print(f"  {name:<36} {value}")


if __name__ == "__main__":
    main()
