#!/usr/bin/env python3
"""Quickstart: the ``repro.api`` session / scenario-registry front door.

The library's top layer is declarative: *scenarios* (named test-generation
configurations) run through a :class:`repro.api.TestSession`, which owns
design preparation and executes each scenario through the
``setup -> atpg -> compaction -> compression -> export`` stage pipeline.

This walks through the three core moves:

1. run registered built-in scenarios (here two of the paper's Table 1 set)
   on the synthetic SOC with a fluent session;
2. register a *custom* scenario — a stuck-at test under simple-CPF-style
   tester constraints with EDT compression, a combination the legacy
   hard-coded experiment flow could not express;
3. read the structured :class:`repro.api.RunReport` (JSON-round-trippable)
   and an exported ATE pattern file.

Run with ``python examples/quickstart.py``.
"""

from repro.api import ScenarioSpec, TestSession, register_scenario, scenario_names
from repro.atpg import AtpgOptions
from repro.clocking import simple_cpf_procedures


def main() -> None:
    print("Registered scenarios:", ", ".join(scenario_names()))

    # 1. ---------------------------------------------------- built-in scenarios
    options = AtpgOptions(random_pattern_batches=4, patterns_per_batch=64, backtrack_limit=40)
    session = (
        TestSession.for_soc(size=1, seed=2005)
        .with_chains(6)
        .with_options(options)
        .add_scenarios("table1-a", "table1-c")
    )
    print(f"Design: {session.prepared.netlist}")
    print(f"Scan: {session.prepared.scan.num_chains} chains, "
          f"longest {session.prepared.scan.max_chain_length} cells")

    # 2. ------------------------------------------------------ custom scenario
    custom = register_scenario(
        ScenarioSpec(
            name="quickstart-stuck-at-cpf-edt",
            description="Stuck-at test under CPF tester constraints, EDT x2",
            procedures=lambda prepared: simple_cpf_procedures(
                prepared.functional_domain_names
            ),
            fault_model="stuck-at",
            observe_pos=False,
            hold_pis=True,
            constrain_scan_enable=True,
            edt_channels=2,
            export_patterns=True,
        ),
        replace_existing=True,
    )
    session.add_scenario(custom)

    # 3. ------------------------------------------------------- run and report
    report = session.run(backend="threads")
    print()
    print(report.table(title="Quickstart results"))
    print()
    print(report.summary())

    edt = report[custom.name].extras["edt"]
    print(f"\nEDT({edt['channels']} channels): ratio {edt['compression_ratio']}x, "
          f"{edt['encoded_patterns']} encoded, {edt['encoding_conflicts']} conflicts")

    stil = session.exported_patterns(custom.name)
    print("\nFirst lines of the exported ATE pattern file:")
    print("\n".join(stil.splitlines()[:12]))


if __name__ == "__main__":
    main()
