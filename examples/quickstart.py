#!/usr/bin/env python3
"""Quickstart: build a small design, insert scan, run stuck-at and transition ATPG.

This walks through the library's basic objects on a tiny hand-built circuit:

1. describe a netlist with :class:`repro.netlist.NetlistBuilder`;
2. insert mux-D scan cells and stitch a chain;
3. run stuck-at ATPG and broadside transition ATPG under an external clock;
4. look at coverage, pattern counts and an exported ATE pattern file.

Run with ``python examples/quickstart.py``.
"""

from repro.atpg import AtpgOptions, TestSetup, run_stuck_at_atpg, run_transition_atpg
from repro.clocking import (
    ClockDomain,
    ClockDomainMap,
    OccController,
    external_clock_procedures,
    stuck_at_procedures,
)
from repro.dft import insert_scan
from repro.netlist import NetlistBuilder
from repro.patterns import export_stil
from repro.simulation import build_model


def build_design():
    """A 4-bit accumulator with a comparator flag — a few dozen gates."""
    builder = NetlistBuilder("accumulator")
    clk = builder.clock("clk")
    load = builder.input("load")
    data = builder.inputs("data", 4)
    state = [f"acc_{i}_q" for i in range(4)]
    total, carry = builder.ripple_adder(state, data)
    for i in range(4):
        next_value = builder.mux(load, total[i], data[i])
        builder.flop(next_value, clk, q=state[i], name=f"acc_{i}")
    builder.flop(carry, clk, q="ovf_q", name="ovf")
    equal = builder.equality_comparator(state, data)
    builder.output_from(equal, "match")
    builder.output_from("ovf_q", "overflow")
    return builder.build()


def main() -> None:
    netlist = build_design()
    print(f"Design: {netlist}")

    # Scan insertion: every flip-flop becomes a mux-D scan cell on one chain.
    netlist, scan = insert_scan(netlist, num_chains=1, scan_enable_net="scan_en")
    print(f"Scan: {scan.num_chains} chain(s), longest chain {scan.max_chain_length} cells")

    model = build_model(netlist)
    domain_map = ClockDomainMap.from_netlist(netlist, [ClockDomain("clk", "clk", 100.0)])
    options = AtpgOptions(random_pattern_batches=4, patterns_per_batch=64, backtrack_limit=40)

    # ---------------------------------------------------------- stuck-at ATPG
    stuck_setup = TestSetup(
        name="stuck-at",
        procedures=stuck_at_procedures(["clk"], max_pulses=2),
        observe_pos=True,
        hold_pis=False,
        scan_enable_net=scan.scan_enable,
        constrain_scan_enable=False,
        options=options,
    )
    stuck = run_stuck_at_atpg(model, domain_map, stuck_setup)
    print("\nStuck-at ATPG")
    print(f"  test coverage : {stuck.coverage.test_coverage:6.2f}%")
    print(f"  patterns      : {stuck.pattern_count}")

    # -------------------------------------------------------- transition ATPG
    transition_setup = TestSetup(
        name="transition (broadside)",
        procedures=external_clock_procedures(["clk"], max_pulses=3),
        observe_pos=True,
        hold_pis=True,
        scan_enable_net=scan.scan_enable,
        constrain_scan_enable=True,
        options=options,
    )
    transition = run_transition_atpg(model, domain_map, transition_setup)
    print("\nTransition ATPG (launch-off-capture)")
    print(f"  test coverage : {transition.coverage.test_coverage:6.2f}%")
    print(f"  patterns      : {transition.pattern_count}")
    ratio = transition.pattern_count / max(1, stuck.pattern_count)
    print(f"  pattern-count ratio vs stuck-at: {ratio:.1f}x")

    # ------------------------------------------------------------- ATE export
    stil = export_stil(transition.patterns, scan, OccController(), design_name="accumulator")
    print("\nFirst lines of the exported ATE pattern file:")
    print("\n".join(stil.splitlines()[:12]))


if __name__ == "__main__":
    main()
