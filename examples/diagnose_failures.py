#!/usr/bin/env python3
"""Closed-loop fault diagnosis on the paper's SoC surrogate.

Where the paper's flow ends — patterns saved for the ATE — production
begins: failing devices come back from the tester as *fail logs* that must
be traced to candidate defects.  This example closes that loop on
``table1-soc``:

1. generate the simple-CPF transition pattern set (Table 1 scenario (c));
2. inject a known delay defect into the compiled circuit model (the
   netlist itself is never touched);
3. run the injected device against the pattern set and capture an
   ATE-style fail log (per pattern / chain / unload cycle);
4. extract cone-intersection candidates and rank them by syndrome match,
   fanned out over the engine's process backend — and recover the injected
   defect at rank 1.

Run with ``python examples/diagnose_failures.py``.
"""

from repro.api import TestSession
from repro.api.scenarios import table1_scenario
from repro.atpg import AtpgOptions
from repro.diagnose import DefectSpec, capture_fail_log
from repro.faults.fault_list import FaultStatus


def main() -> None:
    options = AtpgOptions(
        random_pattern_batches=2, patterns_per_batch=48, backtrack_limit=16,
        random_seed=2005,
    )
    session = TestSession.for_design("table1-soc", options=options)

    print("Generating the scenario (c) transition pattern set ...")
    outcome = session.run_scenario("table1-c")
    print(f"  {outcome.pattern_count} patterns, "
          f"TC={outcome.test_coverage:.2f}%")

    # A defect the pattern set provably exposes: take a fault the final
    # fault simulation marked detected and lift it into a DefectSpec.
    result = session.result_of("table1-c")
    model = session.prepared.model
    detected = result.fault_list.with_status(FaultStatus.DETECTED)
    defect = DefectSpec.from_fault(model, detected[len(detected) // 2])
    print(f"\nInjected defect: {defect.describe()}")

    # Tester side: the injected device miscompares on some patterns.
    prepared = session.prepared
    setup = table1_scenario("c").build_setup(prepared, options)
    log = capture_fail_log(
        model, prepared.domain_map, prepared.scan, setup,
        session.artifacts["table1-c"].patterns, defect,
    )
    print(f"Fail log: {log.num_fails} failing bits on "
          f"{len(log.failing_patterns())} patterns")
    print("\n".join(log.to_text().splitlines()[:8]))
    print("  ...")

    # Diagnosis side: rank every cone-intersection candidate by how well its
    # simulated syndrome matches the log (process-backend fan-out).
    diagnosis = session.diagnose(defect, scenario="c", backend="processes")
    print(f"\n{diagnosis.summary()}")
    assert diagnosis.rank_of_defect == 1, "expected rank-1 recovery"
    print("\nThe injected defect was recovered at rank 1.")


if __name__ == "__main__":
    main()
