#!/usr/bin/env python3
"""EDT compression: keeping inflated delay-test pattern sets on a small tester.

The paper notes that transition pattern counts are several times the stuck-at
count and that only scan compression (EDT, reference [15]) lets them fit the
tester's vector memory.  This example generates a transition pattern set for
the synthetic SOC, pushes its scan care bits through the linear EDT
decompressor for several external channel counts, and compares vector-memory
footprints with and without compression.

Run with ``python examples/edt_compression.py``.
"""

from repro.api import TestSession
from repro.atpg import AtpgOptions
from repro.dft import EdtArchitecture
from repro.patterns import vector_memory_report


def main() -> None:
    options = AtpgOptions(random_pattern_batches=3, patterns_per_batch=48, backtrack_limit=25)
    session = TestSession.for_soc(size=1, seed=2005, num_chains=6).with_options(options)
    print("Generating transition patterns for the simple-CPF configuration ...")
    session.run_scenario("table1-c")
    result = session.result_of("table1-c")
    prepared = session.prepared
    patterns = result.patterns
    print(f"  {len(patterns)} patterns, coverage {result.coverage.test_coverage:.2f}%")

    scan = prepared.scan
    occ = prepared.occ
    uncompressed = vector_memory_report(patterns, scan, occ)
    print(f"\nScan structure: {scan.num_chains} chains x {scan.max_chain_length} cells")
    print(f"Uncompressed tester footprint: {uncompressed.total_bits:,} bits "
          f"({uncompressed.scan_channels} channels)")

    print("\nEDT compression sweep:")
    print(f"{'channels':>9} {'ratio':>7} {'encoded':>9} {'conflicts':>10} {'memory bits':>12}")
    for channels in (1, 2, 3):
        edt = EdtArchitecture(scan, num_input_channels=channels)
        stats = edt.statistics(patterns)
        compressed = vector_memory_report(patterns, scan, occ, external_channels=channels)
        print(f"{channels:>9} {stats.compression_ratio:>6.1f}x "
              f"{stats.encoded_patterns:>9} {stats.encoding_conflicts:>10} "
              f"{compressed.total_bits:>12,}")

    print("\nPer-pattern deterministic care bits (why linear encoding works):")
    total_cells = max(1, sum(chain.length for chain in scan.chains))
    cube_sizes = [len(p.cube_scan_load or {}) for p in patterns]
    if cube_sizes:
        mean_cube = sum(cube_sizes) / len(cube_sizes)
        print(f"  mean cube size: {mean_cube:.1f} of {total_cells} scan cells "
              f"({100.0 * mean_cube / total_cells:.1f}%)")


if __name__ == "__main__":
    main()
