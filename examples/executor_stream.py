#!/usr/bin/env python3
"""Live progress events over a campaign on the unified execution plane.

``Campaign.plan()`` compiles the design×scenario grid into a declarative
:class:`~repro.runtime.Plan` (inspect it — it is plain JSON); a
:class:`~repro.runtime.Executor` then runs the plan while streaming
``job_started`` / ``job_finished`` / ``job_skipped`` / ``plan_progress``
events to a callback.  The second pass attaches a persistent result cache
and re-executes the same plan: every job is skipped with reason ``cache``,
which is exactly how an interrupted campaign resumes.

Run with ``python examples/executor_stream.py``.
"""

import tempfile

from repro.api import Campaign
from repro.atpg import AtpgOptions
from repro.engine import ResultCache
from repro.runtime import Event, Executor


def ticker(event: Event) -> None:
    """Render the executor's event stream as a live progress log."""
    if event.kind == "plan_progress":
        print(f"    progress: {event.completed}/{event.total}")
    elif event.kind in ("job_started", "job_finished", "job_skipped"):
        print(f"  {event.describe()}")


def main() -> None:
    options = AtpgOptions(
        random_pattern_batches=2, patterns_per_batch=32, backtrack_limit=15,
        random_seed=2005,
    )
    campaign = Campaign(
        designs=["tiny", "wide-edt"], scenarios=["a", "c"], options=options
    )

    plan = campaign.plan()
    print(f"Compiled plan {plan.name!r}: {len(plan)} jobs, "
          f"fingerprint {plan.fingerprint[:12]}")
    print(plan.to_json()[:400] + " ...\n")

    with tempfile.TemporaryDirectory(prefix="repro-executor-demo-") as tmp:
        cache = ResultCache(tmp)
        campaign.with_cache(cache)

        print("Cold pass (threads backend, streaming events):")
        report = campaign.run(
            executor=Executor(backend="threads"), on_event=ticker
        )
        print(f"\ncold cells: {len(report)}, cache hits: {report.cache_hits()}")

        print("\nWarm pass (same cache — every job skips, instant resume):")
        resumed = Campaign(
            designs=["tiny", "wide-edt"], scenarios=["a", "c"], options=options
        ).with_cache(cache).run(on_event=ticker)
        print(f"\nwarm cells: {len(resumed)}, cache hits: {resumed.cache_hits()}")
        print(f"identical results: {resumed.same_results(report)}")

    print("\nPer-design tables:")
    for design in report.designs():
        print(report.table(design, title=f"Campaign results: {design}"))


if __name__ == "__main__":
    main()
