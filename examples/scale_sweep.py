#!/usr/bin/env python3
"""Scaling sweep: hierarchical SoCs from 10³ to 10⁵ gates.

Builds the ``hier-soc-*`` design families, compiles each both flat and
through the hierarchical kernel compiler, and times good-machine fault
simulation per execution backend.  The point of the exercise:

* **compile** — the hierarchical compiler builds one kernel per *unique
  core*, not per instance, so compile time stays near-flat while the
  design grows 100×;
* **simulate** — all backends produce bit-identical detections at every
  size (the full suite for that claim is ``tests/test_hier_identity.py``);
* **memory** — attach a :class:`~repro.patterns.store.PatternStore` to a
  session or campaign (``with_pattern_store``) and pattern sets spill to
  disk instead of scaling resident memory with design size.

Run with ``python examples/scale_sweep.py``.  The 10⁵-gate member takes
a few seconds to build; pass ``--small`` to sweep only 10³/10⁴ (the same
subset the CI ``scale-smoke`` job exercises through
``benchmarks/bench_scale.py``).
"""

import argparse
import random
import time

from repro.api.design import prepare_from_spec
from repro.engine.compile import compile_circuit
from repro.fault_sim import StuckAtFaultSimulator
from repro.faults import all_stuck_at_faults, collapse_faults
from repro.hier.designs import register_hier_designs
from repro.logic import Logic

BACKENDS = ("serial", "compiled", "threads")


def _patterns(model, count=8, seed=11):
    rng = random.Random(seed)
    sources = model.pi_nodes + model.ppi_nodes
    return [
        {idx: (Logic.ONE if rng.random() < 0.5 else Logic.ZERO) for idx in sources}
        for _ in range(count)
    ]


def sweep(spec) -> None:
    started = time.perf_counter()
    prepared = prepare_from_spec(spec)
    prepare_s = time.perf_counter() - started
    model = prepared.model
    gates = len(prepared.netlist.gates)

    flat = model.without_hierarchy()
    started = time.perf_counter()
    compile_circuit(flat)
    flat_s = time.perf_counter() - started
    started = time.perf_counter()
    compiled = compile_circuit(model)
    hier_s = time.perf_counter() - started
    stats = compiled.hier_stats()

    print(
        f"{spec.name:<14} gates={gates:>7} prepare={prepare_s:5.2f}s "
        f"compile flat={flat_s:5.2f}s hier={hier_s:5.2f}s "
        f"kernels={stats['unique_core_kernels']}/{stats['instances_bound']} instances"
    )

    universe = collapse_faults(model, all_stuck_at_faults(model)).representatives
    rng = random.Random(3)
    faults = [universe[i] for i in sorted(rng.sample(range(len(universe)), 64))]
    patterns = _patterns(model)
    reference = None
    for backend in BACKENDS:
        simulator = StuckAtFaultSimulator(model, batch_size=8, backend=backend)
        started = time.perf_counter()
        detections = simulator.simulate(patterns, faults).detections
        elapsed = time.perf_counter() - started
        if reference is None:
            reference = detections
        verdict = "ok" if detections == reference else "DIVERGED"
        print(f"    {backend:<9} sim={elapsed:5.2f}s {verdict}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small", action="store_true",
        help="sweep only the 10^3/10^4 members (the CI smoke subset)",
    )
    args = parser.parse_args()
    specs = register_hier_designs()
    if args.small:
        specs = specs[:2]
    print(f"Sweeping {len(specs)} hierarchical design families:\n")
    for spec in specs:
        sweep(spec)
    print(
        "\nFull wall-time/RSS curves (all four backends, cold vs warm "
        "kernel cache): python benchmarks/bench_scale.py"
    )


if __name__ == "__main__":
    main()
