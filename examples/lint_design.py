#!/usr/bin/env python3
"""Static analysis walkthrough: the ``repro.analyze`` rule registry.

Four moves, no simulation anywhere:

1. lint a registry design through :meth:`repro.api.TestSession.lint` and
   read the :class:`repro.analyze.LintReport` (table + JSON forms);
2. plant a DFT defect (a chain cell rewired off its declared predecessor)
   and watch the matching rule catch it, then waive a finding;
3. run the untestability prover and hand its prune set to ATPG via
   ``AtpgOptions(prune_untestable=True)`` — provably-dead faults leave the
   target set with bit-identical coverage accounting on every backend;
4. gate a :class:`repro.api.Campaign` on lint so broken designs fail fast.

Run with ``python examples/lint_design.py``.
"""

import sys
from pathlib import Path

if "repro" not in sys.modules:  # script mode without an installed repro
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.analyze import (
    Waiver,
    lint_design,
    prove_untestable,
    rule_catalogue,
    run_rules,
)
from repro.analyze.rules import AnalysisContext
from repro.api import Campaign, TestSession
from repro.atpg import AtpgOptions
from repro.circuits import pipeline
from repro.dft import insert_scan
from repro.netlist import FlipFlop


def main() -> None:
    # 1. ------------------------------------------------ lint a clean design
    print(f"{len(rule_catalogue())} registered rules\n")
    session = TestSession.for_design("tiny").add_scenario("table1-a")
    report = session.lint()
    print(report.format_table())

    # 2. ------------------------------------- seed a defect, catch it, waive
    netlist = pipeline(width=2, stages=2, seed=5)
    netlist, scan = insert_scan(netlist, num_chains=1)
    chain = scan.chains[0]
    victim = netlist.flops[chain.cells[2]]
    netlist.replace_flop(victim.name, FlipFlop(
        name=victim.name, d=victim.d, q=victim.q, clock=victim.clock,
        scan_in=chain.scan_in,  # wrong: skips the declared predecessor
        scan_enable=victim.scan_enable,
    ))
    broken = run_rules(
        AnalysisContext(netlist=netlist, scan=scan), categories=("scan",),
        target="seeded-break",
    )
    print("\nSeeded shift-path break:")
    for finding in broken.errors:
        print(f"  {finding}")
    waived = run_rules(
        AnalysisContext(netlist=netlist, scan=scan), categories=("scan",),
        waivers=[Waiver(rule="broken-shift-path", subject=f"{chain.name}:*",
                        reason="known rework, tracked offline")],
        target="seeded-break",
    )
    print(f"with waiver: ok={waived.ok}, waived={len(waived.waived)}")

    # 3. --------------------------------------- prover feeds the ATPG prune
    prepared = session.prepared
    setup = session.queued_scenarios[0].build_setup(prepared, AtpgOptions())
    proofs = prove_untestable(prepared.model, setup=setup)
    print(
        f"\nProver: {proofs.num_untestable} of {proofs.total_faults} "
        f"stuck-at faults provably untestable {proofs.by_reason()}"
    )
    options = AtpgOptions(
        prune_untestable=True,
        random_pattern_batches=2, patterns_per_batch=16, backtrack_limit=16,
    )
    pruned = TestSession.for_design("tiny", options=options).add_scenario("table1-a")
    pruned.run()
    result = pruned.artifacts["table1-a"].result
    print(
        f"ATPG with pruning: {result.stats.proven_untestable} faults skipped, "
        f"test coverage {result.test_coverage:.2f}% over "
        f"{result.pattern_count} patterns"
    )

    # 4. ----------------------------------------------- campaign lint gate
    campaign = Campaign(["tiny"], ["table1-a"], options).with_lint()
    campaign.run()
    gate = campaign.lint_reports["tiny"]
    print(f"\nCampaign pre-flight: {gate.counts()} -> ok={gate.ok}")

    # The standalone entry point works on any prepared design too.
    print(f"standalone lint ok: {lint_design(prepared, setup).ok}")


if __name__ == "__main__":
    main()
