#!/usr/bin/env python3
"""Design×scenario campaign sweep over the registered design families.

The paper's Table 1 evaluates one fixed SoC; the design registry plus the
campaign API turn that into a grid: every registered design variant (wide
EDT, many clock domains, inter-domain-heavy cross logic) runs the same
scenario set, so the at-speed-coverage story can be compared *across*
devices the way the Table compares clocking schemes across rows.

Run with ``python examples/campaign_sweep.py``.  Cells stream as they
complete; attach a persistent cache (``with_cache(True)``) and an
interrupted sweep resumes from the completed cells on the next run.
"""

from repro.api import Campaign, design_names, get_design
from repro.atpg import AtpgOptions
from repro.runtime import Executor


def main() -> None:
    designs = ["tiny", "wide-edt", "many-domain", "interdomain-heavy"]
    scenarios = ["a", "c", "d"]

    print("Registered designs:")
    for name in design_names():
        spec = get_design(name)
        print(f"  {name:<20} {spec.description}")

    options = AtpgOptions(
        random_pattern_batches=2, patterns_per_batch=32, backtrack_limit=15,
        random_seed=2005,
    )
    campaign = Campaign(designs=designs, scenarios=scenarios, options=options)
    print(f"\nRunning {len(designs)}x{len(scenarios)} grid on the process backend ...")
    report = campaign.run(
        executor=Executor(backend="processes"),
        on_cell=lambda cell: print(
            f"  [{cell.design} / {cell.scenario}] "
            f"TC={cell.outcome.test_coverage:.2f}% "
            f"patterns={cell.outcome.pattern_count} "
            f"({cell.wall_seconds:.2f}s)"
        ),
    )

    for design in designs:
        print(f"\n=== {design}: {get_design(design).description} ===")
        print(report.table(design, title=f"Campaign results: {design}"))

    print("\nPer-cell summary (completion order):")
    print(report.summary())


if __name__ == "__main__":
    main()
