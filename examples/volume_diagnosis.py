#!/usr/bin/env python3
"""Volume diagnosis with loopy belief propagation on the paper's SoC.

One pattern set, many failing devices: a tester floor returns fail logs in
bulk, and most interesting escapes carry *more than one* defect.  This
example runs that volume flow end to end on ``table1-soc``:

1. generate the scenario (a) stuck-at pattern set once;
2. build a fail-log store of 50 devices, each injected with a *pair* of
   defects on distinct nets (the netlist itself is never touched);
3. diagnose the whole store as one campaign plan — every log becomes a
   candidate x failing-bit factor graph and damped max-product BP selects
   the multi-defect candidate set with calibrated confidences;
4. take the most ambiguous verdict and run one adaptive diagnostic-ATPG
   round: generate distinguishing patterns for BP's ambiguous pairs,
   re-capture, re-diagnose.

Run with ``python examples/volume_diagnosis.py``.
"""

import itertools
import tempfile
from pathlib import Path

from repro.api import Campaign, TestSession
from repro.api.scenarios import table1_scenario
from repro.atpg import AtpgOptions
from repro.diagnose import DefectSpec, DiagnosisSpec, capture_fail_log
from repro.faults.fault_list import FaultStatus
from repro.volume import FailLogStore, adaptive_diagnose, run_bp_diagnosis

DESIGN = "table1-soc"
NUM_LOGS = 50


def visible_defect_pool(session, spec, run, setup, count, *,
                        distinct_nets=True):
    """Defects the scenario's patterns provably expose.

    Distinct nets keep the volume study about multi-defect *recovery*: two
    pins of one gate can union into a syndrome a single gate-output
    candidate explains whole, which is a masking story, not a recovery
    one.  The adaptive demo flips the flag — resolvable ambiguity lives
    between related-but-distinct hypotheses on the *same* net.
    """
    model = session.prepared.model
    detected = session.result_of(spec.name).fault_list.with_status(
        FaultStatus.DETECTED
    )
    if not distinct_nets:
        # Start mid-list for variety: the head of the fault list is
        # dominated by io pins whose hypotheses collapse into equivalence
        # classes no pattern can split.
        start = len(detected) // 2
        detected = detected[start:] + detected[:start]
    pool = []
    for fault in detected:
        defect = DefectSpec.from_fault(model, fault)
        if distinct_nets:
            if any(defect.net == seen.net for seen in pool):
                continue
        elif any(defect == seen for seen in pool):
            continue
        probe = capture_fail_log(
            model, session.prepared.domain_map, session.prepared.scan,
            setup, run.patterns, defect,
        )
        if probe.num_fails:
            pool.append(defect)
        if len(pool) >= count:
            break
    return pool


def main() -> None:
    options = AtpgOptions(
        random_pattern_batches=2, patterns_per_batch=48, backtrack_limit=16,
        random_seed=2005,
    )
    session = TestSession.for_design(DESIGN, options=options)

    print("Generating the scenario (a) stuck-at pattern set ...")
    outcome = session.run_scenario("table1-a")
    print(f"  {outcome.pattern_count} patterns, "
          f"TC={outcome.test_coverage:.2f}%")

    spec = table1_scenario("a")
    run = session.artifacts[spec.name]
    setup = spec.build_setup(session.prepared, options)
    prepared = session.prepared

    # Tester side: 50 devices, each carrying two defects on distinct nets.
    pool = visible_defect_pool(session, spec, run, setup, count=12)
    pairs = list(itertools.combinations(pool, 2))[:NUM_LOGS]
    print(f"\nCapturing {len(pairs)} two-defect fail logs "
          f"from a pool of {len(pool)} visible defects ...")
    with tempfile.TemporaryDirectory(prefix="volume_example_") as scratch:
        store = FailLogStore(Path(scratch) / "failures.sqlite")
        for index, (first, second) in enumerate(pairs):
            log = capture_fail_log(
                prepared.model, prepared.domain_map, prepared.scan, setup,
                run.patterns, [first, second], design_name=DESIGN,
            )
            store.add(f"die-{index:04d}", log, scenario=spec.name)

        # Diagnosis side: the whole store as one campaign plan.  Each log's
        # verdict is a BP-selected candidate *set* with calibrated
        # confidences, streamed as it lands.
        campaign = Campaign(designs=[DESIGN], scenarios=["a"], options=options)
        report = campaign.diagnose_volume(store)
        print(f"\n{report.summary()}")
        # Distinct nets avoid the easy masking cases, but a big design can
        # still hide one defect behind another on a handful of pairs — a
        # real tester-floor effect, so the bar is "almost all", not "all".
        recovered = report.recovered_count()
        assert recovered >= len(report) - 2, (
            f"only {recovered}/{len(report)} two-defect sets recovered"
        )

        # Zoom into one verdict: the full confidence-ranked top set.
        name = report.cells[0].log
        record = store.get(name)
        result = run_bp_diagnosis(
            prepared, setup, run.patterns,
            DiagnosisSpec(scenario=spec.name, backend="compiled"),
            fail_log=record.log, options=options,
        )
        print(f"\nTop candidate set for {name} "
              f"(* marks the selected cover):")
        for row in result.top(6):
            print(f"  {row.describe()}")

        # Adaptive diagnostic ATPG: where BP's ambiguity is *resolvable*
        # (related-but-distinct hypotheses, not fault-collapsing
        # equivalences), one round of distinguishing patterns separates
        # the pair.  Same-net defect pairs are where that lives.
        print("\nAdaptive diagnostic ATPG on an ambiguous device ...")
        close = visible_defect_pool(
            session, spec, run, setup, count=8, distinct_nets=False,
        )
        for first, second in itertools.combinations(close, 2):
            log = capture_fail_log(
                prepared.model, prepared.domain_map, prepared.scan, setup,
                run.patterns, [first, second], design_name=DESIGN,
            )
            adapted = adaptive_diagnose(
                prepared, setup, run.patterns,
                DiagnosisSpec(scenario=spec.name, backend="compiled"),
                fail_log=log, options=options, max_rounds=1,
            )
            assert adapted.final_ambiguous <= adapted.initial_ambiguous
            if adapted.improved:
                print(f"  device: {first.describe()} + {second.describe()}")
                print(f"  {adapted.summary()}")
                break
        else:
            raise AssertionError("no adaptive-resolvable pair found")

    print(f"\n{recovered}/{len(report)} two-defect sets recovered; BP "
          "confidences separate the cover from the also-rans.")


if __name__ == "__main__":
    main()
