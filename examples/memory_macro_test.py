#!/usr/bin/env python3
"""Memory macro test through the scan logic, clocked by the CPF.

Section 4 of the paper mentions that the CPF clocking "can also be extended to
provide clocking when applying memory tests through the scan logic ... without
adding any memory test logic" (macro test).  This example demonstrates the
idea on the synthetic SOC's embedded RAM:

1. a march-like sequence of writes and reads is expressed as scan loads (the
   RAM's address/data/write-enable registers are scan cells);
2. every step is applied with the cycle-accurate sequential simulator — scan
   load, one functional clock burst on the slow (RAM) domain, unload;
3. the read data captured back into the scan cells is compared against the
   expected memory contents, for both a fault-free RAM and a RAM with an
   injected stuck-at cell.
"""

from repro.circuits import build_soc
from repro.dft import insert_scan
from repro.logic import Logic
from repro.simulation import SequentialSimulator


def find_ram_interface(soc, netlist):
    ram = netlist.rams[soc.ram_names[0]]
    drivers = {}
    for role, nets in (("address", ram.address), ("data", ram.data_in)):
        cells = []
        for net in nets:
            driver = netlist.driver_of(net)
            cells.append(driver[1].name if driver and driver[0] == "flop" else None)
        drivers[role] = cells
    return ram, drivers


def apply_step(sim, soc, ram, drivers, address, data, write):
    """One macro-test step: set up the RAM port registers, pulse the slow clock."""
    # Drive the port registers directly (their values would normally arrive
    # through the scan chains; the simulator's load_state is the abstract load).
    load = {}
    for bit, cell in enumerate(drivers["address"]):
        if cell:
            load[cell] = Logic.from_int((address >> (len(drivers["address"]) - 1 - bit)) & 1)
    for bit, cell in enumerate(drivers["data"]):
        if cell:
            load[cell] = Logic.from_int((data >> bit) & 1)
    sim.load_state(load)
    # The write-enable is a gate over a control register and a state register;
    # drive the control primary input to open/close it.
    sim.set_inputs({"ctrl_in_0": Logic.ONE if write else Logic.ZERO})
    sim.pulse(["clk_slow"])
    word = sim.rams[ram.name].read(address)
    return word


def main() -> None:
    soc = build_soc(size=1, seed=2005)
    netlist, scan = insert_scan(soc.netlist, num_chains=4)
    ram, drivers = find_ram_interface(soc, netlist)
    print(f"RAM macro: {ram.num_words} words x {ram.width} bits, clocked by {ram.clock}")
    print(f"address registers: {drivers['address']}")
    print(f"data registers   : {drivers['data']}")

    sim = SequentialSimulator(netlist)
    sim.set_inputs({scan.scan_enable: Logic.ZERO, soc.reset_net: Logic.ZERO})

    print("\nMarch-like element: write pattern, read back, write complement, read back")
    failures = 0
    for address in range(min(4, ram.num_words)):
        pattern = (0b0101 >> 0) & ((1 << ram.width) - 1)
        apply_step(sim, soc, ram, drivers, address, pattern, write=True)
        word = sim.rams[ram.name].read(address)
        expected = [Logic.from_int((pattern >> bit) & 1) for bit in range(ram.width)]
        ok = list(word) == expected
        failures += not ok
        print(f"  addr {address}: wrote {pattern:04b}, memory now "
              f"{''.join(str(b) for b in reversed(word))} [{'ok' if ok else 'FAIL'}]")

    print("\nInjecting a stuck-at-0 cell in word 1, bit 0, and re-reading:")
    contents = sim.rams[ram.name].words.get(1)
    if contents:
        corrupted = list(contents)
        corrupted[0] = Logic.ZERO
        sim.rams[ram.name].words[1] = tuple(corrupted)
    word = sim.rams[ram.name].read(1)
    print(f"  read back: {''.join(str(b) for b in reversed(word))} "
          "(bit 0 stuck at 0 is visible to the macro test)")
    print(f"\nFault-free march element failures: {failures}")


if __name__ == "__main__":
    main()
