#!/usr/bin/env python3
"""Gate-level CPF demonstration: Figures 3 and 4 of the paper.

Builds the clock pulse filter exactly as the paper's Figure 3 describes it
(trigger flip-flop, five-bit PLL-clocked shift register, glitch-free clock
gating cell, output mux), drives it through the tester protocol with the
event-driven timing simulator, prints the resulting waveform (Figure 4) and
the checks that verify it, then repeats the exercise for the enhanced CPF
programmed for 2, 3 and 4 pulses.

Run with ``python examples/cpf_waveform_demo.py``.
"""

from repro.clocking import (
    OccController,
    build_cpf,
    build_enhanced_cpf,
    check_cpf_waveform,
    enhanced_cpf_config,
    simple_cpf_procedures,
    simulate_cpf_capture,
)
from repro.netlist import area_report, write_verilog


def show_simple_cpf() -> None:
    block = build_cpf()
    stats = block.netlist.stats()
    print("=" * 72)
    print("Figure 3 — clock pulse filter implementation")
    print(f"  cells: {block.gate_count} "
          f"({stats.num_gates} gates, {stats.num_flops} flip-flops, {stats.num_latches} latch)")
    print(f"  area : {area_report(block.netlist).total:.1f} NAND2-equivalents")
    print()
    print(write_verilog(block.netlist))

    wave, timing = simulate_cpf_capture(block, pll_period=1000.0, scan_period=8000.0,
                                        num_shift_cycles=4)
    report = check_cpf_waveform(
        wave, block.ports.clk_out, block.ports.pll_clk, block.ports.scan_clk,
        timing.trigger_time, timing.window_end, timing.pll_period,
        expected_pulses=2, shift_window=(timing.shift_start, timing.shift_end),
    )
    print("Figure 4 — CPF waveform (scan shift, trigger, launch/capture burst)")
    print(wave.to_ascii(
        [block.ports.scan_en, block.ports.scan_clk, block.ports.pll_clk, block.ports.clk_out],
        start=0.0, end=timing.trigger_time + 12 * timing.pll_period, width=110,
    ))
    print(f"  at-speed pulses seen : {report.pulses_in_window} (expected 2)")
    print(f"  latency after trigger: {report.latency_pll_cycles:.2f} PLL cycles")
    print(f"  glitch free          : {report.glitch_free}")
    print()

    # How the tester produces this burst (the named capture procedure's protocol).
    occ = OccController()
    print(occ.describe(simple_cpf_procedures(["fast"])[0], chain_length=8))
    print()


def show_enhanced_cpf() -> None:
    print("=" * 72)
    print("Enhanced CPF — programmable pulse count")
    for pulses in (2, 3, 4):
        block = build_enhanced_cpf(name=f"ecpf{pulses}")
        wave, timing = simulate_cpf_capture(block, config_values=enhanced_cpf_config(pulses))
        report = check_cpf_waveform(
            wave, block.ports.clk_out, block.ports.pll_clk, block.ports.scan_clk,
            timing.trigger_time, timing.window_end, timing.pll_period,
            expected_pulses=pulses,
        )
        marker = "ok" if report.pulse_count_correct and report.glitch_free else "MISMATCH"
        print(f"  programmed {pulses} pulses -> observed {report.pulses_in_window} [{marker}]")


if __name__ == "__main__":
    show_simple_cpf()
    show_enhanced_cpf()
