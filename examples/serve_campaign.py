#!/usr/bin/env python3
"""A campaign through the service plane: one server, two workers, a client.

The :class:`~repro.serve.ServeServer` owns a durable job queue and one
result-cache namespace per tenant; :class:`~repro.serve.ServeWorker`
processes register with it and execute shipped plan waves; the
:class:`~repro.serve.ServeClient` submits a campaign, tails its event
journal live, and assembles the final :class:`CampaignReport` — through the
exact same merge path ``Campaign.run()`` uses, so the report is identical
to a local run's.  A second submission of the same grid is served entirely
from the tenant's cache: zero jobs execute.

Everything runs in-process here for a self-contained demo; in production
the workers are separate processes started with
``python -m repro.serve.worker --server host:port``.

Run with ``python examples/serve_campaign.py``.
"""

import tempfile
import time

from repro.api import Campaign
from repro.atpg import AtpgOptions
from repro.runtime import Event
from repro.serve import ServeClient, ServeServer, ServeWorker


def ticker(event: Event) -> None:
    """Render the journal tail as a live progress log."""
    if event.kind in ("job_started", "job_finished", "job_skipped"):
        print(f"  {event.describe()}")


def fresh_campaign() -> Campaign:
    options = AtpgOptions(
        random_pattern_batches=2, patterns_per_batch=32, backtrack_limit=15,
        random_seed=2005,
    )
    return Campaign(designs=["tiny"], scenarios=["a", "c"], options=options)


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-serve-demo-") as tmp:
        server = ServeServer(tmp, poll_seconds=0.02).start()
        host, port = server.address
        print(f"server listening on {host}:{port}")

        workers = [
            ServeWorker(server_address=server.address, register_seconds=0.2).start()
            for _ in range(2)
        ]
        client = ServeClient(server.address)
        while len(client.workers()) < 2:
            time.sleep(0.05)
        print(f"workers registered: {client.workers()}\n")

        print("Submitting the campaign (tenant 'demo', streaming events):")
        handle = fresh_campaign().submit(client, tenant="demo")
        report = handle.report(on_event=ticker)
        summary = handle.status()["summary"]
        print(f"\nbackend: {summary['backend']}  "
              f"executed: {summary['executed']}  "
              f"cache hits: {summary['skipped_cache']}")
        print(report.table("tiny"))

        print("Resubmitting — the tenant cache serves everything:")
        resumed = fresh_campaign().submit(client, tenant="demo").report()
        second = client.status(2)["summary"]
        print(f"executed: {second['executed']}  "
              f"cache hits: {second['skipped_cache']}  "
              f"identical results: {resumed.same_results(report)}")

        print("\nservice stats:", client.stats()["queue"])
        for worker in workers:
            worker.stop()
        server.stop()


if __name__ == "__main__":
    main()
