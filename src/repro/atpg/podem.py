"""PODEM — path-oriented decision making test generation.

The generator operates on any :class:`~repro.simulation.model.CircuitModel`
(single frame for stuck-at, time-frame expanded for transition faults) under
a *test view*: the set of controllable input nodes, constrained/fixed nodes,
and observation points.  On top of the classic algorithm two extensions carry
the delay-test semantics of the paper:

* *required objectives* — additional (node, value) goals that must hold in the
  good machine; the transition ATPG passes the launch-frame initial value of
  the fault site here;
* *forced-unknown sources* — nodes fixed to X (non-scan state, RAM outputs)
  that can never be assigned, exactly like a commercial tool treats
  uninitialized sequential elements under a restricted clocking scheme.

Values are tracked as separate good/faulty 3-valued integers (0, 1, 2=X) for
speed; the public result converts back to :class:`~repro.logic.Logic`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping, Sequence

from repro.atpg.scoap import TestabilityMeasures, compute_testability
from repro.faults.models import StuckAtFault
from repro.netlist.gates import GateType
from repro.simulation.logic import Logic
from repro.simulation.model import CircuitModel, NodeKind

_X = 2


def _logic_to_int(value: Logic) -> int:
    if value is Logic.ZERO:
        return 0
    if value is Logic.ONE:
        return 1
    return _X


def _int_to_logic(value: int) -> Logic:
    return (Logic.ZERO, Logic.ONE, Logic.X)[value]


def _eval_gate_int(gtype: GateType, values: Sequence[int]) -> int:
    """3-valued gate evaluation over integers 0/1/2(X)."""
    if gtype is GateType.BUF:
        return values[0]
    if gtype is GateType.NOT:
        v = values[0]
        return v if v == _X else 1 - v
    if gtype is GateType.AND or gtype is GateType.NAND:
        out = 1
        for v in values:
            if v == 0:
                out = 0
                break
            if v == _X:
                out = _X
        if gtype is GateType.NAND and out != _X:
            out = 1 - out
        return out
    if gtype is GateType.OR or gtype is GateType.NOR:
        out = 0
        for v in values:
            if v == 1:
                out = 1
                break
            if v == _X:
                out = _X
        if gtype is GateType.NOR and out != _X:
            out = 1 - out
        return out
    if gtype is GateType.XOR or gtype is GateType.XNOR:
        out = 0
        for v in values:
            if v == _X:
                return _X
            out ^= v
        if gtype is GateType.XNOR:
            out = 1 - out
        return out
    if gtype is GateType.MUX2:
        sel, a, b = values
        if sel == 0:
            return a
        if sel == 1:
            return b
        if a == b and a != _X:
            return a
        return _X
    if gtype is GateType.TIE0:
        return 0
    if gtype is GateType.TIE1:
        return 1
    raise ValueError(f"unsupported gate type {gtype!r}")


class PodemStatus(str, Enum):
    """Outcome of one PODEM run."""

    TEST_FOUND = "test"
    UNTESTABLE = "untestable"
    ABORTED = "aborted"


@dataclass
class PodemResult:
    """Result of targeting one fault."""

    status: PodemStatus
    assignment: dict[int, Logic] = field(default_factory=dict)
    backtracks: int = 0
    decisions: int = 0

    @property
    def found(self) -> bool:
        return self.status is PodemStatus.TEST_FOUND


class PodemEngine:
    """Reusable PODEM engine bound to one circuit model and test view."""

    def __init__(
        self,
        model: CircuitModel,
        controllable: set[int],
        fixed: Mapping[int, Logic],
        observation: Sequence[int],
        backtrack_limit: int = 64,
        measures: TestabilityMeasures | None = None,
    ) -> None:
        self.model = model
        self.controllable = set(controllable)
        self.fixed = {idx: _logic_to_int(value) for idx, value in fixed.items()}
        self.observation = list(observation)
        self.backtrack_limit = backtrack_limit
        self.measures = measures or compute_testability(
            model, controllable=self.controllable,
            fixed={k: v for k, v in fixed.items()},
            observation=self.observation,
        )

        self._nodes = model.nodes
        self._num = model.num_nodes
        self._obs_set = set(self.observation)
        self._obs_reachable = self._compute_obs_reachable()
        self._cone_cache: dict[int, list[int]] = {}

        # Per-run state.
        self._good = [_X] * self._num
        self._faulty = [_X] * self._num
        self._assignment: dict[int, int] = {}
        self._fault_node = -1
        self._fault_pin: int | None = None
        self._stuck = 0
        self._required: list[tuple[int, int]] = []
        self._fault_cone: list[int] = []
        self._obs_in_cone: list[int] = []
        # Baseline (no decisions, no fault): every run starts from a copy of
        # this instead of re-evaluating the whole model.
        self._baseline = self._compute_baseline()

    # ------------------------------------------------------------------ public
    def run(
        self,
        fault: StuckAtFault,
        required: Sequence[tuple[int, Logic]] = (),
    ) -> PodemResult:
        """Attempt to generate a test for one (expanded-model) stuck-at fault.

        Args:
            fault: Stuck-at fault expressed on *this* engine's model.
            required: Additional good-machine value objectives (node, value)
                that the test must also satisfy (launch conditions).

        Returns:
            A :class:`PodemResult`; when a test is found, ``assignment`` maps
            every controllable node the algorithm assigned to its value.
        """
        self._fault_node = fault.site.node
        self._fault_pin = fault.site.pin
        self._stuck = fault.value
        self._required = [(node, _logic_to_int(value)) for node, value in required]
        self._assignment = {}
        self._good = list(self._baseline)
        self._faulty = list(self._baseline)
        # Fault effects can only live inside the fault node's fanout cone, so
        # frontier scans and observation checks are restricted to it.
        self._fault_cone = self._cone(self._fault_node)
        cone_set = set(self._fault_cone)
        self._obs_in_cone = [idx for idx in self.observation if idx in cone_set]
        # Inject the fault into the otherwise fault-free baseline.
        for idx in self._fault_cone:
            self._evaluate_node(idx)

        # Impossible straight away (e.g. launch node fixed to the wrong value).
        if self._is_conflict():
            return PodemResult(status=PodemStatus.UNTESTABLE)

        backtracks = 0
        decisions = 0
        stack: list[tuple[int, int, bool]] = []

        while True:
            if self._is_success():
                assignment = {idx: _int_to_logic(v) for idx, v in self._assignment.items()}
                return PodemResult(
                    status=PodemStatus.TEST_FOUND,
                    assignment=assignment,
                    backtracks=backtracks,
                    decisions=decisions,
                )
            advance: tuple[int, int] | None = None
            if not self._is_conflict():
                # Try candidate objectives in priority order until one of them
                # can be backtraced to an unassigned input; giving up after the
                # first dead objective would wrongly prune testable faults.
                for objective in self._candidate_objectives():
                    advance = self._backtrace(*objective)
                    if advance is not None:
                        break
            if advance is not None:
                pi, value = advance
                self._assign(pi, value)
                stack.append((pi, value, False))
                decisions += 1
                continue
            # Conflict (or no way to advance): flip the most recent untried decision.
            flipped = False
            while stack:
                pi, value, tried = stack.pop()
                self._unassign(pi)
                if not tried:
                    backtracks += 1
                    if backtracks > self.backtrack_limit:
                        return PodemResult(
                            status=PodemStatus.ABORTED,
                            backtracks=backtracks,
                            decisions=decisions,
                        )
                    self._assign(pi, 1 - value)
                    stack.append((pi, 1 - value, True))
                    flipped = True
                    break
            if not flipped:
                return PodemResult(
                    status=PodemStatus.UNTESTABLE,
                    backtracks=backtracks,
                    decisions=decisions,
                )

    # ------------------------------------------------------------- evaluation
    def _source_value(self, idx: int) -> int:
        if idx in self.fixed:
            return self.fixed[idx]
        return self._assignment.get(idx, _X)

    def _evaluate_node(self, idx: int) -> None:
        node = self._nodes[idx]
        kind = node.kind
        if kind is NodeKind.CONST0:
            good = faulty = 0
        elif kind is NodeKind.CONST1:
            good = faulty = 1
        elif kind is not NodeKind.GATE:
            good = faulty = self._source_value(idx)
        else:
            fanin = node.fanin
            good = _eval_gate_int(node.gtype, [self._good[i] for i in fanin])
            if self._fault_pin is not None and idx == self._fault_node:
                fvals = [self._faulty[i] for i in fanin]
                fvals[self._fault_pin] = self._stuck
                faulty = _eval_gate_int(node.gtype, fvals)
            else:
                faulty = _eval_gate_int(node.gtype, [self._faulty[i] for i in fanin])
        if idx == self._fault_node and self._fault_pin is None:
            faulty = self._stuck
        self._good[idx] = good
        self._faulty[idx] = faulty

    def _compute_baseline(self) -> list[int]:
        """Fault-free values with no decisions taken (only fixed constraints)."""
        saved_fault, saved_pin = self._fault_node, self._fault_pin
        self._fault_node, self._fault_pin = -1, None
        self._good = [_X] * self._num
        self._faulty = [_X] * self._num
        for idx in range(self._num):
            self._evaluate_node(idx)
        baseline = list(self._good)
        self._fault_node, self._fault_pin = saved_fault, saved_pin
        return baseline

    def observable(self, node_index: int) -> bool:
        """True when a fault effect at ``node_index`` can structurally reach an
        observation point (cheap pre-screen before running the algorithm)."""
        return self._obs_reachable[node_index]

    def _cone(self, source: int) -> list[int]:
        cone = self._cone_cache.get(source)
        if cone is None:
            cone = [source] + self.model.transitive_fanout(source)
            cone.sort()
            self._cone_cache[source] = cone
        return cone

    def _assign(self, pi: int, value: int) -> None:
        self._assignment[pi] = value
        for idx in self._cone(pi):
            self._evaluate_node(idx)

    def _unassign(self, pi: int) -> None:
        self._assignment.pop(pi, None)
        for idx in self._cone(pi):
            self._evaluate_node(idx)

    # ----------------------------------------------------------- status checks
    def _activation_node(self) -> int:
        if self._fault_pin is None:
            return self._fault_node
        return self._nodes[self._fault_node].fanin[self._fault_pin]

    def _fault_effect_at(self, idx: int) -> bool:
        return (
            self._good[idx] != _X
            and self._faulty[idx] != _X
            and self._good[idx] != self._faulty[idx]
        )

    def _is_success(self) -> bool:
        for node, value in self._required:
            if self._good[node] != value:
                return False
        return any(self._fault_effect_at(idx) for idx in self._obs_in_cone)

    def _is_conflict(self) -> bool:
        # A required objective already violated can never recover (values only
        # get more specific along one decision branch).
        for node, value in self._required:
            good = self._good[node]
            if good != _X and good != value:
                return True
        activation = self._activation_node()
        good = self._good[activation]
        if good != _X and good == self._stuck:
            return True
        # Fault effect must still be able to reach an observation point.
        if not self._d_frontier_alive():
            return True
        return False

    def _d_frontier(self) -> list[int]:
        frontier: list[int] = []
        for idx in self._fault_cone:
            node = self._nodes[idx]
            if node.kind is not NodeKind.GATE:
                continue
            if self._good[idx] != _X and self._faulty[idx] != _X:
                continue
            has_effect = any(self._fault_effect_at(i) for i in node.fanin)
            if not has_effect and idx == self._fault_node and self._fault_pin is not None:
                driver = node.fanin[self._fault_pin]
                good = self._good[driver]
                has_effect = good != _X and good != self._stuck
            if has_effect:
                frontier.append(idx)
        return frontier

    def _d_frontier_alive(self) -> bool:
        """True while the fault effect is observed or can still be propagated."""
        if any(self._fault_effect_at(idx) for idx in self._obs_in_cone):
            return True
        frontier = self._d_frontier()
        if self._fault_effect_anywhere():
            if not frontier:
                return False
        else:
            # Fault not activated yet: alive as long as activation is possible
            # and the fault cone reaches an observation point at all.
            activation = self._activation_node()
            if self._good[activation] != _X and self._good[activation] == self._stuck:
                return False
            return self._obs_reachable[self._fault_node]
        # X-path check: some frontier gate must reach an observation point
        # through not-yet-determined values.
        return any(self._x_path_exists(idx) for idx in frontier)

    def _fault_effect_anywhere(self) -> bool:
        activation = self._activation_node()
        good = self._good[activation]
        return good != _X and good != self._stuck

    def _x_path_exists(self, start: int) -> bool:
        seen = set()
        stack = [start]
        while stack:
            idx = stack.pop()
            if idx in seen:
                continue
            seen.add(idx)
            if not self._obs_reachable[idx]:
                continue
            if idx in self._obs_set:
                return True
            for nxt in self.model.fanout[idx]:
                if self._good[nxt] == _X or self._faulty[nxt] == _X:
                    stack.append(nxt)
                elif self._fault_effect_at(nxt):
                    stack.append(nxt)
        return False

    def _compute_obs_reachable(self) -> list[bool]:
        reachable = [False] * self._num
        for idx in self.observation:
            reachable[idx] = True
        for idx in range(self._num - 1, -1, -1):
            if reachable[idx]:
                continue
            reachable[idx] = any(reachable[out] for out in self.model.fanout[idx])
        return reachable

    # -------------------------------------------------------------- objectives
    def _candidate_objectives(self) -> list[tuple[int, int]]:
        """Objectives to pursue, in priority order.

        Order: unsatisfied required (launch) objectives, fault activation,
        then one sensitization objective per D-frontier gate (closest to an
        observation point first).  Several candidates are returned because a
        single objective may be un-backtraceable while another still leads to
        a test.
        """
        candidates: list[tuple[int, int]] = []
        for node, value in self._required:
            if self._good[node] == _X:
                candidates.append((node, value))
        if candidates:
            return candidates
        activation = self._activation_node()
        if self._good[activation] == _X:
            return [(activation, 1 - self._stuck)]
        if self._good[activation] == self._stuck:
            return []
        frontier = [idx for idx in self._d_frontier() if self._obs_reachable[idx]]
        frontier.sort(key=lambda idx: self.measures.observability[idx])
        for gate_idx in frontier[:16]:
            node = self._nodes[gate_idx]
            for objective in self._sensitize_objectives(node):
                candidates.append(objective)
        return candidates

    def _pick_objective(self) -> tuple[int, int] | None:
        """First candidate objective (kept for introspection and tests)."""
        candidates = self._candidate_objectives()
        return candidates[0] if candidates else None

    def _sensitize_objectives(self, node) -> list[tuple[int, int]]:
        """Objectives that would sensitize one D-frontier gate."""
        gtype = node.gtype
        x_inputs = [i for i in node.fanin if self._good[i] == _X]
        if not x_inputs:
            return []
        if gtype in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
            noncontrolling = 1 if gtype in (GateType.AND, GateType.NAND) else 0
            return [(target, noncontrolling) for target in x_inputs]
        if gtype is GateType.MUX2:
            sel = node.fanin[0]
            if self._good[sel] == _X:
                # Select the side that carries the fault effect if identifiable.
                for pin, value in ((1, 0), (2, 1)):
                    if self._fault_effect_at(node.fanin[pin]):
                        return [(sel, value)]
                return [(sel, 0), (sel, 1)]
            return [(target, 0) for target in x_inputs]
        # XOR/XNOR/BUF/NOT: any X input set to a known value helps.
        return [(target, 0) for target in x_inputs]

    def _sensitize_objective(self, node) -> tuple[int, int] | None:
        objectives = self._sensitize_objectives(node)
        return objectives[0] if objectives else None

    # --------------------------------------------------------------- backtrace
    def _backtrace(self, node: int, value: int) -> tuple[int, int] | None:
        """Map an objective back to an unassigned controllable input."""
        current, target = node, value
        for _ in range(4 * self._num):
            if current in self.controllable and current not in self._assignment:
                return current, target
            info = self._nodes[current]
            if info.kind is not NodeKind.GATE:
                return None  # fixed or unassignable source
            gtype = info.gtype
            fanin = info.fanin
            x_inputs = [i for i in fanin if self._good[i] == _X]
            if not x_inputs:
                return None
            if gtype is GateType.BUF:
                current, target = fanin[0], target
            elif gtype is GateType.NOT:
                current, target = fanin[0], 1 - target
            elif gtype in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
                inverting = gtype in (GateType.NAND, GateType.NOR)
                controlling = 0 if gtype in (GateType.AND, GateType.NAND) else 1
                needed = 1 - target if inverting else target
                needed_logic = Logic.from_int(controlling)
                if needed == controlling:
                    chosen = self.measures.easiest_input(x_inputs, needed_logic)
                    current, target = chosen, controlling
                else:
                    chosen = self.measures.hardest_input(
                        x_inputs, Logic.from_int(1 - controlling)
                    )
                    current, target = chosen, 1 - controlling
            elif gtype in (GateType.XOR, GateType.XNOR):
                known = [self._good[i] for i in fanin if self._good[i] != _X]
                parity = sum(known) % 2
                desired = target if gtype is GateType.XOR else 1 - target
                if len(x_inputs) == 1:
                    current, target = x_inputs[0], (desired ^ parity) & 1
                else:
                    current, target = x_inputs[0], 0
            elif gtype is GateType.MUX2:
                sel = fanin[0]
                if self._good[sel] == _X:
                    current, target = sel, 0
                else:
                    data = fanin[1] if self._good[sel] == 0 else fanin[2]
                    if self._good[data] != _X:
                        return None
                    current, target = data, target
            else:
                return None
        return None
