"""Random pattern generation and X-filling.

ATPG flows start with a cheap random phase: random scan loads and input
vectors are fault-simulated with fault dropping, and only the patterns that
detect new faults are kept.  The deterministic (PODEM) phase then only has to
handle the random-pattern-resistant faults.  The same RNG utilities also
perform the final X-fill of deterministic patterns before they are exported.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.clocking.named_capture import NamedCaptureProcedure
from repro.patterns.pattern import TestPattern
from repro.simulation.logic import Logic


def derive_rng(seed: int, stream: str | None = None) -> random.Random:
    """A deterministic RNG for one (seed, stream) pair.

    Every consumer of randomness in the ATPG flow derives its generator
    here, which is what makes runs **bit-reproducible across engine
    backends and shard counts**: fault simulation itself consumes no
    randomness, so as long as the random phase and the X-fill draw from a
    generator seeded purely by value (never by object identity, wall clock
    or worker id), serial, compiled and sharded-process runs produce the
    same patterns and therefore the same coverage.

    ``stream=None`` is the classic single-stream generator (bit-compatible
    with the pre-engine flow, which called ``random.Random(seed)``
    directly); named streams give independent, order-insensitive sequences.
    """
    if stream is None:
        return random.Random(seed)
    return random.Random(f"{seed}/{stream}")


def random_values(names: Sequence[str], rng: random.Random) -> dict[str, Logic]:
    """A random 0/1 value per name."""
    return {name: (Logic.ONE if rng.random() < 0.5 else Logic.ZERO) for name in names}


def random_pattern(
    procedure: NamedCaptureProcedure,
    scan_flops: Sequence[str],
    free_inputs: Sequence[str],
    rng: random.Random,
    hold_pis: bool = True,
    observe_pos: bool = True,
) -> TestPattern:
    """Build one fully-specified random pattern for a capture procedure.

    Args:
        procedure: Capture procedure the pattern will use.
        scan_flops: Names of the scan flip-flops to load.
        free_inputs: Primary inputs the tester may drive (unconstrained ones).
        rng: Random source.
        hold_pis: Use the same input vector for every frame.
        observe_pos: Whether the pattern's primary outputs will be strobed.

    Returns:
        A fully specified :class:`TestPattern`.
    """
    scan_load = random_values(scan_flops, rng)
    if hold_pis:
        vector = random_values(free_inputs, rng)
        frames = [dict(vector) for _ in range(procedure.num_frames)]
    else:
        frames = [random_values(free_inputs, rng) for _ in range(procedure.num_frames)]
    return TestPattern(
        procedure=procedure,
        scan_load=scan_load,
        pi_frames=frames,
        observe_pos=observe_pos,
        target_faults=["random"],
        cube_scan_load={},
    )


def random_pattern_batch(
    procedures: Sequence[NamedCaptureProcedure],
    scan_flops: Sequence[str],
    free_inputs: Sequence[str],
    count: int,
    rng: random.Random,
    hold_pis: bool = True,
    observe_pos: bool = True,
) -> list[TestPattern]:
    """A batch of random patterns cycling round-robin over the procedures."""
    batch: list[TestPattern] = []
    for index in range(count):
        procedure = procedures[index % len(procedures)]
        batch.append(
            random_pattern(
                procedure,
                scan_flops,
                free_inputs,
                rng,
                hold_pis=hold_pis,
                observe_pos=observe_pos,
            )
        )
    return batch


def fill_pattern(pattern: TestPattern, rng: random.Random, fill: str = "random") -> TestPattern:
    """Replace unspecified (X) bits of a pattern.

    Args:
        pattern: Possibly partially-specified pattern.
        rng: Random source used for ``fill="random"``.
        fill: ``"random"``, ``"zero"`` or ``"one"``.

    Returns:
        A fully specified copy.
    """
    if fill == "zero":
        return pattern.filled(value=Logic.ZERO)
    if fill == "one":
        return pattern.filled(value=Logic.ONE)
    return pattern.filled(rng=rng)
