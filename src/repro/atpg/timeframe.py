"""Time-frame expansion for sequential (broadside) test generation.

Delay test is a two-vector test; with extra initialization pulses (clock
sequential patterns) it becomes a *k*-vector test.  The ATPG and the fault
simulator both work on a :class:`TimeFrameView`: a purely combinational
circuit built from *k* copies of the base model where

* frame 0 pseudo-primary-inputs are the scan-loaded flip-flop values
  (controllable for scan cells, unknown for non-scan cells),
* the frame *f* copy of a flip-flop output is, when the flip-flop's clock
  domain is pulsed by capture pulse *f*, a buffer of its functional D value
  computed in frame *f-1*; otherwise it aliases the frame *f-1* value
  (the flip-flop holds),
* primary inputs are shared across frames when the tester must hold them,
* the observation points are the frame *k-1* D inputs of the scan flip-flops
  captured by the final pulse, plus the frame *k-1* primary outputs when the
  tester is allowed to strobe them.

The launch condition of a transition fault compares the value of the fault
site in frame *k-2* with frame *k-1*; its detection condition is the
corresponding stuck-at fault injected in frame *k-1* only.  Stuck-at ATPG is
the degenerate single-frame case of the same construction.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.atpg.config import TestSetup
from repro.clocking.domains import ClockDomainMap
from repro.clocking.named_capture import NamedCaptureProcedure
from repro.faults.models import FaultSite, StuckAtFault, TransitionFault
from repro.netlist.gates import GateType
from repro.simulation.logic import Logic
from repro.simulation.model import CircuitModel, Node, NodeKind


@dataclass
class TimeFrameView:
    """Expanded combinational view of one capture procedure."""

    base_model: CircuitModel
    procedure: NamedCaptureProcedure
    setup: TestSetup
    domain_map: ClockDomainMap
    model: CircuitModel
    frame_map: list[dict[int, int]]
    controllable: set[int]
    fixed: dict[int, Logic]
    observation: list[int]
    scan_state_node: dict[str, int]
    pi_nodes: dict[tuple[int, str], int]
    observed_flops: list[str]

    # ----------------------------------------------------------------- frames
    @property
    def num_frames(self) -> int:
        return self.procedure.num_frames

    @property
    def launch_frame(self) -> int:
        return self.procedure.launch_frame

    @property
    def capture_frame(self) -> int:
        return self.procedure.capture_frame

    def node_in_frame(self, base_node: int, frame: int) -> int:
        """Expanded node index of a base node in a given frame."""
        return self.frame_map[frame][base_node]

    # ----------------------------------------------------------------- faults
    def expanded_stuck_at(self, fault: StuckAtFault, frame: int | None = None) -> StuckAtFault:
        """Map a base-model stuck-at fault into the expanded model."""
        frame = self.capture_frame if frame is None else frame
        site = fault.site
        return StuckAtFault(
            site=FaultSite(node=self.frame_map[frame][site.node], pin=site.pin),
            value=fault.value,
        )

    def launch_value_node(self, site: FaultSite) -> int:
        """Expanded node whose launch-frame value must equal the transition's
        initial value (the driver node for input-pin sites)."""
        base = self.base_model
        base_node = site.node if site.pin is None else base.nodes[site.node].fanin[site.pin]
        return self.frame_map[self.launch_frame][base_node]

    def final_value_node(self, site: FaultSite) -> int:
        """Expanded node carrying the fault site's value in the capture frame."""
        base = self.base_model
        base_node = site.node if site.pin is None else base.nodes[site.node].fanin[site.pin]
        return self.frame_map[self.capture_frame][base_node]

    def transition_requirements(self, fault: TransitionFault) -> tuple[StuckAtFault, list[tuple[int, Logic]]]:
        """Stuck-at fault + additional value objectives for a transition fault.

        Returns the capture-frame stuck-at fault to target with PODEM and the
        list of mandatory (expanded node, value) objectives: the launch-frame
        initial value at the fault site.  (The final-frame value requirement is
        implied by stuck-at activation.)
        """
        stuck = self.expanded_stuck_at(fault.capture_frame_stuck_at)
        launch_node = self.launch_value_node(fault.site)
        requirements = [(launch_node, fault.kind.initial_value)]
        return stuck, requirements

    # ------------------------------------------------------------ assignments
    def pattern_fields(self, assignment: dict[int, Logic]) -> tuple[dict[str, Logic], list[dict[str, Logic]]]:
        """Split a PODEM assignment into scan-load values and per-frame PI vectors."""
        scan_load: dict[str, Logic] = {}
        for flop_name, node in self.scan_state_node.items():
            value = assignment.get(node, Logic.X)
            scan_load[flop_name] = value
        frames: list[dict[str, Logic]] = [dict() for _ in range(self.num_frames)]
        for (frame, net), node in self.pi_nodes.items():
            value = assignment.get(node, Logic.X)
            if frame < 0:
                for frame_values in frames:
                    frame_values[net] = value
            else:
                frames[frame][net] = value
        return scan_load, frames


def build_timeframe_view(
    base_model: CircuitModel,
    domain_map: ClockDomainMap,
    procedure: NamedCaptureProcedure,
    setup: TestSetup,
) -> TimeFrameView:
    """Construct the expanded combinational model for one capture procedure."""
    nodes: list[Node] = []
    node_of_net: dict[str, int] = {}
    fixed: dict[int, Logic] = {}
    controllable: set[int] = set()
    pi_nodes: dict[tuple[int, str], int] = {}
    scan_state_node: dict[str, int] = {}

    def add_node(kind: NodeKind, net: str, gtype: GateType | None, fanin: tuple[int, ...],
                 instance: str | None) -> int:
        level = max((nodes[i].level for i in fanin), default=-1) + 1
        index = len(nodes)
        nodes.append(Node(index=index, kind=kind, net=net, gtype=gtype, fanin=fanin,
                          level=level, instance=instance))
        node_of_net[net] = index
        return index

    constraints = setup.effective_pin_constraints()
    num_frames = procedure.num_frames
    frame_map: list[dict[int, int]] = [dict() for _ in range(num_frames)]

    # Pre-compute which state element owns each base PPI node.
    element_of_q: dict[int, object] = {}
    for element in base_model.state_elements:
        element_of_q[element.q_node] = element

    # ------------------------------------------------------------- frame 0
    for base in base_model.nodes:
        if base.kind is NodeKind.PI:
            idx = add_node(NodeKind.PI, f"tf0/{base.net}", None, (), base.instance)
            frame_map[0][base.index] = idx
            if base.net in constraints:
                fixed[idx] = constraints[base.net]
            else:
                controllable.add(idx)
                pi_nodes[(-1 if setup.hold_pis else 0, base.net)] = idx
        elif base.kind is NodeKind.PPI:
            idx = add_node(NodeKind.PPI, f"tf0/{base.net}", None, (), base.instance)
            frame_map[0][base.index] = idx
            element = element_of_q.get(base.index)
            if element is not None and element.flop.is_scan:
                controllable.add(idx)
                scan_state_node[element.name] = idx
            elif element is not None and element.flop.init is not None:
                fixed[idx] = Logic.from_int(element.flop.init)
            else:
                fixed[idx] = Logic.X
        elif base.kind is NodeKind.RAM_OUT:
            idx = add_node(NodeKind.RAM_OUT, f"tf0/{base.net}", None, (), base.instance)
            frame_map[0][base.index] = idx
            fixed[idx] = Logic.X
        elif base.kind in (NodeKind.CONST0, NodeKind.CONST1):
            idx = add_node(base.kind, f"tf0/{base.net}", base.gtype, (), base.instance)
            frame_map[0][base.index] = idx
        else:  # GATE
            fanin = tuple(frame_map[0][i] for i in base.fanin)
            idx = add_node(NodeKind.GATE, f"tf0/{base.net}", base.gtype, fanin, base.instance)
            frame_map[0][base.index] = idx

    # ------------------------------------------------------ frames 1..k-1
    for frame in range(1, num_frames):
        pulse = procedure.pulses[frame - 1]
        for base in base_model.nodes:
            prev_idx = frame_map[frame - 1][base.index]
            if base.kind is NodeKind.PI:
                if setup.hold_pis or base.net in constraints:
                    frame_map[frame][base.index] = prev_idx
                else:
                    idx = add_node(NodeKind.PI, f"tf{frame}/{base.net}", None, (), base.instance)
                    frame_map[frame][base.index] = idx
                    controllable.add(idx)
                    pi_nodes[(frame, base.net)] = idx
            elif base.kind is NodeKind.PPI:
                element = element_of_q.get(base.index)
                captured = False
                if element is not None:
                    domain = domain_map.domain_of(element.name)
                    captured = domain is not None and domain in pulse.domains
                if captured:
                    if element.d_node is not None:
                        source = frame_map[frame - 1][element.d_node]
                        idx = add_node(
                            NodeKind.GATE,
                            f"tf{frame}/{base.net}",
                            GateType.BUF,
                            (source,),
                            f"tf{frame}_{element.name}",
                        )
                    else:
                        idx = add_node(NodeKind.PPI, f"tf{frame}/{base.net}", None, (),
                                       base.instance)
                        fixed[idx] = Logic.X
                    frame_map[frame][base.index] = idx
                else:
                    frame_map[frame][base.index] = prev_idx
            elif base.kind in (NodeKind.RAM_OUT, NodeKind.CONST0, NodeKind.CONST1):
                frame_map[frame][base.index] = prev_idx
            else:  # GATE
                fanin = tuple(frame_map[frame][i] for i in base.fanin)
                idx = add_node(NodeKind.GATE, f"tf{frame}/{base.net}", base.gtype, fanin,
                               base.instance)
                frame_map[frame][base.index] = idx

    # ------------------------------------------------------------ observation
    last_pulse = procedure.pulses[-1]
    observation: list[int] = []
    observed_flops: list[str] = []
    final = num_frames - 1
    for element in base_model.state_elements:
        if not element.flop.is_scan or element.d_node is None:
            continue
        domain = domain_map.domain_of(element.name)
        if domain is None or domain not in last_pulse.domains:
            continue
        observation.append(frame_map[final][element.d_node])
        observed_flops.append(element.name)
    po_obs: list[tuple[str, int]] = []
    if setup.observe_pos:
        for net, base_idx in base_model.po_nodes:
            expanded = frame_map[final][base_idx]
            observation.append(expanded)
            po_obs.append((net, expanded))
    observation = sorted(set(observation))

    # ------------------------------------------------------------- fanout map
    fanout_map: dict[int, list[int]] = defaultdict(list)
    for node in nodes:
        for src in node.fanin:
            fanout_map[src].append(node.index)
    fanout = [tuple(sorted(fanout_map.get(i, ()))) for i in range(len(nodes))]
    max_level = max((n.level for n in nodes), default=0)

    expanded = CircuitModel(
        name=f"{base_model.name}@{procedure.name}",
        nodes=nodes,
        node_of_net=node_of_net,
        pi_nodes=sorted(controllable),
        ppi_nodes=[],
        ram_out_nodes=[],
        po_nodes=po_obs,
        state_elements=[],
        fanout=fanout,
        max_level=max_level,
    )

    return TimeFrameView(
        base_model=base_model,
        procedure=procedure,
        setup=setup,
        domain_map=domain_map,
        model=expanded,
        frame_map=frame_map,
        controllable=controllable,
        fixed=fixed,
        observation=observation,
        scan_state_node=scan_state_node,
        pi_nodes=pi_nodes,
        observed_flops=observed_flops,
    )
