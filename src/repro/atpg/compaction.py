"""Test pattern compaction.

Two mechanisms keep the pattern count down, mirroring what production ATPG
tools do (and what the paper leans on, together with EDT compression, to make
the transition pattern sets fit the tester's vector memory):

* *dynamic merging* — while deterministic patterns are being generated, a new
  partially-specified pattern is merged into an earlier compatible one (same
  capture procedure, no conflicting care bits) instead of opening a new scan
  load;
* *static compaction* — after generation, a greedy pass merges any remaining
  compatible patterns.

Both operate on partially-specified patterns; merging is impossible once the
X bits have been filled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.patterns.pattern import PatternSet, TestPattern


@dataclass
class CompactionStats:
    """Bookkeeping of how much compaction achieved."""

    attempted_merges: int = 0
    successful_merges: int = 0
    patterns_in: int = 0
    patterns_out: int = 0

    @property
    def reduction(self) -> float:
        if self.patterns_in == 0:
            return 0.0
        return 1.0 - self.patterns_out / self.patterns_in


class DynamicCompactor:
    """Keeps a window of open (partially specified) patterns to merge into."""

    def __init__(self, window: int = 24) -> None:
        self.window = max(1, window)
        self._open: list[TestPattern] = []
        self.stats = CompactionStats()

    def add(self, pattern: TestPattern) -> list[TestPattern]:
        """Add a pattern, merging it into an open one when possible.

        Returns:
            Patterns evicted from the window (they are final and should be
            filled/simulated by the caller).
        """
        self.stats.patterns_in += 1
        for index, candidate in enumerate(self._open):
            self.stats.attempted_merges += 1
            merged = candidate.merged_with(pattern)
            if merged is not None:
                self._open[index] = merged
                self.stats.successful_merges += 1
                return []
        self._open.append(pattern)
        evicted: list[TestPattern] = []
        while len(self._open) > self.window:
            evicted.append(self._open.pop(0))
        self.stats.patterns_out += len(evicted)
        return evicted

    def flush(self) -> list[TestPattern]:
        """Return (and clear) every remaining open pattern."""
        evicted, self._open = self._open, []
        self.stats.patterns_out += len(evicted)
        return evicted


def static_compaction(patterns: Sequence[TestPattern]) -> tuple[list[TestPattern], CompactionStats]:
    """Greedy static compaction over partially-specified patterns.

    Patterns are grouped by capture procedure; within a group each pattern is
    merged into the first compatible earlier pattern.

    Returns:
        The compacted pattern list (original order preserved for the
        survivors) and the compaction statistics.
    """
    stats = CompactionStats(patterns_in=len(patterns))
    survivors: list[TestPattern] = []
    for pattern in patterns:
        merged_into_existing = False
        for index, existing in enumerate(survivors):
            stats.attempted_merges += 1
            merged = existing.merged_with(pattern)
            if merged is not None:
                survivors[index] = merged
                stats.successful_merges += 1
                merged_into_existing = True
                break
        if not merged_into_existing:
            survivors.append(pattern)
    stats.patterns_out = len(survivors)
    return survivors, stats


def compact_pattern_set(pattern_set: PatternSet) -> tuple[PatternSet, CompactionStats]:
    """Static compaction wrapper operating on a :class:`PatternSet`."""
    compacted, stats = static_compaction(pattern_set.patterns())
    return PatternSet(compacted), stats
