"""Transition-fault ATPG with broadside (functional-justification) patterns.

This is the delay-test generator the paper's experiments (b)–(e) exercise
under different clocking environments.  Every fault is targeted as a
launch-condition + capture-frame-stuck-at problem on a time-frame expanded
model (:mod:`repro.atpg.timeframe`); the named capture procedures offered by
the experiment's :class:`~repro.atpg.config.TestSetup` decide how many pulses
exist, which clock domains they clock, and whether inter-domain launch/capture
is available.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.atpg.config import TestSetup
from repro.atpg.generator import AtpgGenerator, AtpgResult
from repro.atpg.podem import PodemEngine, PodemStatus
from repro.atpg.timeframe import TimeFrameView, build_timeframe_view
from repro.clocking.domains import ClockDomainMap
from repro.clocking.named_capture import NamedCaptureProcedure
from repro.fault_sim.transition import TransitionFaultSimulator
from repro.faults.models import TransitionFault, all_transition_faults
from repro.obs.telemetry import active_metrics
from repro.patterns.pattern import TestPattern
from repro.simulation.model import CircuitModel


class TransitionAtpg(AtpgGenerator):
    """Broadside transition-fault test generation."""

    def __init__(
        self,
        model: CircuitModel,
        domain_map: ClockDomainMap,
        setup: TestSetup,
        faults: Sequence[TransitionFault] | None = None,
    ) -> None:
        for procedure in setup.procedures:
            if procedure.num_pulses < 2:
                raise ValueError(
                    f"transition ATPG needs at least 2 pulses, procedure "
                    f"{procedure.name!r} has {procedure.num_pulses}"
                )
        super().__init__(model, domain_map, setup, faults)
        self.simulator = TransitionFaultSimulator(model, domain_map, setup)
        self._views: dict[str, TimeFrameView] = {}
        self._engines: dict[str, PodemEngine] = {}

    # ------------------------------------------------------------------ hooks
    def _fault_universe(self) -> list[TransitionFault]:
        return all_transition_faults(self.model)

    def _fault_simulate(
        self, patterns: Sequence[TestPattern], faults: Iterable[TransitionFault]
    ) -> dict[TransitionFault, list[int]]:
        result = self.simulator.simulate(patterns, faults, drop_detected=True)
        return result.detections

    def _generate_for_fault(
        self, fault: TransitionFault
    ) -> tuple[TestPattern | None, list[PodemStatus]]:
        statuses: list[PodemStatus] = []
        for procedure in self._ordered_procedures():
            view = self._view(procedure)
            engine = self._engine(procedure)
            stuck, required = view.transition_requirements(fault)
            if not engine.observable(stuck.site.node):
                statuses.append(PodemStatus.UNTESTABLE)
                continue
            result = engine.run(stuck, required)
            metrics = active_metrics()
            if metrics is not None:
                metrics.inc("atpg.backtracks", result.backtracks)
                metrics.inc("atpg.decisions", result.decisions)
            statuses.append(result.status)
            if result.found:
                scan_load, pi_frames = view.pattern_fields(result.assignment)
                pattern = TestPattern(
                    procedure=procedure,
                    scan_load=scan_load,
                    pi_frames=pi_frames,
                    observe_pos=self.setup.observe_pos,
                )
                return pattern, statuses
        return None, statuses

    # -------------------------------------------------------------- internals
    def _ordered_procedures(self) -> list[NamedCaptureProcedure]:
        """Cheapest first: fewer pulses, intra-domain before inter-domain."""
        return sorted(
            self.setup.procedures,
            key=lambda p: (p.num_pulses, p.is_inter_domain, p.name),
        )

    def _view(self, procedure: NamedCaptureProcedure) -> TimeFrameView:
        if procedure.name not in self._views:
            self._views[procedure.name] = build_timeframe_view(
                self.model, self.domain_map, procedure, self.setup
            )
        return self._views[procedure.name]

    def _engine(self, procedure: NamedCaptureProcedure) -> PodemEngine:
        if procedure.name not in self._engines:
            view = self._view(procedure)
            self._engines[procedure.name] = PodemEngine(
                model=view.model,
                controllable=view.controllable,
                fixed=view.fixed,
                observation=view.observation,
                backtrack_limit=self.options.backtrack_limit,
            )
        return self._engines[procedure.name]


def run_transition_atpg(
    model: CircuitModel,
    domain_map: ClockDomainMap,
    setup: TestSetup,
    faults: Sequence[TransitionFault] | None = None,
) -> AtpgResult:
    """Convenience wrapper: build and run a :class:`TransitionAtpg`."""
    return TransitionAtpg(model, domain_map, setup, faults).run()
