"""Stuck-at ATPG (experiment (a) of the paper and the general baseline).

Stuck-at test generation is the no-launch-condition case of the common ATPG
flow.  Like commercial tools, it may use multi-pulse "clock sequential"
capture procedures so that non-scan cells acquire known values before the
observing pulse; the fault is targeted (and simulated) in the final frame.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.atpg.config import TestSetup
from repro.atpg.generator import AtpgGenerator, AtpgResult
from repro.atpg.podem import PodemEngine, PodemStatus
from repro.atpg.timeframe import TimeFrameView, build_timeframe_view
from repro.clocking.domains import ClockDomainMap
from repro.clocking.named_capture import NamedCaptureProcedure
from repro.fault_sim.transition import TransitionFaultSimulator
from repro.faults.models import StuckAtFault, all_stuck_at_faults
from repro.obs.telemetry import active_metrics
from repro.patterns.pattern import TestPattern
from repro.simulation.model import CircuitModel


class StuckAtAtpg(AtpgGenerator):
    """Deterministic + random stuck-at test generation."""

    def __init__(
        self,
        model: CircuitModel,
        domain_map: ClockDomainMap,
        setup: TestSetup,
        faults: Sequence[StuckAtFault] | None = None,
    ) -> None:
        super().__init__(model, domain_map, setup, faults)
        self.simulator = TransitionFaultSimulator(model, domain_map, setup)
        self._views: dict[str, TimeFrameView] = {}
        self._engines: dict[str, PodemEngine] = {}

    # ------------------------------------------------------------------ hooks
    def _fault_universe(self) -> list[StuckAtFault]:
        return all_stuck_at_faults(self.model)

    def _fault_simulate(
        self, patterns: Sequence[TestPattern], faults: Iterable[StuckAtFault]
    ) -> dict[StuckAtFault, list[int]]:
        return self.simulator.simulate_stuck_at(patterns, faults, drop_detected=True)

    def _generate_for_fault(
        self, fault: StuckAtFault
    ) -> tuple[TestPattern | None, list[PodemStatus]]:
        statuses: list[PodemStatus] = []
        for procedure in self._ordered_procedures():
            view = self._view(procedure)
            engine = self._engine(procedure)
            expanded = view.expanded_stuck_at(fault, frame=view.capture_frame)
            if not engine.observable(expanded.site.node):
                statuses.append(PodemStatus.UNTESTABLE)
                continue
            result = engine.run(expanded)
            metrics = active_metrics()
            if metrics is not None:
                metrics.inc("atpg.backtracks", result.backtracks)
                metrics.inc("atpg.decisions", result.decisions)
            statuses.append(result.status)
            if result.found:
                scan_load, pi_frames = view.pattern_fields(result.assignment)
                pattern = TestPattern(
                    procedure=procedure,
                    scan_load=scan_load,
                    pi_frames=pi_frames,
                    observe_pos=self.setup.observe_pos,
                )
                return pattern, statuses
        return None, statuses

    # -------------------------------------------------------------- internals
    def _ordered_procedures(self) -> list[NamedCaptureProcedure]:
        """Cheapest (fewest pulses) first."""
        return sorted(self.setup.procedures, key=lambda p: (p.num_pulses, p.name))

    def _view(self, procedure: NamedCaptureProcedure) -> TimeFrameView:
        if procedure.name not in self._views:
            self._views[procedure.name] = build_timeframe_view(
                self.model, self.domain_map, procedure, self.setup
            )
        return self._views[procedure.name]

    def _engine(self, procedure: NamedCaptureProcedure) -> PodemEngine:
        if procedure.name not in self._engines:
            view = self._view(procedure)
            self._engines[procedure.name] = PodemEngine(
                model=view.model,
                controllable=view.controllable,
                fixed=view.fixed,
                observation=view.observation,
                backtrack_limit=self.options.backtrack_limit,
            )
        return self._engines[procedure.name]


def run_stuck_at_atpg(
    model: CircuitModel,
    domain_map: ClockDomainMap,
    setup: TestSetup,
    faults: Sequence[StuckAtFault] | None = None,
) -> AtpgResult:
    """Convenience wrapper: build and run a :class:`StuckAtAtpg`."""
    return StuckAtAtpg(model, domain_map, setup, faults).run()
