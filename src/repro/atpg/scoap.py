"""SCOAP-style testability measures used to guide PODEM's backtrace.

Controllability values (CC0/CC1) estimate how many primary-input assignments
it takes to set a node to 0/1; observability (CO) estimates how far a node is
from an observation point.  The numbers only have to be *relatively* right —
they steer decisions, they never decide testability — so the implementation
is the classic Goldstein formulation with saturation, extended with two
notions the delay-test flow needs:

* nodes that a test setup fixes to a constant are free to control towards the
  constant and impossible to control the other way;
* nodes that the setup forces to X (non-scan state, RAM outputs) are
  impossible to control either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.netlist.gates import GateType
from repro.simulation.logic import Logic
from repro.simulation.model import CircuitModel, NodeKind

#: Saturation value: effectively "uncontrollable"/"unobservable".
INFINITE_COST = 10**6


@dataclass
class TestabilityMeasures:
    """Per-node controllability/observability estimates."""

    cc0: list[int]
    cc1: list[int]
    observability: list[int]

    def controllability(self, node: int, value: Logic) -> int:
        if value is Logic.ZERO:
            return self.cc0[node]
        if value is Logic.ONE:
            return self.cc1[node]
        return 0

    def hardest_input(self, inputs: Sequence[int], value: Logic) -> int | None:
        """Input with the highest (finite or not) cost to reach ``value``."""
        if not inputs:
            return None
        return max(inputs, key=lambda idx: self.controllability(idx, value))

    def easiest_input(self, inputs: Sequence[int], value: Logic) -> int | None:
        if not inputs:
            return None
        return min(inputs, key=lambda idx: self.controllability(idx, value))


def compute_testability(
    model: CircuitModel,
    controllable: set[int] | None = None,
    fixed: Mapping[int, Logic] | None = None,
    observation: Sequence[int] | None = None,
) -> TestabilityMeasures:
    """Compute SCOAP controllability and observability for a model.

    Args:
        model: Circuit (base or time-frame expanded).
        controllable: Node indices the ATPG may assign; defaults to all source
            nodes (PI/PPI/RAM_OUT).
        fixed: Nodes tied to a constant (or to X) by the test setup.
        observation: Observation points; defaults to the model's POs plus
            flip-flop D inputs.

    Returns:
        The per-node measures (saturated at :data:`INFINITE_COST`).
    """
    fixed = dict(fixed or {})
    if controllable is None:
        controllable = {
            n.index
            for n in model.nodes
            if n.kind in (NodeKind.PI, NodeKind.PPI, NodeKind.RAM_OUT) and n.index not in fixed
        }
    if observation is None:
        observation = model.observation_nodes()

    cc0 = [INFINITE_COST] * model.num_nodes
    cc1 = [INFINITE_COST] * model.num_nodes

    for node in model.nodes:
        idx = node.index
        if node.kind is NodeKind.CONST0:
            cc0[idx], cc1[idx] = 0, INFINITE_COST
        elif node.kind is NodeKind.CONST1:
            cc0[idx], cc1[idx] = INFINITE_COST, 0
        elif idx in fixed:
            value = fixed[idx]
            if value is Logic.ZERO:
                cc0[idx], cc1[idx] = 0, INFINITE_COST
            elif value is Logic.ONE:
                cc0[idx], cc1[idx] = INFINITE_COST, 0
            else:  # forced unknown
                cc0[idx], cc1[idx] = INFINITE_COST, INFINITE_COST
        elif idx in controllable:
            cc0[idx], cc1[idx] = 1, 1
        elif node.kind is not NodeKind.GATE:
            # Unassignable source (e.g. non-scan state not fixed explicitly).
            cc0[idx], cc1[idx] = INFINITE_COST, INFINITE_COST
        else:
            zero, one = _gate_controllability(node.gtype, node.fanin, cc0, cc1)
            cc0[idx], cc1[idx] = min(zero, INFINITE_COST), min(one, INFINITE_COST)

    observability = _compute_observability(model, cc0, cc1, observation)
    return TestabilityMeasures(cc0=cc0, cc1=cc1, observability=observability)


def _sum(costs: Sequence[int]) -> int:
    return min(INFINITE_COST, sum(min(c, INFINITE_COST) for c in costs))


def _gate_controllability(
    gtype: GateType | None, fanin: tuple[int, ...], cc0: list[int], cc1: list[int]
) -> tuple[int, int]:
    if gtype in (GateType.BUF,):
        return cc0[fanin[0]] + 1, cc1[fanin[0]] + 1
    if gtype is GateType.NOT:
        return cc1[fanin[0]] + 1, cc0[fanin[0]] + 1
    if gtype in (GateType.AND, GateType.NAND):
        zero = min(cc0[i] for i in fanin) + 1
        one = _sum([cc1[i] for i in fanin]) + 1
        if gtype is GateType.NAND:
            zero, one = one, zero
        return zero, one
    if gtype in (GateType.OR, GateType.NOR):
        one = min(cc1[i] for i in fanin) + 1
        zero = _sum([cc0[i] for i in fanin]) + 1
        if gtype is GateType.NOR:
            zero, one = one, zero
        return zero, one
    if gtype in (GateType.XOR, GateType.XNOR):
        # Two-input approximation applied pairwise.
        zero, one = cc0[fanin[0]], cc1[fanin[0]]
        for idx in fanin[1:]:
            new_zero = min(zero + cc0[idx], one + cc1[idx]) + 1
            new_one = min(zero + cc1[idx], one + cc0[idx]) + 1
            zero, one = min(new_zero, INFINITE_COST), min(new_one, INFINITE_COST)
        if gtype is GateType.XNOR:
            zero, one = one, zero
        return zero, one
    if gtype is GateType.MUX2:
        sel, a, b = fanin
        zero = min(cc0[sel] + cc0[a], cc1[sel] + cc0[b]) + 1
        one = min(cc0[sel] + cc1[a], cc1[sel] + cc1[b]) + 1
        return min(zero, INFINITE_COST), min(one, INFINITE_COST)
    return INFINITE_COST, INFINITE_COST


def _compute_observability(
    model: CircuitModel, cc0: list[int], cc1: list[int], observation: Sequence[int]
) -> list[int]:
    observability = [INFINITE_COST] * model.num_nodes
    for idx in observation:
        observability[idx] = 0
    # Walk nodes from outputs towards inputs (reverse topological order).
    for node in sorted(model.nodes, key=lambda n: -n.level):
        own = observability[node.index]
        if node.kind is not NodeKind.GATE or own >= INFINITE_COST:
            continue
        gtype = node.gtype
        for pin, src in enumerate(node.fanin):
            cost = own + 1
            if gtype in (GateType.AND, GateType.NAND):
                cost += _sum([cc1[i] for p, i in enumerate(node.fanin) if p != pin])
            elif gtype in (GateType.OR, GateType.NOR):
                cost += _sum([cc0[i] for p, i in enumerate(node.fanin) if p != pin])
            elif gtype in (GateType.XOR, GateType.XNOR):
                cost += _sum(
                    [min(cc0[i], cc1[i]) for p, i in enumerate(node.fanin) if p != pin]
                )
            elif gtype is GateType.MUX2:
                if pin == 0:
                    cost += min(cc0[node.fanin[1]] + cc1[node.fanin[2]],
                                cc1[node.fanin[1]] + cc0[node.fanin[2]])
                else:
                    select_value = cc0 if pin == 1 else cc1
                    cost += select_value[node.fanin[0]]
            observability[src] = min(observability[src], min(cost, INFINITE_COST))
    return observability
