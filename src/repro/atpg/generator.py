"""Shared ATPG driver: random phase, deterministic PODEM phase, compaction.

The paper's experiments (a)–(e) all run "compatible ATPG settings" against
different clocking/constraint environments.  This module implements that
common flow once; :mod:`repro.atpg.stuck_at` and :mod:`repro.atpg.transition`
specialize the fault universe, the fault simulator and the PODEM targeting.

Flow per experiment:

1. build the collapsed fault list;
2. *random phase* — batches of fully-specified random patterns are fault
   simulated with fault dropping; only patterns that are the first detector
   of some fault are kept;
3. *deterministic phase* — every remaining fault is targeted with PODEM under
   each allowed capture procedure until a test is found, the fault is proven
   untestable under every procedure, or the backtrack limit aborts it;
   generated patterns stay partially specified and are merged into a dynamic
   compaction window;
4. every committed pattern is X-filled and fault simulated once more: the
   coverage credited to the experiment comes from this independent fault
   simulation, never from PODEM's claim alone;
5. the result carries the pattern set, the annotated fault list, the coverage
   report and the generator statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.atpg.compaction import CompactionStats, DynamicCompactor
from repro.atpg.config import TestSetup
from repro.atpg.podem import PodemStatus
from repro.atpg.random_fill import derive_rng, fill_pattern, random_pattern_batch
from repro.clocking.domains import ClockDomainMap
from repro.faults.collapse import collapse_faults
from repro.obs.telemetry import active_metrics, active_tracer
from repro.faults.fault_list import CoverageReport, FaultList, FaultStatus
from repro.patterns.pattern import PatternSet, TestPattern
from repro.simulation.model import CircuitModel


@dataclass
class AtpgStatistics:
    """Counters describing one ATPG run."""

    random_patterns_simulated: int = 0
    random_patterns_kept: int = 0
    random_detections: int = 0
    deterministic_patterns: int = 0
    deterministic_detections: int = 0
    opportunistic_detections: int = 0
    podem_runs: int = 0
    podem_tests_found: int = 0
    podem_aborts: int = 0
    podem_untestable: int = 0
    proven_untestable: int = 0
    unconfirmed_podem_tests: int = 0
    merged_patterns: int = 0
    runtime_seconds: float = 0.0

    def as_dict(self) -> dict[str, float | int]:
        return dict(self.__dict__)


@dataclass
class AtpgResult:
    """Everything one Table 1 row needs."""

    setup_name: str
    patterns: PatternSet
    fault_list: FaultList
    coverage: CoverageReport
    stats: AtpgStatistics
    compaction: CompactionStats

    @property
    def pattern_count(self) -> int:
        return len(self.patterns)

    @property
    def test_coverage(self) -> float:
        return self.coverage.test_coverage

    @property
    def fault_coverage(self) -> float:
        return self.coverage.fault_coverage

    def summary(self) -> dict[str, object]:
        return {
            "experiment": self.setup_name,
            "test_coverage_percent": round(self.coverage.test_coverage, 2),
            "fault_coverage_percent": round(self.coverage.fault_coverage, 2),
            "atpg_effectiveness_percent": round(self.coverage.atpg_effectiveness, 2),
            "pattern_count": self.pattern_count,
        }


class AtpgGenerator:
    """Base class implementing the common ATPG flow.

    Subclasses provide the fault universe, the fault simulator and the
    per-fault deterministic targeting.
    """

    def __init__(
        self,
        model: CircuitModel,
        domain_map: ClockDomainMap,
        setup: TestSetup,
        faults: Sequence | None = None,
    ) -> None:
        self.model = model
        self.domain_map = domain_map
        self.setup = setup
        self.options = setup.options
        # Explicit value-seeded RNG (threaded down from ScenarioSpec.rng_seed
        # via AtpgOptions.random_seed): runs are bit-reproducible across
        # engine backends and shard counts.
        self.rng = derive_rng(self.options.random_seed)

        universe = list(faults) if faults is not None else self._fault_universe()
        collapse = collapse_faults(model, universe)
        self.fault_list: FaultList = FaultList(collapse.representatives)
        class_sizes: dict = {}
        for fault, representative in collapse.class_of.items():
            class_sizes[representative] = class_sizes.get(representative, 0) + 1
        for representative, size in class_sizes.items():
            self.fault_list.set_uncollapsed_count(representative, size)

        constraints = setup.effective_pin_constraints()
        self.scan_flops = [
            e.name for e in model.state_elements if e.flop.is_scan
        ]
        self.free_inputs = [
            model.nodes[idx].net
            for idx in model.pi_nodes
            if model.nodes[idx].net not in constraints
        ]
        self.stats = AtpgStatistics()
        self.compaction_stats = CompactionStats()

        if self.options.prune_untestable:
            # Static pre-pass (repro.analyze): faults provably dead under the
            # setup's constraints leave the target set before any pattern is
            # generated.  Pure structure + constants, so the prune set and
            # the resulting accounting are backend-independent.
            from repro.analyze.testability import prune_fault_list

            prune_report = prune_fault_list(self.fault_list, model, setup=setup)
            self.stats.proven_untestable = prune_report.num_untestable

    # ------------------------------------------------------------------ hooks
    def _fault_universe(self) -> list:
        raise NotImplementedError

    def _fault_simulate(
        self, patterns: Sequence[TestPattern], faults: Iterable
    ) -> dict:
        """Return fault -> list of detecting pattern indices (within ``patterns``)."""
        raise NotImplementedError

    def _generate_for_fault(self, fault) -> tuple[TestPattern | None, list[PodemStatus]]:
        """Target one fault deterministically; return (pattern, statuses per procedure)."""
        raise NotImplementedError

    # -------------------------------------------------------------------- run
    def run(self) -> AtpgResult:
        """Execute the full ATPG flow and return the experiment result."""
        start = time.perf_counter()
        pattern_set = PatternSet()
        tracer = active_tracer()

        try:
            with tracer.span("atpg:random_phase", setup=self.setup.name):
                self._random_phase(pattern_set)
            with tracer.span("atpg:deterministic_phase", setup=self.setup.name):
                self._deterministic_phase(pattern_set)
        finally:
            # Release the fault simulator's engine worker pools so a long
            # sweep of scenarios does not accumulate idle processes (pooled
            # backends respawn lazily if this generator runs again).
            simulator = getattr(self, "simulator", None)
            if simulator is not None:
                simulator.close()

        self.stats.runtime_seconds = time.perf_counter() - start
        metrics = active_metrics()
        if metrics is not None:
            # Fold this run's statistics into the ambient registry — counters
            # aggregate across every scenario of a session/campaign run.
            stats = self.stats
            metrics.inc("atpg.podem_runs", stats.podem_runs)
            metrics.inc("atpg.podem_aborts", stats.podem_aborts)
            metrics.inc("atpg.podem_untestable", stats.podem_untestable)
            metrics.inc("atpg.random_patterns_simulated",
                        stats.random_patterns_simulated)
            metrics.inc("atpg.patterns_kept",
                        stats.random_patterns_kept + stats.deterministic_patterns)
            metrics.inc("atpg.patterns_compacted",
                        self.compaction_stats.successful_merges)
            metrics.observe("atpg.run_seconds", stats.runtime_seconds)
        coverage = self.fault_list.coverage()
        return AtpgResult(
            setup_name=self.setup.name,
            patterns=pattern_set,
            fault_list=self.fault_list,
            coverage=coverage,
            stats=self.stats,
            compaction=self.compaction_stats,
        )

    # ----------------------------------------------------------- random phase
    def _random_phase(self, pattern_set: PatternSet) -> None:
        options = self.options
        procedures = list(self.setup.procedures)
        consecutive_useless = 0
        for _ in range(options.random_pattern_batches):
            remaining = self.fault_list.with_status(FaultStatus.UNDETECTED)
            if not remaining:
                break
            batch = random_pattern_batch(
                procedures,
                self.scan_flops,
                self.free_inputs,
                options.patterns_per_batch,
                self.rng,
                hold_pis=self.setup.hold_pis,
                observe_pos=self.setup.observe_pos,
            )
            self.stats.random_patterns_simulated += len(batch)
            detections = self._fault_simulate(batch, remaining)
            kept_index: dict[int, int] = {}
            newly_detected = 0
            for fault, hits in detections.items():
                if not hits:
                    continue
                first = min(hits)
                if first not in kept_index:
                    kept_index[first] = pattern_set.add(batch[first])
                    self.stats.random_patterns_kept += 1
                self.fault_list.mark_detected(fault, kept_index[first])
                newly_detected += 1
            self.stats.random_detections += newly_detected
            if newly_detected == 0:
                consecutive_useless += 1
                if consecutive_useless >= 2:
                    break
            else:
                consecutive_useless = 0

    # ---------------------------------------------------- deterministic phase
    def _deterministic_phase(self, pattern_set: PatternSet) -> None:
        options = self.options
        compactor = DynamicCompactor(window=options.dynamic_compaction_limit)
        targets = list(self.fault_list.with_status(FaultStatus.UNDETECTED))
        for fault in targets:
            if options.max_patterns is not None and len(pattern_set) >= options.max_patterns:
                break
            if self.fault_list.status_of(fault) is not FaultStatus.UNDETECTED:
                continue
            pattern, statuses = self._generate_for_fault(fault)
            self.stats.podem_runs += len(statuses)
            self.stats.podem_aborts += sum(1 for s in statuses if s is PodemStatus.ABORTED)
            self.stats.podem_untestable += sum(
                1 for s in statuses if s is PodemStatus.UNTESTABLE
            )
            if pattern is not None:
                self.stats.podem_tests_found += 1
                pattern.target_faults.append(self._describe_fault(fault))
                # Provisionally detected: the commit simulation below confirms it.
                self.fault_list.mark_detected(fault, None)
                if options.dynamic_compaction:
                    evicted = compactor.add(pattern)
                else:
                    evicted = [pattern]
                for done in evicted:
                    self._commit_pattern(done, pattern_set)
            else:
                if statuses and all(s is PodemStatus.UNTESTABLE for s in statuses):
                    self.fault_list.set_status(fault, FaultStatus.ATPG_UNTESTABLE)
                elif statuses:
                    self.fault_list.set_status(fault, FaultStatus.ABORTED)
                else:
                    self.fault_list.set_status(fault, FaultStatus.ATPG_UNTESTABLE)
        with active_tracer().span(
            "atpg:compaction",
            attempted=compactor.stats.attempted_merges,
            merged=compactor.stats.successful_merges,
        ):
            for done in compactor.flush():
                self._commit_pattern(done, pattern_set)
        self.compaction_stats = compactor.stats

    def _commit_pattern(self, pattern: TestPattern, pattern_set: PatternSet) -> None:
        """Fill a deterministic pattern, verify it by fault simulation, commit it."""
        pattern.cube_scan_load = {
            cell: value for cell, value in pattern.scan_load.items() if value.is_known
        }
        filled = fill_pattern(pattern, self.rng, fill=self.options.fill)
        candidates = self.fault_list.with_status(FaultStatus.UNDETECTED, FaultStatus.DETECTED,
                                                 FaultStatus.ABORTED)
        # Restrict the confirmation simulation to provisionally-detected and
        # still-open faults to keep it cheap: confirmed = those whose record
        # has no pattern index yet plus undetected/aborted ones.
        to_check = [
            fault
            for fault in candidates
            if self.fault_list.record(fault).detected_by is None
            or self.fault_list.status_of(fault) in (FaultStatus.UNDETECTED, FaultStatus.ABORTED)
        ]
        detections = self._fault_simulate([filled], to_check)
        index = pattern_set.add(filled)
        self.stats.deterministic_patterns += 1
        confirmed = 0
        for fault, hits in detections.items():
            if not hits:
                continue
            previous = self.fault_list.status_of(fault)
            self.fault_list.mark_detected(fault, index)
            if previous is FaultStatus.DETECTED:
                confirmed += 1
            else:
                self.stats.opportunistic_detections += 1
        self.stats.deterministic_detections += confirmed
        # Any provisionally detected fault this pattern targeted but did not
        # actually detect goes back to undetected (PODEM result not confirmed).
        for fault in to_check:
            record = self.fault_list.record(fault)
            if record.status is FaultStatus.DETECTED and record.detected_by is None:
                if self._describe_fault(fault) in filled.target_faults:
                    record.status = FaultStatus.UNDETECTED
                    self.stats.unconfirmed_podem_tests += 1

    # ------------------------------------------------------------------ utils
    def _describe_fault(self, fault) -> str:
        describe = getattr(fault, "describe", None)
        if describe is None:
            return repr(fault)
        return describe(self.model)
