"""ATPG configuration: per-experiment constraints and knobs.

A :class:`TestSetup` captures everything the paper's Section 5.1 lists as the
differences between experiments (a)–(e): which named capture procedures the
clock generation hardware offers, whether primary outputs may be strobed,
whether primary inputs may change during the capture phase, pin constraints
(system reset held off, test-controller clock never pulsed, scan-enable
inactive during capture), and the ATPG effort knobs (random-fill batches,
backtrack limit, dynamic compaction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.clocking.named_capture import NamedCaptureProcedure
from repro.simulation.logic import Logic


@dataclass
class AtpgOptions:
    """Effort/behaviour knobs of the test generator itself.

    The ``sim_*`` fields select the execution backend of
    :mod:`repro.engine`: ``sim_backend`` is one of ``"serial"`` (interpreted
    reference path), ``"compiled"`` (default), ``"threads"`` or
    ``"processes"`` (compiled kernels over fault shards); ``sim_shards`` /
    ``sim_workers`` bound the sharding fan-out (``None`` == auto).  Every
    backend produces bit-identical patterns and coverage for a given
    ``random_seed``.

    ``prune_untestable`` runs the static untestability prover
    (:mod:`repro.analyze.testability`) before any pattern is generated:
    faults it proves dead are marked UNTESTABLE up front, so neither the
    random nor the deterministic phase spends time on them.  The prune set
    is computed from structure and constants alone, so it — and the
    resulting coverage accounting, which excludes UNTESTABLE faults from
    the test-coverage denominator — is identical on every backend.
    """

    backtrack_limit: int = 64
    random_pattern_batches: int = 8
    patterns_per_batch: int = 64
    random_seed: int = 2005
    dynamic_compaction: bool = True
    dynamic_compaction_limit: int = 24
    fill: str = "random"  # how unassigned scan cells / PIs are filled
    max_patterns: int | None = None
    sim_backend: str = "compiled"
    sim_shards: int | None = None
    sim_workers: int | None = None
    prune_untestable: bool = False


@dataclass
class TestSetup:
    """Constraint environment for one ATPG experiment.

    Attributes:
        name: Experiment label ("(a) stuck-at external clock", ...).
        procedures: Named capture procedures the clocking hardware offers.
        observe_pos: Whether primary outputs may be strobed by the tester
            during the capture phase (False == "mask outputs").
        hold_pis: Whether primary inputs must keep one value over all capture
            frames (True for every on-chip-clocked configuration).
        pin_constraints: Fixed values on primary inputs during capture
            (e.g. reset inactive, test-mode pins).
        scan_enable_net: Name of the scan-enable net, when scan exists.
        constrain_scan_enable: Force scan-enable to functional mode (0)
            during the capture phase.
        allow_nonscan_init: Whether the flow may rely on initialization pulses
            to set non-scan cells (true whenever some procedure has more than
            two pulses).
        options: ATPG effort knobs.
    """

    name: str
    procedures: Sequence[NamedCaptureProcedure]
    observe_pos: bool = True
    hold_pis: bool = True
    pin_constraints: dict[str, Logic] = field(default_factory=dict)
    scan_enable_net: str | None = None
    constrain_scan_enable: bool = True
    options: AtpgOptions = field(default_factory=AtpgOptions)

    def __post_init__(self) -> None:
        if not self.procedures:
            raise ValueError("a TestSetup needs at least one capture procedure")

    # ------------------------------------------------------------- properties
    @property
    def max_pulses(self) -> int:
        return max(p.num_pulses for p in self.procedures)

    @property
    def allows_inter_domain(self) -> bool:
        return any(p.is_inter_domain for p in self.procedures)

    @property
    def at_speed_domains(self) -> frozenset[str]:
        """Domains that some procedure pulses at speed."""
        domains: set[str] = set()
        for procedure in self.procedures:
            for pulse in procedure.pulses:
                if pulse.at_speed:
                    domains |= pulse.domains
        return frozenset(domains)

    @property
    def all_domains(self) -> frozenset[str]:
        domains: set[str] = set()
        for procedure in self.procedures:
            domains |= procedure.all_domains
        return frozenset(domains)

    def effective_pin_constraints(self) -> dict[str, Logic]:
        """Pin constraints including the scan-enable constraint when active."""
        constraints = dict(self.pin_constraints)
        if self.scan_enable_net is not None and self.constrain_scan_enable:
            constraints[self.scan_enable_net] = Logic.ZERO
        return constraints

    def procedure_by_name(self, name: str) -> NamedCaptureProcedure:
        for procedure in self.procedures:
            if procedure.name == name:
                return procedure
        raise KeyError(f"no capture procedure named {name!r}")

    def describe(self) -> str:
        lines = [f"TestSetup {self.name}"]
        lines.append(f"  procedures: {', '.join(p.name for p in self.procedures)}")
        lines.append(f"  observe POs: {self.observe_pos}, hold PIs: {self.hold_pis}")
        constraints = ", ".join(f"{n}={v}" for n, v in self.effective_pin_constraints().items())
        lines.append(f"  pin constraints: {constraints or 'none'}")
        return "\n".join(lines)
