"""Path-delay fault support: path selection and test generation.

The paper uses the transition fault model for its quantitative comparison but
notes that the CPF clocking equally supports path-delay patterns, and that
designers "select paths for path delay test ... carefully".  This module
provides that capability:

* :func:`select_critical_paths` enumerates the structurally longest paths
  (by library delay) from launch points (scan cell outputs / primary inputs)
  to capture points (scan cell D inputs / primary outputs);
* :class:`PathDelayAtpg` generates a broadside two-vector test per path by
  asking PODEM for the transition fault at the path's launch node with
  additional non-controlling side-input objectives along the path (a
  non-robust sensitization criterion).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.atpg.config import TestSetup
from repro.atpg.podem import PodemEngine, PodemStatus
from repro.atpg.timeframe import TimeFrameView, build_timeframe_view
from repro.clocking.domains import ClockDomainMap
from repro.clocking.named_capture import NamedCaptureProcedure
from repro.faults.models import FaultSite, PathDelayFault, TransitionFault, TransitionKind
from repro.netlist.library import DEFAULT_LIBRARY
from repro.patterns.pattern import TestPattern
from repro.simulation.logic import Logic
from repro.simulation.model import CircuitModel, NodeKind


def select_critical_paths(
    model: CircuitModel,
    count: int = 10,
    min_length: int = 2,
) -> list[PathDelayFault]:
    """Select the structurally longest launch-to-capture paths.

    Args:
        model: Base circuit model.
        count: Number of paths to return (each returned once per transition
            polarity would double it; a single rising-launch fault per path is
            returned, matching common practice of pairing later).
        min_length: Minimum number of nodes on the path.

    Returns:
        Up to ``count`` :class:`PathDelayFault` objects, longest first.
    """
    # Longest-delay DAG walk: arrival[n] = max over fanin + own delay.
    arrival: dict[int, float] = {}
    best_pred: dict[int, int | None] = {}
    for node in model.nodes:
        if node.kind is NodeKind.GATE:
            delay = DEFAULT_LIBRARY[node.gtype].delay_ps if node.gtype in DEFAULT_LIBRARY else 30.0
            best = 0.0
            pred: int | None = None
            for src in node.fanin:
                candidate = arrival.get(src, 0.0)
                if candidate >= best:
                    best = candidate
                    pred = src
            arrival[node.index] = best + delay
            best_pred[node.index] = pred
        else:
            arrival[node.index] = 0.0
            best_pred[node.index] = None

    capture_points: list[int] = [idx for _, idx in model.po_nodes]
    capture_points.extend(
        e.d_node for e in model.state_elements if e.d_node is not None
    )
    ranked = heapq.nlargest(count * 3, set(capture_points), key=lambda idx: arrival.get(idx, 0.0))

    paths: list[PathDelayFault] = []
    seen: set[tuple[int, ...]] = set()
    for endpoint in ranked:
        chain: list[int] = [endpoint]
        current = endpoint
        while best_pred.get(current) is not None:
            current = best_pred[current]
            chain.append(current)
        chain.reverse()
        if len(chain) < min_length:
            continue
        key = tuple(chain)
        if key in seen:
            continue
        seen.add(key)
        paths.append(PathDelayFault(nodes=key, rising=True))
        if len(paths) >= count:
            break
    return paths


@dataclass
class PathDelayTest:
    """Result of targeting one path-delay fault."""

    fault: PathDelayFault
    status: PodemStatus
    pattern: TestPattern | None = None


class PathDelayAtpg:
    """Non-robust path-delay test generation on top of the PODEM engine."""

    def __init__(
        self,
        model: CircuitModel,
        domain_map: ClockDomainMap,
        setup: TestSetup,
    ) -> None:
        self.model = model
        self.domain_map = domain_map
        self.setup = setup
        self._views: dict[str, TimeFrameView] = {}
        self._engines: dict[str, PodemEngine] = {}

    def generate(self, fault: PathDelayFault) -> PathDelayTest:
        """Generate a broadside test for one path-delay fault."""
        best_status = PodemStatus.UNTESTABLE
        for procedure in sorted(self.setup.procedures, key=lambda p: p.num_pulses):
            if procedure.num_pulses < 2:
                continue
            view = self._view(procedure)
            engine = self._engine(procedure)
            launch_node = fault.nodes[0]
            kind = TransitionKind.SLOW_TO_RISE if fault.rising else TransitionKind.SLOW_TO_FALL
            transition = TransitionFault(site=FaultSite(node=launch_node), kind=kind)
            stuck, required = view.transition_requirements(transition)
            required = list(required) + self._side_input_objectives(fault, view)
            if not engine.observable(stuck.site.node):
                continue
            result = engine.run(stuck, required)
            if result.found:
                scan_load, pi_frames = view.pattern_fields(result.assignment)
                pattern = TestPattern(
                    procedure=procedure,
                    scan_load=scan_load,
                    pi_frames=pi_frames,
                    observe_pos=self.setup.observe_pos,
                    target_faults=[fault.describe(self.model)],
                )
                return PathDelayTest(fault=fault, status=result.status, pattern=pattern)
            if result.status is PodemStatus.ABORTED:
                best_status = PodemStatus.ABORTED
        return PathDelayTest(fault=fault, status=best_status, pattern=None)

    def generate_all(self, faults: Sequence[PathDelayFault]) -> list[PathDelayTest]:
        return [self.generate(fault) for fault in faults]

    # -------------------------------------------------------------- internals
    def _side_input_objectives(
        self, fault: PathDelayFault, view: TimeFrameView
    ) -> list[tuple[int, Logic]]:
        """Non-controlling values on the off-path inputs along the path, in the
        capture frame (non-robust sensitization)."""
        objectives: list[tuple[int, Logic]] = []
        on_path = set(fault.nodes)
        for node_index in fault.nodes[1:]:
            node = self.model.nodes[node_index]
            if node.kind is not NodeKind.GATE or node.gtype is None:
                continue
            noncontrolling = node.gtype.controlling_value
            if noncontrolling is None:
                continue
            required_value = noncontrolling.invert()
            for src in node.fanin:
                if src in on_path:
                    continue
                expanded = view.frame_map[view.capture_frame][src]
                objectives.append((expanded, required_value))
        return objectives

    def _view(self, procedure: NamedCaptureProcedure) -> TimeFrameView:
        if procedure.name not in self._views:
            self._views[procedure.name] = build_timeframe_view(
                self.model, self.domain_map, procedure, self.setup
            )
        return self._views[procedure.name]

    def _engine(self, procedure: NamedCaptureProcedure) -> PodemEngine:
        if procedure.name not in self._engines:
            view = self._view(procedure)
            self._engines[procedure.name] = PodemEngine(
                model=view.model,
                controllable=view.controllable,
                fixed=view.fixed,
                observation=view.observation,
                backtrack_limit=self.setup.options.backtrack_limit,
            )
        return self._engines[procedure.name]
