"""Automatic test pattern generation: PODEM, stuck-at, transition, path delay."""

from repro.atpg.compaction import (
    CompactionStats,
    DynamicCompactor,
    compact_pattern_set,
    static_compaction,
)
from repro.atpg.config import AtpgOptions, TestSetup
from repro.atpg.generator import AtpgGenerator, AtpgResult, AtpgStatistics
from repro.atpg.path_delay import PathDelayAtpg, PathDelayTest, select_critical_paths
from repro.atpg.podem import PodemEngine, PodemResult, PodemStatus
from repro.atpg.random_fill import fill_pattern, random_pattern, random_pattern_batch
from repro.atpg.scoap import INFINITE_COST, TestabilityMeasures, compute_testability
from repro.atpg.stuck_at import StuckAtAtpg, run_stuck_at_atpg
from repro.atpg.timeframe import TimeFrameView, build_timeframe_view
from repro.atpg.transition import TransitionAtpg, run_transition_atpg

__all__ = [
    "AtpgGenerator",
    "AtpgOptions",
    "AtpgResult",
    "AtpgStatistics",
    "CompactionStats",
    "DynamicCompactor",
    "INFINITE_COST",
    "PathDelayAtpg",
    "PathDelayTest",
    "PodemEngine",
    "PodemResult",
    "PodemStatus",
    "StuckAtAtpg",
    "TestSetup",
    "TestabilityMeasures",
    "TimeFrameView",
    "TransitionAtpg",
    "build_timeframe_view",
    "compact_pattern_set",
    "compute_testability",
    "fill_pattern",
    "random_pattern",
    "random_pattern_batch",
    "run_stuck_at_atpg",
    "run_transition_atpg",
    "select_critical_paths",
    "static_compaction",
]
