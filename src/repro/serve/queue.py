"""Durable job queue and event journal for the serve plane (sqlite-backed).

One :class:`ServeQueue` is the persistent spine of a
:class:`~repro.serve.server.ServeServer`: submissions (a serialized
:class:`~repro.runtime.Plan` plus its pickled resource bindings) land in the
``jobs`` table, the service claims them one at a time under a crash-safe
lease, and every :class:`~repro.runtime.Event` the execution emits is
journaled to the ``events`` table in its stable wire form
(:meth:`~repro.runtime.Event.to_json`).  Both tables live in one sqlite file
in WAL mode, so a killed server loses nothing: on restart
:meth:`ServeQueue.recover` re-queues the claims the dead process held, and
the re-run resumes through the tenant's result cache — completed plan jobs
skip, the journal keeps both attempts, and tails replay seamlessly.

Terminology: a queue **job** is one whole submitted plan (the unit of
claiming and cancellation); the *plan jobs* inside it are the executor's
concern and only appear here through the journaled events.

Single-service-per-root model: exactly one server process owns a queue file
at a time (the lease machinery protects against *crashes*, not against two
live servers sharing a root), which is why :meth:`recover` may re-queue
every ``running`` job unconditionally at startup.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any

#: Every state a queued job moves through.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    tenant TEXT NOT NULL,
    name TEXT NOT NULL,
    state TEXT NOT NULL DEFAULT 'queued',
    plan TEXT NOT NULL,
    resources BLOB,
    metadata TEXT NOT NULL DEFAULT '{}',
    error TEXT,
    summary TEXT,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    attempts INTEGER NOT NULL DEFAULT 0,
    submitted_at REAL NOT NULL,
    started_at REAL,
    finished_at REAL,
    lease_deadline REAL
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs(state, id);
CREATE TABLE IF NOT EXISTS events (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    job INTEGER NOT NULL,
    recorded_at REAL NOT NULL,
    payload TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS events_job ON events(job, seq);
"""


class ServeQueue:
    """Crash-safe sqlite job queue with leased claims and an event journal.

    Thread-safe: one connection guarded by one lock (every operation is a
    short transaction, so contention is negligible next to plan execution).
    Claims use ``BEGIN IMMEDIATE`` so a claim is an atomic
    queued→running flip even under WAL; a claim carries a **lease** that the
    runner extends via :meth:`heartbeat` while the plan executes, and
    :meth:`requeue_expired` returns jobs whose lease lapsed (a crashed or
    wedged runner) to the queue.
    """

    def __init__(self, path: "Path | str", lease_seconds: float = 30.0) -> None:
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.lease_seconds = float(lease_seconds)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # ------------------------------------------------------------ submission
    def submit(
        self,
        tenant: str,
        name: str,
        plan_json: str,
        resources: "bytes | None" = None,
        metadata: "dict[str, Any] | None" = None,
    ) -> int:
        """Enqueue one serialized plan; returns the queue job id."""
        with self._lock:
            cursor = self._conn.execute(
                "INSERT INTO jobs (tenant, name, state, plan, resources, "
                "metadata, submitted_at) VALUES (?, ?, 'queued', ?, ?, ?, ?)",
                (
                    tenant,
                    name,
                    plan_json,
                    resources,
                    json.dumps(metadata or {}, sort_keys=True),
                    time.time(),
                ),
            )
            self._conn.commit()
            return int(cursor.lastrowid)

    # --------------------------------------------------------------- claiming
    def claim(self) -> "dict[str, Any] | None":
        """Atomically claim the oldest queued job (None when queue is idle).

        The claimed job flips to ``running`` with a fresh lease deadline and
        an incremented attempt counter; the returned dict carries everything
        the runner needs (including the plan JSON and the resources blob).
        """
        now = time.time()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            row = self._conn.execute(
                "SELECT id FROM jobs WHERE state = 'queued' ORDER BY id LIMIT 1"
            ).fetchone()
            if row is None:
                self._conn.commit()
                return None
            self._conn.execute(
                "UPDATE jobs SET state = 'running', started_at = ?, "
                "attempts = attempts + 1, lease_deadline = ? WHERE id = ?",
                (now, now + self.lease_seconds, row["id"]),
            )
            claimed = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (row["id"],)
            ).fetchone()
            self._conn.commit()
            return dict(claimed)

    def heartbeat(self, job_id: int) -> bool:
        """Extend a running job's lease; returns whether the job still runs."""
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET lease_deadline = ? "
                "WHERE id = ? AND state = 'running'",
                (time.time() + self.lease_seconds, job_id),
            )
            self._conn.commit()
            return cursor.rowcount > 0

    def requeue_expired(self) -> list[int]:
        """Return lapsed-lease ``running`` jobs to the queue; their ids.

        A lapsed lease means the claiming runner died (or wedged past its
        heartbeat) mid-plan.  Re-queued jobs keep their journal — on the
        next claim the execution resumes through the tenant cache, so work
        completed before the crash is never redone.
        """
        now = time.time()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            rows = self._conn.execute(
                "SELECT id FROM jobs WHERE state = 'running' "
                "AND lease_deadline IS NOT NULL AND lease_deadline < ?",
                (now,),
            ).fetchall()
            ids = [int(row["id"]) for row in rows]
            if ids:
                self._conn.executemany(
                    "UPDATE jobs SET state = 'queued', lease_deadline = NULL "
                    "WHERE id = ?",
                    [(job_id,) for job_id in ids],
                )
            self._conn.commit()
            return ids

    def recover(self) -> list[int]:
        """Startup recovery: re-queue every ``running`` job unconditionally.

        Valid under the single-service-per-root model — any ``running`` row
        seen at startup was claimed by a process that no longer exists.
        """
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            rows = self._conn.execute(
                "SELECT id FROM jobs WHERE state = 'running'"
            ).fetchall()
            ids = [int(row["id"]) for row in rows]
            if ids:
                self._conn.executemany(
                    "UPDATE jobs SET state = 'queued', lease_deadline = NULL "
                    "WHERE id = ?",
                    [(job_id,) for job_id in ids],
                )
            self._conn.commit()
            return ids

    # -------------------------------------------------------------- lifecycle
    def finish(
        self,
        job_id: int,
        state: str,
        error: "str | None" = None,
        summary: "dict[str, Any] | None" = None,
    ) -> None:
        """Move a running job to a terminal state (the runner's ack)."""
        if state not in TERMINAL_STATES:
            raise ValueError(
                f"finish() takes a terminal state {TERMINAL_STATES}, got {state!r}"
            )
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state = ?, error = ?, summary = ?, "
                "finished_at = ?, lease_deadline = NULL "
                "WHERE id = ? AND state = 'running'",
                (
                    state,
                    error,
                    json.dumps(summary, sort_keys=True) if summary else None,
                    time.time(),
                    job_id,
                ),
            )
            self._conn.commit()

    def request_cancel(self, job_id: int) -> "str | None":
        """Cancel a job; returns its state after the request (None == unknown).

        A ``queued`` job is cancelled outright; a ``running`` job gets its
        cancel flag raised (the runner observes it between events and stops
        scheduling new plan jobs); terminal jobs are left untouched.
        """
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            row = self._conn.execute(
                "SELECT state FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if row is None:
                self._conn.commit()
                return None
            state = row["state"]
            if state == "queued":
                self._conn.execute(
                    "UPDATE jobs SET state = 'cancelled', cancel_requested = 1, "
                    "finished_at = ? WHERE id = ?",
                    (time.time(), job_id),
                )
                state = "cancelled"
            elif state == "running":
                self._conn.execute(
                    "UPDATE jobs SET cancel_requested = 1 WHERE id = ?", (job_id,)
                )
            self._conn.commit()
            return state

    def cancel_requested(self, job_id: int) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT cancel_requested FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            return bool(row and row["cancel_requested"])

    # --------------------------------------------------------------- queries
    @staticmethod
    def _public(row: "sqlite3.Row | dict") -> dict[str, Any]:
        """A job row minus its payload columns (safe to put on the wire)."""
        data = dict(row)
        data.pop("plan", None)
        data.pop("resources", None)
        for key in ("metadata", "summary"):
            if data.get(key):
                try:
                    data[key] = json.loads(data[key])
                except (TypeError, json.JSONDecodeError):
                    pass
        return data

    def status(self, job_id: int) -> "dict[str, Any] | None":
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return self._public(row) if row is not None else None

    def payload(self, job_id: int) -> "tuple[str, bytes | None] | None":
        """The stored (plan JSON, resources blob) of one job."""
        with self._lock:
            row = self._conn.execute(
                "SELECT plan, resources FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            return None
        return row["plan"], row["resources"]

    def jobs(
        self, tenant: "str | None" = None, state: "str | None" = None
    ) -> list[dict[str, Any]]:
        query = "SELECT * FROM jobs"
        clauses, args = [], []
        if tenant is not None:
            clauses.append("tenant = ?")
            args.append(tenant)
        if state is not None:
            clauses.append("state = ?")
            args.append(state)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY id"
        with self._lock:
            rows = self._conn.execute(query, args).fetchall()
        return [self._public(row) for row in rows]

    def counts(self) -> dict[str, int]:
        """Jobs per state (every state present, zero included)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        found = {row["state"]: int(row["n"]) for row in rows}
        return {state: found.get(state, 0) for state in JOB_STATES}

    # ---------------------------------------------------------------- journal
    def append_event(self, job_id: int, payload: str) -> int:
        """Journal one wire-form event line; returns its sequence number."""
        with self._lock:
            cursor = self._conn.execute(
                "INSERT INTO events (job, recorded_at, payload) VALUES (?, ?, ?)",
                (job_id, time.time(), payload),
            )
            self._conn.commit()
            return int(cursor.lastrowid)

    def events_after(
        self, job_id: int, after: int = 0, limit: "int | None" = None
    ) -> list[tuple[int, str]]:
        """Journaled ``(seq, payload)`` lines of one job, oldest first."""
        query = (
            "SELECT seq, payload FROM events WHERE job = ? AND seq > ? "
            "ORDER BY seq"
        )
        args: list[Any] = [job_id, after]
        if limit is not None:
            query += " LIMIT ?"
            args.append(limit)
        with self._lock:
            rows = self._conn.execute(query, args).fetchall()
        return [(int(row["seq"]), row["payload"]) for row in rows]
