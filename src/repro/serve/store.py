"""Per-tenant result stores with byte quotas, on one shared cache root.

Every tenant of a :class:`~repro.serve.server.ServeServer` gets its own
namespace of the server's :class:`~repro.engine.cache.ResultCache`
(``<root>/tenant-<name>/...``), so cache-resume works per tenant and one
tenant's quota enforcement can never evict another's results.  Quotas ride
on the cache's own maintenance surface: usage comes from the exact
per-namespace accounting of :meth:`~repro.engine.cache.ResultCache.stats`
and eviction is :meth:`~repro.engine.cache.ResultCache.prune` on the
tenant's namespaced handle (oldest entries first).
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any

from repro.engine.cache import ResultCache, validate_namespace
from repro.obs.telemetry import active_metrics

#: Tenant namespaces are prefixed so they can never collide with the cache's
#: two-hex-char bucket directories, whatever the tenant is called.
_TENANT_PREFIX = "tenant-"


def tenant_namespace(tenant: str) -> str:
    """The cache namespace of one tenant (validates the tenant name)."""
    if not tenant:
        raise ValueError("a tenant needs a non-empty name")
    return validate_namespace(f"{_TENANT_PREFIX}{tenant}")


class TenantStore:
    """Namespaced result caches plus quota accounting for one serve root.

    Args:
        root: Directory holding every tenant's cache entries.
        default_quota_bytes: Byte quota applied to tenants without their own
            (``None`` == unlimited).
    """

    def __init__(
        self,
        root: "Path | str",
        default_quota_bytes: "int | None" = None,
    ) -> None:
        self.root = Path(root)
        if default_quota_bytes is not None and default_quota_bytes < 0:
            raise ValueError("default_quota_bytes must be non-negative")
        self.default_quota_bytes = default_quota_bytes
        self._root_cache = ResultCache(self.root)
        self._quotas: dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ caches
    def cache_for(self, tenant: str) -> ResultCache:
        """The tenant's namespaced cache handle (creates nothing on disk)."""
        return self._root_cache.namespaced(tenant_namespace(tenant))

    # ------------------------------------------------------------------ quotas
    def set_quota(self, tenant: str, max_bytes: "int | None") -> None:
        """Pin (or with ``None`` clear) one tenant's byte quota."""
        tenant_namespace(tenant)  # validate early
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        with self._lock:
            if max_bytes is None:
                self._quotas.pop(tenant, None)
            else:
                self._quotas[tenant] = int(max_bytes)

    def quota_for(self, tenant: str) -> "int | None":
        with self._lock:
            quota = self._quotas.get(tenant)
        return quota if quota is not None else self.default_quota_bytes

    # -------------------------------------------------------------- accounting
    def usage(self) -> dict[str, dict[str, Any]]:
        """Exact per-tenant usage: ``{tenant: {entries, payload_bytes, quota_bytes}}``.

        Derived from the root cache's per-namespace stats, so the numbers a
        quota decision reads are the same numbers the operator sees.
        Non-tenant namespaces (including the default one) are skipped.
        """
        namespaces = self._root_cache.stats()["namespaces"]
        usage: dict[str, dict[str, Any]] = {}
        for namespace, counts in namespaces.items():
            if not namespace.startswith(_TENANT_PREFIX):
                continue
            tenant = namespace[len(_TENANT_PREFIX):]
            usage[tenant] = {
                "entries": counts["entries"],
                "payload_bytes": counts["payload_bytes"],
                "quota_bytes": self.quota_for(tenant),
            }
        return usage

    def enforce(self, tenant: str) -> dict[str, int]:
        """Prune one tenant back under its quota (no-op without a quota).

        Returns the cache's prune summary (``removed`` == 0 when the tenant
        fits).  Eviction is oldest-first within the tenant's namespace only.
        """
        quota = self.quota_for(tenant)
        if quota is None:
            return {"removed": 0, "freed_bytes": 0}
        pruned = self.cache_for(tenant).prune(quota)
        if pruned["removed"]:
            metrics = active_metrics()
            if metrics is not None:
                metrics.inc("serve.quota_evictions", pruned["removed"])
        return pruned

    def enforce_all(self) -> dict[str, dict[str, int]]:
        """Quota-prune every tenant that currently holds entries."""
        return {tenant: self.enforce(tenant) for tenant in sorted(self.usage())}

    def stats(self) -> dict[str, Any]:
        """Root-level cache stats plus the per-tenant quota view."""
        stats = self._root_cache.stats()
        stats["tenants"] = self.usage()
        return stats
