"""Shared JSON-lines wire helpers for the serve plane.

Every serve socket (control server, remote workers) speaks the same framing:
one JSON object per ``\\n``-terminated line, with binary payloads (pickled
plans, resources, task results) carried as base64 strings under ``"blob"``
keys.  JSON carries the routing and bookkeeping; pickle carries the values —
the same split the event wire format uses
(:mod:`repro.runtime.events`), so every byte crossing a serve socket is
inspectable except the payloads that were never JSON to begin with.
"""

from __future__ import annotations

import base64
import json
from typing import Any, BinaryIO

#: Bump when the serve socket protocol changes incompatibly.
PROTOCOL_VERSION = 1


class ProtocolError(RuntimeError):
    """A peer sent something that is not a protocol line."""


def send_line(wfile: BinaryIO, message: dict[str, Any]) -> None:
    """Write one protocol line and flush it."""
    wfile.write(json.dumps(message, sort_keys=True).encode("utf-8") + b"\n")
    wfile.flush()


def recv_line(rfile: BinaryIO) -> "dict[str, Any] | None":
    """Read one protocol line (``None`` on a cleanly closed peer)."""
    line = rfile.readline()
    if not line:
        return None
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed protocol line: {line[:120]!r}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"protocol line is not an object: {line[:120]!r}")
    return message


def encode_blob(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def decode_blob(text: str) -> bytes:
    return base64.b64decode(text)


def parse_address(address: "str | tuple | list") -> tuple[str, int]:
    """Normalize ``"host:port"`` / ``(host, port)`` to a connect tuple."""
    if isinstance(address, (tuple, list)) and len(address) == 2:
        return str(address[0]), int(address[1])
    if isinstance(address, str) and ":" in address:
        host, _, port = address.rpartition(":")
        return host, int(port)
    raise ValueError(f"expected 'host:port' or (host, port), got {address!r}")


def format_address(address: "str | tuple | list") -> str:
    host, port = parse_address(address)
    return f"{host}:{port}"


def is_loopback(host: str) -> bool:
    """Whether a bind host stays on this machine.

    The serve wire carries pickles, so servers and workers refuse to bind
    anything else without an auth token.  ``""``/``"0.0.0.0"``/``"::"``
    (all interfaces) are deliberately *not* loopback.
    """
    return host == "localhost" or host == "::1" or host.startswith("127.")
