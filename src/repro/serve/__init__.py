"""repro.serve — persistent multi-tenant campaign service with remote workers.

The service plane turns the runtime execution plane into something that
outlives a Python process:

* :mod:`repro.serve.queue` — a durable sqlite job queue storing serialized
  :class:`~repro.runtime.Plan` graphs (states ``queued`` / ``running`` /
  ``done`` / ``failed`` / ``cancelled``) with crash-safe leased claims, plus
  the append-only event journal every execution streams into;
* :mod:`repro.serve.server` / :mod:`repro.serve.client` — a JSON-lines
  control protocol (``submit`` / ``status`` / ``events`` tail / ``cancel`` /
  ``results``) over a threading socket server, with
  :class:`~repro.serve.client.ServeClient` as the programmatic peer and
  ``Campaign.submit(client=...)`` as the front door;
* :mod:`repro.serve.store` — per-tenant namespaces of the engine
  :class:`~repro.engine.cache.ResultCache` with byte quotas and
  oldest-first eviction;
* :mod:`repro.serve.worker` — :class:`~repro.serve.worker.ServeWorker`
  execution slots and the ``remote``
  :class:`~repro.engine.scheduler.Backend` that ships executor waves to
  them (heartbeat leases, lost-shard requeue, local fallback).

Restart safety is the defining property: a killed server's claims are
re-queued on the next start, and because every execution runs against the
tenant's result cache, the resumed plan skips straight through its completed
jobs — zero re-runs, and the journal keeps the full event history across
attempts.

Quickstart::

    from repro.api import Campaign
    from repro.serve import ServeClient, ServeServer, ServeWorker

    server = ServeServer("/tmp/serve-root").start()
    workers = [
        ServeWorker(server_address=server.address).start() for _ in range(2)
    ]
    client = ServeClient(server.address)
    handle = Campaign(designs=["tiny"], scenarios=["a"]).submit(client)
    report = handle.report()          # byte-identical to Campaign.run()
"""

from repro.serve.client import ServeClient, ServeError, shippable_resources
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.queue import JOB_STATES, TERMINAL_STATES, ServeQueue
from repro.serve.server import ServeServer
from repro.serve.store import TenantStore, tenant_namespace
from repro.serve.worker import RemoteBackend, ServeWorker

__all__ = [
    "JOB_STATES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteBackend",
    "ServeClient",
    "ServeError",
    "ServeQueue",
    "ServeServer",
    "ServeWorker",
    "TERMINAL_STATES",
    "TenantStore",
    "shippable_resources",
    "tenant_namespace",
]
