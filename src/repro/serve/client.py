"""`ServeClient` — the programmatic peer of a :class:`ServeServer`.

One request per connection, JSON lines both ways.  Plans are submitted in
their declarative :meth:`~repro.runtime.Plan.to_dict` form plus a pickled
resource-bindings blob (the same shippable subset the executor sends to its
process workers, filtered through :func:`shippable_resources`); results come
back as journal replays — each plan job's latest value-bearing event, decoded
through :func:`~repro.runtime.event_from_json` so the caller receives real
:class:`~repro.runtime.Event` objects with real result values.

``Campaign.submit(client=...)`` builds on this to give campaigns a
fire-and-forget mode whose final :class:`~repro.api.campaign.CampaignReport`
is assembled by the exact same code path as ``Campaign.run()``.
"""

from __future__ import annotations

import pickle
import socket
import time
from typing import Any, Callable, Iterator, Mapping

from repro.runtime import Event, Plan, event_from_json
from repro.serve.protocol import (
    encode_blob,
    parse_address,
    recv_line,
    send_line,
)
from repro.serve.queue import TERMINAL_STATES


def shippable_resources(resources: "Mapping[str, Any] | None") -> dict[str, Any]:
    """The subset of a resources dict that crosses process boundaries.

    Mirrors the executor's own filtering for its process pool: private
    (``_``-prefixed) keys and the live ``scheduler`` binding stay behind.
    """
    if not resources:
        return {}
    return {
        key: value
        for key, value in resources.items()
        if not key.startswith("_") and key != "scheduler"
    }


class ServeError(RuntimeError):
    """The server answered a request with ``ok: false``."""


class ServeClient:
    """Talks the serve control protocol to one server address.

    ``token`` is the deployment's shared secret: when the server was
    started with ``auth_token=...``, every request must carry it.
    """

    def __init__(
        self,
        address: "str | tuple",
        timeout: float = 10.0,
        *,
        token: "str | None" = None,
    ) -> None:
        self.address = parse_address(address)
        self.timeout = timeout
        self.token = token

    # ------------------------------------------------------------- transport
    def _open(self):
        sock = socket.create_connection(self.address, timeout=self.timeout)
        return sock, sock.makefile("wb"), sock.makefile("rb")

    def _stamp(self, payload: dict[str, Any]) -> dict[str, Any]:
        if self.token is not None:
            payload["token"] = self.token
        return payload

    def _request(self, payload: dict[str, Any]) -> dict[str, Any]:
        sock, wfile, rfile = self._open()
        try:
            send_line(wfile, self._stamp(payload))
            reply = recv_line(rfile)
        finally:
            sock.close()
        if reply is None:
            raise ServeError("server closed the connection without replying")
        if not reply.get("ok"):
            raise ServeError(str(reply.get("error") or "request failed"))
        return reply

    # ------------------------------------------------------------------- ops
    def ping(self) -> bool:
        return bool(self._request({"op": "ping"}).get("pong"))

    def submit(
        self,
        plan: "Plan | Mapping[str, Any]",
        *,
        tenant: str = "default",
        name: "str | None" = None,
        resources: "Mapping[str, Any] | None" = None,
        metadata: "Mapping[str, Any] | None" = None,
    ) -> int:
        """Submit one plan for execution; returns the queue job id.

        ``resources`` may be the plan compiler's full bindings — they are
        filtered to the shippable subset and pickled here.  When ``plan`` is
        a :class:`~repro.runtime.Plan` with attached resources and none are
        passed explicitly, the attached ones ship.
        """
        if isinstance(plan, Plan):
            if resources is None:
                resources = plan.resources
            plan_dict = plan.to_dict()
        else:
            plan_dict = dict(plan)
        request: dict[str, Any] = {
            "op": "submit",
            "tenant": tenant,
            "name": name,
            "plan": plan_dict,
            "metadata": dict(metadata or {}),
        }
        shipped = shippable_resources(resources)
        if shipped:
            request["resources"] = encode_blob(pickle.dumps(shipped))
        return int(self._request(request)["job"])

    def status(self, job_id: int) -> dict[str, Any]:
        return self._request({"op": "status", "job": job_id})["job"]

    def jobs(self, tenant: "str | None" = None) -> list[dict[str, Any]]:
        return self._request({"op": "jobs", "tenant": tenant})["jobs"]

    def cancel(self, job_id: int) -> str:
        """Request cancellation; returns the job's state after the request."""
        return str(self._request({"op": "cancel", "job": job_id})["state"])

    def workers(self) -> list[str]:
        return list(self._request({"op": "workers"})["workers"])

    def stats(self) -> dict[str, Any]:
        return self._request({"op": "stats"})

    # ---------------------------------------------------------------- events
    def events(
        self,
        job_id: int,
        after: int = 0,
        *,
        follow: bool = False,
        timeout: "float | None" = None,
    ) -> Iterator[tuple[int, Event]]:
        """Yield ``(seq, Event)`` from the job's journal, oldest first.

        With ``follow`` the stream tails the journal until the job reaches a
        terminal state (the live-progress mode); without it, one snapshot of
        the journal so far.  ``seq`` values resume a tail: pass the last one
        back as ``after``.

        ``timeout`` bounds the *whole* stream (``None`` == no deadline).
        With no deadline the reads block indefinitely — safe even across
        long event-less gaps (one slow plan job, say), because a following
        server emits periodic keepalive lines, so the socket never sits on
        a per-read timeout that a healthy quiet job could trip.  A finite
        ``timeout`` raises :class:`TimeoutError` once the deadline passes,
        however quiet or busy the stream.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        sock, wfile, rfile = self._open()
        try:
            send_line(wfile, self._stamp({"op": "events", "job": job_id,
                                          "after": after, "follow": follow}))
            head = recv_line(rfile)
            if head is None or not head.get("ok"):
                raise ServeError(
                    str((head or {}).get("error") or "event stream refused")
                )
            while True:
                if deadline is None:
                    sock.settimeout(None)
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"serve job {job_id} event stream still open "
                            f"after {timeout:.1f}s"
                        )
                    sock.settimeout(remaining)
                try:
                    line = recv_line(rfile)
                except socket.timeout:
                    raise TimeoutError(
                        f"serve job {job_id} event stream still open "
                        f"after {timeout:.1f}s"
                    ) from None
                if line is None or line.get("end"):
                    return
                if line.get("keepalive"):
                    continue
                yield int(line["seq"]), event_from_json(line["event"])
        finally:
            sock.close()

    def wait(
        self,
        job_id: int,
        *,
        timeout: "float | None" = None,
        on_event: "Callable[[Event], None] | None" = None,
    ) -> dict[str, Any]:
        """Block until the job is terminal, streaming events along the way.

        Returns the job's final status dict.  ``timeout`` bounds the whole
        wait (``None`` == forever — the event stream blocks without any
        per-read socket timeout, so arbitrarily long gaps between events
        are fine); events observed more than once (a requeued job replays
        its journal from the start) are delivered as they appear —
        idempotent consumers, like the campaign report assembler, fold
        them naturally.
        """
        for _, event in self.events(job_id, follow=True, timeout=timeout):
            if on_event is not None:
                on_event(event)
        status = self.status(job_id)
        if status["state"] not in TERMINAL_STATES:
            raise ServeError(
                f"event stream ended but job {job_id} is {status['state']!r}"
            )
        return status

    # ---------------------------------------------------------------- results
    def results(self, job_id: int) -> dict[str, Event]:
        """Each plan job's latest result-bearing event, values decoded."""
        reply = self._request({"op": "results", "job": job_id})
        return {
            plan_job: event_from_json(wire)
            for plan_job, wire in reply["results"].items()
        }
