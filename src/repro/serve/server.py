"""The serve control plane: a persistent multi-tenant campaign service.

One :class:`ServeServer` owns three things rooted in one directory:

* the durable :class:`~repro.serve.queue.ServeQueue`
  (``<root>/queue.sqlite``) — submissions, claims, the event journal;
* the :class:`~repro.serve.store.TenantStore` (``<root>/cache``) — one
  result-cache namespace per tenant, with byte quotas;
* a worker registry — :class:`~repro.serve.worker.ServeWorker` processes
  register their addresses over the control socket and re-register
  periodically; entries older than ``worker_ttl`` are considered dead.

A single **runner thread** drains the queue: each claimed job's plan is
rehydrated (:meth:`~repro.runtime.Plan.from_dict` plus the pickled resource
bindings shipped at submit time) and executed on a
:class:`~repro.runtime.Executor` — backend ``remote`` over the live workers
when any are registered, the server's local backend otherwise.  The
execution's events are journaled through a detachable executor sink
(:meth:`~repro.runtime.Executor.add_event_sink`), which doubles as the lease
heartbeat and the cancellation poll.  Because the executor runs with the
tenant's cache attached, a requeued job (server crash, lapsed lease) resumes
with every completed plan job served from cache — zero re-runs.

The control socket speaks the JSON-lines protocol of
:mod:`repro.serve.protocol`; :class:`~repro.serve.client.ServeClient` is the
programmatic peer.  ``stop(abort=True)`` simulates a crash for tests: the
runner is stopped *without* acking its claim, exactly the state a killed
process leaves behind.

.. warning:: **Trust boundary.**  The serve wire carries pickles — submitted
   resource bindings are unpickled by the server and shipped task payloads
   are unpickled and *executed* by workers — so anyone who can reach a serve
   socket can run arbitrary code.  The plane is designed for a loopback or
   single-trust-domain deployment: binding a non-loopback interface requires
   ``auth_token=...``, a shared secret checked on every request
   (:class:`~repro.serve.client.ServeClient` and
   :class:`~repro.serve.worker.ServeWorker` take the same token).  The token
   authenticates the *deployment*, not tenants: every token holder can
   submit as any tenant and inspect any job, so tenant namespaces and quotas
   are resource isolation, not a security boundary.
"""

from __future__ import annotations

import hmac
import json
import pickle
import socketserver
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any

from repro.obs.telemetry import Telemetry, coerce_telemetry
from repro.runtime import EXECUTOR_BACKENDS, Executor, Plan
import repro.serve.worker  # noqa: F401 - registers the "remote" backend
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_blob,
    format_address,
    is_loopback,
    recv_line,
    send_line,
)
from repro.serve.queue import TERMINAL_STATES, ServeQueue
from repro.serve.store import TenantStore, tenant_namespace


class _ControlServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ServeServer:
    """Persistent campaign service: control socket + queue runner.

    Args:
        root: Service state directory (queue db, tenant caches).
        host/port: Control socket bind address (port 0 == ephemeral).
        local_backend: Executor backend used when no remote worker is live
            (one of :data:`~repro.runtime.EXECUTOR_BACKENDS`).
        max_workers: Worker-pool size forwarded to the executor.
        default_quota_bytes: Per-tenant cache quota (``None`` == unlimited).
        lease_seconds: Queue claim lease (heartbeat-extended while running).
        worker_ttl: Seconds after which a silent worker registration expires.
        keepalive_seconds: Interval of keepalive lines on quiet following
            event streams, so tailing clients' reads never starve between
            events of a long-running plan job.
        auth_token: Shared secret required on every request (``ping``
            excepted).  **Mandatory for non-loopback binds** — the wire
            carries pickles, so an open socket is arbitrary code execution;
            see the module docstring for the trust model.
        telemetry: Service-wide :class:`~repro.obs.Telemetry`; activated
            around every queued execution, so ``serve.*`` counters and the
            full executor/engine span tree land in one place.
    """

    def __init__(
        self,
        root: "Path | str",
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        local_backend: str = "serial",
        max_workers: "int | None" = None,
        default_quota_bytes: "int | None" = None,
        lease_seconds: float = 30.0,
        worker_ttl: float = 15.0,
        poll_seconds: float = 0.05,
        keepalive_seconds: float = 1.0,
        auth_token: "str | None" = None,
        telemetry: "Telemetry | bool | None" = None,
    ) -> None:
        if local_backend not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"unknown local backend {local_backend!r} "
                f"(expected one of {EXECUTOR_BACKENDS})"
            )
        if auth_token is None and not is_loopback(host):
            raise ValueError(
                f"refusing to bind serve control socket on {host!r} without "
                "auth_token: the wire carries pickles (arbitrary code "
                "execution for any peer that can reach the socket)"
            )
        self.root = Path(root)
        self.queue = ServeQueue(self.root / "queue.sqlite", lease_seconds)
        self.store = TenantStore(self.root / "cache", default_quota_bytes)
        self.local_backend = local_backend
        self.max_workers = max_workers
        self.worker_ttl = worker_ttl
        self.poll_seconds = poll_seconds
        self.keepalive_seconds = keepalive_seconds
        self.auth_token = auth_token
        self.telemetry = coerce_telemetry(telemetry)
        self._workers: dict[str, float] = {}
        self._workers_lock = threading.Lock()
        self._stop = threading.Event()
        self._abort = threading.Event()
        self._accept_thread: "threading.Thread | None" = None
        self._runner_thread: "threading.Thread | None" = None
        self._active_executor: "Executor | None" = None
        server = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                try:
                    request = recv_line(self.rfile)
                except ProtocolError as exc:
                    send_line(self.wfile, {"ok": False, "error": str(exc)})
                    return
                if request is None:
                    return
                if not server._authorized(request):
                    send_line(self.wfile,
                              {"ok": False, "error": "authentication failed"})
                    return
                try:
                    server._handle(request, self.wfile)
                except BrokenPipeError:
                    pass
                except Exception as exc:  # noqa: BLE001 - reply, never crash
                    try:
                        send_line(
                            self.wfile,
                            {"ok": False, "error": f"{type(exc).__name__}: {exc}"},
                        )
                    except OSError:
                        pass

        self._tcp = _ControlServer((host, port), Handler)

    # -------------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple[str, int]:
        return self._tcp.server_address[0], self._tcp.server_address[1]

    def _authorized(self, request: dict[str, Any]) -> bool:
        """Shared-secret check on every request (``ping`` stays open)."""
        if self.auth_token is None or request.get("op") == "ping":
            return True
        return hmac.compare_digest(
            str(request.get("token") or ""), self.auth_token
        )

    def start(self) -> "ServeServer":
        """Start the control socket and the runner; recovers stale claims.

        Recovery is what makes restarts seamless: any job a dead process
        left ``running`` is re-queued before the runner starts, and its
        re-execution resumes through the tenant cache.
        """
        recovered = self.queue.recover()
        if recovered and self.telemetry:
            self.telemetry.metrics.inc("serve.recovered_jobs", len(recovered))
        accept = threading.Thread(target=self._tcp.serve_forever, daemon=True)
        runner = threading.Thread(target=self._run_loop, daemon=True)
        accept.start()
        runner.start()
        self._accept_thread = accept
        self._runner_thread = runner
        return self

    def stop(self, abort: bool = False) -> None:
        """Stop the service.

        ``abort=True`` simulates a crash: the in-flight claim (if any) is
        *not* acked — its queue row stays ``running``, exactly as a killed
        process would leave it, so the next :meth:`start` on the same root
        recovers and resumes it.  ``abort=False`` waits for the current job
        to finish normally, however long it runs — the queue only closes
        once the runner has actually exited, so a slow job can never hit a
        closed database in its event sink or its terminal ack.
        """
        runner = self._runner_thread
        if abort:
            self._abort.set()
            executor = self._active_executor
            if executor is not None:
                executor.cancel()
        self._stop.set()
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=10.0)
        if runner is not None:
            # A graceful stop owes the in-flight job its normal completion:
            # join without a deadline.  An abort cancelled the executor, so
            # a bounded join suffices (and guards against a wedged cancel).
            runner.join() if not abort else runner.join(timeout=10.0)
        self._accept_thread = None
        self._runner_thread = None
        if runner is None or not runner.is_alive():
            self.queue.close()

    # ---------------------------------------------------------------- workers
    def register_worker(self, address: str) -> None:
        address = format_address(address)
        with self._workers_lock:
            self._workers[address] = time.time()

    def live_workers(self) -> list[str]:
        """Addresses registered within the last ``worker_ttl`` seconds."""
        deadline = time.time() - self.worker_ttl
        with self._workers_lock:
            stale = [a for a, seen in self._workers.items() if seen < deadline]
            for address in stale:
                del self._workers[address]
            return sorted(self._workers)

    # ----------------------------------------------------------------- runner
    def _run_loop(self) -> None:
        while not self._stop.is_set():
            self.queue.requeue_expired()
            row = self.queue.claim()
            if row is None:
                self._stop.wait(self.poll_seconds)
                continue
            # Activated so ambient active_metrics()/active_tracer() callers
            # on the runner and its dispatcher threads (e.g. the remote
            # backend's requeue/fallback counters, store eviction) land in
            # the server's registry rather than a silent void.
            with self.telemetry.activate():
                self._run_one(row)

    def _choose_backend(self, metadata: dict[str, Any]) -> tuple[str, dict]:
        """Remote over live workers when any; else the local backend.

        A submission may pin a *local* backend via ``metadata["backend"]``
        (used when the submitter knows the plan is process-hostile); remote
        dispatch is always the server's decision, because only the server
        knows which workers are alive.
        """
        workers = self.live_workers()
        if workers:
            return "remote", {"workers": workers, "fallback": True,
                              "lease_seconds": self.queue.lease_seconds,
                              "token": self.auth_token}
        pinned = metadata.get("backend")
        if pinned in EXECUTOR_BACKENDS:
            return str(pinned), {}
        return self.local_backend, {}

    def _finish_safely(
        self,
        job_id: int,
        state: str,
        error: "str | None" = None,
        summary: "dict[str, Any] | None" = None,
    ) -> None:
        """Terminal ack that survives a shutdown race with ``queue.close()``.

        An escape here would kill the runner thread with the job stuck
        ``running``; a claim left un-acked because the queue closed is
        exactly what :meth:`~repro.serve.queue.ServeQueue.recover` handles
        on the next start, so swallowing the race is safe.
        """
        try:
            self.queue.finish(job_id, state, error=error, summary=summary)
        except sqlite3.Error:
            pass

    def _run_one(self, row: dict[str, Any]) -> None:
        job_id = int(row["id"])
        tenant = row["tenant"]
        metrics = self.telemetry.metrics if self.telemetry else None
        try:
            metadata = json.loads(row["metadata"] or "{}")
            plan = Plan.from_dict(json.loads(row["plan"]))
            if row["resources"]:
                plan = plan.with_resources(pickle.loads(row["resources"]))
            backend, backend_options = self._choose_backend(metadata)
            executor = Executor(
                backend=backend,
                backend_options=backend_options,
                max_workers=self.max_workers,
                cache=self.store.cache_for(tenant),
                telemetry=self.telemetry if self.telemetry else None,
            )
            last_beat = [time.time()]

            def sink(event) -> None:
                self.queue.append_event(job_id, event.to_json())
                now = time.time()
                if now - last_beat[0] >= self.queue.lease_seconds / 3:
                    self.queue.heartbeat(job_id)
                    last_beat[0] = now
                if self.queue.cancel_requested(job_id):
                    executor.cancel()

            token = executor.add_event_sink(sink)
            self._active_executor = executor
            if metrics is not None:
                metrics.inc("serve.jobs_started")
            with self.telemetry.tracer.span(
                f"serve:job:{job_id}", tenant=tenant, backend=backend
            ):
                try:
                    outcome = executor.execute(plan)
                finally:
                    self._active_executor = None
                    executor.remove_event_sink(token)
        except Exception as exc:  # noqa: BLE001 - job failure, not server death
            if self._abort.is_set():
                return  # crash simulation: leave the claim un-acked
            self._finish_safely(job_id, "failed",
                                error=f"{type(exc).__name__}: {exc}")
            if metrics is not None:
                metrics.inc("serve.jobs_failed")
            return
        if self._abort.is_set():
            return  # crash simulation: leave the claim un-acked
        summary = {
            "backend": backend,
            "jobs": len(outcome.jobs),
            "executed": len(outcome.executed()),
            "skipped_cache": len(outcome.skipped("cache")),
            "skipped_total": len(outcome.skipped()),
            "wall_seconds": outcome.wall_seconds,
            "fallbacks": list(outcome.fallbacks),
        }
        if outcome.cancelled:
            self._finish_safely(job_id, "cancelled", summary=summary)
            if metrics is not None:
                metrics.inc("serve.jobs_cancelled")
        else:
            self._finish_safely(job_id, "done", summary=summary)
            if metrics is not None:
                metrics.inc("serve.jobs_done")
        self.store.enforce(tenant)

    # ------------------------------------------------------------- control ops
    def _handle(self, request: dict[str, Any], wfile) -> None:
        op = request.get("op")
        if op == "ping":
            send_line(wfile, {"ok": True, "pong": True,
                              "protocol": PROTOCOL_VERSION})
        elif op == "submit":
            self._op_submit(request, wfile)
        elif op == "status":
            status = self.queue.status(int(request["job"]))
            if status is None:
                send_line(wfile, {"ok": False,
                                  "error": f"no job {request['job']!r}"})
            else:
                send_line(wfile, {"ok": True, "job": status})
        elif op == "jobs":
            send_line(wfile, {"ok": True,
                              "jobs": self.queue.jobs(request.get("tenant"))})
        elif op == "events":
            self._op_events(request, wfile)
        elif op == "cancel":
            state = self.queue.request_cancel(int(request["job"]))
            if state is None:
                send_line(wfile, {"ok": False,
                                  "error": f"no job {request['job']!r}"})
            else:
                send_line(wfile, {"ok": True, "state": state})
        elif op == "results":
            self._op_results(request, wfile)
        elif op == "register_worker":
            self.register_worker(str(request["address"]))
            send_line(wfile, {"ok": True, "workers": len(self.live_workers())})
        elif op == "workers":
            send_line(wfile, {"ok": True, "workers": self.live_workers()})
        elif op == "stats":
            send_line(wfile, {
                "ok": True,
                "queue": self.queue.counts(),
                "workers": self.live_workers(),
                "store": {"tenants": self.store.usage()},
            })
        else:
            send_line(wfile, {"ok": False, "error": f"unknown op {op!r}"})

    def _op_submit(self, request: dict[str, Any], wfile) -> None:
        tenant = str(request.get("tenant") or "default")
        tenant_namespace(tenant)  # validate before anything lands in the db
        plan_dict = request["plan"]
        Plan.from_dict(plan_dict)  # reject malformed graphs at the door
        resources = None
        if request.get("resources"):
            resources = decode_blob(request["resources"])
        job_id = self.queue.submit(
            tenant,
            str(request.get("name") or plan_dict.get("name") or "plan"),
            json.dumps(plan_dict, sort_keys=True),
            resources=resources,
            metadata=dict(request.get("metadata") or {}),
        )
        if self.telemetry:
            self.telemetry.metrics.inc("serve.jobs_submitted")
        send_line(wfile, {"ok": True, "job": job_id})

    def _op_events(self, request: dict[str, Any], wfile) -> None:
        """Stream journaled events; with ``follow`` tail until terminal."""
        job_id = int(request["job"])
        after = int(request.get("after") or 0)
        follow = bool(request.get("follow"))
        if self.queue.status(job_id) is None:
            send_line(wfile, {"ok": False, "error": f"no job {job_id!r}"})
            return
        send_line(wfile, {"ok": True})
        last_sent = time.monotonic()
        while True:
            batch = self.queue.events_after(job_id, after)
            for seq, payload in batch:
                after = seq
                send_line(wfile, {"seq": seq, "event": json.loads(payload)})
            if batch:
                last_sent = time.monotonic()
            status = self.queue.status(job_id)
            state = status["state"] if status else "failed"
            if not follow or state in TERMINAL_STATES:
                # Drain once more: the run may have journaled between the
                # read above and the state flip.
                for seq, payload in self.queue.events_after(job_id, after):
                    after = seq
                    send_line(wfile, {"seq": seq, "event": json.loads(payload)})
                send_line(wfile, {"end": True, "state": state, "last": after})
                return
            if self._stop.is_set():
                send_line(wfile, {"end": True, "state": state, "last": after})
                return
            # Keepalives let a tailing client sit on a blocking read through
            # arbitrarily long event-less stretches (one slow plan job) and
            # still notice a dead server promptly.
            if time.monotonic() - last_sent >= self.keepalive_seconds:
                send_line(wfile, {"keepalive": True})
                last_sent = time.monotonic()
            time.sleep(self.poll_seconds)

    def _op_results(self, request: dict[str, Any], wfile) -> None:
        """Latest result-bearing event per plan job, replayed from the journal.

        The journal *is* the result store: ``job_finished`` and value-bearing
        ``job_skipped`` lines carry each plan job's result in the event wire
        encoding.  Latest-wins folds requeued attempts (a resumed job's
        cache-skip supersedes nothing — the value is identical by
        construction, that is the cache's contract).
        """
        job_id = int(request["job"])
        if self.queue.status(job_id) is None:
            send_line(wfile, {"ok": False, "error": f"no job {job_id!r}"})
            return
        latest: dict[str, dict[str, Any]] = {}
        for _, payload in self.queue.events_after(job_id):
            wire = json.loads(payload)
            if wire.get("kind") in ("job_finished", "job_skipped") and wire.get("job"):
                latest[wire["job"]] = wire
        send_line(wfile, {"ok": True, "results": latest})
