"""Remote workers and the ``remote`` executor backend.

Two halves of one wire:

* :class:`ServeWorker` — a single-slot execution worker: a small TCP server
  that accepts **shipped wave tasks** (the exact payloads the runtime
  executor builds for its process pool — pickled ``(fn, item)`` pairs plus a
  once-per-pool initializer) and streams back results, emitting heartbeat
  lines while a long job runs so the caller's lease never lapses on live
  work.  Run in-process for tests, or as a standalone process via
  ``python -m repro.serve.worker --server host:port`` (it then registers
  itself with a :class:`~repro.serve.server.ServeServer` and re-registers
  periodically so the server's registry doubles as its liveness record).

* :class:`RemoteBackend` — an engine
  :class:`~repro.engine.scheduler.Backend` that fans those payloads out over
  registered workers.  It is registered as the ``"remote"`` executor backend
  (:func:`~repro.engine.scheduler.register_backend`), so
  ``Executor(backend="remote", backend_options={"workers": [...]})`` is all
  it takes — the executor ships waves through it exactly as it ships them to
  the local process pool, which is what keeps remote results byte-identical
  to local ones.  One dispatcher thread per worker feeds tasks and relays
  completions to the calling thread (events stay on the caller, the
  executor's ordering contract); a worker that stops answering within its
  lease gets its in-flight task re-queued to the survivors, and when no
  worker is reachable at all the backend **falls back to local execution**
  rather than failing the plan.

.. warning:: **Trust boundary.**  A worker unpickles and *executes* every
   task blob a connected peer ships — the socket is arbitrary code execution
   by design.  Like the control plane (see :mod:`repro.serve.server`),
   workers refuse to bind a non-loopback interface without ``auth_token``,
   the deployment's shared secret; when set, every protocol line must carry
   it (``RemoteBackend`` forwards it via ``backend_options["token"]``).
"""

from __future__ import annotations

import argparse
import hashlib
import hmac
import pickle
import queue as queue_mod
import socket
import socketserver
import threading
import time
from typing import Any, Callable, Sequence

from repro.engine.scheduler import register_backend
from repro.obs.telemetry import active_metrics
from repro.serve.protocol import (
    decode_blob,
    encode_blob,
    format_address,
    is_loopback,
    parse_address,
    recv_line,
    send_line,
)

# --------------------------------------------------------------------------
# Worker-side execution (one task at a time, init memoised by digest)
# --------------------------------------------------------------------------
#: Serializes task execution in one worker process: a worker is a single
#: execution slot (parallelism == number of workers), and the lock is what
#: lets one worker serve interleaved runs with different resource payloads —
#: the initializer re-runs exactly when the active init digest changes.
_EXEC_LOCK = threading.Lock()
_ACTIVE_INIT: "str | None" = None


def _execute_task(init_digest: str, init_blob: bytes, task_blob: bytes) -> Any:
    """Run one shipped task, (re)running its pool initializer when needed."""
    global _ACTIVE_INIT
    with _EXEC_LOCK:
        if _ACTIVE_INIT != init_digest:
            initializer, initargs = pickle.loads(init_blob)
            if initializer is not None:
                initializer(*initargs)
            _ACTIVE_INIT = init_digest
        fn, item = pickle.loads(task_blob)
        return fn(item)


class _WorkerHandler(socketserver.StreamRequestHandler):
    """One caller connection: ``init`` once, then ``task`` round trips."""

    def handle(self) -> None:  # noqa: D102 - socketserver entry point
        init_digest: "str | None" = None
        init_blob = b""
        reply_lock = threading.Lock()

        def reply(message: dict[str, Any]) -> None:
            with reply_lock:
                send_line(self.wfile, message)

        token = getattr(self.server, "auth_token", None)
        while True:
            try:
                message = recv_line(self.rfile)
            except (OSError, ValueError):
                return
            if message is None:
                return
            if token is not None and not hmac.compare_digest(
                str(message.get("token") or ""), token
            ):
                reply({"op": "error", "transport": True,
                       "message": "authentication failed"})
                return
            op = message.get("op")
            if op == "init":
                init_blob = decode_blob(message["blob"])
                init_digest = hashlib.sha256(init_blob).hexdigest()
                reply({"op": "ready"})
            elif op == "ping":
                reply({"op": "pong"})
            elif op == "task":
                if init_digest is None:
                    reply({"op": "error", "index": message.get("index"),
                           "transport": True, "message": "task before init"})
                    continue
                self._run_task(message, init_digest, init_blob, reply)
            elif op == "close":
                return
            else:
                reply({"op": "error", "transport": True,
                       "message": f"unknown op {op!r}"})

    def _run_task(
        self,
        message: dict[str, Any],
        init_digest: str,
        init_blob: bytes,
        reply: Callable[[dict[str, Any]], None],
    ) -> None:
        index = message.get("index", 0)
        box: dict[str, Any] = {}
        done = threading.Event()

        def work() -> None:
            try:
                box["value"] = _execute_task(
                    init_digest, init_blob, decode_blob(message["blob"])
                )
            except BaseException as exc:  # noqa: BLE001 - shipped to the caller
                box["error"] = exc
            finally:
                done.set()

        thread = threading.Thread(target=work, daemon=True)
        thread.start()
        # Heartbeats while the job runs: each line resets the caller's lease
        # window, so a slow ATPG job outlives any lease — only a dead worker
        # goes silent long enough to be requeued.
        interval = getattr(self.server, "heartbeat_seconds", 5.0)
        while not done.wait(interval):
            reply({"op": "heartbeat", "index": index})
        if "error" in box:
            exc = box["error"]
            try:
                blob = encode_blob(pickle.dumps(exc))
            except Exception:  # noqa: BLE001 - unpicklable exceptions degrade
                blob = None
            reply({"op": "error", "index": index, "blob": blob,
                   "transport": False, "message": f"{type(exc).__name__}: {exc}"})
            return
        try:
            blob = encode_blob(pickle.dumps(box["value"]))
        except Exception as exc:  # noqa: BLE001 - the transport-failure case
            reply({"op": "error", "index": index, "blob": None,
                   "transport": True,
                   "message": f"task result is not picklable ({exc})"})
            return
        reply({"op": "result", "index": index, "blob": blob})


class _WorkerServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ServeWorker:
    """One remote execution slot, optionally registered with a serve server.

    Args:
        host/port: Listen address (port 0 == ephemeral, read it back from
            :attr:`address`).
        server_address: A :class:`~repro.serve.server.ServeServer` control
            address to register with; the worker re-registers every
            ``register_seconds`` so the server can expire dead workers.
        heartbeat_seconds: Interval of in-task heartbeat lines.
        auth_token: The deployment's shared secret — required on every
            protocol line when set, and **mandatory for non-loopback
            binds** (a worker socket executes what it is shipped; see the
            module docstring).  Also sent when registering with the server.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        server_address: "str | tuple | None" = None,
        heartbeat_seconds: float = 5.0,
        register_seconds: float = 2.0,
        auth_token: "str | None" = None,
    ) -> None:
        if auth_token is None and not is_loopback(host):
            raise ValueError(
                f"refusing to bind serve worker on {host!r} without "
                "auth_token: a worker executes every task blob it is "
                "shipped (arbitrary code execution for any reachable peer)"
            )
        self.auth_token = auth_token
        self._tcp = _WorkerServer((host, port), _WorkerHandler)
        self._tcp.heartbeat_seconds = heartbeat_seconds
        self._tcp.auth_token = auth_token
        self.server_address = (
            parse_address(server_address) if server_address is not None else None
        )
        self.register_seconds = register_seconds
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    @property
    def address(self) -> tuple[str, int]:
        return self._tcp.server_address[0], self._tcp.server_address[1]

    def start(self) -> "ServeWorker":
        serve = threading.Thread(target=self._tcp.serve_forever, daemon=True)
        serve.start()
        self._threads.append(serve)
        if self.server_address is not None:
            beat = threading.Thread(target=self._register_loop, daemon=True)
            beat.start()
            self._threads.append(beat)
        return self

    def stop(self) -> None:
        self._stop.set()
        self._tcp.shutdown()
        self._tcp.server_close()
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads.clear()

    def _register_once(self) -> bool:
        assert self.server_address is not None
        try:
            with socket.create_connection(self.server_address, timeout=2.0) as sock:
                wfile = sock.makefile("wb")
                rfile = sock.makefile("rb")
                message = {"op": "register_worker",
                           "address": format_address(self.address)}
                if self.auth_token is not None:
                    message["token"] = self.auth_token
                send_line(wfile, message)
                reply = recv_line(rfile)
                return bool(reply and reply.get("ok"))
        except OSError:
            return False

    def _register_loop(self) -> None:
        while not self._stop.is_set():
            self._register_once()
            self._stop.wait(self.register_seconds)


# --------------------------------------------------------------------------
# The remote backend (executor side)
# --------------------------------------------------------------------------
class _RemoteTaskError(Exception):
    """Internal: a worker reported a genuine task exception."""

    def __init__(self, exception: BaseException) -> None:
        super().__init__(str(exception))
        self.exception = exception


class RemoteBackend:
    """Engine backend fanning shipped tasks out over remote workers.

    Constructed by the executor through the registered ``"remote"`` factory:
    ``initializer``/``initargs`` follow the ``concurrent.futures`` contract
    (shipped once per worker connection, exactly like the process pool's
    once-per-worker resource transfer) and ``options`` carries:

    * ``workers`` — worker addresses (``"host:port"`` or tuples); required
      for remote execution, empty means immediate local fallback;
    * ``lease_seconds`` — silence tolerated from a busy worker before its
      in-flight task is requeued (heartbeats reset the window; default 30);
    * ``connect_timeout`` — per-worker connect budget (default 2s);
    * ``fallback`` — run remaining tasks locally when no worker is
      reachable (default True; ``False`` raises instead);
    * ``token`` — the deployment's shared secret, stamped on every line
      sent to a worker (required by workers started with ``auth_token``).
    """

    name = "remote"

    def __init__(
        self,
        max_workers: "int | None" = None,
        initializer: "Callable | None" = None,
        initargs: tuple = (),
        options: "dict[str, Any] | None" = None,
    ) -> None:
        options = dict(options or {})
        self.workers = [parse_address(a) for a in options.get("workers") or []]
        self.lease_seconds = float(options.get("lease_seconds", 30.0))
        self.connect_timeout = float(options.get("connect_timeout", 2.0))
        self.fallback = bool(options.get("fallback", True))
        self.token = options.get("token") or None
        self.max_workers = max_workers
        self._initializer = initializer
        self._initargs = initargs
        self._init_blob = pickle.dumps((initializer, initargs))
        self._init_digest = hashlib.sha256(self._init_blob).hexdigest()
        self._local_init_done = False

    # ------------------------------------------------------------- protocol
    def map(self, fn: Callable, items: Sequence) -> list:
        done = self.run_tasks(fn, items)
        return [done[index] for index in range(len(items))]

    def close(self) -> None:
        """Connections are per ``run_tasks`` call; nothing pooled to release."""

    # ------------------------------------------------------------- dispatch
    def _stamp(self, message: dict[str, Any]) -> dict[str, Any]:
        if self.token is not None:
            message["token"] = self.token
        return message

    def _connect(self, address: tuple[str, int]):
        sock = socket.create_connection(address, timeout=self.connect_timeout)
        sock.settimeout(self.lease_seconds)
        wfile = sock.makefile("wb")
        rfile = sock.makefile("rb")
        send_line(wfile, self._stamp({"op": "init",
                                      "blob": encode_blob(self._init_blob)}))
        reply = recv_line(rfile)
        if not reply or reply.get("op") != "ready":
            raise OSError(f"worker {format_address(address)} refused init")
        return sock, wfile, rfile

    @staticmethod
    def _await_result(rfile) -> dict[str, Any]:
        """Read until a result/error line; heartbeats reset the lease window.

        Each ``readline`` enjoys a fresh socket-timeout window, so a worker
        that heartbeats stays leased indefinitely while a silent (dead) one
        times out and gets its task requeued by the dispatcher.
        """
        while True:
            reply = recv_line(rfile)
            if reply is None:
                raise OSError("worker connection closed mid-task")
            if reply.get("op") == "heartbeat":
                continue
            return reply

    def _roundtrip(self, wfile, rfile, index: int, payload: bytes) -> Any:
        send_line(wfile, self._stamp({"op": "task", "index": index,
                                      "blob": encode_blob(payload)}))
        reply = self._await_result(rfile)
        op = reply.get("op")
        if op == "result":
            return pickle.loads(decode_blob(reply["blob"]))
        if op == "error":
            if reply.get("transport"):
                # Same failure class as an unpicklable process-pool return:
                # raise it in transport costume so the executor's spill
                # machinery recognises it.
                raise _RemoteTaskError(
                    pickle.PicklingError(str(reply.get("message")))
                )
            blob = reply.get("blob")
            exc: "BaseException | None" = None
            if blob:
                try:
                    loaded = pickle.loads(decode_blob(blob))
                except Exception:  # noqa: BLE001 - corrupt exception pickle
                    loaded = None
                if isinstance(loaded, BaseException):
                    exc = loaded
            raise _RemoteTaskError(
                exc if exc is not None else RuntimeError(str(reply.get("message")))
            )
        raise OSError(f"unexpected worker reply {op!r}")

    def run_tasks(
        self,
        fn: Callable,
        items: Sequence,
        on_result: "Callable[[int, object], None] | None" = None,
        should_stop: "Callable[[], bool] | None" = None,
    ) -> dict[int, object]:
        items = list(items)
        if not items:
            return {}
        addresses = self.workers
        if self.max_workers:
            addresses = addresses[: self.max_workers]
        pending: "list[tuple[int, Any]]" = [
            (index, pickle.dumps((fn, item))) for index, item in enumerate(items)
        ]
        lock = threading.Lock()
        inbox: "queue_mod.SimpleQueue" = queue_mod.SimpleQueue()
        stop_flag = threading.Event()

        def dispatcher(address: tuple[str, int]) -> None:
            try:
                try:
                    sock, wfile, rfile = self._connect(address)
                except OSError:
                    return
                try:
                    while not stop_flag.is_set():
                        with lock:
                            if not pending:
                                return
                            index, payload = pending.pop(0)
                        try:
                            value = self._roundtrip(wfile, rfile, index, payload)
                        except _RemoteTaskError as err:
                            inbox.put(("err", index, err.exception))
                            continue
                        except (OSError, ValueError, EOFError):
                            # Worker lost (lease lapsed, connection died):
                            # requeue the shard for the survivors and retire
                            # this dispatcher.
                            with lock:
                                pending.insert(0, (index, payload))
                            metrics = active_metrics()
                            if metrics is not None:
                                metrics.inc("serve.remote_requeues")
                            return
                        inbox.put(("ok", index, value))
                finally:
                    try:
                        send_line(wfile, self._stamp({"op": "close"}))
                    except OSError:
                        pass
                    sock.close()
            finally:
                inbox.put(("exit", address, None))

        threads = [
            threading.Thread(target=dispatcher, args=(address,), daemon=True)
            for address in addresses
        ]
        for thread in threads:
            thread.start()

        done: dict[int, object] = {}
        failure: "BaseException | None" = None
        alive = len(threads)
        while alive:
            kind, a, b = inbox.get()
            if kind == "exit":
                alive -= 1
            elif kind == "ok":
                if failure is None:
                    done[a] = b
                    if on_result is not None:
                        on_result(a, b)
                    if should_stop is not None and should_stop():
                        stop_flag.set()
                        with lock:
                            pending.clear()
            elif kind == "err" and failure is None:
                failure = b
                try:
                    failure.task_index = a
                except Exception:  # noqa: BLE001 - some types refuse attrs
                    pass
                stop_flag.set()
                with lock:
                    pending.clear()
        if failure is not None:
            raise failure

        # Local fallback: tasks no reachable worker took (none configured,
        # none reachable, or every dispatcher died mid-run).
        if pending and not stop_flag.is_set():
            if not self.fallback:
                raise ConnectionError(
                    f"no remote worker reachable for {len(pending)} task(s) "
                    f"(workers: {[format_address(a) for a in self.workers] or '<none>'})"
                )
            metrics = active_metrics()
            if metrics is not None:
                metrics.inc("serve.local_fallbacks")
            if not self._local_init_done and self._initializer is not None:
                self._initializer(*self._initargs)
                self._local_init_done = True
            while pending:
                if should_stop is not None and should_stop():
                    break
                index, payload = pending.pop(0)
                local_fn, item = pickle.loads(payload)
                done[index] = value = local_fn(item)
                if on_result is not None:
                    on_result(index, value)
        return done


#: ``Executor(backend="remote", backend_options={...})`` works as soon as
#: this module is imported (idempotent — re-import re-registers the same
#: factory).
register_backend("remote", RemoteBackend)


# --------------------------------------------------------------------------
# Standalone worker process
# --------------------------------------------------------------------------
def main(argv: "Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run one repro.serve execution worker."
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--server", default=None,
        help="ServeServer control address (host:port) to register with",
    )
    parser.add_argument("--heartbeat", type=float, default=5.0)
    parser.add_argument(
        "--token", default=None,
        help="deployment shared secret (required for non-loopback --host)",
    )
    args = parser.parse_args(argv)
    worker = ServeWorker(
        args.host, args.port,
        server_address=args.server, heartbeat_seconds=args.heartbeat,
        auth_token=args.token,
    ).start()
    print(f"serve-worker listening on {format_address(worker.address)}", flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        worker.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover - process entry point
    raise SystemExit(main())
