"""The Clock Pulse Filter (CPF) — the paper's core logic contribution.

Figure 3 of the paper shows the CPF as an add-on block next to the PLL with
inputs ``pll_clk``, ``scan_clk`` and ``scan_en`` and output ``clk_out``:

* while ``scan_en`` is high, ``clk_out`` follows the slow external
  ``scan_clk`` (scan shifting);
* when ``scan_en`` is dropped and a single ``scan_clk`` pulse is applied, a
  trigger flip-flop latches a 1 which is then shifted through a five-bit
  register clocked by the free-running PLL clock;
* three PLL cycles later the filter enable is asserted for exactly two PLL
  cycles, so the glitch-free clock gating cell passes exactly two full-speed
  pulses (launch + capture) to ``clk_out``;
* additional logic keeps the CGC permanently enabled in functional mode.

The block is built here gate-by-gate from the standard cell library — about
ten cells per clock domain, as the paper notes — and an *enhanced* variant
adds a programmable pulse count (2–4) and a programmable start delay so that
two domains can be sequenced for inter-domain launch/capture tests
(experiment (d)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clocking.cgc import clock_gating_cell
from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class CpfPorts:
    """Port nets of one CPF instance."""

    pll_clk: str
    scan_clk: str
    scan_en: str
    test_mode: str
    clk_out: str
    config: tuple[str, ...] = ()


@dataclass(frozen=True)
class CpfBlock:
    """A constructed CPF block: its netlist and its port names."""

    netlist: Netlist
    ports: CpfPorts
    shift_register_length: int
    enhanced: bool

    @property
    def gate_count(self) -> int:
        stats = self.netlist.stats()
        return stats.num_gates + stats.num_flops + stats.num_latches


def build_cpf(
    name: str = "cpf",
    pll_clk: str = "pll_clk",
    scan_clk: str = "scan_clk",
    scan_en: str = "scan_en",
    test_mode: str = "test_mode",
    clk_out: str = "clk_out",
) -> CpfBlock:
    """Build the simple two-pulse CPF of Figure 3 as a standalone netlist.

    The shift-register timing reproduces the paper's waveform (Figure 4):
    the enable window opens three PLL cycles after the trigger and stays open
    for exactly two cycles.

    Args:
        name: Netlist/instance name.
        pll_clk: Free-running high-speed clock input net.
        scan_clk: Slow external tester clock input net.
        scan_en: Scan enable input net.
        test_mode: Test-mode input net (0 = functional mode, CGC always on).
        clk_out: Output clock net driving the clock domain.

    Returns:
        The constructed :class:`CpfBlock`.
    """
    builder = NetlistBuilder(name, instance_prefix=name)
    builder.clock(pll_clk)
    builder.clock(scan_clk)
    builder.input(scan_en)
    builder.input(test_mode)

    # Trigger flip-flop: captures "scan enable dropped" on a scan_clk pulse.
    scan_en_n = builder.inv(scan_en, output=f"{name}_scan_en_n")
    trigger = builder.flop(
        d=scan_en_n, clock=scan_clk, q=f"{name}_trigger", name=f"{name}_trigger_ff",
        scannable=False,
    )

    # Five-bit shift register clocked by the PLL clock.
    stages: list[str] = []
    source = trigger
    for index in range(5):
        stage = builder.flop(
            d=source,
            clock=pll_clk,
            q=f"{name}_sr{index}",
            name=f"{name}_sr{index}_ff",
            scannable=False,
            init=0,
        )
        stages.append(stage)
        source = stage

    # Enable window: stage2 asserted (after 3 PLL cycles) and stage4 not yet.
    not_late = builder.inv(stages[4], output=f"{name}_sr4_n")
    window = builder.and_([stages[2], not_late], output=f"{name}_filter_en")

    # Functional mode keeps the CGC enabled (logic "not shown in Figure 3").
    functional = builder.inv(test_mode, output=f"{name}_func_mode")
    cgc_enable = builder.or_([window, functional], output=f"{name}_cgc_en")

    cgc = clock_gating_cell(builder, pll_clk, cgc_enable, name_prefix=f"{name}_cgc")

    # Output selection: scan shifting uses scan_clk, capture uses gated PLL.
    builder.mux(scan_en, cgc.clock_out, scan_clk, output=clk_out)
    builder.netlist.declare_clock(clk_out)
    builder.output_from(clk_out)

    return CpfBlock(
        netlist=builder.build(),
        ports=CpfPorts(
            pll_clk=pll_clk,
            scan_clk=scan_clk,
            scan_en=scan_en,
            test_mode=test_mode,
            clk_out=clk_out,
        ),
        shift_register_length=5,
        enhanced=False,
    )


def build_enhanced_cpf(
    name: str = "ecpf",
    pll_clk: str = "pll_clk",
    scan_clk: str = "scan_clk",
    scan_en: str = "scan_en",
    test_mode: str = "test_mode",
    clk_out: str = "clk_out",
    pulse_count_bits: tuple[str, str] = ("pulse_cfg0", "pulse_cfg1"),
    delay_bit: str = "delay_cfg",
) -> CpfBlock:
    """Build the enhanced CPF: programmable 2/3/4 pulses and start delay.

    The pulse-count configuration selects how many PLL cycles the enable
    window stays open (2 + encoded value); the delay configuration shifts the
    window opening by one PLL cycle so that two domains' CPFs can be staggered
    for an inter-domain launch/capture pair (the experiment (d) capability).
    The configuration inputs are quasi-static: in the real device they are
    loaded with the scan data, here they are block inputs driven by the OCC
    controller model.

    Returns:
        The constructed :class:`CpfBlock` with ``config`` listing the
        configuration port nets.
    """
    builder = NetlistBuilder(name, instance_prefix=name)
    builder.clock(pll_clk)
    builder.clock(scan_clk)
    builder.input(scan_en)
    builder.input(test_mode)
    cfg0, cfg1 = pulse_count_bits
    builder.input(cfg0)
    builder.input(cfg1)
    builder.input(delay_bit)

    scan_en_n = builder.inv(scan_en, output=f"{name}_scan_en_n")
    trigger = builder.flop(
        d=scan_en_n, clock=scan_clk, q=f"{name}_trigger", name=f"{name}_trigger_ff",
        scannable=False,
    )

    # Eight-bit shift register to cover start delays and up to four pulses.
    stages: list[str] = []
    source = trigger
    for index in range(8):
        stage = builder.flop(
            d=source,
            clock=pll_clk,
            q=f"{name}_sr{index}",
            name=f"{name}_sr{index}_ff",
            scannable=False,
            init=0,
        )
        stages.append(stage)
        source = stage

    # Window start: stage2 normally, stage3 when the delay bit is set.
    start = builder.mux(delay_bit, stages[2], stages[3], output=f"{name}_start")

    # Window end: start + 2, 3 or 4 stages depending on the pulse-count code.
    # pulse_cfg encodes pulses-2 (00 -> 2 pulses ... 10 -> 4 pulses).
    end_2 = builder.mux(delay_bit, stages[4], stages[5], output=f"{name}_end2")
    end_3 = builder.mux(delay_bit, stages[5], stages[6], output=f"{name}_end3")
    end_4 = builder.mux(delay_bit, stages[6], stages[7], output=f"{name}_end4")
    end_23 = builder.mux(cfg0, end_2, end_3, output=f"{name}_end23")
    end = builder.mux(cfg1, end_23, end_4, output=f"{name}_end")

    not_end = builder.inv(end, output=f"{name}_end_n")
    window = builder.and_([start, not_end], output=f"{name}_filter_en")

    functional = builder.inv(test_mode, output=f"{name}_func_mode")
    cgc_enable = builder.or_([window, functional], output=f"{name}_cgc_en")
    cgc = clock_gating_cell(builder, pll_clk, cgc_enable, name_prefix=f"{name}_cgc")

    builder.mux(scan_en, cgc.clock_out, scan_clk, output=clk_out)
    builder.netlist.declare_clock(clk_out)
    builder.output_from(clk_out)

    return CpfBlock(
        netlist=builder.build(),
        ports=CpfPorts(
            pll_clk=pll_clk,
            scan_clk=scan_clk,
            scan_en=scan_en,
            test_mode=test_mode,
            clk_out=clk_out,
            config=(cfg0, cfg1, delay_bit),
        ),
        shift_register_length=8,
        enhanced=True,
    )


def enhanced_cpf_config(num_pulses: int, delayed: bool = False) -> dict[str, int]:
    """Configuration values for the enhanced CPF's quasi-static inputs.

    Args:
        num_pulses: 2, 3 or 4 at-speed pulses.
        delayed: Open the window one PLL cycle later (used on the capture
            domain of an inter-domain pattern).

    Returns:
        Mapping of configuration port name (default names) to 0/1.
    """
    if num_pulses not in (2, 3, 4):
        raise ValueError("the enhanced CPF supports 2, 3 or 4 pulses")
    code = num_pulses - 2
    return {
        "pulse_cfg0": code & 1,
        "pulse_cfg1": (code >> 1) & 1,
        "delay_cfg": 1 if delayed else 0,
    }


@dataclass(frozen=True)
class InsertedCpf:
    """Record of one CPF instance stitched into a design."""

    domain: str
    instance_prefix: str
    ports: CpfPorts
    enhanced: bool


def insert_cpf(
    netlist: Netlist,
    domain_name: str,
    pll_clk_net: str,
    scan_clk_net: str,
    scan_en_net: str,
    test_mode_net: str,
    enhanced: bool = False,
) -> InsertedCpf:
    """Stitch a CPF between a PLL output and a clock domain's flip-flops.

    Every flip-flop and RAM currently clocked by ``pll_clk_net`` is re-clocked
    from the CPF's output (``clk_<domain>_cpf``); the CPF itself is clocked by
    the raw PLL output, the external ``scan_clk`` and the ``scan_en`` signal,
    exactly as in Figure 1 of the paper.

    Args:
        netlist: Design to modify in place (typically the SOC top level).
        domain_name: Clock domain label (used in net/instance names).
        pll_clk_net: The PLL output currently clocking the domain.
        scan_clk_net: External slow scan clock net.
        scan_en_net: Scan enable net.
        test_mode_net: Test mode net (0 in functional mode).
        enhanced: Insert the enhanced (programmable) CPF variant.

    Returns:
        The inserted instance's port record.
    """
    prefix = f"cpf_{domain_name}_"
    clk_out = f"clk_{domain_name}_cpf"
    if enhanced:
        block = build_enhanced_cpf(
            name=f"cpf_{domain_name}",
            pll_clk=pll_clk_net,
            scan_clk=scan_clk_net,
            scan_en=scan_en_net,
            test_mode=test_mode_net,
            clk_out=clk_out,
            pulse_count_bits=(f"{domain_name}_pulse_cfg0", f"{domain_name}_pulse_cfg1"),
            delay_bit=f"{domain_name}_delay_cfg",
        )
    else:
        block = build_cpf(
            name=f"cpf_{domain_name}",
            pll_clk=pll_clk_net,
            scan_clk=scan_clk_net,
            scan_en=scan_en_net,
            test_mode=test_mode_net,
            clk_out=clk_out,
        )

    # Re-clock the domain's sequential elements before merging the block.
    from dataclasses import replace as _replace

    for name, flop in list(netlist.flops.items()):
        if flop.clock == pll_clk_net:
            netlist.replace_flop(name, _replace(flop, clock=clk_out))
    for name, ram in list(netlist.rams.items()):
        if ram.clock == pll_clk_net:
            updated = _replace(ram, clock=clk_out)
            netlist._rams[name] = updated  # RAM clock rewiring (no public setter needed)
            netlist.declare_clock(clk_out)
            netlist._invalidate()

    netlist.merge(block.netlist, prefix=prefix)
    netlist.declare_clock(clk_out)
    for port in (scan_clk_net, scan_en_net, test_mode_net, *block.ports.config):
        if port not in netlist.inputs and netlist.driver_of(port) is None:
            netlist.add_input(port)
    return InsertedCpf(
        domain=domain_name,
        instance_prefix=prefix,
        ports=block.ports,
        enhanced=enhanced,
    )
