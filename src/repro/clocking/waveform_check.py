"""Verification of the CPF's timing behaviour (the Figure 4 properties).

Given an event-driven simulation of a CPF block, these checks establish the
claims the paper makes about the circuit:

* exactly N full-speed pulses appear at ``clk_out`` during the capture window
  (N = 2 for the simple CPF);
* the first at-speed pulse appears three PLL cycles after the trigger pulse
  (the shift-register latency);
* no glitches or spikes appear on ``clk_out`` (the CGC property);
* during shift, ``clk_out`` follows ``scan_clk``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.waveform import Waveform


@dataclass
class CpfWaveformReport:
    """Result of checking one CPF simulation."""

    pulses_in_window: int
    expected_pulses: int
    latency_pll_cycles: float | None
    glitch_free: bool
    shift_pulses_passed: int
    pulse_widths_ps: list[float]

    @property
    def pulse_count_correct(self) -> bool:
        return self.pulses_in_window == self.expected_pulses

    @property
    def ok(self) -> bool:
        return self.pulse_count_correct and self.glitch_free

    def as_dict(self) -> dict[str, object]:
        return {
            "pulses_in_window": self.pulses_in_window,
            "expected_pulses": self.expected_pulses,
            "latency_pll_cycles": self.latency_pll_cycles,
            "glitch_free": self.glitch_free,
            "shift_pulses_passed": self.shift_pulses_passed,
            "pulse_widths_ps": list(self.pulse_widths_ps),
        }


def check_cpf_waveform(
    waveform: Waveform,
    clk_out: str,
    pll_clk: str,
    scan_clk: str,
    trigger_time: float,
    window_end: float,
    pll_period: float,
    expected_pulses: int = 2,
    shift_window: tuple[float, float] | None = None,
    min_pulse_width: float | None = None,
) -> CpfWaveformReport:
    """Check a CPF event-simulation waveform against the Figure 4 properties.

    Args:
        waveform: Result of the event-driven simulation.
        clk_out: Name of the CPF output net.
        pll_clk: Name of the PLL clock net.
        scan_clk: Name of the external scan clock net.
        trigger_time: Time of the trigger ``scan_clk`` rising edge.
        window_end: End of the observation window for the at-speed burst.
        pll_period: PLL clock period (same unit as the waveform).
        expected_pulses: Number of at-speed pulses the CPF must emit.
        shift_window: Optional (start, end) of a shift phase during which
            ``clk_out`` must follow ``scan_clk``.
        min_pulse_width: Minimum legal pulse width for the glitch check
            (defaults to a quarter of the PLL period).

    Returns:
        A :class:`CpfWaveformReport`.
    """
    out_trace = waveform[clk_out]
    pulses = out_trace.pulses(trigger_time, window_end)
    min_width = min_pulse_width if min_pulse_width is not None else pll_period / 4.0

    latency: float | None = None
    if pulses:
        latency = (pulses[0].start - trigger_time) / pll_period

    shift_pulses = 0
    if shift_window is not None:
        start, end = shift_window
        scan_pulses = waveform[scan_clk].count_pulses(start, end)
        out_shift_pulses = out_trace.count_pulses(start, end)
        shift_pulses = min(scan_pulses, out_shift_pulses)

    return CpfWaveformReport(
        pulses_in_window=len(pulses),
        expected_pulses=expected_pulses,
        latency_pll_cycles=latency,
        glitch_free=not out_trace.has_glitch(min_width),
        shift_pulses_passed=shift_pulses,
        pulse_widths_ps=[p.width for p in pulses],
    )
