"""Clock domains, PLL, clock pulse filter (CPF/OCC) and named capture procedures."""

from repro.clocking.cgc import ClockGateCell, clock_gating_cell
from repro.clocking.cpf import (
    CpfBlock,
    CpfPorts,
    InsertedCpf,
    build_cpf,
    build_enhanced_cpf,
    enhanced_cpf_config,
    insert_cpf,
)
from repro.clocking.domains import ClockDomain, ClockDomainMap
from repro.clocking.named_capture import (
    CapturePulse,
    NamedCaptureProcedure,
    enhanced_cpf_procedures,
    external_clock_procedures,
    simple_cpf_procedures,
    stuck_at_procedure,
    stuck_at_procedures,
)
from repro.clocking.occ import AteAction, AteStep, OccController
from repro.clocking.pll import Pll, PllOutput
from repro.clocking.waveform_check import CpfWaveformReport, check_cpf_waveform
from repro.clocking.waveforms import CpfSimulationTiming, figure2_waveform, simulate_cpf_capture

__all__ = [
    "AteAction",
    "AteStep",
    "CapturePulse",
    "ClockDomain",
    "ClockDomainMap",
    "ClockGateCell",
    "CpfBlock",
    "CpfPorts",
    "CpfSimulationTiming",
    "CpfWaveformReport",
    "InsertedCpf",
    "NamedCaptureProcedure",
    "OccController",
    "Pll",
    "PllOutput",
    "build_cpf",
    "build_enhanced_cpf",
    "check_cpf_waveform",
    "clock_gating_cell",
    "enhanced_cpf_config",
    "enhanced_cpf_procedures",
    "external_clock_procedures",
    "figure2_waveform",
    "insert_cpf",
    "simple_cpf_procedures",
    "simulate_cpf_capture",
    "stuck_at_procedure",
    "stuck_at_procedures",
]
