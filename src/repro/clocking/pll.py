"""Behavioral model of the functional PLL used as the at-speed clock source.

The paper's scheme relies on the functional PLL being locked and free-running
during the entire delay test; the CPF then *filters* pulses out of the PLL
output.  For simulation purposes the PLL is a frequency multiplier: it takes a
slow reference (the external tester clock) and produces one free-running
high-speed output per clock domain.  The model produces stimulus waveforms
for the event-driven simulator and period information for the clocking
schemes; it also tracks a simple lock time so tests can assert that no test
clock pulses are requested before the PLL is locked.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulation.event_sim import clock_stimulus
from repro.simulation.logic import Logic


@dataclass(frozen=True)
class PllOutput:
    """One PLL output clock."""

    name: str
    frequency_mhz: float

    @property
    def period_ps(self) -> float:
        return 1_000_000.0 / self.frequency_mhz


@dataclass
class Pll:
    """A multi-output PLL.

    Attributes:
        reference_mhz: Frequency of the external reference (tester) clock.
        outputs: The high-speed output clocks, one per functional domain.
        lock_time_ps: Time after power-up before the outputs are stable.
    """

    reference_mhz: float
    outputs: list[PllOutput] = field(default_factory=list)
    lock_time_ps: float = 0.0

    def add_output(self, name: str, frequency_mhz: float) -> PllOutput:
        if any(o.name == name for o in self.outputs):
            raise ValueError(f"PLL output {name!r} already defined")
        output = PllOutput(name=name, frequency_mhz=frequency_mhz)
        self.outputs.append(output)
        return output

    def output(self, name: str) -> PllOutput:
        for out in self.outputs:
            if out.name == name:
                return out
        raise KeyError(f"no PLL output named {name!r}")

    def multiplication_factor(self, name: str) -> float:
        """Ratio of an output frequency to the reference frequency."""
        return self.output(name).frequency_mhz / self.reference_mhz

    def stimulus(
        self,
        name: str,
        duration_ps: float,
        start_ps: float | None = None,
        duty: float = 0.5,
    ) -> list[tuple[float, Logic]]:
        """Free-running clock stimulus for one output over a time window.

        The first rising edge is placed after the PLL lock time (or at
        ``start_ps`` when given); the clock then runs until ``duration_ps``.
        """
        out = self.output(name)
        start = self.lock_time_ps if start_ps is None else start_ps
        num_cycles = max(0, int((duration_ps - start) / out.period_ps) + 1)
        return clock_stimulus(period=out.period_ps, num_cycles=num_cycles, start=start, duty=duty)

    def all_stimuli(self, duration_ps: float) -> dict[str, list[tuple[float, Logic]]]:
        """Stimulus for every output, keyed by output clock net name."""
        return {out.name: self.stimulus(out.name, duration_ps) for out in self.outputs}
