"""Clocking waveforms: driving the CPF in timing simulation (Figure 4) and
rendering the chip-level delay-test clocking picture (Figure 2).

Two levels of abstraction are provided:

* :func:`simulate_cpf_capture` applies the real tester protocol (shift cycles,
  scan-enable drop, trigger pulse, wait) to a gate-level CPF block with the
  event-driven timing simulator and returns the resulting waveform together
  with the key time stamps needed by the Figure 4 checks;
* :func:`figure2_waveform` builds the idealized cycle-level picture of a full
  delay-test pattern on a two-domain device — slow shift clock, scan enable,
  and per-domain launch/capture bursts at different functional frequencies —
  which is what the paper's Figure 2 sketches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.clocking.cpf import CpfBlock
from repro.clocking.domains import ClockDomain
from repro.simulation.event_sim import EventSimulator, clock_stimulus
from repro.simulation.logic import Logic
from repro.simulation.waveform import Waveform


@dataclass
class CpfSimulationTiming:
    """Key time stamps of one CPF capture simulation."""

    shift_start: float
    shift_end: float
    trigger_time: float
    window_end: float
    pll_period: float
    scan_period: float
    end_time: float


def simulate_cpf_capture(
    block: CpfBlock,
    pll_period: float = 1000.0,
    scan_period: float = 8000.0,
    num_shift_cycles: int = 4,
    config_values: dict[str, int] | None = None,
    settle_cycles: int = 12,
) -> tuple[Waveform, CpfSimulationTiming]:
    """Run the full shift-then-capture protocol on a CPF block.

    Args:
        block: A CPF block built by :mod:`repro.clocking.cpf`.
        pll_period: PLL clock period in picoseconds (1000ps = 1 GHz-ish).
        scan_period: External scan clock period in picoseconds.
        num_shift_cycles: Scan-clk cycles to apply while scan_en is high.
        config_values: Enhanced-CPF configuration values (ignored for the
            simple CPF).
        settle_cycles: Extra PLL cycles simulated after the expected burst.

    Returns:
        ``(waveform, timing)``.
    """
    ports = block.ports
    simulator = EventSimulator(block.netlist)

    shift_start = scan_period
    shift_end = shift_start + num_shift_cycles * scan_period
    # scan_en drops half a scan period after the last shift pulse, the trigger
    # pulse follows one scan period later ("relaxed timing").
    scan_en_drop = shift_end + 0.5 * scan_period
    trigger_time = scan_en_drop + scan_period
    window_end = trigger_time + (block.shift_register_length + settle_cycles) * pll_period
    end_time = window_end + 2 * scan_period

    total_pll_cycles = int(end_time / pll_period) + 2
    stimulus: dict[str, list[tuple[float, Logic]]] = {
        ports.pll_clk: clock_stimulus(pll_period, total_pll_cycles, start=pll_period / 2),
        ports.scan_clk: (
            clock_stimulus(scan_period, num_shift_cycles, start=shift_start)
            + clock_stimulus(scan_period, 1, start=trigger_time, initial_low=False)
        ),
        ports.scan_en: [(0.0, Logic.ONE), (scan_en_drop, Logic.ZERO), (end_time - scan_period, Logic.ONE)],
        ports.test_mode: [(0.0, Logic.ONE)],
    }
    for net in ports.config:
        value = (config_values or {}).get(net, 0)
        stimulus[net] = [(0.0, Logic.from_int(value))]

    initial = {ports.scan_clk: Logic.ZERO, ports.pll_clk: Logic.ZERO,
               ports.scan_en: Logic.ONE, ports.test_mode: Logic.ONE}
    for net in ports.config:
        initial[net] = Logic.from_int((config_values or {}).get(net, 0))
    simulator.initialize(initial)
    simulator.apply_stimulus(stimulus)
    waveform = simulator.run(end_time)

    timing = CpfSimulationTiming(
        shift_start=shift_start,
        shift_end=shift_end,
        trigger_time=trigger_time,
        window_end=window_end,
        pll_period=pll_period,
        scan_period=scan_period,
        end_time=end_time,
    )
    return waveform, timing


def figure2_waveform(
    domains: Sequence[ClockDomain],
    shift_cycles: int = 6,
    pulses_per_domain: int = 2,
    scan_period: float = 8.0,
) -> Waveform:
    """Idealized delay-test clocking for a multi-domain device (Figure 2).

    The picture shows: the slow ``scan_clk`` active during shift with
    ``scan_en`` high, then — with ``scan_en`` low — each domain's clock
    emitting its launch/capture burst at its own functional period, then shift
    resuming.

    Args:
        domains: The functional clock domains (frequencies set pulse spacing).
        shift_cycles: Number of shift clock cycles drawn before the capture.
        pulses_per_domain: At-speed pulses per domain (2 = launch/capture).
        scan_period: Scan clock period in arbitrary display units.

    Returns:
        A :class:`~repro.simulation.waveform.Waveform` with ``scan_clk``,
        ``scan_en`` and one ``clk_<domain>`` trace per domain.
    """
    waveform = Waveform(time_unit="ns")
    shift_end = (shift_cycles + 0.5) * scan_period
    capture_start = shift_end + scan_period
    slowest_period = max(domain.period_ns for domain in domains) if domains else 1.0
    capture_end = capture_start + (pulses_per_domain + 2) * slowest_period
    resume = capture_end + scan_period
    end_time = resume + shift_cycles * scan_period

    waveform.record("scan_en", 0.0, Logic.ONE)
    waveform.record("scan_en", shift_end, Logic.ZERO)
    waveform.record("scan_en", capture_end + 0.5 * scan_period, Logic.ONE)

    waveform.record("scan_clk", 0.0, Logic.ZERO)
    for cycle in range(shift_cycles):
        rise = (cycle + 0.25) * scan_period
        waveform.record("scan_clk", rise, Logic.ONE)
        waveform.record("scan_clk", rise + scan_period / 2, Logic.ZERO)
    # Trigger pulse with relaxed timing after scan_en dropped.
    trigger = shift_end + 0.5 * scan_period
    waveform.record("scan_clk", trigger, Logic.ONE)
    waveform.record("scan_clk", trigger + scan_period / 2, Logic.ZERO)
    for cycle in range(shift_cycles):
        rise = resume + (cycle + 0.25) * scan_period
        waveform.record("scan_clk", rise, Logic.ONE)
        waveform.record("scan_clk", rise + scan_period / 2, Logic.ZERO)

    for domain in domains:
        clk = f"clk_{domain.name}"
        waveform.record(clk, 0.0, Logic.ZERO)
        period = domain.period_ns
        for pulse in range(pulses_per_domain):
            rise = capture_start + pulse * period
            waveform.record(clk, rise, Logic.ONE)
            waveform.record(clk, rise + period / 2, Logic.ZERO)
    waveform.end_time = end_time
    return waveform
