"""Named capture procedures — the behavioral clock model the ATPG uses.

Section 4 of the paper explains that simulating every tester cycle through
the CPF would cripple ATPG efficiency ("six or more [scan-clk] pulses ... may
be required to produce a desired clock pulse pair"), so *named capture
procedures* were introduced: a simple behavioral description of which internal
clock pulses appear, in which order, in which clock domains.  The ATPG
generates patterns against this abstraction; when patterns are written for
the ATE the internal pulses are converted back into the primary-input
(scan-en / scan-clk) protocol that makes the CPF emit them
(:mod:`repro.clocking.occ` does that conversion).

A procedure is an ordered list of capture pulses.  Each pulse names the clock
domains it clocks simultaneously.  The last two pulses of an at-speed
procedure are the launch and capture pulses; any earlier pulses are
initialization ("clock sequential") cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class CapturePulse:
    """One internal clock pulse during the capture phase.

    Attributes:
        domains: Names of the clock domains pulsed simultaneously.
        at_speed: Whether the pulse is at functional frequency (launch/capture
            pulses) or relaxed (initialization pulses may be slow).
    """

    domains: frozenset[str]
    at_speed: bool = True

    @staticmethod
    def of(*domains: str, at_speed: bool = True) -> "CapturePulse":
        return CapturePulse(domains=frozenset(domains), at_speed=at_speed)

    # ------------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, object]:
        return {"domains": sorted(self.domains), "at_speed": self.at_speed}

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "CapturePulse":
        return cls(
            domains=frozenset(data["domains"]),  # type: ignore[arg-type]
            at_speed=bool(data.get("at_speed", True)),
        )


@dataclass(frozen=True)
class NamedCaptureProcedure:
    """A named capture procedure: the ATPG-visible clocking abstraction.

    Attributes:
        name: Procedure name (appears in pattern files).
        pulses: The internal pulses, in application order.
        description: Human-readable summary.
    """

    name: str
    pulses: tuple[CapturePulse, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.pulses:
            raise ValueError("a capture procedure needs at least one pulse")

    # ------------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "pulses": [pulse.to_dict() for pulse in self.pulses],
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "NamedCaptureProcedure":
        return cls(
            name=str(data["name"]),
            pulses=tuple(
                CapturePulse.from_dict(p)  # type: ignore[arg-type]
                for p in data["pulses"]  # type: ignore[union-attr]
            ),
            description=str(data.get("description", "")),
        )

    # ------------------------------------------------------------------ sizes
    @property
    def num_pulses(self) -> int:
        return len(self.pulses)

    @property
    def num_frames(self) -> int:
        """Number of combinational evaluation frames (== number of pulses)."""
        return len(self.pulses)

    @property
    def is_at_speed(self) -> bool:
        """True when the procedure ends in an at-speed launch/capture pair."""
        return self.num_pulses >= 2 and self.pulses[-1].at_speed and self.pulses[-2].at_speed

    # ---------------------------------------------------------------- framing
    @property
    def launch_frame(self) -> int:
        """Index of the evaluation frame whose values are launched (k-2)."""
        return max(0, self.num_pulses - 2)

    @property
    def capture_frame(self) -> int:
        """Index of the final evaluation frame (k-1)."""
        return self.num_pulses - 1

    @property
    def launch_domains(self) -> frozenset[str]:
        """Domains pulsed by the launch (second-to-last) pulse."""
        if self.num_pulses < 2:
            return self.pulses[-1].domains
        return self.pulses[-2].domains

    @property
    def capture_domains(self) -> frozenset[str]:
        """Domains pulsed by the final capture pulse — these flip-flops are
        the at-speed observation points."""
        return self.pulses[-1].domains

    @property
    def all_domains(self) -> frozenset[str]:
        result: set[str] = set()
        for pulse in self.pulses:
            result |= pulse.domains
        return frozenset(result)

    @property
    def is_inter_domain(self) -> bool:
        """True when launch and capture pulse different domains (the enhanced
        CPF capability of experiment (d))."""
        return self.num_pulses >= 2 and self.launch_domains != self.capture_domains

    def capturing_domains_of_pulse(self, pulse_index: int) -> frozenset[str]:
        return self.pulses[pulse_index].domains

    def describe(self) -> str:
        parts = []
        for i, pulse in enumerate(self.pulses):
            speed = "@speed" if pulse.at_speed else "@slow"
            parts.append(f"P{i + 1}[{'+'.join(sorted(pulse.domains))} {speed}]")
        return f"{self.name}: " + " -> ".join(parts)


# --------------------------------------------------------------------------
# Standard procedure families used by the Table 1 experiments.
# --------------------------------------------------------------------------
def stuck_at_procedure(domains: Iterable[str], name: str = "stuck_at_capture") -> NamedCaptureProcedure:
    """Single slow capture pulse clocking every domain (experiment (a))."""
    return NamedCaptureProcedure(
        name=name,
        pulses=(CapturePulse(frozenset(domains), at_speed=False),),
        description="single external capture pulse, all domains",
    )


def stuck_at_procedures(
    domains: Iterable[str],
    max_pulses: int = 2,
    name_prefix: str = "stuck_at",
) -> list[NamedCaptureProcedure]:
    """Slow capture procedures for stuck-at test (experiment (a)).

    The single-pulse procedure is the plain scan capture; procedures with more
    pulses are the "clock sequential" patterns that initialize non-scan cells
    before the observing capture (the paper allows these for all experiments —
    only RAM-sequential patterns are switched off).
    """
    domain_set = frozenset(domains)
    procedures = [stuck_at_procedure(domain_set, name=f"{name_prefix}_1pulse")]
    for pulses in range(2, max_pulses + 1):
        procedures.append(
            NamedCaptureProcedure(
                name=f"{name_prefix}_{pulses}pulse",
                pulses=tuple(
                    CapturePulse(domain_set, at_speed=False) for _ in range(pulses)
                ),
                description=f"clock-sequential stuck-at capture, {pulses} slow pulses",
            )
        )
    return procedures


def external_clock_procedures(
    domains: Iterable[str],
    max_pulses: int = 4,
    name_prefix: str = "ext",
) -> list[NamedCaptureProcedure]:
    """Broadside procedures for a common external clock (experiments (b)/(e)).

    All domains are pulsed together; procedures with 2..max_pulses pulses are
    produced so the ATPG may use extra initialization cycles for non-scan
    cells ("clock sequential" patterns).
    """
    domain_set = frozenset(domains)
    procedures = []
    for pulses in range(2, max_pulses + 1):
        procedures.append(
            NamedCaptureProcedure(
                name=f"{name_prefix}_{pulses}pulse",
                pulses=tuple(CapturePulse(domain_set) for _ in range(pulses)),
                description=f"external clock, {pulses} pulses, all domains together",
            )
        )
    return procedures


def simple_cpf_procedures(
    domains: Iterable[str], name_prefix: str = "cpf"
) -> list[NamedCaptureProcedure]:
    """Procedures offered by the simple two-pulse CPF of Figure 3
    (experiment (c)): exactly two at-speed pulses, one domain per scan load."""
    procedures = []
    for domain in sorted(set(domains)):
        procedures.append(
            NamedCaptureProcedure(
                name=f"{name_prefix}_{domain}_2pulse",
                pulses=(CapturePulse.of(domain), CapturePulse.of(domain)),
                description=f"simple CPF: 2 pulses in domain {domain}",
            )
        )
    return procedures


def enhanced_cpf_procedures(
    domains: Iterable[str],
    max_pulses: int = 4,
    inter_domain: bool = True,
    name_prefix: str = "ecpf",
) -> list[NamedCaptureProcedure]:
    """Procedures offered by the enhanced CPF (experiment (d)).

    Per domain: 2, 3, ... max_pulses pulse bursts.  When ``inter_domain`` is
    set, launch-in-A / capture-in-B procedures are added for every ordered
    domain pair (with optional leading initialization pulses in the launch
    domain).
    """
    ordered = sorted(set(domains))
    procedures: list[NamedCaptureProcedure] = []
    for domain in ordered:
        for pulses in range(2, max_pulses + 1):
            procedures.append(
                NamedCaptureProcedure(
                    name=f"{name_prefix}_{domain}_{pulses}pulse",
                    pulses=tuple(CapturePulse.of(domain) for _ in range(pulses)),
                    description=f"enhanced CPF: {pulses} pulses in domain {domain}",
                )
            )
    if inter_domain:
        for launch in ordered:
            for capture in ordered:
                if launch == capture:
                    continue
                procedures.append(
                    NamedCaptureProcedure(
                        name=f"{name_prefix}_{launch}_to_{capture}",
                        pulses=(CapturePulse.of(launch), CapturePulse.of(capture)),
                        description=(
                            f"enhanced CPF: inter-domain launch in {launch}, "
                            f"capture in {capture}"
                        ),
                    )
                )
                if max_pulses >= 3:
                    procedures.append(
                        NamedCaptureProcedure(
                            name=f"{name_prefix}_{launch}_to_{capture}_init",
                            pulses=(
                                CapturePulse.of(launch, at_speed=False),
                                CapturePulse.of(launch),
                                CapturePulse.of(capture),
                            ),
                            description=(
                                f"enhanced CPF: init pulse + inter-domain launch in "
                                f"{launch}, capture in {capture}"
                            ),
                        )
                    )
    return procedures
