"""Glitch-free clock gating cell (CGC).

The CPF relies on a latch-based clock gating cell: the enable signal is
sampled by a transparent-low latch so it can only change while the clock is
low, and the gated clock is the AND of the clock and the latched enable.
"This implementation makes sure that no glitches or spikes appear on
clk-out" (Section 3 of the paper) — the property the Figure 4 benchmark
verifies by event-driven timing simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.builder import NetlistBuilder


@dataclass(frozen=True)
class ClockGateCell:
    """Nets of one instantiated clock gating cell."""

    clock_in: str
    enable: str
    latched_enable: str
    clock_out: str


def clock_gating_cell(
    builder: NetlistBuilder,
    clock: str,
    enable: str,
    name_prefix: str = "cgc",
) -> ClockGateCell:
    """Instantiate a glitch-free clock gating cell.

    Args:
        builder: Netlist builder to add the cell to.
        clock: Clock net to be gated.
        enable: Enable net (may change at any time; the latch filters it).
        name_prefix: Prefix for the created instance/net names.

    Returns:
        The cell's nets; ``clock_out`` carries the gated clock.
    """
    latched = builder.latch(
        d=enable,
        enable=clock,
        q=f"{name_prefix}_en_lat",
        name=f"{name_prefix}_latch",
        active_level=0,
    )
    gated = builder.and_([clock, latched], output=f"{name_prefix}_clk_out")
    return ClockGateCell(
        clock_in=clock,
        enable=enable,
        latched_enable=latched,
        clock_out=gated,
    )
