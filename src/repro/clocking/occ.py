"""On-chip clock control (OCC): the ATE-level protocol behind the CPF.

Named capture procedures describe the *internal* pulses the ATPG reasons
about; when patterns are written for the tester those pulses have to be
converted back into the primary-input protocol that makes the CPF emit them
(Section 4: "when the patterns are saved for ATE, the internal clock pulses
are converted to the corresponding primary input signals that will produce
them").  The :class:`OccController` performs that conversion:

* scan shifting: ``scan_en`` high, ``scan_clk`` toggling;
* capture: ``scan_en`` low with relaxed timing, one ``scan_clk`` trigger
  pulse, a wait long enough for the CPF shift register to emit its burst,
  then ``scan_en`` high again;
* for the enhanced CPF, the per-domain pulse-count/delay configuration bits
  that must be applied before the trigger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping, Sequence

from repro.clocking.cpf import enhanced_cpf_config
from repro.clocking.named_capture import NamedCaptureProcedure


class AteAction(str, Enum):
    """One step of the external tester protocol."""

    SET_SIGNAL = "set"
    PULSE_SCAN_CLK = "pulse_scan_clk"
    WAIT_PLL_CYCLES = "wait_pll_cycles"
    SHIFT_CYCLE = "shift_cycle"
    STROBE_OUTPUTS = "strobe_outputs"


@dataclass(frozen=True)
class AteStep:
    """A single protocol step."""

    action: AteAction
    signal: str | None = None
    value: int | None = None
    count: int = 1
    comment: str = ""


@dataclass
class OccController:
    """Converts internal capture procedures into tester protocols.

    Attributes:
        scan_clk: Name of the external scan clock pin.
        scan_en: Name of the scan enable pin.
        test_mode: Name of the test mode pin.
        domains: Domain name -> CPF instance label (used in comments only).
        enhanced: Whether the per-domain CPFs are the enhanced variant.
        trigger_latency: PLL cycles between the trigger pulse and the first
            at-speed pulse (3 for the Figure 3 CPF).
    """

    scan_clk: str = "scan_clk"
    scan_en: str = "scan_en"
    test_mode: str = "test_mode"
    domains: Mapping[str, str] = field(default_factory=dict)
    enhanced: bool = False
    trigger_latency: int = 3

    #: OCC flavours :meth:`for_domains` accepts.
    STYLES = ("simple", "enhanced")

    @classmethod
    def for_domains(
        cls,
        domain_names: Sequence[str],
        style: str = "simple",
        *,
        scan_clk: str = "scan_clk",
        scan_en: str = "scan_en",
        test_mode: str = "test_mode",
        trigger_latency: int = 3,
    ) -> "OccController":
        """Build the controller for a set of functional domains.

        ``style`` selects the CPF flavour the controller drives: ``"simple"``
        is the fixed two-pulse block of Figure 3, ``"enhanced"`` the
        programmable variant with per-domain pulse-count/delay configuration.
        """
        if style not in cls.STYLES:
            raise ValueError(
                f"unknown OCC style {style!r} (expected one of {cls.STYLES})"
            )
        return cls(
            scan_clk=scan_clk,
            scan_en=scan_en,
            test_mode=test_mode,
            domains={name: f"cpf_{name}" for name in domain_names},
            enhanced=(style == "enhanced"),
            trigger_latency=trigger_latency,
        )

    # -------------------------------------------------------------- protocol
    def configuration_values(self, procedure: NamedCaptureProcedure) -> dict[str, int]:
        """Quasi-static enhanced-CPF configuration for one procedure.

        For inter-domain procedures the launch domain keeps the default window
        and the capture domain is delayed by one PLL cycle, which staggers the
        two CPFs into a launch-in-A / capture-in-B pair.
        """
        if not self.enhanced:
            return {}
        values: dict[str, int] = {}
        launch_domains = procedure.launch_domains
        capture_domains = procedure.capture_domains
        for domain in sorted(procedure.all_domains):
            delayed = procedure.is_inter_domain and domain in capture_domains and (
                domain not in launch_domains
            )
            pulses = min(4, max(2, procedure.num_pulses))
            config = enhanced_cpf_config(pulses, delayed=delayed)
            for key, value in config.items():
                values[f"{domain}_{key}"] = value
        return values

    def capture_protocol(self, procedure: NamedCaptureProcedure) -> list[AteStep]:
        """Tester steps that make the CPFs emit one procedure's pulse burst."""
        steps: list[AteStep] = [
            AteStep(AteAction.SET_SIGNAL, self.test_mode, 1, comment="stay in test mode"),
        ]
        for signal, value in sorted(self.configuration_values(procedure).items()):
            steps.append(
                AteStep(AteAction.SET_SIGNAL, signal, value, comment="enhanced CPF configuration")
            )
        steps.append(
            AteStep(
                AteAction.SET_SIGNAL,
                self.scan_en,
                0,
                comment="leave shift mode (relaxed timing)",
            )
        )
        steps.append(
            AteStep(
                AteAction.PULSE_SCAN_CLK,
                self.scan_clk,
                comment="single trigger pulse arms the CPF shift register",
            )
        )
        wait = self.trigger_latency + procedure.num_pulses + 2
        steps.append(
            AteStep(
                AteAction.WAIT_PLL_CYCLES,
                count=wait,
                comment="CPF emits the at-speed burst; tester just waits",
            )
        )
        steps.append(AteStep(AteAction.STROBE_OUTPUTS, comment="strobe (masked) outputs"))
        steps.append(
            AteStep(AteAction.SET_SIGNAL, self.scan_en, 1, comment="back to shift mode")
        )
        return steps

    def shift_protocol(self, num_cycles: int) -> list[AteStep]:
        """Tester steps for loading/unloading the scan chains."""
        return [
            AteStep(AteAction.SET_SIGNAL, self.scan_en, 1, comment="shift mode"),
            AteStep(
                AteAction.SHIFT_CYCLE,
                self.scan_clk,
                count=num_cycles,
                comment="apply scan data at slow tester speed",
            ),
        ]

    def pattern_protocol(
        self, procedure: NamedCaptureProcedure, chain_length: int
    ) -> list[AteStep]:
        """Full protocol for one pattern: load, capture burst, unload overlap."""
        return self.shift_protocol(chain_length) + self.capture_protocol(procedure)

    # ------------------------------------------------------------ accounting
    def tester_cycles(self, procedure: NamedCaptureProcedure, chain_length: int) -> int:
        """Slow tester cycles consumed by one pattern (shift dominates)."""
        capture_overhead = 4  # scan_en handshake + trigger + wait, in tester cycles
        return chain_length + capture_overhead

    def describe(self, procedure: NamedCaptureProcedure, chain_length: int = 8) -> str:
        lines = [f"OCC protocol for {procedure.describe()}"]
        for step in self.pattern_protocol(procedure, chain_length):
            target = f" {step.signal}" if step.signal else ""
            value = f"={step.value}" if step.value is not None else ""
            count = f" x{step.count}" if step.count != 1 else ""
            lines.append(f"  {step.action.value}{target}{value}{count}  # {step.comment}")
        return "\n".join(lines)
