"""Clock domains and the mapping from sequential elements to domains.

The paper's device has two synchronous functional clock domains (75 MHz and
150 MHz) plus the slow external scan clock.  Throughout the library a *clock
domain* is identified by name; flip-flops belong to the domain whose clock
net drives them.  The mapping is computed once per (possibly CPF-instrumented)
netlist and then consulted by the ATPG clocking schemes, the fault
classifier and the sequential simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class ClockDomain:
    """One functional clock domain.

    Attributes:
        name: Domain name (e.g. ``"fast"``, ``"slow"``).
        clock_net: The net that clocks the domain's flip-flops in the netlist
            currently under analysis (the PLL output before CPF insertion, the
            CPF ``clk_out`` after).
        frequency_mhz: Functional frequency; only ratios matter to the tests.
        pll_output: Name of the PLL output feeding this domain (informational).
    """

    name: str
    clock_net: str
    frequency_mhz: float
    pll_output: str | None = None

    @property
    def period_ns(self) -> float:
        return 1000.0 / self.frequency_mhz

    @property
    def period_ps(self) -> float:
        return 1_000_000.0 / self.frequency_mhz

    def with_clock_net(self, clock_net: str) -> "ClockDomain":
        """Same domain, re-pointed at a different clock net (after CPF insertion)."""
        return ClockDomain(
            name=self.name,
            clock_net=clock_net,
            frequency_mhz=self.frequency_mhz,
            pll_output=self.pll_output,
        )


class ClockDomainMap:
    """Assignment of every flip-flop (and RAM) to a clock domain."""

    def __init__(self, domains: Iterable[ClockDomain]) -> None:
        self._domains: dict[str, ClockDomain] = {}
        for domain in domains:
            if domain.name in self._domains:
                raise ValueError(f"duplicate clock domain {domain.name!r}")
            self._domains[domain.name] = domain
        self._flop_domain: dict[str, str] = {}
        self._ram_domain: dict[str, str] = {}

    # ------------------------------------------------------------- properties
    @property
    def domains(self) -> dict[str, ClockDomain]:
        return dict(self._domains)

    def domain(self, name: str) -> ClockDomain:
        return self._domains[name]

    def domain_names(self) -> list[str]:
        return sorted(self._domains)

    def clock_net_of(self, domain_name: str) -> str:
        return self._domains[domain_name].clock_net

    # ------------------------------------------------------------ assignment
    @classmethod
    def from_netlist(cls, netlist: Netlist, domains: Iterable[ClockDomain]) -> "ClockDomainMap":
        """Assign flip-flops/RAMs to domains by matching their clock nets.

        Flip-flops whose clock net does not match any declared domain are left
        unassigned; :meth:`domain_of` returns ``None`` for them (this is where
        test-controller or always-slow logic ends up when it is intentionally
        excluded from at-speed clocking).
        """
        mapping = cls(domains)
        net_to_domain = {d.clock_net: d.name for d in mapping._domains.values()}
        for flop in netlist.flops.values():
            domain_name = net_to_domain.get(flop.clock)
            if domain_name is not None:
                mapping._flop_domain[flop.name] = domain_name
        for ram in netlist.rams.values():
            domain_name = net_to_domain.get(ram.clock)
            if domain_name is not None:
                mapping._ram_domain[ram.name] = domain_name
        return mapping

    def assign_flop(self, flop_name: str, domain_name: str) -> None:
        if domain_name not in self._domains:
            raise KeyError(f"unknown domain {domain_name!r}")
        self._flop_domain[flop_name] = domain_name

    # --------------------------------------------------------------- queries
    def domain_of(self, flop_name: str) -> str | None:
        """Domain of a flip-flop (None when the flop is outside all domains)."""
        return self._flop_domain.get(flop_name)

    def domain_of_ram(self, ram_name: str) -> str | None:
        return self._ram_domain.get(ram_name)

    def flops_in(self, domain_name: str) -> list[str]:
        return sorted(name for name, d in self._flop_domain.items() if d == domain_name)

    def unassigned_flops(self, netlist: Netlist) -> list[str]:
        return sorted(name for name in netlist.flops if name not in self._flop_domain)

    def clock_nets(self, domain_names: Iterable[str]) -> set[str]:
        return {self._domains[name].clock_net for name in domain_names}

    def retarget(self, new_clock_nets: Mapping[str, str]) -> "ClockDomainMap":
        """Return a copy whose domains point at different clock nets.

        Used after CPF insertion: the functional flip-flops are then clocked
        by the CPF outputs instead of the raw PLL outputs.
        """
        updated = [
            d.with_clock_net(new_clock_nets.get(d.name, d.clock_net))
            for d in self._domains.values()
        ]
        clone = ClockDomainMap(updated)
        clone._flop_domain = dict(self._flop_domain)
        clone._ram_domain = dict(self._ram_domain)
        return clone

    def summary(self) -> dict[str, int]:
        """Number of flip-flops per domain (plus ``None`` bucket for unassigned)."""
        counts: dict[str, int] = {name: 0 for name in self._domains}
        for domain_name in self._flop_domain.values():
            counts[domain_name] += 1
        return counts
