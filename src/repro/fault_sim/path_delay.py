"""Path-delay fault checking: does a broadside pattern exercise a path?

A two-vector pattern (non-robustly) tests a path-delay fault when the launch
frame/capture frame values produce the required transition at the path's
launch node and every on-path gate has its off-path inputs at non-controlling
values in the capture frame, so that the (possibly late) transition propagates
along the path into the capture point.
"""

from __future__ import annotations

from typing import Sequence

from repro.atpg.config import TestSetup
from repro.clocking.domains import ClockDomainMap
from repro.fault_sim.transition import TransitionFaultSimulator
from repro.faults.models import PathDelayFault
from repro.patterns.pattern import TestPattern
from repro.simulation.logic import Logic
from repro.simulation.model import CircuitModel, NodeKind
from repro.simulation.parallel_sim import unpack_value


class PathDelaySensitizationChecker:
    """Checks non-robust sensitization of path-delay faults by patterns."""

    def __init__(
        self,
        model: CircuitModel,
        domain_map: ClockDomainMap,
        setup: TestSetup,
        backend: str | None = None,
    ) -> None:
        self.model = model
        # The checker only consumes good-machine frame planes; the backend
        # still matters because it selects the compiled vs interpreted
        # simulation kernels (and follows setup.options.sim_backend).
        self._simulator = TransitionFaultSimulator(
            model, domain_map, setup, backend=backend
        )

    def close(self) -> None:
        """Release the underlying simulator's worker pools."""
        self._simulator.close()

    def sensitizes(self, pattern: TestPattern, fault: PathDelayFault) -> bool:
        """True when the pattern launches and propagates along the path."""
        frames = self._simulator._frame_values_packed([pattern], pattern.procedure)
        launch = frames[pattern.procedure.launch_frame]
        capture = frames[pattern.procedure.capture_frame]
        start = fault.nodes[0]
        initial = Logic.ZERO if fault.rising else Logic.ONE
        final = Logic.ONE if fault.rising else Logic.ZERO
        if unpack_value(launch, start, 0) is not initial:
            return False
        if unpack_value(capture, start, 0) is not final:
            return False
        on_path = set(fault.nodes)
        for node_index in fault.nodes[1:]:
            node = self.model.nodes[node_index]
            if node.kind is not NodeKind.GATE or node.gtype is None:
                continue
            controlling = node.gtype.controlling_value
            if controlling is None:
                continue
            for src in node.fanin:
                if src in on_path:
                    continue
                value = unpack_value(capture, src, 0)
                if value is controlling or not value.is_known:
                    return False
        return True

    def coverage(
        self, patterns: Sequence[TestPattern], faults: Sequence[PathDelayFault]
    ) -> dict[PathDelayFault, bool]:
        """Which of the given path-delay faults are sensitized by some pattern."""
        result: dict[PathDelayFault, bool] = {}
        for fault in faults:
            result[fault] = any(self.sensitizes(pattern, fault) for pattern in patterns)
        return result
