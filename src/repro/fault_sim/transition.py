"""Transition (gate-delay) fault simulation for broadside patterns.

A broadside pattern is applied as: scan load, then *k* capture pulses per the
pattern's named capture procedure, then unload.  A slow-to-rise fault at a
site is detected by a pattern when

* the fault-free machine launches a rising transition at the site between the
  launch frame (values before the last-but-one pulse edge) and the capture
  frame (values after it), and
* forcing the site to its pre-transition value during the capture frame (the
  one-cycle stuck-at equivalent of the delay) changes a value captured by the
  final pulse into an observable scan cell, or an observed primary output.

The simulator shares the bit-parallel single-fault-propagation core with the
stuck-at engine; frames are simulated a batch at a time and the per-frame
state hand-off honours which clock domains each pulse clocks — including the
inter-domain launch/capture procedures of the enhanced CPF.

Per-fault detection routes through a
:class:`~repro.engine.scheduler.FaultSimScheduler`, so the execution backend
(interpreted ``serial`` reference, in-process ``compiled`` kernels, or
sharded ``threads``/``processes`` pools) follows
``setup.options.sim_backend`` unless overridden per instance; every backend
yields identical detections.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.atpg.config import TestSetup
from repro.clocking.domains import ClockDomainMap
from repro.clocking.named_capture import NamedCaptureProcedure
from repro.engine.scheduler import FaultSimScheduler
from repro.faults.models import TransitionFault
from repro.patterns.pattern import TestPattern
from repro.simulation.logic import Logic
from repro.simulation.model import CircuitModel
from repro.simulation.parallel_sim import (
    PackedPatterns,
    mask_to_indices,
    pack_patterns,
)
from repro.simulation.scalar_sim import simulate as scalar_simulate


@dataclass
class TransitionSimResult:
    """Per-fault detecting pattern indices."""

    detections: dict[TransitionFault, list[int]]

    def detected_faults(self) -> list[TransitionFault]:
        return [fault for fault, hits in self.detections.items() if hits]


class FrameSimulator:
    """Good-machine frame simulation of capture-procedure pattern batches.

    Owns the per-frame state hand-off of broadside patterns: which clock
    domains each pulse clocks, how scan loads seed frame 0, which scan cells
    and primary outputs the final pulse observes.  Shared by the transition
    fault simulator, the tester-side fail-log capture of
    :mod:`repro.diagnose.faillog` and the diagnosis candidate scorer — all
    three must agree bit for bit on the frames they reason about.
    """

    def __init__(
        self,
        model: CircuitModel,
        domain_map: ClockDomainMap,
        setup: TestSetup,
        scheduler: FaultSimScheduler,
    ) -> None:
        self.model = model
        self.domain_map = domain_map
        self.setup = setup
        self.scheduler = scheduler
        self._constraints = setup.effective_pin_constraints()
        self._scan_elements = [e for e in model.state_elements if e.flop.is_scan]

    # ------------------------------------------------------------- observation
    def observation_nodes(self, procedure: NamedCaptureProcedure) -> list[int]:
        """Observation points for one procedure: D inputs of scan cells captured
        by the final pulse, plus primary outputs when they may be strobed."""
        observation: list[int] = []
        last_domains = procedure.capture_domains
        for element in self._scan_elements:
            if element.d_node is None:
                continue
            domain = self.domain_map.domain_of(element.name)
            if domain is not None and domain in last_domains:
                observation.append(element.d_node)
        if self.setup.observe_pos:
            observation.extend(idx for _, idx in self.model.po_nodes)
        return sorted(set(observation))

    def observed_scan_flops(self, procedure: NamedCaptureProcedure) -> list[str]:
        names = []
        for element in self._scan_elements:
            domain = self.domain_map.domain_of(element.name)
            if domain is not None and domain in procedure.capture_domains:
                names.append(element.name)
        return names

    # --------------------------------------------------------------- framing
    def iter_batches(self, items: Sequence[TestPattern], batch_size: int = 256):
        """Group a pattern set by capture procedure and simulate per batch.

        Yields ``(procedure, observation, chunk, batch, launch, final)`` for
        every homogeneous batch: the global pattern indices (``chunk``), the
        patterns themselves, and the launch/capture-frame planes.  Fail-log
        capture and diagnosis candidate scoring both iterate through this
        single generator, so the frames they reason about are identical by
        construction.
        """
        by_procedure: dict[str, list[int]] = {}
        for index, pattern in enumerate(items):
            by_procedure.setdefault(pattern.procedure.name, []).append(index)
        step = max(1, batch_size)
        for indices in by_procedure.values():
            procedure = items[indices[0]].procedure
            observation = self.observation_nodes(procedure)
            for start in range(0, len(indices), step):
                chunk = indices[start:start + step]
                batch = [items[i] for i in chunk]
                frames = self.frame_values_packed(batch, procedure)
                yield (
                    procedure,
                    observation,
                    chunk,
                    batch,
                    frames[procedure.launch_frame],
                    frames[procedure.capture_frame],
                )

    def frame_values_packed(
        self, batch: Sequence[TestPattern], procedure: NamedCaptureProcedure
    ) -> list[PackedPatterns]:
        """Simulate all frames of a homogeneous pattern batch bit-parallel."""
        frames: list[PackedPatterns] = []
        previous: PackedPatterns | None = None
        for frame_index in range(procedure.num_frames):
            assignments = [
                self.frame_source_assignment(pattern, frame_index) for pattern in batch
            ]
            packed = pack_patterns(self.model, assignments)
            if previous is not None:
                pulse = procedure.pulses[frame_index - 1]
                full = packed.full_mask
                for element in self.model.state_elements:
                    q = element.q_node
                    domain = self.domain_map.domain_of(element.name)
                    captured = domain is not None and domain in pulse.domains
                    if captured and element.d_node is not None:
                        packed.can0[q] = previous.can0[element.d_node]
                        packed.can1[q] = previous.can1[element.d_node]
                    elif captured:
                        packed.can0[q] = full
                        packed.can1[q] = full
                    else:
                        packed.can0[q] = previous.can0[q]
                        packed.can1[q] = previous.can1[q]
            self.scheduler.simulate_good(packed)
            frames.append(packed)
            previous = packed
        return frames

    def frame_source_assignment(self, pattern: TestPattern, frame: int) -> dict[int, Logic]:
        assignment: dict[int, Logic] = {}
        pi_values = pattern.pi_frames[min(frame, len(pattern.pi_frames) - 1)]
        for net, value in pi_values.items():
            idx = self.model.node_of_net.get(net)
            if idx is not None:
                assignment[idx] = value
        for net, value in self._constraints.items():
            idx = self.model.node_of_net.get(net)
            if idx is not None:
                assignment[idx] = value
        if frame == 0:
            for element in self.model.state_elements:
                if element.flop.is_scan:
                    value = pattern.scan_load.get(element.name, Logic.X)
                    assignment[element.q_node] = value
                elif element.flop.init is not None:
                    assignment[element.q_node] = Logic.from_int(element.flop.init)
        return assignment


class TransitionFaultSimulator:
    """Broadside transition-fault simulator over the base circuit model."""

    def __init__(
        self,
        model: CircuitModel,
        domain_map: ClockDomainMap,
        setup: TestSetup,
        batch_size: int = 256,
        backend: str | None = None,
        shard_count: int | None = None,
        max_workers: int | None = None,
    ) -> None:
        self.model = model
        self.domain_map = domain_map
        self.setup = setup
        self.batch_size = max(1, batch_size)
        options = setup.options
        self.scheduler = FaultSimScheduler(
            model,
            backend=backend or options.sim_backend,
            shard_count=shard_count or options.sim_shards,
            max_workers=max_workers or options.sim_workers,
        )
        self.frames = FrameSimulator(model, domain_map, setup, self.scheduler)

    def close(self) -> None:
        """Release the scheduler's worker pools (safe to keep simulating:
        pooled backends respawn lazily on the next batch)."""
        self.scheduler.close()

    # ------------------------------------------------------------- observation
    def observation_nodes(self, procedure: NamedCaptureProcedure) -> list[int]:
        """Observation points for one procedure: D inputs of scan cells captured
        by the final pulse, plus primary outputs when they may be strobed."""
        return self.frames.observation_nodes(procedure)

    def observed_scan_flops(self, procedure: NamedCaptureProcedure) -> list[str]:
        return self.frames.observed_scan_flops(procedure)

    # ------------------------------------------------------------- simulation
    def simulate(
        self,
        patterns: Sequence[TestPattern],
        faults: Iterable[TransitionFault],
        drop_detected: bool = True,
    ) -> TransitionSimResult:
        """Fault-simulate a pattern set against a transition fault list."""
        remaining = list(faults)
        detections: dict[TransitionFault, list[int]] = {fault: [] for fault in remaining}

        # Group pattern indices by procedure so every batch is homogeneous.
        by_procedure: dict[str, list[int]] = defaultdict(list)
        for index, pattern in enumerate(patterns):
            by_procedure[pattern.procedure.name].append(index)

        for indices in by_procedure.values():
            procedure = patterns[indices[0]].procedure
            observation = self.observation_nodes(procedure)
            for start in range(0, len(indices), self.batch_size):
                chunk = indices[start:start + self.batch_size]
                batch = [patterns[i] for i in chunk]
                frames = self._frame_values_packed(batch, procedure)
                launch_packed = frames[procedure.launch_frame]
                final_packed = frames[procedure.capture_frame]
                masks = self.scheduler.detect_batch(
                    final_packed, remaining, observation, launch=launch_packed
                )
                still_remaining: list[TransitionFault] = []
                for fault, mask in zip(remaining, masks):
                    if mask:
                        hits = [chunk[i] for i in mask_to_indices(mask) if i < len(chunk)]
                        detections[fault].extend(hits)
                        if not drop_detected:
                            still_remaining.append(fault)
                    else:
                        still_remaining.append(fault)
                remaining = still_remaining
        return TransitionSimResult(detections=detections)

    def detects(self, pattern: TestPattern, fault: TransitionFault) -> bool:
        result = self.simulate([pattern], [fault], drop_detected=False)
        return bool(result.detections[fault])

    def simulate_stuck_at(
        self,
        patterns: Sequence[TestPattern],
        faults: Iterable["StuckAtFault"],
        drop_detected: bool = True,
    ) -> dict:
        """Multi-frame stuck-at fault simulation of capture-procedure patterns.

        Stuck-at ATPG also uses multi-pulse ("clock sequential") procedures to
        initialize non-scan cells; this simulates those patterns frame by
        frame and injects each stuck-at fault into the final (observing)
        frame — the same approximation the time-frame-expanded PODEM model
        uses, so generator claims and simulation stay consistent.
        """
        remaining = list(faults)
        detections: dict = {fault: [] for fault in remaining}
        by_procedure: dict[str, list[int]] = defaultdict(list)
        for index, pattern in enumerate(patterns):
            by_procedure[pattern.procedure.name].append(index)
        for indices in by_procedure.values():
            procedure = patterns[indices[0]].procedure
            observation = self.observation_nodes(procedure)
            for start in range(0, len(indices), self.batch_size):
                chunk = indices[start:start + self.batch_size]
                batch = [patterns[i] for i in chunk]
                frames = self._frame_values_packed(batch, procedure)
                final_packed = frames[procedure.capture_frame]
                masks = self.scheduler.detect_batch(final_packed, remaining, observation)
                still_remaining = []
                for fault, mask in zip(remaining, masks):
                    if mask:
                        hits = [chunk[i] for i in mask_to_indices(mask) if i < len(chunk)]
                        detections[fault].extend(hits)
                        if not drop_detected:
                            still_remaining.append(fault)
                    else:
                        still_remaining.append(fault)
                remaining = still_remaining
        return detections

    # --------------------------------------------------------------- internals
    def _frame_values_packed(
        self, batch: Sequence[TestPattern], procedure: NamedCaptureProcedure
    ) -> list[PackedPatterns]:
        """Simulate all frames of a homogeneous pattern batch bit-parallel."""
        return self.frames.frame_values_packed(batch, procedure)

    def _frame_source_assignment(self, pattern: TestPattern, frame: int) -> dict[int, Logic]:
        return self.frames.frame_source_assignment(pattern, frame)

    # ----------------------------------------------------------- good machine
    def good_capture(self, pattern: TestPattern) -> tuple[dict[str, Logic], dict[str, Logic]]:
        """Scalar good-machine simulation of one pattern.

        Returns:
            ``(unload, outputs)`` where ``unload`` maps every scan flip-flop to
            the value it holds after the final capture pulse (captured value
            for clocked cells, the loaded value for cells that held) and
            ``outputs`` maps primary outputs to their final-frame values.
        """
        procedure = pattern.procedure
        state: dict[str, Logic] = {}
        for element in self.model.state_elements:
            if element.flop.is_scan:
                state[element.name] = pattern.scan_load.get(element.name, Logic.X)
            elif element.flop.init is not None:
                state[element.name] = Logic.from_int(element.flop.init)
            else:
                state[element.name] = Logic.X

        values: list[Logic] = []
        for frame in range(procedure.num_frames):
            assignment = self._frame_source_assignment(pattern, frame)
            for element in self.model.state_elements:
                assignment[element.q_node] = state[element.name]
            values = scalar_simulate(self.model, assignment)
            pulse = procedure.pulses[frame]
            new_state = dict(state)
            for element in self.model.state_elements:
                domain = self.domain_map.domain_of(element.name)
                if domain is not None and domain in pulse.domains:
                    if element.d_node is not None:
                        new_state[element.name] = values[element.d_node]
                    else:
                        new_state[element.name] = Logic.X
            state = new_state
        unload = {
            element.name: state[element.name]
            for element in self.model.state_elements
            if element.flop.is_scan
        }
        outputs = {net: values[idx] for net, idx in self.model.po_nodes} if values else {}
        return unload, outputs
