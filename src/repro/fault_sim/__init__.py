"""Fault simulators: stuck-at, transition (broadside) and path-delay."""

from repro.fault_sim.path_delay import PathDelaySensitizationChecker
from repro.fault_sim.stuck_at import (
    FaultSimResult,
    StuckAtFaultSimulator,
    propagate_fault_nodes,
    propagate_fault_packed,
)
from repro.fault_sim.transition import (
    FrameSimulator,
    TransitionFaultSimulator,
    TransitionSimResult,
)

__all__ = [
    "FaultSimResult",
    "FrameSimulator",
    "PathDelaySensitizationChecker",
    "StuckAtFaultSimulator",
    "TransitionFaultSimulator",
    "TransitionSimResult",
    "propagate_fault_nodes",
    "propagate_fault_packed",
]
