"""Stuck-at fault simulation with parallel-pattern single fault propagation.

The structure follows Waicukauski et al. (reference [3] of the paper): the
good machine is simulated bit-parallel for a batch of patterns; then every
still-undetected fault is injected one at a time and its effect is propagated
only through the fault's fanout cone, again bit-parallel, and compared against
the good machine at the observation points.  Detected faults are dropped by
the caller (usually via a :class:`~repro.faults.fault_list.FaultList`).

:func:`propagate_fault_packed` below is the interpreted propagation kernel;
it remains the ``serial`` reference backend of :mod:`repro.engine` and the
ground truth the compiled kernels are equivalence-tested against.  The
simulator class routes through a
:class:`~repro.engine.scheduler.FaultSimScheduler`, so the backend (and the
shard fan-out of the ``threads``/``processes`` backends) is selectable per
instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.engine.scheduler import FaultSimScheduler
from repro.faults.models import StuckAtFault
from repro.simulation.logic import Logic
from repro.simulation.model import CircuitModel, NodeKind
from repro.simulation.parallel_sim import (
    PackedPatterns,
    eval_gate_planes,
    mask_to_indices,
    pack_patterns,
)


def _propagate_planes(
    model: CircuitModel, good: PackedPatterns, fault: StuckAtFault
) -> tuple[dict[int, int], dict[int, int], set[int]]:
    """Inject one stuck-at fault and propagate it through its fanout cone.

    Returns the sparse faulty planes and the set of changed nodes; nodes not
    in ``changed`` read from the good machine.
    """
    site = fault.site
    full = good.full_mask
    stuck0 = full if fault.value == 0 else 0
    stuck1 = full if fault.value == 1 else 0

    faulty0: dict[int, int] = {}
    faulty1: dict[int, int] = {}

    start = site.node
    if site.pin is None:
        faulty0[start] = stuck0
        faulty1[start] = stuck1
    else:
        node = model.nodes[start]
        in0 = [good.can0[i] for i in node.fanin]
        in1 = [good.can1[i] for i in node.fanin]
        in0[site.pin] = stuck0
        in1[site.pin] = stuck1
        out0, out1 = eval_gate_planes(node.gtype, in0, in1, full)
        faulty0[start] = out0
        faulty1[start] = out1

    changed = {start}
    for idx in model.transitive_fanout(start):
        node = model.nodes[idx]
        if node.kind is not NodeKind.GATE:
            continue
        if not any(i in changed for i in node.fanin):
            continue
        in0 = [faulty0.get(i, good.can0[i]) for i in node.fanin]
        in1 = [faulty1.get(i, good.can1[i]) for i in node.fanin]
        out0, out1 = eval_gate_planes(node.gtype, in0, in1, full)
        if out0 == good.can0[idx] and out1 == good.can1[idx]:
            continue
        faulty0[idx] = out0
        faulty1[idx] = out1
        changed.add(idx)
    return faulty0, faulty1, changed


def propagate_fault_packed(
    model: CircuitModel,
    good: PackedPatterns,
    fault: StuckAtFault,
    observation: Sequence[int],
) -> int:
    """Bit mask of patterns that detect one stuck-at fault.

    The fault is injected into the already-simulated good-machine planes and
    propagated through its fanout cone only; a pattern detects the fault when
    some observation node differs between the two machines with both values
    known.
    """
    faulty0, faulty1, changed = _propagate_planes(model, good, fault)
    detect = 0
    for obs in observation:
        if obs not in changed:
            continue
        g0, g1 = good.can0[obs], good.can1[obs]
        f0, f1 = faulty0[obs], faulty1[obs]
        good_known = g0 ^ g1
        faulty_known = f0 ^ f1
        differ = (g1 & f0) | (g0 & f1)
        detect |= good_known & faulty_known & differ
    return detect


def propagate_fault_nodes(
    model: CircuitModel,
    good: PackedPatterns,
    fault: StuckAtFault,
    observation: Sequence[int],
) -> list[int]:
    """Per-observation-node detection masks of one stuck-at fault.

    Interpreted reference of :meth:`repro.engine.compile.CompiledCircuit.syndrome_stuck_at`:
    same injection and detection arithmetic as :func:`propagate_fault_packed`,
    but each observation node's mask is returned unmerged (aligned with
    ``observation``).
    """
    faulty0, faulty1, changed = _propagate_planes(model, good, fault)
    masks: list[int] = []
    for obs in observation:
        if obs not in changed:
            masks.append(0)
            continue
        g0, g1 = good.can0[obs], good.can1[obs]
        f0, f1 = faulty0[obs], faulty1[obs]
        masks.append((g0 ^ g1) & (f0 ^ f1) & ((g1 & f0) | (g0 & f1)))
    return masks


@dataclass
class FaultSimResult:
    """Which patterns detected which faults."""

    detections: dict[StuckAtFault, list[int]]

    def detected_faults(self) -> list[StuckAtFault]:
        return [fault for fault, hits in self.detections.items() if hits]


class StuckAtFaultSimulator:
    """Parallel-pattern single-fault-propagation stuck-at fault simulator.

    Args:
        backend: Engine execution backend (``"serial"`` runs the interpreted
            reference path above; ``"compiled"``, the default, uses the
            precompiled kernels; ``"threads"``/``"processes"`` shard the
            fault batch over workers).  All backends produce identical
            detection masks.
        shard_count / max_workers: Sharding fan-out for the pooled backends.
    """

    def __init__(
        self,
        model: CircuitModel,
        observation: Sequence[int] | None = None,
        batch_size: int = 256,
        backend: str | None = None,
        shard_count: int | None = None,
        max_workers: int | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.model = model
        self.observation = (
            list(observation) if observation is not None else model.observation_nodes()
        )
        self.batch_size = batch_size
        self.scheduler = FaultSimScheduler(
            model,
            backend=backend or "compiled",
            shard_count=shard_count,
            max_workers=max_workers,
        )

    def close(self) -> None:
        """Release the scheduler's worker pools (safe to keep simulating:
        pooled backends respawn lazily on the next batch)."""
        self.scheduler.close()

    def simulate(
        self,
        patterns: Sequence[Mapping[int, Logic]],
        faults: Iterable[StuckAtFault],
        drop_detected: bool = True,
    ) -> FaultSimResult:
        """Fault-simulate a pattern set against a fault list.

        Args:
            patterns: Source-node assignments, one dict per pattern.
            faults: Candidate faults (typically the still-undetected ones).
            drop_detected: Stop simulating a fault after its first detection.

        Returns:
            Per-fault lists of detecting pattern indices.
        """
        remaining = list(faults)
        detections: dict[StuckAtFault, list[int]] = {fault: [] for fault in remaining}
        for batch_start in range(0, len(patterns), self.batch_size):
            batch = [dict(p) for p in patterns[batch_start:batch_start + self.batch_size]]
            if not batch:
                continue
            packed = pack_patterns(self.model, batch)
            self.scheduler.simulate_good(packed)
            masks = self.scheduler.detect_batch(packed, remaining, self.observation)
            still_remaining: list[StuckAtFault] = []
            for fault, mask in zip(remaining, masks):
                if mask:
                    detections[fault].extend(mask_to_indices(mask, batch_start))
                    if not drop_detected:
                        still_remaining.append(fault)
                else:
                    still_remaining.append(fault)
            remaining = still_remaining
        return FaultSimResult(detections=detections)

    def detects(self, pattern: Mapping[int, Logic], fault: StuckAtFault) -> bool:
        """Convenience: does a single pattern detect a single fault?"""
        result = self.simulate([pattern], [fault], drop_detected=False)
        return bool(result.detections[fault])
