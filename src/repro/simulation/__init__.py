"""Logic value algebras, circuit models and simulators."""

from repro.simulation.event_sim import EventSimulator, clock_stimulus, step_stimulus
from repro.simulation.logic import DValue, Logic
from repro.simulation.model import CircuitModel, Node, NodeKind, StateElement, build_model
from repro.simulation.parallel_sim import (
    PackedPatterns,
    pack_patterns,
    simulate_packed,
    unpack_node,
    unpack_value,
)
from repro.simulation.scalar_sim import (
    next_state_values,
    output_values,
    simulate,
    simulate_by_net,
)
from repro.simulation.sequential import RamState, SequentialSimulator
from repro.simulation.waveform import Edge, Pulse, SignalTrace, Waveform

__all__ = [
    "CircuitModel",
    "DValue",
    "Edge",
    "EventSimulator",
    "Logic",
    "Node",
    "NodeKind",
    "PackedPatterns",
    "Pulse",
    "RamState",
    "SequentialSimulator",
    "SignalTrace",
    "StateElement",
    "Waveform",
    "build_model",
    "clock_stimulus",
    "next_state_values",
    "output_values",
    "pack_patterns",
    "simulate",
    "simulate_by_net",
    "simulate_packed",
    "step_stimulus",
    "unpack_node",
    "unpack_value",
]
