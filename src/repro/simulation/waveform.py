"""Waveform storage, querying and export.

The event-driven timing simulator records every value change of every traced
net into a :class:`Waveform`.  The waveform API is what the CPF verification
(:mod:`repro.clocking.waveform_check`) uses to prove the Figure 4 properties:
"exactly two PLL pulses reach ``clk_out``", "no glitches or spikes", "the
enable window opens three PLL cycles after the scan-clk trigger".
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable

from repro.simulation.logic import Logic


@dataclass(frozen=True)
class Edge:
    """A single value change on a signal."""

    time: float
    old: Logic
    new: Logic

    @property
    def is_rising(self) -> bool:
        return self.old is Logic.ZERO and self.new is Logic.ONE

    @property
    def is_falling(self) -> bool:
        return self.old is Logic.ONE and self.new is Logic.ZERO


@dataclass(frozen=True)
class Pulse:
    """A positive pulse: a rising edge followed by the next falling edge."""

    start: float
    end: float

    @property
    def width(self) -> float:
        return self.end - self.start


class SignalTrace:
    """Value history of one signal."""

    def __init__(self, name: str, initial: Logic = Logic.X, start_time: float = 0.0) -> None:
        self.name = name
        self._times: list[float] = [start_time]
        self._values: list[Logic] = [initial]

    def record(self, time: float, value: Logic) -> None:
        """Append a value change (ignored if the value does not change)."""
        if value is self._values[-1]:
            return
        if time < self._times[-1]:
            raise ValueError(f"time must be monotonic on {self.name!r}")
        if time == self._times[-1]:
            # Same-instant overwrite (delta-cycle collapse).
            self._values[-1] = value
            if len(self._values) >= 2 and self._values[-1] is self._values[-2]:
                self._times.pop()
                self._values.pop()
            return
        self._times.append(time)
        self._values.append(value)

    def value_at(self, time: float) -> Logic:
        """Signal value at (just after) ``time``."""
        idx = bisect_right(self._times, time) - 1
        if idx < 0:
            return Logic.X
        return self._values[idx]

    def edges(self) -> list[Edge]:
        """All value changes in time order."""
        result = []
        for i in range(1, len(self._times)):
            result.append(Edge(time=self._times[i], old=self._values[i - 1], new=self._values[i]))
        return result

    def rising_edges(self, start: float = float("-inf"), end: float = float("inf")) -> list[float]:
        return [e.time for e in self.edges() if e.is_rising and start <= e.time <= end]

    def falling_edges(self, start: float = float("-inf"), end: float = float("inf")) -> list[float]:
        return [e.time for e in self.edges() if e.is_falling and start <= e.time <= end]

    def pulses(self, start: float = float("-inf"), end: float = float("inf")) -> list[Pulse]:
        """Positive pulses fully contained in the window."""
        pulses: list[Pulse] = []
        rise: float | None = None
        for edge in self.edges():
            if edge.is_rising:
                rise = edge.time
            elif edge.is_falling and rise is not None:
                if start <= rise and edge.time <= end:
                    pulses.append(Pulse(start=rise, end=edge.time))
                rise = None
        return pulses

    def count_pulses(self, start: float = float("-inf"), end: float = float("inf")) -> int:
        return len(self.pulses(start, end))

    def has_glitch(self, min_width: float) -> bool:
        """True if any positive or negative pulse is narrower than ``min_width``."""
        edges = self.edges()
        for i in range(1, len(edges)):
            prev, cur = edges[i - 1], edges[i]
            narrow = (cur.time - prev.time) < min_width
            opposite = (prev.is_rising and cur.is_falling) or (prev.is_falling and cur.is_rising)
            if narrow and opposite:
                return True
        return False

    def changes(self) -> list[tuple[float, Logic]]:
        return list(zip(self._times, self._values))


class Waveform:
    """A collection of signal traces produced by one simulation run."""

    def __init__(self, time_unit: str = "ps") -> None:
        self.time_unit = time_unit
        self._traces: dict[str, SignalTrace] = {}
        self.end_time: float = 0.0

    def trace(self, name: str) -> SignalTrace:
        if name not in self._traces:
            self._traces[name] = SignalTrace(name)
        return self._traces[name]

    def __contains__(self, name: str) -> bool:
        return name in self._traces

    def __getitem__(self, name: str) -> SignalTrace:
        return self._traces[name]

    def signals(self) -> list[str]:
        return sorted(self._traces)

    def record(self, name: str, time: float, value: Logic) -> None:
        self.trace(name).record(time, value)
        self.end_time = max(self.end_time, time)

    def values_at(self, time: float) -> dict[str, Logic]:
        return {name: trace.value_at(time) for name, trace in self._traces.items()}

    # --------------------------------------------------------------- exports
    def to_vcd(self, signals: Iterable[str] | None = None) -> str:
        """Render a minimal VCD dump of the selected signals."""
        names = list(signals) if signals is not None else self.signals()
        ids = {name: chr(33 + i) for i, name in enumerate(names)}
        lines = [
            "$date repro $end",
            f"$timescale 1{self.time_unit} $end",
            "$scope module dut $end",
        ]
        for name in names:
            lines.append(f"$var wire 1 {ids[name]} {name} $end")
        lines += ["$upscope $end", "$enddefinitions $end"]
        events: dict[float, list[str]] = {}
        for name in names:
            if name not in self._traces:
                continue
            for time, value in self._traces[name].changes():
                events.setdefault(time, []).append(f"{_vcd_char(value)}{ids[name]}")
        for time in sorted(events):
            lines.append(f"#{int(round(time))}")
            lines.extend(events[time])
        lines.append(f"#{int(round(self.end_time))}")
        return "\n".join(lines) + "\n"

    def to_ascii(
        self,
        signals: Iterable[str] | None = None,
        start: float = 0.0,
        end: float | None = None,
        step: float | None = None,
        width: int = 72,
    ) -> str:
        """Render a textual waveform (one row per signal) for reports.

        ``1`` is drawn as ``▔``, ``0`` as ``▁`` and X/Z as ``░`` so the
        launch/capture pulse bursts of Figures 2 and 4 are recognizable in a
        terminal.
        """
        names = list(signals) if signals is not None else self.signals()
        end = end if end is not None else self.end_time
        if end <= start:
            end = start + 1.0
        step = step if step is not None else (end - start) / width
        rows = []
        for name in names:
            trace = self._traces.get(name)
            chars = []
            t = start
            while t < end:
                value = trace.value_at(t) if trace else Logic.X
                chars.append({Logic.ONE: "▔", Logic.ZERO: "▁"}.get(value, "░"))
                t += step
            rows.append(f"{name:>16} {''.join(chars)}")
        return "\n".join(rows)


def _vcd_char(value: Logic) -> str:
    return {Logic.ZERO: "0", Logic.ONE: "1", Logic.X: "x", Logic.Z: "z"}[value]
