"""Bit-parallel 3-valued simulation over arbitrary-width integer planes.

This is the workhorse behind fault simulation with parallel-pattern single
fault propagation (Waicukauski et al., ITC 1986 — reference [3] of the
paper).  Each signal is held as a pair of Python integers in dual-rail
encoding, one bit per pattern in the batch:

* ``can0`` bit set — the signal may be 0,
* ``can1`` bit set — the signal may be 1,
* both set — the signal is unknown (X),
* both clear — never produced by well-formed operations.

With this encoding AND/OR/NOT/XOR/MUX all reduce to a handful of bitwise
operations, the unknown value propagates pessimistically exactly like the
scalar 4-valued algebra (Z collapses to X on gate inputs), and — because
Python integers are arbitrary precision — a single "word" covers the whole
pattern batch regardless of its size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.netlist.gates import GateType
from repro.simulation.logic import Logic
from repro.simulation.model import CircuitModel, NodeKind


@dataclass
class PackedPatterns:
    """A batch of patterns packed into per-node dual-rail integer planes.

    Bit *p* of a plane belongs to pattern *p* of the batch.
    """

    num_patterns: int
    can0: list[int]
    can1: list[int]

    @property
    def full_mask(self) -> int:
        """Mask with one bit set per pattern in the batch."""
        return (1 << self.num_patterns) - 1


def pack_patterns(
    model: CircuitModel,
    patterns: Sequence[dict[int, Logic]],
    default: Logic = Logic.X,
) -> PackedPatterns:
    """Pack per-pattern source assignments into dual-rail planes.

    Args:
        model: Circuit the patterns target.
        patterns: One dict per pattern mapping source node index -> value.
        default: Value for unassigned source nodes.

    Returns:
        The packed representation; gate/constant planes are left as X and
        filled in by :func:`simulate_packed`.
    """
    num_patterns = max(1, len(patterns))
    full = (1 << num_patterns) - 1
    default0, default1 = _planes_of(default, full)

    num_nodes = model.num_nodes
    can0 = [0] * num_nodes
    can1 = [0] * num_nodes
    source_kinds = (NodeKind.PI, NodeKind.PPI, NodeKind.RAM_OUT)
    for node in model.nodes:
        if node.kind in source_kinds:
            can0[node.index] = default0
            can1[node.index] = default1

    for p_index, assignment in enumerate(patterns):
        bit = 1 << p_index
        clear = ~bit
        for node_index, value in assignment.items():
            if value is Logic.ONE:
                can0[node_index] &= clear
                can1[node_index] |= bit
            elif value is Logic.ZERO:
                can1[node_index] &= clear
                can0[node_index] |= bit
            else:
                can0[node_index] |= bit
                can1[node_index] |= bit
    return PackedPatterns(num_patterns=num_patterns, can0=can0, can1=can1)


def simulate_packed(model: CircuitModel, packed: PackedPatterns) -> PackedPatterns:
    """Evaluate all gate nodes of the model over a packed pattern batch.

    The source-node planes are taken from ``packed``; gate and constant node
    planes are overwritten in place.  Returns ``packed`` for chaining.
    """
    can0, can1 = packed.can0, packed.can1
    full = packed.full_mask
    for node in model.nodes:
        idx = node.index
        kind = node.kind
        if kind is NodeKind.CONST0:
            can0[idx], can1[idx] = full, 0
        elif kind is NodeKind.CONST1:
            can0[idx], can1[idx] = 0, full
        elif kind is NodeKind.GATE:
            out0, out1 = eval_gate_planes(
                node.gtype,
                [can0[i] for i in node.fanin],
                [can1[i] for i in node.fanin],
                full,
            )
            can0[idx], can1[idx] = out0, out1
    return packed


def eval_gate_planes(
    gtype: GateType, in0: Sequence[int], in1: Sequence[int], full: int
) -> tuple[int, int]:
    """Evaluate one primitive gate over dual-rail integer planes."""
    if gtype is GateType.BUF:
        return in0[0], in1[0]
    if gtype is GateType.NOT:
        return in1[0], in0[0]
    if gtype in (GateType.AND, GateType.NAND):
        out0, out1 = in0[0], in1[0]
        for a0, a1 in zip(in0[1:], in1[1:]):
            out0 |= a0
            out1 &= a1
        return (out1, out0) if gtype is GateType.NAND else (out0, out1)
    if gtype in (GateType.OR, GateType.NOR):
        out0, out1 = in0[0], in1[0]
        for a0, a1 in zip(in0[1:], in1[1:]):
            out0 &= a0
            out1 |= a1
        return (out1, out0) if gtype is GateType.NOR else (out0, out1)
    if gtype in (GateType.XOR, GateType.XNOR):
        out0, out1 = in0[0], in1[0]
        for b0, b1 in zip(in0[1:], in1[1:]):
            out0, out1 = (out0 & b0) | (out1 & b1), (out0 & b1) | (out1 & b0)
        return (out1, out0) if gtype is GateType.XNOR else (out0, out1)
    if gtype is GateType.MUX2:
        s0, s1 = in0[0], in1[0]
        a0, a1 = in0[1], in1[1]
        b0, b1 = in0[2], in1[2]
        return (s0 & a0) | (s1 & b0), (s0 & a1) | (s1 & b1)
    if gtype is GateType.TIE0:
        return full, 0
    if gtype is GateType.TIE1:
        return 0, full
    raise ValueError(f"unsupported packed gate type {gtype!r}")


def unpack_value(packed: PackedPatterns, node_index: int, pattern_index: int) -> Logic:
    """Read back one node's value for one pattern."""
    bit = 1 << pattern_index
    b0 = bool(packed.can0[node_index] & bit)
    b1 = bool(packed.can1[node_index] & bit)
    if b0 and b1:
        return Logic.X
    if b1:
        return Logic.ONE
    if b0:
        return Logic.ZERO
    return Logic.X


def unpack_node(packed: PackedPatterns, node_index: int) -> list[Logic]:
    """Read back one node's values for the whole batch."""
    return [unpack_value(packed, node_index, p) for p in range(packed.num_patterns)]


def known_equal_mask(packed: PackedPatterns, node_index: int, value: Logic) -> int:
    """Bit mask of patterns where a node has the given known value."""
    known = packed.can0[node_index] ^ packed.can1[node_index]
    if value is Logic.ZERO:
        return known & packed.can0[node_index]
    if value is Logic.ONE:
        return known & packed.can1[node_index]
    return 0


def known_difference_mask(
    good: PackedPatterns, faulty_can0: int, faulty_can1: int, node_index: int
) -> int:
    """Patterns where a node differs between good/faulty machines with both
    values known (hard detection)."""
    g0 = good.can0[node_index]
    g1 = good.can1[node_index]
    good_known = g0 ^ g1
    faulty_known = faulty_can0 ^ faulty_can1
    differ = (g1 & faulty_can0) | (g0 & faulty_can1)
    return good_known & faulty_known & differ


def active_pattern_mask(num_patterns: int) -> int:
    """Mask with a 1 bit for every valid pattern slot in the batch."""
    return (1 << num_patterns) - 1


def mask_to_indices(mask: int, offset: int = 0) -> list[int]:
    """Indices of set bits in a detection mask (plus an optional offset)."""
    indices: list[int] = []
    bit = 0
    while mask:
        if mask & 1:
            indices.append(offset + bit)
        mask >>= 1
        bit += 1
    return indices


def _planes_of(value: Logic, full: int) -> tuple[int, int]:
    if value is Logic.ZERO:
        return full, 0
    if value is Logic.ONE:
        return 0, full
    return full, full


def patterns_from_vectors(
    model: CircuitModel, vectors: Iterable[dict[str, Logic]]
) -> list[dict[int, Logic]]:
    """Translate net-name keyed vectors into node-index keyed assignments."""
    converted: list[dict[int, Logic]] = []
    for vector in vectors:
        converted.append({model.node_of_net[net]: val for net, val in vector.items()})
    return converted
