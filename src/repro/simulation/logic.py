"""Multi-valued logic algebras (re-exported from :mod:`repro.logic`).

The implementation lives in the top-level :mod:`repro.logic` module so that
:mod:`repro.netlist` can use it without importing the simulation package
(which itself depends on the netlist package).
"""

from repro.logic import (
    DValue,
    Logic,
    dvalue_and,
    dvalue_not,
    dvalue_or,
    dvalue_xor,
)

__all__ = [
    "DValue",
    "Logic",
    "dvalue_and",
    "dvalue_not",
    "dvalue_or",
    "dvalue_xor",
]
