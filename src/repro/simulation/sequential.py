"""Cycle-based sequential simulation with per-clock-domain pulsing.

This zero-delay simulator applies whole test procedures to a design: scan
shifting, launch/capture pulse bursts per clock domain, RAM reads/writes, and
primary-output strobes.  It is the engine that

* verifies ATPG patterns end-to-end (scan load -> CPF pulse burst -> unload),
* produces the Figure 2 clocking waveform at cycle granularity, and
* executes the memory macro-test example from Section 4 of the paper.

The simulator works on a :class:`~repro.netlist.netlist.Netlist` plus its
flattened :class:`~repro.simulation.model.CircuitModel`; flip-flop state and
RAM contents live in the simulator, and each ``pulse`` call clocks exactly the
clock nets the caller names (the clocking layer decides what those are — an
external scan clock, or the output of a CPF).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.netlist.netlist import Netlist, RamMacro
from repro.simulation.logic import Logic
from repro.simulation.model import CircuitModel, build_model
from repro.simulation.scalar_sim import simulate
from repro.simulation.waveform import Waveform


@dataclass
class RamState:
    """Contents of one RAM macro during simulation."""

    macro: RamMacro
    words: dict[int, tuple[Logic, ...]] = field(default_factory=dict)
    corrupted: bool = False

    def read(self, address: int | None) -> tuple[Logic, ...]:
        width = self.macro.width
        if address is None or self.corrupted:
            return tuple([Logic.X] * width)
        return self.words.get(address, tuple([Logic.X] * width))

    def write(self, address: int | None, data: Sequence[Logic]) -> None:
        if address is None:
            # Writing to an unknown address can corrupt any word.
            self.corrupted = True
            return
        self.words[address] = tuple(data)


class SequentialSimulator:
    """Zero-delay, clock-domain-aware sequential simulator."""

    def __init__(self, netlist: Netlist, model: CircuitModel | None = None) -> None:
        self.netlist = netlist
        self.model = model or build_model(netlist)
        self.state: dict[str, Logic] = {}
        self.latch_state: dict[str, Logic] = {}
        self.pi_values: dict[str, Logic] = {}
        self.rams: dict[str, RamState] = {
            name: RamState(macro=ram) for name, ram in netlist.rams.items()
        }
        self.reset_state()
        # Registered RAM outputs (synchronous read) — held between pulses.
        self._ram_outputs: dict[str, Logic] = {}
        self.cycle_count = 0

    # ------------------------------------------------------------------ state
    def reset_state(self) -> None:
        """Set every flip-flop to its declared init value (X when none)."""
        self.state = {}
        for flop in self.netlist.flops.values():
            self.state[flop.name] = Logic.X if flop.init is None else Logic.from_int(flop.init)
        self.latch_state = {latch.name: Logic.X for latch in self.netlist.latches.values()}
        self._ram_outputs = {}
        self.cycle_count = 0

    def load_state(self, values: Mapping[str, Logic | int]) -> None:
        """Directly set flip-flop states (abstract scan load)."""
        for name, value in values.items():
            if name not in self.state:
                raise KeyError(f"no flip-flop named {name!r}")
            self.state[name] = value if isinstance(value, Logic) else Logic.from_int(value)

    def read_state(self, names: Iterable[str] | None = None) -> dict[str, Logic]:
        """Current flip-flop states (abstract scan unload)."""
        if names is None:
            return dict(self.state)
        return {name: self.state[name] for name in names}

    def set_inputs(self, values: Mapping[str, Logic | int]) -> None:
        """Set primary-input values; they persist until changed."""
        for net, value in values.items():
            self.pi_values[net] = value if isinstance(value, Logic) else Logic.from_int(value)

    # ------------------------------------------------------------- evaluation
    def settle(self) -> list[Logic]:
        """Evaluate the combinational logic for the current state and inputs."""
        assignments: dict[int, Logic] = {}
        for net, value in self.pi_values.items():
            idx = self.model.node_of_net.get(net)
            if idx is not None:
                assignments[idx] = value
        for flop in self.netlist.flops.values():
            assignments[self.model.node_of_net[flop.q]] = self.state[flop.name]
        for latch in self.netlist.latches.values():
            assignments[self.model.node_of_net[latch.q]] = self.latch_state[latch.name]
        for ram in self.netlist.rams.values():
            for i, net in enumerate(ram.data_out):
                assignments[self.model.node_of_net[net]] = self._ram_outputs.get(net, Logic.X)
        return simulate(self.model, assignments)

    def outputs(self, values: Sequence[Logic] | None = None) -> dict[str, Logic]:
        """Primary-output values for the current (or given) evaluation."""
        values = values if values is not None else self.settle()
        return {net: values[idx] for net, idx in self.model.po_nodes}

    def net_value(self, net: str, values: Sequence[Logic] | None = None) -> Logic:
        values = values if values is not None else self.settle()
        return values[self.model.node_of_net[net]]

    # ----------------------------------------------------------------- pulses
    def pulse(self, clock_nets: Iterable[str]) -> dict[str, Logic]:
        """Apply one rising clock edge to the named clock nets.

        All flip-flops whose clock is in ``clock_nets`` capture simultaneously
        from the settled combinational values (including scan-path capture
        when their scan-enable input evaluates to 1).  RAM macros clocked by
        those nets perform one synchronous read/write.

        Returns:
            The values captured into flip-flops, keyed by flip-flop name.
        """
        clocks = set(clock_nets)
        values = self.settle()
        captured: dict[str, Logic] = {}
        for flop in self.netlist.flops.values():
            if flop.clock not in clocks:
                continue
            if flop.reset and self._value_of_net(flop.reset, values) is Logic.ONE:
                captured[flop.name] = Logic.ZERO
                continue
            captured[flop.name] = self._capture_value(flop, values)
        # RAM operations use the pre-edge values too.
        for name, ram_state in self.rams.items():
            macro = ram_state.macro
            if macro.clock not in clocks:
                continue
            address = self._address_of(macro, values)
            write_enable = self._value_of_net(macro.write_enable, values)
            if write_enable is Logic.ONE:
                data = [self._value_of_net(net, values) for net in macro.data_in]
                ram_state.write(address, data)
            elif write_enable is Logic.X:
                ram_state.corrupted = True
            word = ram_state.read(address)
            for net, bit in zip(macro.data_out, word):
                self._ram_outputs[net] = bit
        # Commit flip-flop updates after all captures are computed.
        self.state.update(captured)
        self.cycle_count += 1
        return captured

    def cycle(
        self, inputs: Mapping[str, Logic | int] | None = None, clock_nets: Iterable[str] = ()
    ) -> dict[str, Logic]:
        """Convenience: set inputs, then pulse the given clocks."""
        if inputs:
            self.set_inputs(inputs)
        return self.pulse(clock_nets)

    # ------------------------------------------------------------------- scan
    def scan_shift(
        self,
        chains: Sequence[Sequence[str]],
        scan_in_bits: Sequence[Sequence[Logic | int]],
        scan_enable_net: str,
        shift_clock_nets: Iterable[str],
    ) -> list[list[Logic]]:
        """Shift data through scan chains at full structural detail.

        Args:
            chains: One list of flip-flop names per chain, scan-in first.
            scan_in_bits: Bits to shift into each chain; bit 0 enters first
                and ends up in the *last* cell of the chain.
            scan_enable_net: Net to drive high during shifting.
            shift_clock_nets: Clock nets pulsed during each shift cycle.

        Returns:
            The bits shifted out of each chain (from the chain outputs), in
            shift order.
        """
        max_len = max((len(bits) for bits in scan_in_bits), default=0)
        self.set_inputs({scan_enable_net: Logic.ONE})
        shifted_out: list[list[Logic]] = [[] for _ in chains]
        chain_tail = [chain[-1] if chain else None for chain in chains]
        for step in range(max_len):
            # Drive each chain's external scan-in pin for this shift cycle.
            for chain_index, chain in enumerate(chains):
                bits = scan_in_bits[chain_index]
                value = bits[step] if step < len(bits) else Logic.ZERO
                head = self.netlist.flops[chain[0]]
                if head.scan_in is None:
                    raise ValueError(f"flip-flop {chain[0]!r} has no scan input")
                self.set_inputs({head.scan_in: value})
            for chain_index, tail in enumerate(chain_tail):
                if tail is not None:
                    shifted_out[chain_index].append(self.state[tail])
            self.pulse(shift_clock_nets)
        self.set_inputs({scan_enable_net: Logic.ZERO})
        return shifted_out

    # ------------------------------------------------------------- waveforms
    def trace_procedure(
        self,
        steps: Sequence[tuple[Mapping[str, Logic | int], Iterable[str]]],
        signals: Iterable[str],
        cycle_time: float = 1.0,
    ) -> Waveform:
        """Run a sequence of (inputs, pulsed clocks) steps recording a waveform.

        Each step occupies one ``cycle_time``: input changes are recorded at
        the start of the step, the clock pulse (if any) in the middle.  The
        result is the cycle-granular picture the paper draws in Figure 2.
        """
        waveform = Waveform(time_unit="cycle")
        time = 0.0
        for inputs, clocks in steps:
            if inputs:
                self.set_inputs(inputs)
            values = self.settle()
            for net in signals:
                if net in self.model.node_of_net:
                    waveform.record(net, time, values[self.model.node_of_net[net]])
                elif net in self.pi_values:
                    waveform.record(net, time, self.pi_values[net])
            clocks = list(clocks)
            for clock in clocks:
                waveform.record(clock, time, Logic.ZERO)
                waveform.record(clock, time + 0.25 * cycle_time, Logic.ONE)
                waveform.record(clock, time + 0.75 * cycle_time, Logic.ZERO)
            if clocks:
                self.pulse(clocks)
            time += cycle_time
        waveform.end_time = time
        return waveform

    # -------------------------------------------------------------- internals
    def _capture_value(self, flop, values: Sequence[Logic]) -> Logic:
        if flop.is_scan:
            scan_enable = self._value_of_net(flop.scan_enable, values)
            if scan_enable is Logic.ONE:
                return self._value_of_net(flop.scan_in, values)
            if scan_enable is not Logic.ZERO:
                return Logic.X
        if flop.d is None:
            return Logic.X
        return self._value_of_net(flop.d, values)

    def _value_of_net(self, net: str | None, values: Sequence[Logic]) -> Logic:
        if net is None:
            return Logic.X
        idx = self.model.node_of_net.get(net)
        if idx is not None:
            return values[idx]
        return self.pi_values.get(net, Logic.X)

    def _address_of(self, macro: RamMacro, values: Sequence[Logic]) -> int | None:
        bits = [self._value_of_net(net, values) for net in macro.address]
        if any(not bit.is_known for bit in bits):
            return None
        address = 0
        for bit in bits:  # MSB first
            address = (address << 1) | bit.to_int()
        return address
