"""Scalar (one pattern at a time) 4-valued simulation of a circuit model.

The scalar simulator is the reference implementation: simple, obviously
correct, used by unit tests and by the property-based tests as the oracle the
bit-parallel simulator must agree with.  It is also the engine behind PODEM's
forward implication when lifted to the D-calculus
(:mod:`repro.atpg.podem` has its own five-valued evaluation).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.netlist.gates import evaluate_gate
from repro.simulation.logic import Logic
from repro.simulation.model import CircuitModel, NodeKind


def simulate(
    model: CircuitModel,
    assignments: Mapping[int, Logic],
    default: Logic = Logic.X,
) -> list[Logic]:
    """Evaluate every node of the model for one input assignment.

    Args:
        model: The levelized circuit.
        assignments: Values for source nodes (PI/PPI/RAM_OUT), keyed by node
            index.  Missing sources take ``default``.
        default: Value used for unassigned source nodes.

    Returns:
        A list of node values indexed by node id.
    """
    values: list[Logic] = [Logic.X] * model.num_nodes
    for node in model.nodes:
        if node.kind is NodeKind.GATE:
            inputs = [values[i] for i in node.fanin]
            values[node.index] = evaluate_gate(node.gtype, inputs)
        elif node.kind is NodeKind.CONST0:
            values[node.index] = Logic.ZERO
        elif node.kind is NodeKind.CONST1:
            values[node.index] = Logic.ONE
        else:  # PI / PPI / RAM_OUT
            values[node.index] = assignments.get(node.index, default)
    return values


def simulate_by_net(
    model: CircuitModel,
    net_assignments: Mapping[str, Logic | int | str],
    default: Logic = Logic.X,
) -> dict[str, Logic]:
    """Convenience wrapper keyed by net names instead of node indices.

    Assignment values may be :class:`Logic`, ``0``/``1`` ints or single
    characters (``"0"``, ``"1"``, ``"X"``).
    """
    assignments: dict[int, Logic] = {}
    for net, value in net_assignments.items():
        idx = model.node_of_net[net]
        assignments[idx] = _coerce(value)
    values = simulate(model, assignments, default=default)
    return {node.net: values[node.index] for node in model.nodes}


def output_values(model: CircuitModel, values: Sequence[Logic]) -> dict[str, Logic]:
    """Extract primary-output values from a full node-value vector."""
    return {net: values[idx] for net, idx in model.po_nodes}


def next_state_values(model: CircuitModel, values: Sequence[Logic]) -> dict[str, Logic]:
    """Extract the next-state (D-pin) value of every flip-flop.

    Flip-flops whose D net is undriven yield ``X``.
    """
    state: dict[str, Logic] = {}
    for element in model.state_elements:
        if element.d_node is None:
            state[element.name] = Logic.X
        else:
            state[element.name] = values[element.d_node]
    return state


def resimulate_from(
    model: CircuitModel,
    values: list[Logic],
    changed_nodes: Iterable[int],
) -> list[Logic]:
    """Event-driven incremental re-evaluation after source nodes changed.

    ``values`` is modified in place and returned.  Only nodes in the
    transitive fanout of ``changed_nodes`` are re-evaluated — this is what the
    fault simulators use to propagate a single fault's effect cheaply.
    """
    # Collect the affected region in level order.
    affected: set[int] = set()
    for start in changed_nodes:
        affected.add(start)
        affected.update(model.transitive_fanout(start))
    for index in sorted(affected, key=lambda i: (model.nodes[i].level, i)):
        node = model.nodes[index]
        if node.kind is NodeKind.GATE:
            values[index] = evaluate_gate(node.gtype, [values[i] for i in node.fanin])
    return values


def _coerce(value: Logic | int | str) -> Logic:
    if isinstance(value, Logic):
        return value
    if isinstance(value, str):
        return Logic.from_char(value)
    return Logic.from_int(value)
