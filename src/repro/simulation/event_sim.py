"""Event-driven timing simulation with per-gate delays.

Unlike the zero-delay cycle simulators, this engine assigns every primitive
gate its library delay and models flip-flops and latches explicitly, so it
can demonstrate the CPF's *timing* behaviour: that the clock gating cell
produces no glitches, that exactly two full-width PLL pulses appear at
``clk_out`` and that the enable window opens three PLL cycles after the
scan-clk trigger (Figure 4 of the paper).

Stimulus is supplied as per-input waveforms (lists of ``(time, value)``
changes); the simulator produces a :class:`~repro.simulation.waveform.Waveform`
containing the full history of every net.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from itertools import count
from typing import Iterable, Mapping, Sequence

from repro.netlist.gates import GateType, evaluate_gate
from repro.netlist.library import DEFAULT_LIBRARY, CellInfo, FLOP_INFO, LATCH_INFO
from repro.netlist.netlist import FlipFlop, Gate, Latch, Netlist
from repro.simulation.logic import Logic
from repro.simulation.waveform import Waveform


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    net: str = field(compare=False)
    value: Logic = field(compare=False)


class EventSimulator:
    """Gate-level event-driven simulator over a :class:`Netlist`.

    Args:
        netlist: Design to simulate (combinational gates, flip-flops, latches;
            RAM macros are not supported by the timing engine — they never
            appear inside clock-generation logic).
        library: Optional map of per-gate-type delays; defaults to the 130nm
            numbers from :mod:`repro.netlist.library`.
        default_gate_delay: Fallback delay for gate types missing from the
            library.
    """

    def __init__(
        self,
        netlist: Netlist,
        library: Mapping[GateType, CellInfo] | None = None,
        default_gate_delay: float = 30.0,
        flop_clk_to_q: float = FLOP_INFO.delay_ps,
        latch_delay: float = LATCH_INFO.delay_ps,
    ) -> None:
        if netlist.rams:
            raise ValueError("EventSimulator does not support RAM macros")
        self.netlist = netlist
        self.library = dict(library or DEFAULT_LIBRARY)
        self.default_gate_delay = default_gate_delay
        self.flop_clk_to_q = flop_clk_to_q
        self.latch_delay = latch_delay

        self._values: dict[str, Logic] = {net: Logic.X for net in netlist.all_nets()}
        self._flop_state: dict[str, Logic] = {}
        self._queue: list[_Event] = []
        self._seq = count()
        self.waveform = Waveform()
        self.now = 0.0

        # Sink maps for event propagation.
        self._gate_sinks: dict[str, list[Gate]] = {}
        self._flop_clock_sinks: dict[str, list[FlipFlop]] = {}
        self._flop_reset_sinks: dict[str, list[FlipFlop]] = {}
        self._latch_sinks: dict[str, list[Latch]] = {}
        for gate in netlist.gates.values():
            for net in gate.inputs:
                self._gate_sinks.setdefault(net, []).append(gate)
        for flop in netlist.flops.values():
            self._flop_clock_sinks.setdefault(flop.clock, []).append(flop)
            if flop.reset:
                self._flop_reset_sinks.setdefault(flop.reset, []).append(flop)
            self._flop_state[flop.name] = Logic.X if flop.init is None else Logic.from_int(flop.init)
        for latch in netlist.latches.values():
            for net in (latch.d, latch.enable):
                self._latch_sinks.setdefault(net, []).append(latch)

    # ----------------------------------------------------------------- values
    def value(self, net: str) -> Logic:
        """Current value of a net."""
        return self._values[net]

    def _gate_delay(self, gate: Gate) -> float:
        info = self.library.get(gate.gtype)
        return info.delay_ps if info is not None else self.default_gate_delay

    # --------------------------------------------------------------- schedule
    def schedule(self, net: str, value: Logic, time: float) -> None:
        """Schedule a value change on a net at an absolute time."""
        if time < self.now:
            raise ValueError("cannot schedule events in the past")
        heapq.heappush(self._queue, _Event(time=time, seq=next(self._seq), net=net, value=value))

    def apply_stimulus(self, stimulus: Mapping[str, Sequence[tuple[float, Logic | int]]]) -> None:
        """Schedule a set of input waveforms.

        Args:
            stimulus: Map of net name to ``(time, value)`` change lists.
        """
        for net, changes in stimulus.items():
            for time, value in changes:
                logic = value if isinstance(value, Logic) else Logic.from_int(value)
                self.schedule(net, logic, time)

    # -------------------------------------------------------------------- run
    def initialize(self, initial: Mapping[str, Logic | int] | None = None) -> None:
        """Set time-zero values (defaults X) and settle combinational logic."""
        for net, value in (initial or {}).items():
            logic = value if isinstance(value, Logic) else Logic.from_int(value)
            self._values[net] = logic
            self.waveform.record(net, 0.0, logic)
        for flop in self.netlist.flops.values():
            state = self._flop_state[flop.name]
            self._values[flop.q] = state
            self.waveform.record(flop.q, 0.0, state)
        # Settle combinational logic at time zero with zero cost events.
        for gate in self.netlist.topological_gate_order():
            new = evaluate_gate(gate.gtype, [self._values[n] for n in gate.inputs])
            self._values[gate.output] = new
            self.waveform.record(gate.output, 0.0, new)

    def run(self, until: float) -> Waveform:
        """Process events until the given absolute time; returns the waveform."""
        while self._queue and self._queue[0].time <= until:
            event = heapq.heappop(self._queue)
            self.now = event.time
            self._commit(event.net, event.value)
        self.now = max(self.now, until)
        self.waveform.end_time = max(self.waveform.end_time, until)
        return self.waveform

    # -------------------------------------------------------------- internals
    def _commit(self, net: str, value: Logic) -> None:
        old = self._values.get(net, Logic.X)
        if value is old:
            return
        self._values[net] = value
        self.waveform.record(net, self.now, value)

        for gate in self._gate_sinks.get(net, ()):
            new = evaluate_gate(gate.gtype, [self._values[n] for n in gate.inputs])
            self.schedule(gate.output, new, self.now + self._gate_delay(gate))

        rising = old is not Logic.ONE and value is Logic.ONE
        for flop in self._flop_clock_sinks.get(net, ()):
            if not rising:
                continue
            if flop.reset and self._values.get(flop.reset) is Logic.ONE:
                captured = Logic.ZERO
            else:
                captured = self._capture_value(flop)
            self._flop_state[flop.name] = captured
            self.schedule(flop.q, captured, self.now + self.flop_clk_to_q)
        for flop in self._flop_reset_sinks.get(net, ()):
            if value is Logic.ONE:
                self._flop_state[flop.name] = Logic.ZERO
                self.schedule(flop.q, Logic.ZERO, self.now + self.flop_clk_to_q)

        for latch in self._latch_sinks.get(net, ()):
            enable = self._values.get(latch.enable, Logic.X)
            active = Logic.from_int(latch.active_level)
            if enable is active:
                self.schedule(latch.q, self._values.get(latch.d, Logic.X), self.now + self.latch_delay)
            elif enable is Logic.X:
                self.schedule(latch.q, Logic.X, self.now + self.latch_delay)

    def _capture_value(self, flop: FlipFlop) -> Logic:
        """Value a flip-flop captures on an active clock edge (scan aware)."""
        if flop.is_scan:
            scan_enable = self._values.get(flop.scan_enable, Logic.X)
            if scan_enable is Logic.ONE:
                return self._values.get(flop.scan_in, Logic.X)
            if scan_enable is Logic.X:
                return Logic.X
        return self._values.get(flop.d, Logic.X)


def clock_stimulus(
    period: float,
    num_cycles: int,
    start: float = 0.0,
    duty: float = 0.5,
    initial_low: bool = True,
) -> list[tuple[float, Logic]]:
    """Build a periodic clock stimulus waveform.

    Args:
        period: Clock period in the simulator's time unit.
        num_cycles: Number of full cycles to generate.
        start: Time of the first rising edge.
        duty: High-time fraction of the period.
        initial_low: Emit an initial 0 at time zero.

    Returns:
        A ``(time, value)`` change list suitable for ``apply_stimulus``.
    """
    changes: list[tuple[float, Logic]] = []
    if initial_low:
        changes.append((0.0, Logic.ZERO))
    for cycle in range(num_cycles):
        rise = start + cycle * period
        fall = rise + duty * period
        changes.append((rise, Logic.ONE))
        changes.append((fall, Logic.ZERO))
    return changes


def step_stimulus(changes: Iterable[tuple[float, int]]) -> list[tuple[float, Logic]]:
    """Convert ``(time, 0/1)`` tuples into a Logic change list."""
    return [(time, Logic.from_int(value)) for time, value in changes]
