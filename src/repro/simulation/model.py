"""Flattened, levelized combinational circuit model.

Everything compute-intensive in the library (logic simulation, fault
simulation, SCOAP, PODEM) operates on a :class:`CircuitModel` rather than on
the editable :class:`~repro.netlist.netlist.Netlist`.  The model is an array
of :class:`Node` records in topological order:

* one node per primary input (``PI``),
* one node per sequential element output (``PPI`` — pseudo primary input;
  flip-flops and latches both appear here because during a single capture
  frame their outputs are simply state),
* one node per RAM data output (``RAM_OUT`` — unknown unless a RAM-sequential
  pattern drives it),
* one node per combinational gate (``GATE``),
* constant nodes for tie cells.

The model also records, for every flip-flop, the node computing its next
state (the driver of its functional ``D`` pin and of its ``scan_in`` pin),
and the node feeding every primary output.  Time-frame expansion for delay
test builds a larger ``CircuitModel`` out of ``k`` copies of this one
(:mod:`repro.atpg.timeframe`).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from enum import Enum

from repro.netlist.gates import GateType
from repro.netlist.netlist import DesignHierarchy, FlipFlop, Netlist


class NodeKind(str, Enum):
    """Role of a node in the flattened model."""

    PI = "PI"
    PPI = "PPI"
    RAM_OUT = "RAM_OUT"
    GATE = "GATE"
    CONST0 = "CONST0"
    CONST1 = "CONST1"


@dataclass(frozen=True)
class Node:
    """One vertex of the levelized circuit graph.

    Attributes:
        index: Position in the model's node list (also its id).
        kind: Structural role.
        net: Name of the net this node drives.
        gtype: Gate type for ``GATE`` nodes, else ``None``.
        fanin: Indices of driver nodes, in pin order (empty for sources).
        level: Topological level (sources are level 0).
        instance: Name of the originating gate/flop/RAM instance, if any.
    """

    index: int
    kind: NodeKind
    net: str
    gtype: GateType | None
    fanin: tuple[int, ...]
    level: int
    instance: str | None = None


@dataclass(frozen=True)
class StateElement:
    """A flip-flop viewed from the model: where its output enters the logic
    and which node computes its next state."""

    flop: FlipFlop
    q_node: int
    d_node: int | None
    scan_in_node: int | None
    clock: str

    @property
    def name(self) -> str:
        return self.flop.name

    @property
    def is_scan(self) -> bool:
        return self.flop.is_scan

    @property
    def scannable(self) -> bool:
        return self.flop.scannable


@dataclass
class CircuitModel:
    """Levelized combinational view of a netlist (one time frame)."""

    name: str
    nodes: list[Node]
    node_of_net: dict[str, int]
    pi_nodes: list[int]
    ppi_nodes: list[int]
    ram_out_nodes: list[int]
    po_nodes: list[tuple[str, int]]
    state_elements: list[StateElement]
    fanout: list[tuple[int, ...]] = field(default_factory=list)
    max_level: int = 0
    #: Repeated-core instance metadata, carried through from the netlist so
    #: the engine can compile one kernel per unique core
    #: (:mod:`repro.hier.compile`).  ``None`` for flat designs.  Deliberately
    #: excluded from :func:`repro.engine.cache.design_fingerprint`: the
    #: hierarchical and flat kernels produce bit-identical results, so they
    #: share result-cache identity.
    hierarchy: DesignHierarchy | None = None

    def __getstate__(self) -> dict:
        # The engine memoises its compiled kernels on the instance
        # (repro.engine.compile.compile_circuit); closures don't pickle and
        # every process rebuilds them anyway, so strip the memo.
        state = dict(self.__dict__)
        state.pop("_engine_compiled", None)
        return state

    # ------------------------------------------------------------------ sizes
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, index: int) -> Node:
        return self.nodes[index]

    def node_for_net(self, net: str) -> Node:
        return self.nodes[self.node_of_net[net]]

    def state_element_by_name(self, name: str) -> StateElement:
        for element in self.state_elements:
            if element.name == name:
                return element
        raise KeyError(f"no state element named {name!r}")

    def levels(self) -> list[list[int]]:
        """Node indices grouped by topological level (ascending)."""
        buckets: list[list[int]] = [[] for _ in range(self.max_level + 1)]
        for node in self.nodes:
            buckets[node.level].append(node.index)
        return buckets

    def transitive_fanout(self, start: int) -> list[int]:
        """All nodes reachable from ``start`` (excluding it), level-ordered."""
        seen = {start}
        frontier = [start]
        reached: list[int] = []
        while frontier:
            current = frontier.pop()
            for nxt in self.fanout[current]:
                if nxt not in seen:
                    seen.add(nxt)
                    reached.append(nxt)
                    frontier.append(nxt)
        reached.sort(key=lambda i: (self.nodes[i].level, i))
        return reached

    def transitive_fanin(self, start: int) -> list[int]:
        """All nodes feeding ``start`` (excluding it)."""
        seen = {start}
        frontier = [start]
        reached: list[int] = []
        while frontier:
            current = frontier.pop()
            for prev in self.nodes[current].fanin:
                if prev not in seen:
                    seen.add(prev)
                    reached.append(prev)
                    frontier.append(prev)
        return reached

    def without_hierarchy(self) -> "CircuitModel":
        """A flat-compiling view of this model (shared node arrays).

        The copy drops the hierarchy metadata, so :func:`repro.engine.compile.
        compile_circuit` lowers it through the flat reference path — the
        bit-identity tests compare hierarchical kernels against exactly this.
        """
        clone = CircuitModel(
            name=self.name,
            nodes=self.nodes,
            node_of_net=self.node_of_net,
            pi_nodes=self.pi_nodes,
            ppi_nodes=self.ppi_nodes,
            ram_out_nodes=self.ram_out_nodes,
            po_nodes=self.po_nodes,
            state_elements=self.state_elements,
            fanout=self.fanout,
            max_level=self.max_level,
            hierarchy=None,
        )
        return clone

    def observation_nodes(self, observe_pos: bool = True, observe_flops: bool = True) -> list[int]:
        """Default observation points: PO drivers and flip-flop D drivers."""
        obs: list[int] = []
        if observe_pos:
            obs.extend(idx for _, idx in self.po_nodes)
        if observe_flops:
            obs.extend(e.d_node for e in self.state_elements if e.d_node is not None)
        return sorted(set(obs))


def build_model(netlist: Netlist, treat_clocks_as_inputs: bool = False) -> CircuitModel:
    """Flatten a netlist into a :class:`CircuitModel`.

    Clock nets are excluded from the primary-input list by default because in
    a single capture frame they are not data; pass
    ``treat_clocks_as_inputs=True`` for blocks like the CPF where the clock
    really is data (the CPF filters clock pulses combinationally).

    Args:
        netlist: Source design.
        treat_clocks_as_inputs: Include declared clock nets as PI nodes.

    Returns:
        The levelized model.

    Raises:
        NetlistError: If the combinational logic contains a cycle.
    """
    nodes: list[Node] = []
    node_of_net: dict[str, int] = {}
    pi_nodes: list[int] = []
    ppi_nodes: list[int] = []
    ram_out_nodes: list[int] = []

    def add_node(
        kind: NodeKind,
        net: str,
        gtype: GateType | None = None,
        fanin: tuple[int, ...] = (),
        level: int = 0,
        instance: str | None = None,
    ) -> int:
        index = len(nodes)
        nodes.append(
            Node(index=index, kind=kind, net=net, gtype=gtype, fanin=fanin, level=level,
                 instance=instance)
        )
        node_of_net[net] = index
        return index

    clock_nets = netlist.clock_nets
    for net in netlist.inputs:
        if net in clock_nets and not treat_clocks_as_inputs:
            continue
        pi_nodes.append(add_node(NodeKind.PI, net))

    for flop in sorted(netlist.flops.values(), key=lambda f: f.name):
        ppi_nodes.append(add_node(NodeKind.PPI, flop.q, instance=flop.name))
    for latch in sorted(netlist.latches.values(), key=lambda la: la.name):
        ppi_nodes.append(add_node(NodeKind.PPI, latch.q, instance=latch.name))
    for ram in sorted(netlist.rams.values(), key=lambda r: r.name):
        for net in ram.data_out:
            ram_out_nodes.append(add_node(NodeKind.RAM_OUT, net, instance=ram.name))

    # Gates in topological order.
    for gate in netlist.topological_gate_order():
        if gate.gtype is GateType.TIE0:
            add_node(NodeKind.CONST0, gate.output, gtype=gate.gtype, instance=gate.name)
            continue
        if gate.gtype is GateType.TIE1:
            add_node(NodeKind.CONST1, gate.output, gtype=gate.gtype, instance=gate.name)
            continue
        fanin: list[int] = []
        level = 0
        for net in gate.inputs:
            if net not in node_of_net:
                # Undriven or clock net used as data: materialize a PI node so
                # simulation and ATPG can still reason about it.
                idx = add_node(NodeKind.PI, net)
                pi_nodes.append(idx)
            idx = node_of_net[net]
            fanin.append(idx)
            level = max(level, nodes[idx].level + 1)
        add_node(NodeKind.GATE, gate.output, gtype=gate.gtype, fanin=tuple(fanin),
                 level=level, instance=gate.name)

    # Primary outputs: driver node of each PO net (create PI node for floats).
    po_nodes: list[tuple[str, int]] = []
    for net in netlist.outputs:
        if net not in node_of_net:
            idx = add_node(NodeKind.PI, net)
            pi_nodes.append(idx)
        po_nodes.append((net, node_of_net[net]))

    # State elements (flip-flops only; latch state is not scan-loadable).
    state_elements: list[StateElement] = []
    for flop in sorted(netlist.flops.values(), key=lambda f: f.name):
        d_node = node_of_net.get(flop.d)
        si_node = node_of_net.get(flop.scan_in) if flop.scan_in else None
        state_elements.append(
            StateElement(
                flop=flop,
                q_node=node_of_net[flop.q],
                d_node=d_node,
                scan_in_node=si_node,
                clock=flop.clock,
            )
        )

    fanout_map: dict[int, list[int]] = defaultdict(list)
    for node in nodes:
        for src in node.fanin:
            fanout_map[src].append(node.index)
    fanout = [tuple(sorted(fanout_map.get(i, ()))) for i in range(len(nodes))]
    max_level = max((n.level for n in nodes), default=0)

    return CircuitModel(
        name=netlist.name,
        nodes=nodes,
        node_of_net=node_of_net,
        pi_nodes=pi_nodes,
        ppi_nodes=ppi_nodes,
        ram_out_nodes=ram_out_nodes,
        po_nodes=po_nodes,
        state_elements=state_elements,
        fanout=fanout,
        max_level=max_level,
        hierarchy=getattr(netlist, "hierarchy", None),
    )
