"""Multi-valued logic algebras used throughout the library.

Two algebras are provided:

* :class:`Logic` — the 4-valued simulation algebra ``{0, 1, X, Z}`` used by the
  logic, timing and fault simulators.
* :class:`DValue` — the 5-valued D-calculus ``{0, 1, X, D, D'}`` used by the
  PODEM test generator, where ``D`` means *good machine 1 / faulty machine 0*
  and ``D'`` the opposite.

Both are small enums with explicit operator tables; speed-critical bit-parallel
simulation uses the encoded two-plane representation in
:mod:`repro.simulation.parallel_sim` instead.
"""

from __future__ import annotations

from enum import Enum


class Logic(Enum):
    """Four-valued logic: 0, 1, unknown (X) and high-impedance (Z)."""

    ZERO = 0
    ONE = 1
    X = 2
    Z = 3

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Logic.{self.name}"

    def __str__(self) -> str:
        return {Logic.ZERO: "0", Logic.ONE: "1", Logic.X: "X", Logic.Z: "Z"}[self]

    @classmethod
    def from_char(cls, ch: str) -> "Logic":
        """Parse a single character ('0', '1', 'x'/'X', 'z'/'Z') into a value."""
        table = {"0": cls.ZERO, "1": cls.ONE, "x": cls.X, "X": cls.X, "z": cls.Z, "Z": cls.Z}
        try:
            return table[ch]
        except KeyError as exc:
            raise ValueError(f"not a logic character: {ch!r}") from exc

    @classmethod
    def from_bool(cls, value: bool) -> "Logic":
        return cls.ONE if value else cls.ZERO

    @classmethod
    def from_int(cls, value: int) -> "Logic":
        if value not in (0, 1):
            raise ValueError(f"only 0 or 1 convert to Logic, got {value}")
        return cls.ONE if value else cls.ZERO

    def invert(self) -> "Logic":
        """Logical complement; X and Z invert to X."""
        if self is Logic.ZERO:
            return Logic.ONE
        if self is Logic.ONE:
            return Logic.ZERO
        return Logic.X

    @property
    def is_known(self) -> bool:
        """True for 0 or 1."""
        return self in (Logic.ZERO, Logic.ONE)

    def to_int(self) -> int:
        """Return 0 or 1; raises for X/Z."""
        if self is Logic.ZERO:
            return 0
        if self is Logic.ONE:
            return 1
        raise ValueError(f"cannot convert {self} to int")

    def __and__(self, other: "Logic") -> "Logic":
        a, b = _xz_to_x(self), _xz_to_x(other)
        if Logic.ZERO in (a, b):
            return Logic.ZERO
        if a is Logic.ONE and b is Logic.ONE:
            return Logic.ONE
        return Logic.X

    def __or__(self, other: "Logic") -> "Logic":
        a, b = _xz_to_x(self), _xz_to_x(other)
        if Logic.ONE in (a, b):
            return Logic.ONE
        if a is Logic.ZERO and b is Logic.ZERO:
            return Logic.ZERO
        return Logic.X

    def __xor__(self, other: "Logic") -> "Logic":
        a, b = _xz_to_x(self), _xz_to_x(other)
        if not (a.is_known and b.is_known):
            return Logic.X
        return Logic.ONE if a is not b else Logic.ZERO

    def __invert__(self) -> "Logic":
        return self.invert()


def _xz_to_x(v: Logic) -> Logic:
    return Logic.X if v is Logic.Z else v


class DValue(Enum):
    """Five-valued D-calculus for deterministic test generation.

    ``D`` encodes good-machine 1 / faulty-machine 0; ``DBAR`` the reverse.
    """

    ZERO = "0"
    ONE = "1"
    X = "X"
    D = "D"
    DBAR = "D'"

    def __str__(self) -> str:
        return self.value

    @classmethod
    def from_pair(cls, good: Logic, faulty: Logic) -> "DValue":
        """Build a D-value from (good, faulty) 3-valued pair."""
        if not good.is_known or not faulty.is_known:
            return cls.X
        if good is Logic.ONE and faulty is Logic.ONE:
            return cls.ONE
        if good is Logic.ZERO and faulty is Logic.ZERO:
            return cls.ZERO
        if good is Logic.ONE and faulty is Logic.ZERO:
            return cls.D
        return cls.DBAR

    @property
    def good(self) -> Logic:
        """Good-machine component."""
        return {
            DValue.ZERO: Logic.ZERO,
            DValue.ONE: Logic.ONE,
            DValue.X: Logic.X,
            DValue.D: Logic.ONE,
            DValue.DBAR: Logic.ZERO,
        }[self]

    @property
    def faulty(self) -> Logic:
        """Faulty-machine component."""
        return {
            DValue.ZERO: Logic.ZERO,
            DValue.ONE: Logic.ONE,
            DValue.X: Logic.X,
            DValue.D: Logic.ZERO,
            DValue.DBAR: Logic.ONE,
        }[self]

    @property
    def is_fault_effect(self) -> bool:
        """True for D or D'."""
        return self in (DValue.D, DValue.DBAR)

    @property
    def is_known(self) -> bool:
        return self is not DValue.X

    def invert(self) -> "DValue":
        return DValue.from_pair(self.good.invert(), self.faulty.invert())

    @classmethod
    def from_logic(cls, value: Logic) -> "DValue":
        """Lift a fault-free Logic value into the D-calculus."""
        if value is Logic.ZERO:
            return cls.ZERO
        if value is Logic.ONE:
            return cls.ONE
        return cls.X


def dvalue_and(a: DValue, b: DValue) -> DValue:
    return DValue.from_pair(a.good & b.good, a.faulty & b.faulty)


def dvalue_or(a: DValue, b: DValue) -> DValue:
    return DValue.from_pair(a.good | b.good, a.faulty | b.faulty)


def dvalue_xor(a: DValue, b: DValue) -> DValue:
    return DValue.from_pair(a.good ^ b.good, a.faulty ^ b.faulty)


def dvalue_not(a: DValue) -> DValue:
    return a.invert()
