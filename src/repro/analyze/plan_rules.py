"""Static linting of runtime execution plans.

A live :class:`~repro.runtime.plan.Plan` is valid by construction (its
``validate()`` raises on duplicate ids, dangling deps and cycles), so on
plan *instances* only the cache-key collision rule can fire.  The graph
rules earn their keep on plan-shaped mappings — ``Plan.to_dict`` JSON that
was hand-edited, or produced by another tool — where every defect class is
reported as findings instead of one exception.
"""

from __future__ import annotations

from json import dumps
from typing import Any, Iterable, Mapping

from repro.analyze.report import Finding, Severity
from repro.analyze.rules import AnalysisContext, rule
from repro.runtime.plan import plan_graph_problems

_GRAPH_RULE_IDS = {
    "duplicate-id": "plan-duplicate-job",
    "unknown-dep": "plan-unknown-dep",
    "cycle": "plan-cycle",
}


def _plan_name(plan: Any) -> str:
    if isinstance(plan, Mapping):
        return str(plan.get("name", ""))
    return str(getattr(plan, "name", ""))


def _plan_jobs(plan: Any) -> list[Any]:
    if isinstance(plan, Mapping):
        return list(plan.get("jobs", []))
    return list(getattr(plan, "jobs", ()))


def _job_field(job: Any, name: str, default: Any = None) -> Any:
    if isinstance(job, Mapping):
        return job.get(name, default)
    return getattr(job, name, default)


@rule(
    "plan-duplicate-job",
    severity=Severity.ERROR,
    category="plan",
    description="Two plan jobs share one id",
    requires=("plan",),
)
def check_duplicate_jobs(context: AnalysisContext) -> Iterable[Finding]:
    yield from _graph_findings(context.plan, "duplicate-id")


@rule(
    "plan-unknown-dep",
    severity=Severity.ERROR,
    category="plan",
    description="A job depends on an id that is not in the plan",
    requires=("plan",),
)
def check_unknown_deps(context: AnalysisContext) -> Iterable[Finding]:
    yield from _graph_findings(context.plan, "unknown-dep")


@rule(
    "plan-cycle",
    severity=Severity.ERROR,
    category="plan",
    description="The dependency graph contains a cycle",
    requires=("plan",),
)
def check_cycles(context: AnalysisContext) -> Iterable[Finding]:
    yield from _graph_findings(context.plan, "cycle")


def _graph_findings(plan: Any, kind: str) -> Iterable[Finding]:
    problems = plan_graph_problems(_plan_name(plan), _plan_jobs(plan))
    for problem in problems:
        if problem["kind"] != kind:
            continue
        yield Finding(
            rule=_GRAPH_RULE_IDS[kind],
            severity=Severity.ERROR,
            message=problem["message"],
            subject=problem["subject"],
        )


@rule(
    "plan-cache-collision",
    severity=Severity.WARNING,
    category="plan",
    description="Jobs with different work share one cache key",
    requires=("plan",),
)
def check_cache_collisions(context: AnalysisContext) -> Iterable[Finding]:
    """Two jobs with the same cache key but different (kind, params) — the
    later one would silently be served the earlier one's cached result."""
    plan = context.plan
    by_key: dict[str, list[tuple[str, str]]] = {}
    for job in _plan_jobs(plan):
        cache_key = _job_field(job, "cache_key")
        if not cache_key:
            continue
        identity = dumps(
            {
                "kind": _job_field(job, "kind", ""),
                "params": _job_field(job, "params", {}) or {},
            },
            sort_keys=True,
            default=str,
        )
        by_key.setdefault(str(cache_key), []).append(
            (str(_job_field(job, "id", "")), identity)
        )
    for cache_key, members in sorted(by_key.items()):
        identities = {identity for _, identity in members}
        if len(members) < 2 or len(identities) < 2:
            continue  # Unique, or intentional sharing of identical work.
        ids = sorted(job_id for job_id, _ in members)
        yield Finding(
            rule="plan-cache-collision",
            severity=Severity.WARNING,
            message=(
                f"jobs {ids} share cache key {cache_key[:16]}... but "
                "describe different work; all but the first will be served "
                "a stale cached result"
            ),
            subject=",".join(ids),
            data={"cache_key": cache_key, "jobs": ids},
        )
