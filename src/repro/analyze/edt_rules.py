"""EDT compression rules: encodability and compactor-masking blockages.

The decompressor expands channel data through an LFSR + phase shifter; two
chains tapping identical LFSR positions receive *the same* stimulus bit
every shift cycle, so any pattern needing different care bits at the same
position in both chains is structurally unencodable.  On the output side,
chains sharing one XOR-compactor channel mask each other when any of them
can capture X — both conditions are visible from the wiring alone.
"""

from __future__ import annotations

from typing import Iterable

from repro.analyze.report import Finding, Severity
from repro.analyze.rules import AnalysisContext, rule
from repro.analyze.structural import x_sources


@rule(
    "edt-phase-collision",
    severity=Severity.ERROR,
    category="edt",
    description="Two chains tap identical phase-shifter positions",
    requires=("scan", "edt"),
)
def check_phase_collisions(context: AnalysisContext) -> Iterable[Finding]:
    edt = context.edt
    scan = context.scan
    assert edt is not None and scan is not None
    taps = [frozenset(t) for t in edt.decompressor.phase_taps]
    seen: dict[frozenset[int], int] = {}
    for chain_index, tap_set in enumerate(taps):
        first = seen.setdefault(tap_set, chain_index)
        if first != chain_index:
            names = (scan.chains[first].name, scan.chains[chain_index].name)
            yield Finding(
                rule="edt-phase-collision",
                severity=Severity.ERROR,
                message=(
                    f"chains {names[0]!r} and {names[1]!r} tap identical "
                    f"phase-shifter positions {sorted(tap_set)}; conflicting "
                    "care bits at equal shift positions are unencodable"
                ),
                subject=f"{names[0]},{names[1]}",
                data={"taps": sorted(tap_set)},
            )


@rule(
    "edt-channel-capacity",
    severity=Severity.INFO,
    category="edt",
    description="Care-bit capacity vs. cell count of the compressed load path",
    requires=("scan", "edt"),
)
def check_channel_capacity(context: AnalysisContext) -> Iterable[Finding]:
    edt = context.edt
    scan = context.scan
    assert edt is not None and scan is not None
    decompressor = edt.decompressor
    variables = decompressor.lfsr_length + (
        decompressor.num_channels * scan.max_chain_length
    )
    cells = scan.total_cells
    if decompressor.num_channels >= decompressor.num_chains:
        return  # No compression in play: nothing to report.
    yield Finding(
        rule="edt-channel-capacity",
        severity=Severity.INFO,
        message=(
            f"{decompressor.num_channels} channel(s) feed "
            f"{decompressor.num_chains} chains ({cells} cells): at most "
            f"{variables} free variables per load — dense cubes beyond that "
            "care-bit budget will fail to encode"
        ),
        subject=f"{decompressor.num_channels}ch/{decompressor.num_chains}chains",
        data={
            "channels": decompressor.num_channels,
            "chains": decompressor.num_chains,
            "cells": cells,
            "free_variables": variables,
        },
    )


@rule(
    "edt-mask-sharing",
    severity=Severity.INFO,
    category="edt",
    description="X-capturing chains share a compactor channel with other chains",
    requires=("model", "scan", "edt"),
)
def check_mask_sharing(context: AnalysisContext) -> Iterable[Finding]:
    model = context.model
    scan = context.scan
    edt = context.edt
    assert model is not None and scan is not None and edt is not None
    sources = set(x_sources(model))
    if not sources:
        return
    elements = {e.name: e for e in model.state_elements}

    def chain_captures_x(cells: tuple[str, ...]) -> bool:
        for name in cells:
            element = elements.get(name)
            if element is None or element.d_node is None:
                continue
            if element.d_node in sources:
                return True
            if sources.intersection(model.transitive_fanin(element.d_node)):
                return True
        return False

    channels: dict[int, list[int]] = {}
    for chain_index, channel in enumerate(edt.compactor.assignment):
        channels.setdefault(channel, []).append(chain_index)
    for channel, members in sorted(channels.items()):
        if len(members) < 2:
            continue
        x_prone = [
            scan.chains[i].name
            for i in members
            if chain_captures_x(scan.chains[i].cells)
        ]
        if not x_prone:
            continue
        yield Finding(
            rule="edt-mask-sharing",
            severity=Severity.INFO,
            message=(
                f"compactor channel {channel} merges {len(members)} chains "
                f"and {len(x_prone)} of them can capture X "
                f"({', '.join(x_prone[:4])}); observation there depends on "
                "per-chain masking"
            ),
            subject=f"compactor-channel-{channel}",
            data={
                "channel": channel,
                "chains": [scan.chains[i].name for i in members],
                "x_prone": x_prone,
            },
        )
