"""Scan-architecture rules: stitching coverage, chain balance, lockup
latches at clock-domain boundaries, and shift-path connectivity.

The shift-path rules reason over the *netlist* wiring (flop ``scan_in``
annotations traced through buffers and lockup latches with
:func:`repro.analyze.structural.trace_shift_source`) against the *declared*
:class:`~repro.dft.scan.ScanArchitecture`, so a chain whose declaration and
wiring disagree is caught before a single shift cycle is simulated.
"""

from __future__ import annotations

from typing import Iterable

from repro.analyze.report import Finding, Severity
from repro.analyze.rules import AnalysisContext, rule
from repro.analyze.structural import trace_shift_source
from repro.dft.chains import balance_metric, chain_length_histogram

#: Max/mean chain length ratio beyond which the imbalance warning fires.
IMBALANCE_THRESHOLD = 1.5


@rule(
    "unscanned-flop",
    severity=Severity.WARNING,
    category="scan",
    description="A scannable flop is left out of every scan chain",
)
def check_unscanned_flops(context: AnalysisContext) -> Iterable[Finding]:
    netlist = context.netlist
    assert netlist is not None
    if not netlist.scan_flops():
        return  # No scan inserted at all: nothing to compare against.
    for flop in netlist.nonscan_flops():
        if flop.scannable:
            yield Finding(
                rule="unscanned-flop",
                severity=Severity.WARNING,
                message=(
                    "scannable flip-flop is not stitched into any scan chain "
                    "(its state is an X source and its cone shadows coverage)"
                ),
                subject=flop.name,
            )


@rule(
    "chain-imbalance",
    severity=Severity.WARNING,
    category="scan",
    description="Chain lengths are unbalanced (shift time is set by the longest)",
    requires=("scan",),
)
def check_chain_imbalance(context: AnalysisContext) -> Iterable[Finding]:
    scan = context.scan
    assert scan is not None
    cells = [chain.cells for chain in scan.chains]
    metric = balance_metric(cells)
    if metric > IMBALANCE_THRESHOLD:
        histogram = {
            str(length): count
            for length, count in sorted(chain_length_histogram(cells).items())
        }
        yield Finding(
            rule="chain-imbalance",
            severity=Severity.WARNING,
            message=(
                f"max/mean chain length ratio {metric:.2f} exceeds "
                f"{IMBALANCE_THRESHOLD} (longest chain dominates shift time)"
            ),
            subject=",".join(chain.name for chain in scan.chains),
            data={"balance_metric": round(metric, 4), "length_histogram": histogram},
        )


@rule(
    "missing-lockup",
    severity=Severity.ERROR,
    category="scan",
    description="Adjacent chain cells in different clock domains lack a lockup latch",
    requires=("netlist", "scan"),
)
def check_missing_lockups(context: AnalysisContext) -> Iterable[Finding]:
    netlist = context.netlist
    scan = context.scan
    assert netlist is not None and scan is not None
    flops = netlist.flops
    for chain in scan.chains:
        for previous_name, cell_name in zip(chain.cells, chain.cells[1:]):
            previous = flops.get(previous_name)
            cell = flops.get(cell_name)
            if previous is None or cell is None or not cell.scan_in:
                continue  # broken-shift-path reports missing pieces.
            if previous.clock == cell.clock:
                continue
            _, saw_latch = trace_shift_source(netlist, cell.scan_in)
            if not saw_latch:
                yield Finding(
                    rule="missing-lockup",
                    severity=Severity.ERROR,
                    message=(
                        f"chain {chain.name!r} crosses clock domains "
                        f"({previous.clock!r} -> {cell.clock!r}) between "
                        f"{previous_name!r} and {cell_name!r} without a "
                        "lockup latch; shift data can race the clock skew"
                    ),
                    subject=f"{chain.name}:{cell_name}",
                    data={"from_clock": previous.clock, "to_clock": cell.clock},
                )


@rule(
    "broken-shift-path",
    severity=Severity.ERROR,
    category="scan",
    description="Chain wiring disagrees with the declared cell order",
    requires=("netlist", "scan"),
)
def check_broken_shift_paths(context: AnalysisContext) -> Iterable[Finding]:
    netlist = context.netlist
    scan = context.scan
    assert netlist is not None and scan is not None
    flops = netlist.flops
    for chain in scan.chains:
        expected = chain.scan_in
        for position, cell_name in enumerate(chain.cells):
            flop = flops.get(cell_name)
            if flop is None:
                yield Finding(
                    rule="broken-shift-path",
                    severity=Severity.ERROR,
                    message=(
                        f"chain {chain.name!r} lists cell {cell_name!r} "
                        "which does not exist in the netlist"
                    ),
                    subject=f"{chain.name}:{cell_name}",
                )
                break
            if not flop.is_scan:
                yield Finding(
                    rule="broken-shift-path",
                    severity=Severity.ERROR,
                    message=(
                        f"chain {chain.name!r} cell {cell_name!r} has no "
                        "scan_in/scan_enable — the shift path is open here"
                    ),
                    subject=f"{chain.name}:{cell_name}",
                )
                break
            assert flop.scan_in is not None
            source, _ = trace_shift_source(netlist, flop.scan_in)
            if source != expected:
                yield Finding(
                    rule="broken-shift-path",
                    severity=Severity.ERROR,
                    message=(
                        f"chain {chain.name!r} cell {cell_name!r} (position "
                        f"{position}) shifts from {source!r} but the declared "
                        f"predecessor drives {expected!r}"
                    ),
                    subject=f"{chain.name}:{cell_name}",
                    data={"expected": expected, "actual": source},
                )
                break
            expected = flop.q
        else:
            if chain.cells:
                source, _ = trace_shift_source(netlist, chain.scan_out)
                if source != expected:
                    yield Finding(
                        rule="broken-shift-path",
                        severity=Severity.ERROR,
                        message=(
                            f"chain {chain.name!r} scan-out {chain.scan_out!r} "
                            f"is driven from {source!r}, not from the last "
                            f"cell's output {expected!r}"
                        ),
                        subject=f"{chain.name}:{chain.scan_out}",
                        data={"expected": expected, "actual": source},
                    )
