"""Lint findings, waivers and the JSON-round-trippable :class:`LintReport`.

Every static analysis in :mod:`repro.analyze` — netlist DRC, scan-chain
audits, CDC extraction, EDT blockage checks, SCOAP hotspots, plan linting —
reports through the same three record types:

* :class:`Finding` — one violation (or informational observation) of one
  rule, anchored to a ``subject`` (a net, instance, chain, job id, ...);
* :class:`Waiver` — a per-design exemption matching findings by rule id and
  subject glob, carrying the reason the violation is accepted;
* :class:`LintReport` — the aggregate: findings, the rules that actually
  ran, and the waivers that were applied.  ``ok`` means "no unwaived
  ERROR-severity findings"; warnings and infos never gate.

Reports serialize losslessly to JSON (``to_dict``/``from_dict``) and render
as a fixed-width table (``format_table``) in the same spirit as the Table 1
renderer in :mod:`repro.patterns.statistics`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from enum import Enum
from fnmatch import fnmatchcase
from typing import Any, Iterable, Mapping


class Severity(str, Enum):
    """Severity ladder of a finding.  Only ERROR gates (`LintReport.ok`)."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort key: most severe first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


class LintError(RuntimeError):
    """Raised when a flow refuses to proceed past ERROR-severity findings."""


@dataclass(frozen=True)
class Finding:
    """One rule violation (or observation) at one subject.

    Attributes:
        rule: Stable rule id (see the registry in :mod:`repro.analyze.rules`).
        severity: Effective severity of *this* finding (rules may downgrade).
        message: Human-readable description of the defect.
        subject: The design object the finding anchors to (net, instance,
            chain, clock-domain pair, plan job id, ...).
        data: JSON-safe structured details (counts, member lists, costs).
        waived: True when a :class:`Waiver` matched; waived findings never
            count toward ``errors``/``warnings`` or gate a flow.
        waived_reason: The matching waiver's reason, for audit trails.
    """

    rule: str
    severity: Severity
    message: str
    subject: str = ""
    data: Mapping[str, Any] = field(default_factory=dict)
    waived: bool = False
    waived_reason: str = ""

    def __str__(self) -> str:
        tag = " [waived]" if self.waived else ""
        return f"[{self.severity.value}]{tag} {self.rule}: {self.message} ({self.subject})"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "subject": self.subject,
            "data": dict(self.data),
            "waived": self.waived,
            "waived_reason": self.waived_reason,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Finding":
        return cls(
            rule=str(data["rule"]),
            severity=Severity(data["severity"]),
            message=str(data["message"]),
            subject=str(data.get("subject", "")),
            data=dict(data.get("data", {})),
            waived=bool(data.get("waived", False)),
            waived_reason=str(data.get("waived_reason", "")),
        )


@dataclass(frozen=True)
class Waiver:
    """A per-design exemption: ``rule`` and ``subject`` are glob patterns.

    ``Waiver("dangling-output", "dbg_*", reason="debug taps")`` waives every
    dangling-output finding whose subject starts with ``dbg_``;
    ``Waiver("edt-*")`` waives all EDT findings on any subject.
    """

    rule: str
    subject: str = "*"
    reason: str = ""

    def matches(self, finding: Finding) -> bool:
        return fnmatchcase(finding.rule, self.rule) and fnmatchcase(
            finding.subject, self.subject
        )

    def to_dict(self) -> dict[str, str]:
        return {"rule": self.rule, "subject": self.subject, "reason": self.reason}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Waiver":
        return cls(
            rule=str(data["rule"]),
            subject=str(data.get("subject", "*")),
            reason=str(data.get("reason", "")),
        )


def apply_waivers(
    findings: Iterable[Finding], waivers: Iterable[Waiver]
) -> list[Finding]:
    """Return findings with ``waived``/``waived_reason`` set where one matches."""
    waiver_list = list(waivers)
    out: list[Finding] = []
    for finding in findings:
        matched = next((w for w in waiver_list if w.matches(finding)), None)
        if matched is not None and not finding.waived:
            finding = replace(finding, waived=True, waived_reason=matched.reason)
        out.append(finding)
    return out


@dataclass
class LintReport:
    """Aggregated result of one lint run over one target.

    Attributes:
        target: Name of the linted object (design, netlist or plan name).
        findings: Every finding, waived or not, most severe first.
        rules_run: Ids of the rules that actually executed (rules whose
            required context was missing are *not* listed — an empty finding
            list only means "clean" for the rules in this tuple).
        waivers: The waivers that were in force during the run.
    """

    target: str
    findings: list[Finding] = field(default_factory=list)
    rules_run: tuple[str, ...] = ()
    waivers: tuple[Waiver, ...] = ()

    # ------------------------------------------------------------------ views
    def active(self) -> list[Finding]:
        """Findings not suppressed by a waiver."""
        return [f for f in self.findings if not f.waived]

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.active() if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.active() if f.severity is Severity.WARNING]

    @property
    def infos(self) -> list[Finding]:
        return [f for f in self.active() if f.severity is Severity.INFO]

    @property
    def waived(self) -> list[Finding]:
        return [f for f in self.findings if f.waived]

    @property
    def ok(self) -> bool:
        """True when no unwaived ERROR-severity finding exists."""
        return not self.errors

    def by_rule(self) -> dict[str, list[Finding]]:
        grouped: dict[str, list[Finding]] = {}
        for finding in self.findings:
            grouped.setdefault(finding.rule, []).append(finding)
        return grouped

    def counts(self) -> dict[str, int]:
        """Severity histogram over active findings (plus ``waived``)."""
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "info": len(self.infos),
            "waived": len(self.waived),
        }

    # ------------------------------------------------------------- composition
    def merged_with(self, other: "LintReport") -> "LintReport":
        """This report plus another's findings (rules/waivers unioned)."""
        merged = LintReport(
            target=self.target or other.target,
            findings=list(self.findings) + list(other.findings),
            rules_run=tuple(dict.fromkeys(self.rules_run + other.rules_run)),
            waivers=tuple(dict.fromkeys(self.waivers + other.waivers)),
        )
        merged.sort()
        return merged

    def sort(self) -> None:
        self.findings.sort(key=lambda f: (f.severity.rank, f.rule, f.subject))

    # ------------------------------------------------------------------ gating
    def raise_on_error(self) -> None:
        """Raise :class:`LintError` when unwaived ERROR findings exist."""
        if not self.ok:
            summary = "; ".join(str(f) for f in self.errors[:5])
            raise LintError(
                f"lint of {self.target!r} failed with "
                f"{len(self.errors)} error(s): {summary}"
            )

    # -------------------------------------------------------------- rendering
    def format_table(self) -> str:
        """Fixed-width text rendering (severity / rule / subject / message)."""
        headers = ("severity", "rule", "subject", "message")
        rows = [
            (
                f"{f.severity.value}{' (waived)' if f.waived else ''}",
                f.rule,
                f.subject,
                f.message,
            )
            for f in self.findings
        ]
        if not rows:
            rows = [("-", "-", "-", "no findings")]
        widths = [
            max(len(headers[col]), *(len(row[col]) for row in rows))
            for col in range(len(headers))
        ]
        lines = [f"Lint report: {self.target}"]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        counts = self.counts()
        lines.append(
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info(s), {counts['waived']} waived "
            f"({len(self.rules_run)} rules run)"
        )
        return "\n".join(lines)

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        return {
            "target": self.target,
            "findings": [f.to_dict() for f in self.findings],
            "rules_run": list(self.rules_run),
            "waivers": [w.to_dict() for w in self.waivers],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LintReport":
        return cls(
            target=str(data.get("target", "")),
            findings=[Finding.from_dict(f) for f in data.get("findings", [])],
            rules_run=tuple(str(r) for r in data.get("rules_run", [])),
            waivers=tuple(Waiver.from_dict(w) for w in data.get("waivers", [])),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "LintReport":
        return cls.from_dict(json.loads(text))
