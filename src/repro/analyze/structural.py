"""Structural analyses shared by the rules and the untestability prover.

Everything here is pure graph/constant reasoning over the editable
:class:`~repro.netlist.netlist.Netlist` or the levelized
:class:`~repro.simulation.model.CircuitModel` — no pattern is ever
simulated.  The pieces:

* :func:`combinational_sccs` — Tarjan SCCs over the gate graph, the basis of
  loop *enumeration* (the netlist's own Kahn sort only says "a cycle
  exists"; the SCCs say which gates form which loop).
* :func:`constant_values` — three-valued constant propagation from tie
  cells and constrained pins; the hard facts behind redundancy proofs and
  propagation blocking.
* :func:`pin_unblocked` / :func:`observing_nodes` — side-input blocking
  analysis: through which gate pins can a fault effect still move once the
  constants are folded in, and which nodes retain an unblocked path to an
  observation point.
* :func:`extract_domain_crossings` — launch-Q → capture-D clock-domain
  crossings, resolved with one backward cone walk per capture flop.
* :func:`x_sources` / :func:`trace_shift_source` — X-generator enumeration
  and scan-path tracing through buffers and lockup latches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.clocking.domains import ClockDomainMap
from repro.netlist.gates import GateType, evaluate_gate
from repro.netlist.netlist import Netlist
from repro.simulation.logic import Logic
from repro.simulation.model import CircuitModel, NodeKind


# --------------------------------------------------------------------------
# Combinational loops (SCC)
# --------------------------------------------------------------------------
def combinational_sccs(netlist: Netlist) -> list[list[str]]:
    """Non-trivial strongly connected components of the gate graph.

    Returns one sorted gate-name list per loop: every component with more
    than one gate, plus single gates that feed themselves.  An acyclic
    netlist yields ``[]``.
    """
    gates = netlist.gates
    driver: dict[str, str] = {g.output: g.name for g in gates.values()}
    successors: dict[str, list[str]] = {name: [] for name in gates}
    for gate in gates.values():
        for net in gate.inputs:
            source = driver.get(net)
            if source is not None:
                successors[source].append(gate.name)

    # Iterative Tarjan (explicit stack: recursion depth is unbounded on long
    # buffer chains).
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = 0
    components: list[list[str]] = []

    for root in gates:
        if root in index_of:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            name, child = work[-1]
            if child == 0:
                index_of[name] = low[name] = counter
                counter += 1
                stack.append(name)
                on_stack.add(name)
            advanced = False
            succ = successors[name]
            while child < len(succ):
                nxt = succ[child]
                child += 1
                if nxt not in index_of:
                    work[-1] = (name, child)
                    work.append((nxt, 0))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[name] = min(low[name], index_of[nxt])
            if advanced:
                continue
            work.pop()
            if low[name] == index_of[name]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == name:
                        break
                if len(component) > 1 or name in successors[name]:
                    components.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[name])
    components.sort()
    return components


# --------------------------------------------------------------------------
# Constant propagation
# --------------------------------------------------------------------------
def constant_values(
    model: CircuitModel, constraints: Mapping[str, Logic] | None = None
) -> dict[int, Logic]:
    """Provable constants per node index under the given pin constraints.

    Primary inputs take their constrained value (else X), every sequential
    output (PPI) and RAM output is X, tie cells are their constants, and
    gates evaluate in topological (index) order over 4-valued logic.  Only
    nodes that resolve to a hard 0/1 appear in the result — these hold in
    *every* frame of *every* pattern the constrained ATPG can apply.
    """
    fixed = dict(constraints or {})
    values: list[Logic] = [Logic.X] * model.num_nodes
    for node in model.nodes:
        if node.kind is NodeKind.PI:
            values[node.index] = fixed.get(node.net, Logic.X)
        elif node.kind is NodeKind.CONST0:
            values[node.index] = Logic.ZERO
        elif node.kind is NodeKind.CONST1:
            values[node.index] = Logic.ONE
        elif node.kind is NodeKind.GATE and node.gtype is not None:
            values[node.index] = evaluate_gate(
                node.gtype, [values[i] for i in node.fanin]
            )
        # PPI / RAM_OUT stay X.
    return {
        i: v for i, v in enumerate(values) if v in (Logic.ZERO, Logic.ONE)
    }


# --------------------------------------------------------------------------
# Propagation blocking / observability closure
# --------------------------------------------------------------------------
def pin_unblocked(
    model: CircuitModel, const: Mapping[int, Logic], node_index: int, pin: int
) -> bool:
    """Can a value change on input ``pin`` still move ``node``'s output?

    Conservative (never claims "blocked" unless provable from constants):
    an AND/NAND side input constant 0 or an OR/NOR side input constant 1
    forces the output; a MUX2 data pin is dead when the select constant
    points the other way, and a select change is dead when both data inputs
    are provably equal constants.
    """
    node = model.nodes[node_index]
    gtype = node.gtype
    if gtype is None:
        return True
    fanin = node.fanin
    if gtype in (GateType.AND, GateType.NAND):
        return not any(
            const.get(src) is Logic.ZERO
            for i, src in enumerate(fanin)
            if i != pin
        )
    if gtype in (GateType.OR, GateType.NOR):
        return not any(
            const.get(src) is Logic.ONE
            for i, src in enumerate(fanin)
            if i != pin
        )
    if gtype is GateType.MUX2:
        select = const.get(fanin[0])
        if pin == 1:
            return select is not Logic.ONE
        if pin == 2:
            return select is not Logic.ZERO
        a, b = const.get(fanin[1]), const.get(fanin[2])
        return not (a is not None and a is b)
    return True


def observing_nodes(
    model: CircuitModel,
    const: Mapping[int, Logic],
    observation: set[int],
) -> list[bool]:
    """Per-node flag: does an unblocked path exist to an observation point?

    Node indices are topological, so one reverse sweep resolves the closure:
    a node observes if it *is* an observation point, or some fanout gate is
    observing and the pin(s) it feeds are not blocked by constants.
    """
    observing = [False] * model.num_nodes
    for index in range(model.num_nodes - 1, -1, -1):
        if index in observation:
            observing[index] = True
            continue
        for successor in model.fanout[index]:
            if not observing[successor]:
                continue
            fanin = model.nodes[successor].fanin
            if any(
                src == index and pin_unblocked(model, const, successor, pin)
                for pin, src in enumerate(fanin)
            ):
                observing[index] = True
                break
    return observing


# --------------------------------------------------------------------------
# Clock-domain crossings
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class DomainCrossing:
    """One launch-Q → capture-D path between different clock domains."""

    launch_domain: str
    capture_domain: str
    launch_flop: str
    capture_flop: str

    @property
    def pair(self) -> tuple[str, str]:
        return (self.launch_domain, self.capture_domain)


def extract_domain_crossings(
    model: CircuitModel, domain_map: ClockDomainMap
) -> list[DomainCrossing]:
    """Every combinational path from a flop Q in one domain to a flop D in
    another.

    One backward cone walk per capture flop (``transitive_fanin`` stops at
    PI/PPI sources, so each walk touches one combinational cone, not the
    whole circuit), with launch flops found by Q-node lookup inside the
    cone.  Work is therefore linear in total cone size — the former
    launch×capture pair loop was what made the structural lint superlinear
    on designs with thousands of flops.
    """
    assigned = [
        (element, domain_map.domain_of(element.name))
        for element in model.state_elements
    ]
    launch_by_q = {
        element.q_node: (element, domain)
        for element, domain in assigned
        if domain is not None and element.q_node is not None
    }
    crossings: list[DomainCrossing] = []
    for capture, capture_domain in assigned:
        if capture_domain is None or capture.d_node is None:
            continue
        # The D net may itself be a launch Q (direct flop-to-flop path).
        for node in (capture.d_node, *model.transitive_fanin(capture.d_node)):
            hit = launch_by_q.get(node)
            if hit is None:
                continue
            launch, launch_domain = hit
            if launch_domain == capture_domain:
                continue
            crossings.append(
                DomainCrossing(
                    launch_domain=launch_domain,
                    capture_domain=capture_domain,
                    launch_flop=launch.name,
                    capture_flop=capture.name,
                )
            )
    crossings.sort(
        key=lambda c: (c.launch_domain, c.capture_domain, c.launch_flop, c.capture_flop)
    )
    return crossings


# --------------------------------------------------------------------------
# X sources and scan-path tracing
# --------------------------------------------------------------------------
def x_sources(model: CircuitModel) -> dict[int, str]:
    """Node index -> kind for every structural X generator: non-scan flop
    outputs, latch outputs and RAM read ports (none is load/controllable
    during scan test)."""
    sources: dict[int, str] = {}
    scan_names = {e.name for e in model.state_elements if e.is_scan}
    flop_names = {e.name for e in model.state_elements}
    for index in model.ppi_nodes:
        node = model.nodes[index]
        if node.instance is not None and node.instance not in scan_names:
            kind = "nonscan-flop" if node.instance in flop_names else "latch"
            sources[index] = kind
    for index in model.ram_out_nodes:
        sources[index] = "ram"
    return sources


def trace_shift_source(
    netlist: Netlist, net: str, limit: int = 16
) -> tuple[str, bool]:
    """Walk a scan-shift net back through buffers and lockup latches.

    Returns ``(source_net, saw_latch)`` — the first net that is neither a
    BUF output nor a latch output (typically a flop Q or a scan-in port),
    and whether a latch (lockup element) was crossed on the way.
    """
    current = net
    saw_latch = False
    for _ in range(limit):
        driver = netlist.driver_of(current)
        if driver is None:
            return current, saw_latch
        kind, element = driver
        if kind == "gate" and element.gtype is GateType.BUF:
            current = element.inputs[0]
            continue
        if kind == "latch":
            saw_latch = True
            current = element.d
            continue
        return current, saw_latch
    return current, saw_latch
