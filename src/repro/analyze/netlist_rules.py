"""Netlist-structure rules: the DRC set absorbed from the legacy
``repro.netlist.validate`` module, with SCC-based loop enumeration.

Rule ids, severities, messages and subjects are kept compatible with the
legacy checker so :func:`repro.netlist.validate.validate_netlist` (now a
deprecation shim over this registry) reports byte-identical violations —
except ``combinational-loop``, which now reports one finding *per loop*
(Tarjan SCC) instead of one blanket finding per netlist.
"""

from __future__ import annotations

from typing import Iterable

from repro.analyze.report import Finding, Severity
from repro.analyze.rules import AnalysisContext, rule
from repro.analyze.structural import combinational_sccs


@rule(
    "undriven-net",
    severity=Severity.ERROR,
    category="netlist",
    description="A net is consumed (gate/flop/latch/RAM input or PO) but has no driver",
)
def check_undriven_nets(context: AnalysisContext) -> Iterable[Finding]:
    netlist = context.netlist
    assert netlist is not None
    severity = (
        Severity.WARNING if context.allow_floating_inputs else Severity.ERROR
    )
    sinks: set[str] = set()
    for gate in netlist.gates.values():
        sinks.update(gate.inputs)
    for flop in netlist.flops.values():
        sinks.add(flop.d)
        if flop.scan_in:
            sinks.add(flop.scan_in)
        if flop.scan_enable:
            sinks.add(flop.scan_enable)
    for latch in netlist.latches.values():
        sinks.add(latch.d)
        sinks.add(latch.enable)
    for ram in netlist.rams.values():
        sinks.update(ram.address)
        sinks.update(ram.data_in)
        sinks.add(ram.write_enable)
    sinks.update(netlist.outputs)
    for net in sorted(sinks):
        if netlist.driver_of(net) is None and net not in netlist.clock_nets:
            yield Finding(
                rule="undriven-net",
                severity=severity,
                message="net is used as an input but has no driver",
                subject=net,
            )


@rule(
    "dangling-output",
    severity=Severity.WARNING,
    category="netlist",
    description="A gate output drives no gate, sequential element, RAM or PO",
)
def check_dangling_outputs(context: AnalysisContext) -> Iterable[Finding]:
    netlist = context.netlist
    assert netlist is not None
    loads: set[str] = set(netlist.outputs)
    for gate in netlist.gates.values():
        loads.update(gate.inputs)
    for flop in netlist.flops.values():
        loads.add(flop.d)
        loads.add(flop.clock)
        if flop.reset:
            loads.add(flop.reset)
        if flop.scan_in:
            loads.add(flop.scan_in)
        if flop.scan_enable:
            loads.add(flop.scan_enable)
    for latch in netlist.latches.values():
        loads.add(latch.d)
        loads.add(latch.enable)
    for ram in netlist.rams.values():
        loads.update(ram.address)
        loads.update(ram.data_in)
        loads.add(ram.write_enable)
        loads.add(ram.clock)
    for gate in netlist.gates.values():
        if gate.output not in loads:
            yield Finding(
                rule="dangling-output",
                severity=Severity.WARNING,
                message="gate output drives nothing",
                subject=gate.name,
            )


@rule(
    "combinational-loop",
    severity=Severity.ERROR,
    category="netlist",
    description="Gates form a combinational cycle (one finding per SCC)",
)
def check_combinational_loops(context: AnalysisContext) -> Iterable[Finding]:
    netlist = context.netlist
    assert netlist is not None
    for component in combinational_sccs(netlist):
        shown = ", ".join(component[:8])
        suffix = ", ..." if len(component) > 8 else ""
        yield Finding(
            rule="combinational-loop",
            severity=Severity.ERROR,
            message=(
                f"combinational cycle through {len(component)} gate(s): "
                f"{shown}{suffix}"
            ),
            subject=netlist.name,
            data={"gates": component},
        )


@rule(
    "missing-clock",
    severity=Severity.ERROR,
    category="netlist",
    description="A flip-flop has no clock net",
)
def check_missing_clocks(context: AnalysisContext) -> Iterable[Finding]:
    netlist = context.netlist
    assert netlist is not None
    for flop in netlist.flops.values():
        if not flop.clock:
            yield Finding(
                rule="missing-clock",
                severity=Severity.ERROR,
                message="flip-flop has no clock net",
                subject=flop.name,
            )


@rule(
    "clock-as-data",
    severity=Severity.WARNING,
    category="netlist",
    description="A declared clock net feeds a combinational gate input",
)
def check_clock_as_data(context: AnalysisContext) -> Iterable[Finding]:
    netlist = context.netlist
    assert netlist is not None
    clock_nets = netlist.clock_nets
    for gate in netlist.gates.values():
        for net in gate.inputs:
            if net in clock_nets:
                yield Finding(
                    rule="clock-as-data",
                    severity=Severity.WARNING,
                    message=f"clock net {net!r} feeds a combinational gate",
                    subject=gate.name,
                )
                break


@rule(
    "partial-scan-cell",
    severity=Severity.ERROR,
    category="netlist",
    description="A flop has scan_in or scan_enable but not both",
)
def check_partial_scan_cells(context: AnalysisContext) -> Iterable[Finding]:
    netlist = context.netlist
    assert netlist is not None
    for flop in netlist.flops.values():
        if (flop.scan_in is not None) != (flop.scan_enable is not None):
            yield Finding(
                rule="partial-scan-cell",
                severity=Severity.ERROR,
                message="scan cell must have both scan_in and scan_enable",
                subject=flop.name,
            )


@rule(
    "nonscan-stitched",
    severity=Severity.ERROR,
    category="netlist",
    description="A flop marked non-scannable is stitched into a chain",
)
def check_nonscan_stitched(context: AnalysisContext) -> Iterable[Finding]:
    netlist = context.netlist
    assert netlist is not None
    for flop in netlist.flops.values():
        if flop.is_scan and not flop.scannable:
            yield Finding(
                rule="nonscan-stitched",
                severity=Severity.ERROR,
                message="flip-flop marked non-scannable but stitched into a chain",
                subject=flop.name,
            )
